// Experiment E6 (Theorem 1.4): static fault timing => full local skew
// (intra- AND inter-layer) is O(kappa log D), and the pulse pattern repeats
// with period exactly Lambda.
#include <cmath>
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 32 : 16));
  const std::uint32_t layers = columns;
  const auto seed = flags.get_u64("seed", 1);

  const Params params = Params::with(1000.0, 10.0, 1.0005);
  std::printf("== Theorem 1.4: static-timing faults, full L bounded ==\n");
  std::printf("   grid %ux%u; static faults (crash + fixed offsets); bound "
              "4k(2+lgD) = %.1f\n\n",
              columns, layers, params.thm11_bound(columns - 1));

  Table table({"scenario", "L intra", "L inter", "L = max", "period error (max |dt-Lambda|)"});
  for (const int scenario : {0, 1, 2}) {
    ExperimentConfig config;
    config.columns = columns;
    config.layers = layers;
    config.pulses = 20;
    config.seed = seed;
    const char* name = "fault-free";
    if (scenario == 1) {
      name = "1 crash + 1 offset";
      config.faults = {{columns / 3, layers / 3, FaultSpec::crash()},
                       {(2 * columns) / 3, (2 * layers) / 3,
                        FaultSpec::static_offset(180.0)}};
    } else if (scenario == 2) {
      name = "3 static offsets";
      config.faults = {{columns / 4, layers / 4, FaultSpec::static_offset(-150.0)},
                       {columns / 2, layers / 2, FaultSpec::static_offset(220.0)},
                       {(3 * columns) / 4, (3 * layers) / 4,
                        FaultSpec::static_offset(90.0)}};
    }
    World world(config);
    world.run_to_completion();
    const SkewReport report = world.skew();

    // Period deviation over steady pulses of correct nodes.
    double period_error = 0.0;
    const auto& rec = world.recorder();
    for (GridNodeId g = 0; g < world.grid().node_count(); ++g) {
      if (world.is_faulty(g)) continue;
      const Sigma from = rec.steady_from(g, 6);
      if (from == Recorder::kInvalidSigma) continue;
      const Sigma last = rec.last_recorded(g) - 2;
      for (Sigma s = from; s + 1 <= last; ++s) {
        const auto t1 = rec.pulse_time(g, s);
        const auto t2 = rec.pulse_time(g, s + 1);
        if (!t1 || !t2) continue;
        period_error = std::max(period_error,
                                std::abs((*t2 - *t1) - config.params.lambda));
      }
    }

    table.row()
        .add(name)
        .add(report.max_intra, 1)
        .add(report.max_inter, 1)
        .add(report.local_skew, 1)
        .add(period_error, 6);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: with static fault timing the pattern repeats exactly\n"
              "(period error ~ 0) and L stays within a small multiple of kappa log D,\n"
              "matching Theorem 1.4's 'consecutive pulses of adjacent layers' claim.\n");
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
