// Experiment E9 (Figure 5): the jump condition ablation.
//
// Figure 5 shows why the jump condition (Definition 4.5) exists: without
// it, a node whose own copy is far from its neighbours "overswings" --
// corrections chase the raw estimate (including its measurement error), and
// adjacent nodes jumping in opposite directions feed an oscillation.
// With JC, corrections stop kappa short of the earliest/latest neighbour
// and the oscillation is damped.
//
// Scenario: adjacent columns start with alternating +/- offsets at layer 0
// (an adversarial initial skew pattern), on top of alternating delays.
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

struct Outcome {
  std::vector<double> by_layer;
  double final_skew = 0.0;
  double max_skew = 0.0;
};

Outcome run_case(bool jump_condition, std::uint32_t columns, std::uint32_t layers,
                 std::uint64_t seed, double initial_amplitude) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = layers;
  config.pulses = 18;
  config.seed = seed;
  config.jump_condition = jump_condition;
  // Own-copy edges slow, cross edges fast: every neighbour-offset
  // measurement overestimates by u, so undamped jumps overshoot by u each
  // layer (the Fig. 5 amplification); drift noise is removed so the effect
  // is isolated.
  config.delay_kind = DelayModelKind::kOwnSlowCrossFast;
  config.clock_model = ClockModelKind::kAllSlow;
  // Alternating +/- layer-0 offsets: the adversarial initial pattern of
  // Figure 5 (adjacent nodes maximally out of phase).
  config.layer0_jitter = 0.0;
  config.layer0_offset_by_column.resize(columns);
  for (std::uint32_t c = 0; c < columns; ++c) {
    config.layer0_offset_by_column[c] =
        (c % 2 == 0) ? initial_amplitude / 2.0 : -initial_amplitude / 2.0;
  }
  World world(config);
  world.run_to_completion();
  const SkewReport report = world.skew();
  Outcome outcome;
  outcome.by_layer = report.intra_by_layer;
  outcome.final_skew = report.intra_by_layer.back();
  for (std::uint32_t l = 1; l < layers; ++l) {
    outcome.max_skew = std::max(outcome.max_skew, report.intra_by_layer[l]);
  }
  return outcome;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 24 : 12));
  const std::uint32_t layers = static_cast<std::uint32_t>(
      flags.get_int("layers", large ? 64 : 32));
  const auto seed = flags.get_u64("seed", 1);

  const Params params = Params::with(1000.0, 10.0, 1.0005);
  const double amplitude = 8.0 * params.kappa();
  std::printf("== Figure 5: jump condition on/off under an oscillatory start ==\n");
  std::printf("   alternating +/-%.0f layer-0 offsets; own-copy edges d, cross edges d-u\n"
              "   (every offset measurement overestimates by u); grid %ux%u\n\n",
              amplitude, columns, layers);

  const Outcome with_jc = run_case(true, columns, layers, seed, amplitude);
  const Outcome without_jc = run_case(false, columns, layers, seed, amplitude);

  Table table({"layer", "skew with JC", "skew without JC", "ratio"});
  for (std::uint32_t l = 1; l < layers; l += std::max(1u, layers / 16)) {
    const double a = with_jc.by_layer[l];
    const double b = without_jc.by_layer[l];
    table.row()
        .add(static_cast<std::uint64_t>(l))
        .add(a, 1)
        .add(b, 1)
        .add(a > 0 ? b / a : 0.0, 2);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("summary: max skew with JC %.1f vs without %.1f; final layer %.1f vs %.1f\n",
              with_jc.max_skew, without_jc.max_skew, with_jc.final_skew,
              without_jc.final_skew);
  std::printf("shape check (Fig. 5): with JC the initial +/- disturbance damps out\n"
              "completely (tail skew ~0); without JC every jump overshoots by the\n"
              "measurement error u and a residual oscillation of amplitude ~u=%.0f\n"
              "persists across all layers.\n", params.u);
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
