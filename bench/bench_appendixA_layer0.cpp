// Experiment E10 (Appendix A, Lemma A.1 / Corollary A.2): the layer-0 line.
//
//  * per-hop pulse offsets lie in [Lambda - kappa/2, Lambda],
//  * L_0 <= kappa/2 in the shifted indexing,
//  * pulse times satisfy t^k_i in [(k+i-1)Lambda - i kappa/2, (k+i-1)Lambda],
//  * the scheme stabilizes within D Lambda after transient corruption.
#include <cmath>
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 64 : 16));
  const auto seed = flags.get_u64("seed", 1);

  ExperimentConfig config;
  config.columns = columns;
  config.layers = 2;
  config.pulses = 20;
  config.layer0 = Layer0Mode::kLinePropagation;
  config.seed = seed;
  World world(config);
  world.run_to_completion();

  const auto& grid = world.grid();
  const auto& rec = world.recorder();
  const double lambda = config.params.lambda;
  const double kappa = config.params.kappa();

  std::printf("== Appendix A: layer-0 line forwarding (Lemma A.1) ==\n");
  std::printf("   %u columns, Lambda=%.0f, kappa=%.1f; window [Lambda-kappa/2, Lambda]"
              " = [%.1f, %.1f]\n\n",
              columns, lambda, kappa, lambda - kappa / 2.0, lambda);

  Summary hop_offsets;
  Summary envelope_slack;  // (k+i-1)Lambda - t^k_i, must be in [0, i kappa/2]
  bool hop_ok = true;
  bool envelope_ok = true;
  for (std::uint32_t c = 0; c + 1 < columns; ++c) {
    const GridNodeId a = grid.id(grid.base().nodes_in_column(c).front(), 0);
    const GridNodeId b = grid.id(grid.base().nodes_in_column(c + 1).front(), 0);
    for (std::int64_t k = 2; k <= config.pulses - 1; ++k) {
      const auto ta = rec.pulse_time(a, k + c);
      const auto tb = rec.pulse_time(b, k + c + 1);
      if (!ta || !tb) continue;
      const double hop = *tb - *ta;
      hop_offsets.add(hop);
      hop_ok = hop_ok && hop >= lambda - kappa / 2.0 - 1e-6 && hop <= lambda + 1e-6;
    }
  }
  for (std::uint32_t c = 0; c < columns; ++c) {
    const GridNodeId g = grid.id(grid.base().nodes_in_column(c).front(), 0);
    for (std::int64_t k = 2; k <= config.pulses - 1; ++k) {
      const auto t = rec.pulse_time(g, k + c);
      if (!t) continue;
      // t^k_i in [(k+i-1)L - i k/2, (k+i-1)L] with i = c+1 hops from source.
      const double nominal = static_cast<double>(k + c) * lambda;
      const double slack = nominal - *t;
      envelope_slack.add(slack);
      envelope_ok = envelope_ok && slack >= -1e-6 &&
                    slack <= (static_cast<double>(c) + 1.0) * kappa / 2.0 + 1e-6;
    }
  }

  Table table({"quantity", "min", "mean", "max", "Lemma A.1 requirement", "ok"});
  table.row()
      .add("hop offset t_{i+1}-t_i")
      .add(hop_offsets.min(), 2)
      .add(hop_offsets.mean(), 2)
      .add(hop_offsets.max(), 2)
      .add("[Lambda-kappa/2, Lambda]")
      .add(hop_ok ? "yes" : "NO");
  table.row()
      .add("envelope slack (k+i-1)L - t")
      .add(envelope_slack.min(), 2)
      .add(envelope_slack.mean(), 2)
      .add(envelope_slack.max(), 2)
      .add("[0, i kappa/2]")
      .add(envelope_ok ? "yes" : "NO");
  std::printf("%s\n", table.render().c_str());

  // Stabilization: corrupt all line nodes, measure recovery time vs D Lambda.
  ExperimentConfig config2 = config;
  config2.pulses = static_cast<std::int64_t>(columns) + 24;
  World world2(config2);
  Rng rng(seed ^ 0xABCD);
  const double corrupt_at = 8.0 * lambda;
  world2.run_until(corrupt_at);
  for (GridNodeId g = 0; g < world2.grid().node_count(); ++g) {
    if (world2.layer0_node(g) != nullptr) world2.layer0_node(g)->corrupt_state(rng);
  }
  world2.run_to_completion();
  // Find the last time any layer-0 node deviated from the exact-Lambda
  // period (post-corruption instability).
  double last_bad = corrupt_at;
  const auto& rec2 = world2.recorder();
  for (std::uint32_t c = 0; c < columns; ++c) {
    const GridNodeId g = world2.grid().id(world2.grid().base().nodes_in_column(c).front(), 0);
    const Sigma last = rec2.last_recorded(g);
    for (Sigma s = rec2.steady_from(g, 1); s + 1 <= last; ++s) {
      const auto t1 = rec2.pulse_time(g, s);
      const auto t2 = rec2.pulse_time(g, s + 1);
      if (!t1 || !t2 || *t1 < corrupt_at) continue;
      if (std::abs((*t2 - *t1) - lambda) > 1e-6) last_bad = std::max(last_bad, *t2);
    }
  }
  const double stabilization = last_bad - corrupt_at;
  std::printf("stabilization after corrupting all line nodes: %.0f time units = %.2f\n"
              "pulses; Corollary A.2 bound D Lambda = %.0f  -> %s\n",
              stabilization, stabilization / lambda,
              static_cast<double>(columns - 1) * lambda,
              stabilization <= (columns - 1) * lambda ? "within bound" : "EXCEEDS bound");
  return hop_ok && envelope_ok ? 0 : 1;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
