// Experiment E4 (Theorem 1.2): worst-case (clustered) faults.
//
// The paper bounds local skew by O(5^f kappa log D) when f faults are
// placed adversarially (stacked in one column so each fault's displacement
// compounds before the previous one has been flattened out). This harness
// stacks f split-faults in one column at minimal layer spacing, tries
// several adversarial amplitudes, and reports measured skew against the
// 5^f-shaped bound.
#include <cstdio>
#include <vector>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

double worst_skew_with_faults(std::uint32_t columns, std::uint32_t layers,
                              std::uint32_t f, std::uint64_t seed) {
  double worst = 0.0;
  // Adversarial strategy search: stacked faults with varying amplitude and
  // kind; keep the worst outcome (the adversary picks the best strategy).
  const Grid grid(BaseGraph::line_replicated(columns), layers);
  const double kappa = Params::with(1000.0, 10.0, 1.0005).kappa();
  for (const double amplitude : {2.0 * kappa, 6.0 * kappa, 12.0 * kappa}) {
    for (const bool use_split : {true, false}) {
      ExperimentConfig config;
      config.columns = columns;
      config.layers = layers;
      config.pulses = 18;
      config.seed = seed;
      const FaultSpec spec = use_split ? FaultSpec::split(amplitude)
                                       : FaultSpec::static_offset(amplitude);
      config.faults = clustered_faults(grid, f, columns / 2, 2, 1, spec);
      const ExperimentResult result = run_experiment(config);
      worst = std::max(worst, result.skew.max_intra);
    }
  }
  return worst;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 24 : 12));
  const std::uint32_t layers = static_cast<std::uint32_t>(
      flags.get_int("layers", large ? 32 : 16));
  const auto seed = flags.get_u64("seed", 1);
  const std::uint32_t max_f = static_cast<std::uint32_t>(flags.get_int("max-f", 4));

  const Params params = Params::with(1000.0, 10.0, 1.0005);
  std::printf("== Theorem 1.2: worst-case clustered faults, skew vs f ==\n");
  std::printf("   f split/offset faults stacked in column %u (adversarial strategy\n"
              "   search over amplitudes); bound B_f = 4k(2+lgD) 5^f sum 5^-j\n\n",
              columns / 2);
  Table table({"f", "measured worst skew", "bound B_f", "measured/f=0", "bound ratio"});
  double base = 0.0;
  std::vector<double> measured;
  for (std::uint32_t f = 0; f <= max_f; ++f) {
    const double skew = worst_skew_with_faults(columns, layers, f, seed);
    if (f == 0) base = skew;
    measured.push_back(skew);
    table.row()
        .add(static_cast<std::uint64_t>(f))
        .add(skew, 1)
        .add(params.thm12_bound(columns - 1, f), 1)
        .add(skew / base, 2)
        .add(params.thm12_bound(columns - 1, f) / params.thm12_bound(columns - 1, 0), 2);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: measured growth per added fault stays below the bound's\n"
              "factor ~5; within-bound compliance:\n");
  bool all_within = true;
  for (std::uint32_t f = 0; f <= max_f; ++f) {
    const bool ok = measured[f] <= params.thm12_bound(columns - 1, f);
    all_within = all_within && ok;
    std::printf("  f=%u: %s\n", f, ok ? "within bound" : "EXCEEDS bound");
  }
  return all_within ? 0 : 1;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
