// Experiment E13 (extension; paper "Bigger Picture" item 3): toward
// f-local tolerance with in-degree 2f+1.
//
// The paper establishes f = 1 at in-degree 3 and asks whether in-degree
// 2f+1 suffices for general f. This prototype explores f = 2: a degree-5
// grid (cycle_wide reach 2) with trimmed aggregation (H_min/H_max taken as
// the 2nd-earliest / 2nd-latest neighbour reception) so one outlier per
// side never enters the correction. We inject fault PAIRS into a shared
// neighbourhood -- outside the base algorithm's model -- and compare the
// paper's degree-3 grid against the degree-5 trimmed grid.
#include <algorithm>
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

struct Variant {
  const char* name;
  std::uint32_t reach;
  std::uint32_t trim;
};

double run_variant(const Variant& variant, std::uint32_t columns, std::uint32_t layers,
                   const std::vector<PlacedFault>& faults, std::uint64_t seed) {
  ExperimentConfig config;
  config.base_kind = BaseGraphKind::kCycle;
  config.columns = columns;
  config.cycle_reach = variant.reach;
  config.trim = variant.trim;
  config.layers = layers;
  config.pulses = 18;
  config.seed = seed;
  config.faults = faults;
  return run_experiment(config).skew.max_intra;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 24 : 12));
  const std::uint32_t layers = columns;
  const auto seed = flags.get_u64("seed", 1);
  const Params params = Params::with(1000.0, 10.0, 1.0005);

  const Variant variants[] = {
      {"degree-3 (paper)", 1, 0},
      {"degree-5, no trim", 2, 0},
      {"degree-5, trim 1", 2, 1},
  };

  struct Scenario {
    const char* name;
    std::vector<PlacedFault> faults;
  };
  const std::uint32_t mid = layers / 2;
  const Scenario scenarios[] = {
      {"fault-free", {}},
      {"1 crash", {{4, mid, FaultSpec::crash()}}},
      {"2 adjacent: crash + late offset",
       {{4, mid, FaultSpec::crash()}, {5, mid, FaultSpec::static_offset(300.0)}}},
      {"2 adjacent: opposite offsets",
       {{4, mid, FaultSpec::static_offset(350.0)},
        {5, mid, FaultSpec::static_offset(-350.0)}}},
      {"2 adjacent: split pair",
       {{4, mid, FaultSpec::split(250.0)}, {5, mid, FaultSpec::split(250.0)}}},
  };

  std::printf("== Extension: toward f=2 with in-degree 5 (open problem 3) ==\n");
  std::printf("   cycle base, %u columns x %u layers; trimmed aggregation drops one\n"
              "   outlier per side before computing H_min/H_max. kappa = %.1f\n\n",
              columns, layers, params.kappa());

  Table table({"scenario", "degree-3 (paper)", "degree-5 no trim", "degree-5 trim 1",
               "trim-1 vs degree-3"});
  for (const Scenario& scenario : scenarios) {
    double skew[3];
    for (int v = 0; v < 3; ++v) {
      skew[v] = run_variant(variants[v], columns, layers, scenario.faults, seed);
    }
    table.row()
        .add(scenario.name)
        .add(skew[0], 1)
        .add(skew[1], 1)
        .add(skew[2], 1)
        .add(skew[0] > 0 ? skew[2] / skew[0] : 0.0, 2);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: on single faults all variants behave alike (the paper's\n"
              "guarantee). On fault *pairs* in one neighbourhood -- beyond the 1-local\n"
              "model -- the degree-3 grid degrades, while degree-5 with trim 1 absorbs\n"
              "the pair at O(kappa), supporting the conjecture that in-degree 2f+1\n"
              "suffices for f-local tolerance.\n");
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
