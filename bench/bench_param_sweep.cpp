// Experiment E11 (ablation): the kappa design choice (Equation (1)).
//
// kappa must dominate the per-step measurement error u + (1-1/theta)
// (Lambda - d); the paper's choice is exactly twice that. This sweep scales
// kappa by 0.25x..4x of the Eq.(1) value (by scaling the u fed to the
// algorithm while the real uncertainty stays fixed) and reports skew and
// condition violations: undersized kappa breaks the slow/fast/jump
// conditions, oversized kappa just inflates the skew linearly.
//
// The sweep points are independent simulations, so they run through the
// parallel sweep machinery (runner/sweep.hpp); rows print in input order.
#include <cstdio>
#include <vector>

#include "runner/experiment.hpp"
#include "runner/sweep.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

struct SweepPoint {
  double mult = 0.0;
  ExperimentConfig config;
  SkewReport skew;
  ConditionReport report;
};

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 24 : 12));
  const auto seed = flags.get_u64("seed", 1);
  const auto threads = static_cast<unsigned>(flags.get_int("threads", 0));

  const double real_u = 10.0;
  const double theta = 1.0005;
  const Params reference = Params::with(1000.0, real_u, theta);

  std::printf("== Ablation: kappa multiplier sweep (Eq. (1) design choice) ==\n");
  std::printf("   real delay uncertainty stays u=%.0f; the algorithm's kappa is\n"
              "   scaled by the multiplier. kappa(Eq.1) = %.2f\n\n",
              real_u, reference.kappa());

  std::vector<SweepPoint> points;
  for (const double mult : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}) {
    ExperimentConfig config;
    config.columns = columns;
    config.layers = columns;
    config.pulses = 18;
    config.seed = seed;
    // Scale kappa by lying to the algorithm about u (the drift term scales
    // along via lambda - d which stays fixed; adjust u to hit the target).
    const double drift_term = (1.0 - 1.0 / theta) * (reference.lambda - reference.d);
    const double target_kappa = mult * reference.kappa();
    const double fake_u = target_kappa / 2.0 - drift_term;
    if (fake_u <= 0.0) continue;
    config.params = Params::with(1000.0, fake_u, theta);
    // Adversarial setting where margins matter: consistent +u measurement
    // bias (own-copy edges slow) plus an oscillatory start, and one crash
    // to exercise the median machinery.
    config.delay_kind = DelayModelKind::kOwnSlowCrossFast;
    config.layer0_jitter = 0.0;
    config.layer0_offset_by_column.resize(columns);
    for (std::uint32_t c = 0; c < columns; ++c) {
      config.layer0_offset_by_column[c] = (c % 2 == 0) ? 4.0 * reference.kappa()
                                                       : -4.0 * reference.kappa();
    }
    config.faults = {{columns / 2, columns / 2, FaultSpec::crash()}};
    SweepPoint point;
    point.mult = mult;
    point.config = std::move(config);
    points.push_back(std::move(point));
  }

  parallel_for_index(points.size(), threads, [&](std::size_t i) {
    SweepPoint& point = points[i];
    World world(point.config);
    world.run_to_completion();
    point.skew = world.skew();
    // Conditions are checked against the REAL parameters: does the run
    // still satisfy what the analysis needs?
    const GridTrace trace = world.trace();
    const auto [lo, hi] = default_window(world.recorder(), point.config.warmup);
    point.report = check_conditions(trace, reference, 5, lo, hi);
  });

  Table table({"kappa mult", "algo kappa", "L last layer", "L/kappa_ref", "SC viol",
               "FC viol", "JC viol", "median viol"});
  for (const SweepPoint& point : points) {
    table.row()
        .add(point.mult, 2)
        .add(point.config.params.kappa(), 2)
        .add(point.skew.intra_by_layer.back(), 1)
        .add(point.skew.intra_by_layer.back() / reference.kappa(), 2)
        .add(point.report.sc_violations)
        .add(point.report.fc_violations)
        .add(point.report.jc_violations)
        .add(point.report.median_violations);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: kappa below the Eq.(1) value leaves margins smaller than the\n"
              "real measurement error, so the adversarial bias is not fully damped and\n"
              "residual skew stays high relative to kappa; at multiplier >= 1 the\n"
              "damping absorbs the bias and measured skew scales ~linearly in kappa\n"
              "(the L = Theta(kappa log D) sensitivity). Violations are measured\n"
              "against the Eq.(1) reference kappa: oversized corrections overshoot\n"
              "the reference conditions' envelopes.\n");
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
