// Experiment E8 (Theorem 1.6): self-stabilization time.
//
// Corrupt the entire grid mid-run, then measure how many waves pass until
// the local skew is back within the Theorem 1.1 bound. The paper proves
// stabilization within O(sqrt(n)) pulses -- one layer per wave, because
// propagation is directed; the series below shows recovery waves growing
// ~linearly with the layer count.
#include <cmath>
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

/// Waves from corruption until intra-layer skew <= bound and stays there;
/// -1 if it never recovers within the run.
std::int64_t recovery_waves(std::uint32_t columns, std::uint32_t layers,
                            std::uint64_t seed, double fraction) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = layers;
  config.pulses = static_cast<std::int64_t>(layers) + 30;
  config.seed = seed;
  config.self_stabilizing = true;
  World world(config);
  Rng rng(seed ^ 0xFEED);
  const Sigma corrupt_wave = 10;
  world.run_until(static_cast<double>(corrupt_wave) * config.params.lambda);
  world.corrupt_fraction(fraction, rng);
  world.run_to_completion();
  world.realign_labels();

  const double bound = config.params.thm11_bound(world.grid().base().diameter());
  const auto trace = world.trace();
  const auto [lo, hi] = default_window(world.recorder(), config.warmup);
  (void)lo;
  // Find the first wave s such that all waves in [s, hi] are within bound.
  std::int64_t recovered_at = -1;
  for (Sigma s = hi; s >= corrupt_wave; --s) {
    double worst = 0.0;
    for (std::uint32_t layer = 0; layer < layers; ++layer) {
      for (const auto& [a, b] : world.grid().base().edges()) {
        const auto ta = trace.steady_pulse(world.grid().id(a, layer), s);
        const auto tb = trace.steady_pulse(world.grid().id(b, layer), s);
        if (!ta || !tb) continue;
        worst = std::max(worst, std::abs(*ta - *tb));
      }
    }
    if (worst > bound) break;
    recovered_at = s;
  }
  if (recovered_at < 0) return -1;
  return recovered_at - corrupt_wave;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  std::vector<std::uint32_t> layer_counts = {6, 10, 14, 18};
  if (large) layer_counts = {8, 16, 24, 32, 48};
  const int seeds = static_cast<int>(flags.get_int("seeds", large ? 6 : 4));

  std::printf("== Theorem 1.6: stabilization time after full transient corruption ==\n");
  std::printf("   every node's registers/timers scrambled at wave 10; recovery =\n"
              "   waves until intra skew is back under 4k(2+lgD) for good.\n\n");
  Table table({"layers (~sqrt n)", "columns", "recovery waves (mean)", "min", "max",
               "waves/layer"});
  std::vector<double> xs, ys;
  for (const std::uint32_t layers : layer_counts) {
    const std::uint32_t columns = 10;
    Summary waves;
    for (int s = 0; s < seeds; ++s) {
      const std::int64_t w =
          recovery_waves(columns, layers, 100 + static_cast<std::uint64_t>(s), 1.0);
      if (w >= 0) waves.add(static_cast<double>(w));
    }
    table.row()
        .add(static_cast<std::uint64_t>(layers))
        .add(static_cast<std::uint64_t>(columns))
        .add(waves.mean(), 1)
        .add(waves.min(), 0)
        .add(waves.max(), 0)
        .add(waves.mean() / layers, 2);
    xs.push_back(layers);
    ys.push_back(waves.mean());
  }
  std::printf("%s\n", table.render().c_str());
  const LinearFit fit = fit_linear(xs, ys);
  std::printf("fit: recovery ~= %.1f + %.2f * layers (r2=%.3f)\n", fit.intercept,
              fit.slope, fit.r2);
  std::printf("shape check: recovery grows at most ~1 wave per layer (the paper's\n"
              "O(sqrt n) = O(#layers) pulses), with a constant startup overhead.\n");
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
