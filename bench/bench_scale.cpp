// bench_scale: the mega-grid memory/throughput trajectory.
//
// Runs a scale scenario's cell once per recording mode, each in a forked
// child process so peak RSS is attributable to that mode alone (a process
// high-water mark never goes down, so in-process sequencing would charge
// the first mode's peak to every later one). Reports peak RSS, wall time
// and events/sec per mode, asserts the streaming run stays under a
// committed RSS budget, and -- when both streaming and full run -- asserts
// the two modes' skew extrema are BIT-identical (the streaming accumulators
// are a different evaluation order of the same arithmetic, not an
// approximation; see docs/scaling.md).
//
//   bench_scale                              # scale-grid, streaming + full
//   bench_scale --scenario=scale-torus --modes=streaming
//   bench_scale --scenario=scale-stabilization   # corrupt cells: realigned
//                                            # skew + recovery-time sweep
//   bench_scale --quick --assert-rss-mb=256  # CI smoke: reduced shape
//   bench_scale --out=BENCH_scale-grid.json
//
// Corrupt scenarios (scale-stabilization) replay the campaign runner's
// corruption sequence per cell; the identity gate then also covers the
// realigned post-recovery skew, the exact quantiles and the recovery
// report, and every cell of the fault-density sweep must recover.
//
// --shards=LIST adds a second sweep axis: the first recording mode re-runs
// once per engine shard count (same fork-per-run isolation), reporting wall
// time, peak RSS and logical events/sec per count plus the speedup over the
// serial engine, and asserting the skew extrema are bit-identical across
// every count.
//
// The wall-clock gates are hardware-honest: before gating a shard count k,
// the bench forks k INDEPENDENT serial runs concurrently and measures how
// much faster than sequential the host actually executes them ("parallel
// headroom" -- a 2-vCPU cloud container often measures ~1.0x on this
// memory-bound workload even though nproc says 2). A count is wall-gated
// only when the host demonstrates >=1.5x headroom for it; the sharded
// engine must then capture at least 70% of that headroom, capped by the
// tiered floors (2: 1.2x, 4: 2x, 8: 3x). Identity gates always apply.
// --assert-shard-floor (CI smoke) fails if 2 shards run materially slower
// than 1 on a host with headroom; --assert-shard-scaling applies the tiered
// thresholds to every listed count the host has cores AND headroom for.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/rss.hpp"
#include "registry/recording.hpp"
#include "runner/campaign.hpp"
#include "runner/experiment.hpp"
#include "scenario/registry.hpp"
#include "support/flags.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

/// Committed streaming-mode peak-RSS budgets, asserted by default at full
/// scale (docs/scaling.md explains the headroom: measured peaks are ~500 MB
/// for scale-grid, ~1.6 GB for scale-torus and ~1.3 GB for
/// scale-stabilization, whose corruption-anchored look-back box is the
/// dominant retained state; full-trace recording measures ~1.1 GB on
/// scale-grid and ~2.7 GB on scale-stabilization, clearly over budget).
long default_budget_mb(const std::string& scenario) {
  if (scenario == "scale-grid") return 640;
  if (scenario == "scale-torus") return 2048;
  if (scenario == "scale-stabilization") return 1536;
  return 0;  // no default budget for other scenarios
}

struct ModeResult {
  std::string mode;
  double wall_seconds = 0.0;
  double peak_rss_mb = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t messages_delivered = 0;
  double events_per_sec = 0.0;
  SkewReport skew;
  std::uint64_t window_overflows = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t stream_bytes = 0;
};

/// Runs one cell under `mode` with `shards` engine shards in THIS process
/// and serializes the result. Corrupt cells replay the campaign runner's
/// sequence exactly (anchor, run to the corruption boundary, scramble,
/// finish, measure_cell), so the reported skew is the realigned
/// post-recovery window and the recovery scan rides in the result.
Json run_mode(const ExperimentConfig& base_config, const CorruptPlan& corrupt,
              const std::string& mode, std::uint32_t shards) {
  ExperimentConfig config = base_config;
  // Keep a scenario-declared window when overriding the mode kind: the
  // corruption look-back is sized by the scenario, not by mode defaults.
  ComponentSpec spec = ComponentSpec::of(mode);
  if (mode != "full" && !base_config.recording_spec.empty() &&
      base_config.recording_spec.params.contains("window")) {
    recording_registry().set_param(spec, "window",
                                   base_config.recording_spec.params.at("window"));
  }
  config.recording_spec = recording_registry().canonicalize(spec);

  EngineOptions engine;
  engine.shards = shards;
  const auto started = std::chrono::steady_clock::now();
  World world(config, engine);
  ExperimentResult measured;
  if (corrupt.enabled) {
    world.set_corruption_anchor(corrupt.wave);
    Rng rng(config.seed ^ 0xFEED);  // matches run_cell's corruption stream
    world.run_until(corrupt.wave * config.params.lambda);
    world.corrupt_fraction(corrupt.fraction, rng);
    world.run_to_completion();
    measured = measure_cell(world, config, corrupt);
  } else {
    world.run_to_completion();
    measured.skew = world.skew();
  }
  const SkewReport& skew = measured.skew;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  const ExperimentCounters counters = world.counters();
  // Throughput is normalized by LOGICAL events: the raw executed-event count
  // depends on broadcast batching and on how many cross-shard fan-outs the
  // shard plan splits, so events/sec would not be comparable across shard
  // counts otherwise.
  const std::uint64_t logical = counters.events_executed - counters.delivery_events +
                                counters.messages_delivered;

  Json j = Json::object();
  j.set("mode", mode);
  j.set("shards", world.shard_count());
  j.set("wall_seconds", wall);
  // obs/rss.hpp is the one shared definition of "peak RSS" (same sampler
  // campaign engine_stats reports through).
  j.set("peak_rss_mb", peak_rss_mb());
  j.set("events_executed", counters.events_executed);
  j.set("logical_events", logical);
  j.set("messages_delivered", counters.messages_delivered);
  j.set("events_per_sec", wall > 0.0 ? static_cast<double>(logical) / wall : 0.0);
  Json s = Json::object();
  s.set("max_intra", skew.max_intra);
  s.set("max_inter", skew.max_inter);
  s.set("local", skew.local_skew);
  s.set("global", skew.global_skew);
  s.set("pairs_checked", skew.pairs_checked);
  s.set("dev_mean", skew.deviations.mean);
  s.set("dev_p99", skew.deviations.p99);
  j.set("skew", std::move(s));
  if (corrupt.enabled) {
    const RecoveryReport& rec = measured.recovery;
    Json r = Json::object();
    r.set("corrupt_wave", rec.corrupt_wave);
    r.set("scan_hi", rec.scan_hi);
    r.set("threshold", rec.threshold);
    r.set("recovered", rec.recovered);
    if (rec.recovered) {
      r.set("recovered_wave", rec.recovered_wave);
      r.set("recovery_waves", rec.recovered_wave - rec.corrupt_wave);
    } else {
      r.set("recovered_wave", Json());
    }
    r.set("realign_nodes_shifted",
          static_cast<std::int64_t>(measured.realign.nodes_shifted));
    j.set("recovery", std::move(r));
  }
  if (world.streaming() != nullptr) {
    j.set("window_overflows", world.streaming()->window_overflows());
    j.set("out_of_order", world.streaming()->out_of_order());
    j.set("stream_bytes", world.streaming()->memory_bytes());
  }
  return j;
}

/// Forks a child to run one (mode, shards) combination; returns its result
/// JSON. Process-level isolation is what makes per-run peak RSS meaningful.
Json run_mode_forked(const ExperimentConfig& config, const CorruptPlan& corrupt,
                     const std::string& mode, std::uint32_t shards,
                     const std::string& scratch_dir) {
  const std::string path = scratch_dir + "/bench_scale_" + mode + "_s" +
                           std::to_string(shards) + "_" +
                           std::to_string(::getpid()) + ".json";
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    int code = 0;
    try {
      const Json result = run_mode(config, corrupt, mode, shards);
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << result.dump();
      if (!out.flush()) code = 3;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_scale[%s]: %s\n", mode.c_str(), e.what());
      code = 2;
    }
    std::_Exit(code);  // no destructors/atexit: the parent owns shared state
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    throw std::runtime_error("mode '" + mode + "' child failed");
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return Json::parse(buffer.str());
}

/// Forks `k` children that each run the cell serially (shards=1) at the same
/// time and returns the makespan. k * serial_wall / makespan is the host's
/// demonstrated parallel headroom for k workers of THIS workload -- the
/// upper bound any k-shard run can reach, measured rather than assumed from
/// hardware_concurrency (shared/throttled vCPUs routinely report cores they
/// cannot feed with memory bandwidth).
double concurrent_serial_makespan(const ExperimentConfig& config, const CorruptPlan& corrupt,
                                  const std::string& mode, std::uint32_t k) {
  const auto started = std::chrono::steady_clock::now();
  std::vector<pid_t> pids;
  for (std::uint32_t i = 0; i < k; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fork failed");
    if (pid == 0) {
      int code = 0;
      try {
        (void)run_mode(config, corrupt, mode, 1);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_scale[headroom]: %s\n", e.what());
        code = 2;
      }
      std::_Exit(code);  // no destructors/atexit: the parent owns shared state
    }
    pids.push_back(pid);
  }
  bool ok = true;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ok = false;
    }
  }
  if (!ok) throw std::runtime_error("headroom calibration child failed");
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream stream(s);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(int argc, char** argv) {
  Usage usage(argv[0] != nullptr ? argv[0] : "bench_scale",
              "Mega-grid scale benchmark: peak RSS and events/sec per recording mode.");
  usage.flag("--scenario=NAME", "scale scenario to run (default scale-grid)");
  usage.flag("--modes=LIST", "comma-separated recording modes (default streaming,full)");
  usage.flag("--quick",
             "reduced shape for the CI smoke (96x96; corrupt scenarios 96x12 "
             "with pulses kept past the recovery wave)");
  usage.flag("--assert-rss-mb=N",
             "fail if the streaming run's peak RSS exceeds N MB (default: the "
             "committed per-scenario budget at full scale; off under --quick "
             "unless given explicitly)");
  usage.flag("--shards=LIST",
             "comma-separated engine shard counts; re-runs the first mode per "
             "count and reports the speedup over the serial engine (skew must "
             "stay bit-identical)");
  usage.flag("--assert-shard-floor",
             "fail if 2 shards run >10% slower than 1 (needs 1 and 2 in "
             "--shards; the CI smoke gate). Skipped with a note when the "
             "host measures <1.5x parallel headroom for 2 workers");
  usage.flag("--assert-shard-scaling",
             "fail if a shard count misses its speedup floor: min(tier, 70% "
             "of the host's measured k-process headroom), tiers 2: 1.2x, "
             "4: 2x, 8: 3x; counts beyond hardware_concurrency or without "
             "measured headroom are reported but never gated");
  usage.flag("--no-fork", "run in-process (single mode only; debugging)");
  usage.flag("--out=FILE", "write the JSON report to FILE");
  usage.flag("--help", "show this help");

  // The parser normalizes "--no-fork" to boolean "fork" = false.
  const Flags flags(argc, argv,
                    {"quick", "fork", "help", "assert-shard-floor", "assert-shard-scaling"});
  for (const std::string& name : flags.names()) {
    // "--no-fork" documents itself under that spelling but parses as the
    // boolean "fork"; accept the parsed name alongside the documented ones.
    if (name == "fork") continue;
    const auto known = usage.flag_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "error: unknown flag --%s (see --help)\n", name.c_str());
      return 2;
    }
  }
  if (flags.get_bool("help", false)) {
    std::fputs(usage.str().c_str(), stdout);
    return 0;
  }

  const std::string scenario_name = flags.get_string("scenario", "scale-grid");
  const bool quick = flags.get_bool("quick", false);
  const bool no_fork = !flags.get_bool("fork", true);
  const std::vector<std::string> modes =
      split_csv(flags.get_string("modes", quick ? "streaming" : "streaming,full"));
  if (modes.empty()) {
    std::fputs("error: --modes must name at least one recording mode\n", stderr);
    return 2;
  }
  if (no_fork && modes.size() > 1) {
    // Peak RSS is a process-lifetime high-water mark: a second in-process
    // mode would inherit the first's peak and corrupt both gates.
    std::fputs("error: --no-fork measures RSS in-process and supports exactly one mode "
               "(pass --modes=<one>)\n",
               stderr);
    return 2;
  }

  std::vector<std::uint32_t> shard_counts;
  for (const std::string& item : split_csv(flags.get_string("shards", ""))) {
    char* end = nullptr;
    const long v = std::strtol(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || v < 1 || v > 4096) {
      std::fprintf(stderr, "error: --shards entries must be in [1, 4096], got '%s'\n",
                   item.c_str());
      return 2;
    }
    shard_counts.push_back(static_cast<std::uint32_t>(v));
  }
  const bool assert_shard_floor = flags.get_bool("assert-shard-floor", false);
  const bool assert_shard_scaling = flags.get_bool("assert-shard-scaling", false);
  if ((assert_shard_floor || assert_shard_scaling) && shard_counts.empty()) {
    std::fputs("error: the shard gates need a --shards list to gate\n", stderr);
    return 2;
  }
  if (no_fork && !shard_counts.empty()) {
    std::fputs("error: the --shards sweep needs per-run RSS isolation (drop --no-fork)\n",
               stderr);
    return 2;
  }

  const Scenario scenario = builtin_scenario(scenario_name);
  std::vector<ScenarioCell> cells = scenario.cells();
  const CorruptPlan corrupt = cells.at(0).corrupt;
  const auto reshape_quick = [&](ExperimentConfig& c) {
    // Same pipeline, CI-sized shape: the smoke asserts the RSS ceiling and
    // the streaming-vs-full identity without the multi-minute mega run.
    // Corrupt scenarios keep enough pulses past the recovery wave
    // (corrupt_wave + layers + 8) for the post-recovery skew window.
    if (corrupt.enabled) {
      c.columns = 96;
      c.layers = 12;
      c.pulses = 36;
    } else {
      c.columns = 96;
      c.layers = 96;
      c.pulses = 10;
    }
  };
  ExperimentConfig config = cells.at(0).config;
  if (quick) reshape_quick(config);

  long budget_mb = flags.get_int("assert-rss-mb", quick ? 0 : default_budget_mb(scenario_name));

  Json report = Json::object();
  report.set("bench", std::string("bench_scale"));
  report.set("scenario", scenario_name);
  report.set("quick", quick);
  Json shape = Json::object();
  shape.set("columns", config.columns);
  shape.set("layers", config.layers);
  shape.set("pulses", config.pulses);
  if (!config.topology_spec.empty()) {
    Json topo = Json::object();
    topo.set("kind", config.topology_spec.kind);
    topo.set("params", config.topology_spec.params);
    shape.set("base_graph", std::move(topo));
  }
  report.set("shape", std::move(shape));
  if (budget_mb > 0) report.set("rss_budget_mb", static_cast<std::int64_t>(budget_mb));

  Table table({"mode", "peak RSS MB", "wall s", "events/s", "local skew", "global skew"});
  std::vector<Json> results;
  for (const std::string& mode : modes) {
    const Json result = no_fork ? run_mode(config, corrupt, mode, 1)
                                : run_mode_forked(config, corrupt, mode, 1, "/tmp");
    table.row()
        .add(mode)
        .add(result.at("peak_rss_mb").as_double(), 1)
        .add(result.at("wall_seconds").as_double(), 2)
        .add(result.at("events_per_sec").as_double(), 0)
        .add(result.at("skew").at("local").as_double(), 3)
        .add(result.at("skew").at("global").as_double(), 3);
    results.push_back(result);
  }
  const Json* streaming_result = nullptr;
  const Json* full_result = nullptr;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (modes[i] == "streaming") streaming_result = &results[i];
    if (modes[i] == "full") full_result = &results[i];
  }
  Json mode_results = Json::array();
  for (const Json& result : results) mode_results.push_back(result);
  report.set("modes", std::move(mode_results));
  std::printf("%s", table.render().c_str());

  int failures = 0;
  if (streaming_result != nullptr) {
    const std::uint64_t overflows = streaming_result->contains("window_overflows")
                                        ? streaming_result->at("window_overflows").as_u64()
                                        : 0;
    if (overflows != 0) {
      std::fprintf(stderr, "FAIL: streaming wave ring overflowed %llu times (extrema may "
                           "under-report; raise recording.window)\n",
                   static_cast<unsigned long long>(overflows));
      ++failures;
    }
    if (budget_mb > 0 && streaming_result->at("peak_rss_mb").as_double() >
                             static_cast<double>(budget_mb)) {
      std::fprintf(stderr, "FAIL: streaming peak RSS %.1f MB exceeds the %ld MB budget\n",
                   streaming_result->at("peak_rss_mb").as_double(), budget_mb);
      ++failures;
    }
  }
  bool identical = true;
  if (streaming_result != nullptr && full_result != nullptr) {
    // Bit-identity of the extrema: dump() is shortest-round-trip, so equal
    // strings mean equal doubles.
    for (const char* key : {"max_intra", "max_inter", "local", "global", "pairs_checked"}) {
      if (streaming_result->at("skew").at(key).dump() != full_result->at("skew").at(key).dump()) {
        std::fprintf(stderr, "FAIL: skew '%s' differs between streaming and full recording\n",
                     key);
        identical = false;
        ++failures;
      }
    }
    if (corrupt.enabled) {
      // Corrupt cells materialize exact quantiles from the retained window
      // in every mode, and realignment + the recovery scan must replay
      // identically from the corruption-anchored look-back.
      for (const char* key : {"dev_mean", "dev_p99"}) {
        if (streaming_result->at("skew").at(key).dump() !=
            full_result->at("skew").at(key).dump()) {
          std::fprintf(stderr,
                       "FAIL: '%s' differs between streaming and full recording on a "
                       "corrupt cell (both are exact)\n",
                       key);
          identical = false;
          ++failures;
        }
      }
      if (streaming_result->at("recovery").dump() != full_result->at("recovery").dump()) {
        std::fputs("FAIL: recovery report differs between streaming and full recording\n",
                   stderr);
        identical = false;
        ++failures;
      }
    }
  }
  if (streaming_result != nullptr && full_result != nullptr) {
    report.set("skew_identical", identical);
    const double full_rss = full_result->at("peak_rss_mb").as_double();
    const double stream_rss = streaming_result->at("peak_rss_mb").as_double();
    if (stream_rss > 0.0) report.set("full_over_streaming_rss", full_rss / stream_rss);
    // Relative gate, meaningful on any hardware and under sanitizers (both
    // modes inflate together): if streaming's footprint creeps toward
    // full's, it has started retaining per-wave state it must not. Corrupt
    // cells are exempt: the corruption-anchored look-back legitimately
    // retains pulse times (the absolute streaming budget still gates), and
    // full recording's margin there is the iteration log, which shrinks to
    // noise on the --quick shape.
    if (corrupt.enabled) {
      std::printf("rss ratio: corrupt cell retains the anchored look-back under "
                  "streaming; relative gate skipped (absolute budget still applies)\n");
    } else if (stream_rss > 0.9 * full_rss) {
      std::fprintf(stderr,
                   "FAIL: streaming peak RSS %.1f MB is not materially below full-trace "
                   "recording's %.1f MB -- streaming mode is retaining trace state\n",
                   stream_rss, full_rss);
      ++failures;
    }
  }
  if (corrupt.enabled) {
    // Self-stabilization is the point of a corrupt scale run: every measured
    // cell must return under the Theorem 1.1 bound before the pulse budget
    // runs out, or the bench fails.
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].at("recovery").at("recovered").as_bool()) {
        std::fprintf(stderr, "FAIL: mode '%s' did not recover by wave %lld\n",
                     modes[i].c_str(),
                     static_cast<long long>(results[i].at("recovery").at("scan_hi").as_int()));
        ++failures;
      }
    }
  }
  if (corrupt.enabled && cells.size() > 1 && !no_fork && !quick) {
    // Fault-density sweep (Thm 1.2/1.3 riding on the Thm 1.6 story): run
    // the remaining cells under the first mode and report recovery time per
    // density. Cell 0 reuses the mode-table run. Skipped under --quick:
    // generator faults were resolved against the full-scale grid at parse
    // time, so the reduced shape cannot reuse the swept cells' fault lists.
    Table cell_table({"cell", "recovered wave", "waves to recover", "local skew",
                      "peak RSS MB", "wall s"});
    Json cell_rows = Json::array();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Json result = i == 0 ? results.front()
                                 : run_mode_forked(cells[i].config, cells[i].corrupt,
                                                   modes.front(), 1, "/tmp");
      const Json& rec = result.at("recovery");
      const bool recovered = rec.at("recovered").as_bool();
      if (!recovered) {
        std::fprintf(stderr, "FAIL: cell '%s' did not recover by wave %lld\n",
                     cells[i].label.c_str(),
                     static_cast<long long>(rec.at("scan_hi").as_int()));
        ++failures;
      }
      cell_table.row()
          .add(cells[i].label)
          .add(recovered ? std::to_string(rec.at("recovered_wave").as_int()) : "-")
          .add(recovered ? std::to_string(rec.at("recovery_waves").as_int()) : "-")
          .add(result.at("skew").at("local").as_double(), 3)
          .add(result.at("peak_rss_mb").as_double(), 1)
          .add(result.at("wall_seconds").as_double(), 2);
      Json row = Json::object();
      row.set("label", cells[i].label);
      row.set("result", result);
      cell_rows.push_back(std::move(row));
    }
    std::printf("\nfault-density sweep (%s recording):\n%s", modes.front().c_str(),
                cell_table.render().c_str());
    report.set("cells", std::move(cell_rows));
  }
  if (!shard_counts.empty()) {
    const std::string& mode = modes.front();
    const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    Table shard_table(
        {"shards", "peak RSS MB", "wall s", "events/s", "speedup", "local skew"});
    std::vector<Json> shard_results;
    for (const std::uint32_t shards : shard_counts) {
      shard_results.push_back(run_mode_forked(config, corrupt, mode, shards, "/tmp"));
    }
    double serial_wall = 0.0;
    for (std::size_t i = 0; i < shard_results.size(); ++i) {
      if (shard_counts[i] == 1) serial_wall = shard_results[i].at("wall_seconds").as_double();
    }
    if (serial_wall == 0.0 && !shard_results.empty()) {
      // No shards=1 entry: speedups are relative to the first listed count.
      serial_wall = shard_results.front().at("wall_seconds").as_double();
    }
    Json runs = Json::array();
    for (std::size_t i = 0; i < shard_results.size(); ++i) {
      Json result = shard_results[i];
      const double wall = result.at("wall_seconds").as_double();
      const double speedup = wall > 0.0 ? serial_wall / wall : 0.0;
      result.set("speedup_vs_serial", speedup);
      shard_table.row()
          .add(static_cast<std::uint64_t>(shard_counts[i]))
          .add(result.at("peak_rss_mb").as_double(), 1)
          .add(wall, 2)
          .add(result.at("events_per_sec").as_double(), 0)
          .add(speedup, 2)
          .add(result.at("skew").at("local").as_double(), 3);
      runs.push_back(std::move(result));
    }
    std::printf("\nshard sweep (%s recording, %u hardware threads):\n%s", mode.c_str(),
                hardware, shard_table.render().c_str());

    // Identity across counts is a hard gate, not a report field to eyeball:
    // a sharding bug that changes results must fail the bench run.
    bool shards_identical = true;
    for (std::size_t i = 1; i < shard_results.size(); ++i) {
      for (const char* key : {"max_intra", "max_inter", "local", "global", "pairs_checked"}) {
        if (shard_results[i].at("skew").at(key).dump() !=
            shard_results[0].at("skew").at(key).dump()) {
          std::fprintf(stderr, "FAIL: skew '%s' differs between %u and %u shards\n", key,
                       shard_counts[0], shard_counts[i]);
          shards_identical = false;
          ++failures;
        }
      }
      if (shard_results[i].at("logical_events").as_u64() !=
          shard_results[0].at("logical_events").as_u64()) {
        std::fprintf(stderr, "FAIL: logical event count differs between %u and %u shards\n",
                     shard_counts[0], shard_counts[i]);
        shards_identical = false;
        ++failures;
      }
    }

    const auto wall_of = [&](std::uint32_t shards) -> double {
      for (std::size_t i = 0; i < shard_counts.size(); ++i) {
        if (shard_counts[i] == shards) return shard_results[i].at("wall_seconds").as_double();
      }
      return 0.0;
    };
    // Measured k-process parallel headroom, keyed by k; filled lazily so a
    // gate-free sweep never pays for calibration runs.
    Json headrooms = Json::object();
    const auto headroom_for = [&](std::uint32_t k, double serial_wall) -> double {
      const std::string key = std::to_string(k);
      if (headrooms.contains(key)) return headrooms.at(key).as_double();
      const double makespan = concurrent_serial_makespan(config, corrupt, mode, k);
      const double headroom =
          makespan > 0.0 ? static_cast<double>(k) * serial_wall / makespan : 1.0;
      headrooms.set(key, headroom);
      return headroom;
    };
    if (assert_shard_floor) {
      const double one = wall_of(1);
      const double two = wall_of(2);
      if (one == 0.0 || two == 0.0) {
        std::fputs("FAIL: --assert-shard-floor needs both 1 and 2 in --shards\n", stderr);
        ++failures;
      } else if (const double headroom = headroom_for(2, one); headroom < 1.5) {
        std::printf("shard floor: host measures only %.2fx parallel headroom for 2 "
                    "workers (2 concurrent serial runs vs 1); wall gate skipped, "
                    "identity gates still enforced\n",
                    headroom);
      } else if (two > one * 1.10) {
        // 10% margin: the smoke shape is small enough for scheduler noise,
        // but a barrier-bound regression shows up far beyond that.
        std::fprintf(stderr,
                     "FAIL: 2 shards took %.2fs vs %.2fs serial on a host with %.2fx "
                     "measured headroom -- sharding made the run slower than the 10%% "
                     "noise margin allows\n",
                     two, one, headroom);
        ++failures;
      }
    }
    if (assert_shard_scaling) {
      const double one = wall_of(1);
      for (std::size_t i = 0; i < shard_counts.size(); ++i) {
        const std::uint32_t shards = shard_counts[i];
        if (shards <= 1 || one == 0.0) continue;
        if (shards > hardware) {
          // Honest hardware-aware tiering: a 2-core host cannot certify the
          // 8-shard floor, so record the measurement and gate nothing.
          std::printf("shard scaling: %u shards exceeds the %u hardware threads; "
                      "measured but not gated\n",
                      shards, hardware);
          continue;
        }
        const double headroom = headroom_for(shards, one);
        if (headroom < 1.5) {
          std::printf("shard scaling: host measures only %.2fx parallel headroom for "
                      "%u workers; measured but not gated\n",
                      headroom, shards);
          continue;
        }
        const double tier = shards >= 8 ? 3.0 : shards >= 4 ? 2.0 : 1.2;
        // The engine must capture at least 70% of what k fully independent
        // processes achieve on this host, up to the tier floor -- an
        // engine-quality statement that is valid on any hardware.
        const double floor = std::min(tier, 0.70 * headroom);
        const double speedup = one / shard_results[i].at("wall_seconds").as_double();
        if (speedup < floor) {
          std::fprintf(stderr,
                       "FAIL: %u shards achieved %.2fx, below the %.2fx floor "
                       "(tier %.1fx, measured headroom %.2fx)\n",
                       shards, speedup, floor, tier, headroom);
          ++failures;
        }
      }
    }

    Json sweep = Json::object();
    sweep.set("mode", mode);
    sweep.set("hardware_concurrency", static_cast<std::int64_t>(hardware));
    sweep.set("skew_identical_across_shards", shards_identical);
    if (!headrooms.as_object().empty()) sweep.set("parallel_headroom", std::move(headrooms));
    sweep.set("runs", std::move(runs));
    report.set("shard_sweep", std::move(sweep));
  }

  report.set("within_budget", failures == 0);

  const std::string out_path = flags.get_string("out", "");
  if (!out_path.empty() && out_path != "true") {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << report.dump(2) << "\n";
    if (!out.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) {
  try {
    return gtrix::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_scale: %s\n", e.what());
    return 1;
  }
}
