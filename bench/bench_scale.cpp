// bench_scale: the mega-grid memory/throughput trajectory.
//
// Runs a scale scenario's cell once per recording mode, each in a forked
// child process so peak RSS is attributable to that mode alone (a process
// high-water mark never goes down, so in-process sequencing would charge
// the first mode's peak to every later one). Reports peak RSS, wall time
// and events/sec per mode, asserts the streaming run stays under a
// committed RSS budget, and -- when both streaming and full run -- asserts
// the two modes' skew extrema are BIT-identical (the streaming accumulators
// are a different evaluation order of the same arithmetic, not an
// approximation; see docs/scaling.md).
//
//   bench_scale                              # scale-grid, streaming + full
//   bench_scale --scenario=scale-torus --modes=streaming
//   bench_scale --quick --assert-rss-mb=256  # CI smoke: reduced shape
//   bench_scale --out=BENCH_scale-grid.json
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "registry/recording.hpp"
#include "runner/experiment.hpp"
#include "scenario/registry.hpp"
#include "support/flags.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

/// Committed streaming-mode peak-RSS budgets, asserted by default at full
/// scale (docs/scaling.md explains the headroom: measured peaks are ~500 MB
/// for scale-grid and ~1.6 GB for scale-torus; full-trace recording of
/// scale-grid measures ~1.1 GB, clearly over its budget).
long default_budget_mb(const std::string& scenario) {
  if (scenario == "scale-grid") return 640;
  if (scenario == "scale-torus") return 2048;
  return 0;  // no default budget for other scenarios
}

struct ModeResult {
  std::string mode;
  double wall_seconds = 0.0;
  double peak_rss_mb = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t messages_delivered = 0;
  double events_per_sec = 0.0;
  SkewReport skew;
  std::uint64_t window_overflows = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t stream_bytes = 0;
};

double self_peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// Runs one cell under `mode` in THIS process and serializes the result.
Json run_mode(const ExperimentConfig& base_config, const std::string& mode) {
  ExperimentConfig config = base_config;
  config.recording_spec = recording_registry().canonicalize(ComponentSpec::of(mode));

  const auto started = std::chrono::steady_clock::now();
  World world(config);
  world.run_to_completion();
  const SkewReport skew = world.skew();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  const ExperimentCounters counters = world.counters();

  Json j = Json::object();
  j.set("mode", mode);
  j.set("wall_seconds", wall);
  j.set("peak_rss_mb", self_peak_rss_mb());
  j.set("events_executed", counters.events_executed);
  j.set("messages_delivered", counters.messages_delivered);
  j.set("events_per_sec",
        wall > 0.0 ? static_cast<double>(counters.events_executed) / wall : 0.0);
  Json s = Json::object();
  s.set("max_intra", skew.max_intra);
  s.set("max_inter", skew.max_inter);
  s.set("local", skew.local_skew);
  s.set("global", skew.global_skew);
  s.set("pairs_checked", skew.pairs_checked);
  s.set("dev_mean", skew.deviations.mean);
  s.set("dev_p99", skew.deviations.p99);
  j.set("skew", std::move(s));
  if (world.streaming() != nullptr) {
    j.set("window_overflows", world.streaming()->window_overflows());
    j.set("out_of_order", world.streaming()->out_of_order());
    j.set("stream_bytes", world.streaming()->memory_bytes());
  }
  return j;
}

/// Forks a child to run one mode; returns its result JSON. Process-level
/// isolation is what makes per-mode peak RSS meaningful.
Json run_mode_forked(const ExperimentConfig& config, const std::string& mode,
                     const std::string& scratch_dir) {
  const std::string path = scratch_dir + "/bench_scale_" + mode + "_" +
                           std::to_string(::getpid()) + ".json";
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    int code = 0;
    try {
      const Json result = run_mode(config, mode);
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << result.dump();
      if (!out.flush()) code = 3;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_scale[%s]: %s\n", mode.c_str(), e.what());
      code = 2;
    }
    std::_Exit(code);  // no destructors/atexit: the parent owns shared state
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    throw std::runtime_error("mode '" + mode + "' child failed");
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return Json::parse(buffer.str());
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream stream(s);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(int argc, char** argv) {
  Usage usage(argv[0] != nullptr ? argv[0] : "bench_scale",
              "Mega-grid scale benchmark: peak RSS and events/sec per recording mode.");
  usage.flag("--scenario=NAME", "scale scenario to run (default scale-grid)");
  usage.flag("--modes=LIST", "comma-separated recording modes (default streaming,full)");
  usage.flag("--quick", "reduced 96x96 shape for the CI smoke");
  usage.flag("--assert-rss-mb=N",
             "fail if the streaming run's peak RSS exceeds N MB (default: the "
             "committed per-scenario budget at full scale; off under --quick "
             "unless given explicitly)");
  usage.flag("--no-fork", "run in-process (single mode only; debugging)");
  usage.flag("--out=FILE", "write the JSON report to FILE");
  usage.flag("--help", "show this help");

  // The parser normalizes "--no-fork" to boolean "fork" = false.
  const Flags flags(argc, argv, {"quick", "fork", "help"});
  for (const std::string& name : flags.names()) {
    // "--no-fork" documents itself under that spelling but parses as the
    // boolean "fork"; accept the parsed name alongside the documented ones.
    if (name == "fork") continue;
    const auto known = usage.flag_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "error: unknown flag --%s (see --help)\n", name.c_str());
      return 2;
    }
  }
  if (flags.get_bool("help", false)) {
    std::fputs(usage.str().c_str(), stdout);
    return 0;
  }

  const std::string scenario_name = flags.get_string("scenario", "scale-grid");
  const bool quick = flags.get_bool("quick", false);
  const bool no_fork = !flags.get_bool("fork", true);
  const std::vector<std::string> modes =
      split_csv(flags.get_string("modes", quick ? "streaming" : "streaming,full"));
  if (modes.empty()) {
    std::fputs("error: --modes must name at least one recording mode\n", stderr);
    return 2;
  }
  if (no_fork && modes.size() > 1) {
    // Peak RSS is a process-lifetime high-water mark: a second in-process
    // mode would inherit the first's peak and corrupt both gates.
    std::fputs("error: --no-fork measures RSS in-process and supports exactly one mode "
               "(pass --modes=<one>)\n",
               stderr);
    return 2;
  }

  const Scenario scenario = builtin_scenario(scenario_name);
  std::vector<ScenarioCell> cells = scenario.cells();
  ExperimentConfig config = cells.at(0).config;
  if (quick) {
    // Same pipeline, CI-sized shape: the smoke asserts the RSS ceiling and
    // the streaming-vs-full identity without the multi-second mega run.
    config.columns = 96;
    config.layers = 96;
    config.pulses = 10;
  }

  long budget_mb = flags.get_int("assert-rss-mb", quick ? 0 : default_budget_mb(scenario_name));

  Json report = Json::object();
  report.set("bench", std::string("bench_scale"));
  report.set("scenario", scenario_name);
  report.set("quick", quick);
  Json shape = Json::object();
  shape.set("columns", config.columns);
  shape.set("layers", config.layers);
  shape.set("pulses", config.pulses);
  report.set("shape", std::move(shape));
  if (budget_mb > 0) report.set("rss_budget_mb", static_cast<std::int64_t>(budget_mb));

  Table table({"mode", "peak RSS MB", "wall s", "events/s", "local skew", "global skew"});
  std::vector<Json> results;
  for (const std::string& mode : modes) {
    const Json result = no_fork ? run_mode(config, mode) : run_mode_forked(config, mode, "/tmp");
    table.row()
        .add(mode)
        .add(result.at("peak_rss_mb").as_double(), 1)
        .add(result.at("wall_seconds").as_double(), 2)
        .add(result.at("events_per_sec").as_double(), 0)
        .add(result.at("skew").at("local").as_double(), 3)
        .add(result.at("skew").at("global").as_double(), 3);
    results.push_back(result);
  }
  const Json* streaming_result = nullptr;
  const Json* full_result = nullptr;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (modes[i] == "streaming") streaming_result = &results[i];
    if (modes[i] == "full") full_result = &results[i];
  }
  Json mode_results = Json::array();
  for (const Json& result : results) mode_results.push_back(result);
  report.set("modes", std::move(mode_results));
  std::printf("%s", table.render().c_str());

  int failures = 0;
  if (streaming_result != nullptr) {
    const std::uint64_t overflows = streaming_result->contains("window_overflows")
                                        ? streaming_result->at("window_overflows").as_u64()
                                        : 0;
    if (overflows != 0) {
      std::fprintf(stderr, "FAIL: streaming wave ring overflowed %llu times (extrema may "
                           "under-report; raise recording.window)\n",
                   static_cast<unsigned long long>(overflows));
      ++failures;
    }
    if (budget_mb > 0 && streaming_result->at("peak_rss_mb").as_double() >
                             static_cast<double>(budget_mb)) {
      std::fprintf(stderr, "FAIL: streaming peak RSS %.1f MB exceeds the %ld MB budget\n",
                   streaming_result->at("peak_rss_mb").as_double(), budget_mb);
      ++failures;
    }
  }
  bool identical = true;
  if (streaming_result != nullptr && full_result != nullptr) {
    // Bit-identity of the extrema: dump() is shortest-round-trip, so equal
    // strings mean equal doubles.
    for (const char* key : {"max_intra", "max_inter", "local", "global", "pairs_checked"}) {
      if (streaming_result->at("skew").at(key).dump() != full_result->at("skew").at(key).dump()) {
        std::fprintf(stderr, "FAIL: skew '%s' differs between streaming and full recording\n",
                     key);
        identical = false;
        ++failures;
      }
    }
  }
  if (streaming_result != nullptr && full_result != nullptr) {
    report.set("skew_identical", identical);
    const double full_rss = full_result->at("peak_rss_mb").as_double();
    const double stream_rss = streaming_result->at("peak_rss_mb").as_double();
    if (stream_rss > 0.0) report.set("full_over_streaming_rss", full_rss / stream_rss);
    // Relative gate, meaningful on any hardware and under sanitizers (both
    // modes inflate together): if streaming's footprint creeps toward
    // full's, it has started retaining per-wave state it must not.
    if (stream_rss > 0.9 * full_rss) {
      std::fprintf(stderr,
                   "FAIL: streaming peak RSS %.1f MB is not materially below full-trace "
                   "recording's %.1f MB -- streaming mode is retaining trace state\n",
                   stream_rss, full_rss);
      ++failures;
    }
  }
  report.set("within_budget", failures == 0);

  const std::string out_path = flags.get_string("out", "");
  if (!out_path.empty() && out_path != "true") {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << report.dump(2) << "\n";
    if (!out.flush()) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) {
  try {
    return gtrix::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_scale: %s\n", e.what());
    return 1;
  }
}
