// Experiment E2 (Figure 1): the baseline pathologies.
//
// Left pane of Fig. 1: naive TRIX under a column-split delay assignment --
// one side fast (d-u), the other slow (d) -- accumulates Theta(u D) local
// skew across layers. Right pane: HEX absorbs a preceding-layer crash by
// waiting for a same-layer copy, paying ~d. Gradient TRIX is run on the
// same scenarios to show both pathologies gone.
#include <cstdio>
#include <vector>

#include "baseline/hex.hpp"
#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 48 : 16));
  const std::uint32_t layers = static_cast<std::uint32_t>(
      flags.get_int("layers", large ? 96 : 32));
  const auto seed = flags.get_u64("seed", 1);

  // --- Fig 1 left: skew vs layer for TRIX / Gradient TRIX, split delays ---
  ExperimentConfig config;
  config.columns = columns;
  config.layers = layers;
  config.pulses = 16;
  config.seed = seed;
  config.delay_kind = DelayModelKind::kColumnSplit;
  config.delay_split_column = columns / 2;
  config.algorithm = Algorithm::kTrixNaive;
  const ExperimentResult trix = run_experiment(config);
  config.algorithm = Algorithm::kGradientFull;
  const ExperimentResult gradient = run_experiment(config);

  std::printf("== Figure 1 (left): local skew by layer, adversarial split delays ==\n");
  std::printf("   grid %u columns x %u layers, u = %.0f, kappa = %.1f\n\n", columns,
              layers, config.params.u, config.params.kappa());
  Table by_layer({"layer", "TRIX skew", "GradientTRIX skew", "u * layer (paper: Theta(uD))"});
  for (std::uint32_t l = 1; l < layers; l += std::max(1u, layers / 16)) {
    by_layer.row()
        .add(static_cast<std::uint64_t>(l))
        .add(trix.skew.intra_by_layer[l], 1)
        .add(gradient.skew.intra_by_layer[l], 1)
        .add(config.params.u * l, 1);
  }
  std::printf("%s\n", by_layer.render().c_str());

  std::vector<double> xs, ys;
  for (std::uint32_t l = 2; l < layers; ++l) {
    xs.push_back(l);
    ys.push_back(trix.skew.intra_by_layer[l]);
  }
  const LinearFit fit = fit_linear(xs, ys);
  std::printf("TRIX skew-vs-layer fit: %.2f + %.3f * layer (r2=%.3f); paper predicts "
              "slope ~u=%.0f at the boundary\n",
              fit.intercept, fit.slope, fit.r2, config.params.u);
  std::printf("GradientTRIX last-layer skew: %.1f (bound 4k(2+lgD) = %.1f)\n\n",
              gradient.skew.intra_by_layer.back(),
              config.params.thm11_bound(columns - 1));

  // --- Fig 1 right: HEX with a crash vs Gradient TRIX with a crash ---
  HexConfig hex;
  hex.columns = columns;
  hex.layers = layers;
  hex.pulses = 14;
  hex.seed = seed;
  const HexResult hex_clean = run_hex(hex);
  hex.crashes = {{columns / 2, layers / 3}};
  const HexResult hex_crash = run_hex(hex);

  ExperimentConfig gcfg;
  gcfg.columns = columns;
  gcfg.layers = layers;
  gcfg.pulses = 16;
  gcfg.seed = seed;
  const ExperimentResult grad_clean = run_experiment(gcfg);
  gcfg.faults = {{columns / 2, layers / 3, FaultSpec::crash()}};
  const ExperimentResult grad_crash = run_experiment(gcfg);

  std::printf("== Figure 1 (right): cost of one preceding-layer crash ==\n");
  Table crash_table({"method", "fault-free skew", "with crash", "crash cost",
                     "paper prediction"});
  crash_table.row()
      .add("HEX")
      .add(hex_clean.max_intra, 1)
      .add(hex_crash.max_intra, 1)
      .add(hex_crash.max_intra - hex_clean.max_intra, 1)
      .add("~d = 1000 per fault");
  crash_table.row()
      .add("GradientTRIX")
      .add(grad_clean.skew.max_intra, 1)
      .add(grad_crash.skew.max_intra, 1)
      .add(grad_crash.skew.max_intra - grad_clean.skew.max_intra, 1)
      .add("O(kappa) = O(21)");
  std::printf("%s", crash_table.render().c_str());
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
