// Experiment E7 (Corollary 1.5): slow dynamics.
//
// The corollary extends Theorem 1.4 to (i) a constant number of faulty
// nodes changing behaviour per pulse, (ii) link delays varying by up to
// n^-1/2 u log D per pulse, (iii) clock speeds varying similarly. This
// harness turns each knob separately and together and reports the skew
// increase over the static baseline.
#include <cmath>
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

struct Outcome {
  double local = 0.0;
  double inter = 0.0;
};

Outcome run_scenario(std::uint32_t columns, std::uint64_t seed, bool jitter_fault,
                     double delay_amplitude, bool vary_clocks) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = columns;
  config.pulses = 24;
  config.seed = seed;
  if (jitter_fault) {
    config.faults = {{columns / 2, columns / 2, FaultSpec::jitter(80.0)}};
  }
  if (vary_clocks) config.clock_model = ClockModelKind::kAlternating;
  World world(config);
  if (delay_amplitude > 0.0) {
    // Sinusoidal per-edge delay modulation, period ~30 pulses: "slow
    // relative to the speed of the system".
    const double period = 30.0 * config.params.lambda;
    world.network().set_delay_modulation(
        [delay_amplitude, period](EdgeId e, SimTime t) {
          const double phase = 2.0 * 3.14159265358979 * t / period;
          return 0.5 * delay_amplitude * std::sin(phase + 0.7 * e);
        });
  }
  world.run_to_completion();
  const SkewReport report = world.skew();
  return Outcome{report.max_intra, report.max_inter};
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 32 : 16));
  const auto seed = flags.get_u64("seed", 1);

  const Params params = Params::with(1000.0, 10.0, 1.0005);
  const double n = static_cast<double>(columns) * columns;
  // Corollary 1.5 knob sizes: n^-1/2 u log D per pulse; our modulation is
  // bounded overall by a few of those.
  const double delta = params.u * std::log2(static_cast<double>(columns)) / std::sqrt(n);

  std::printf("== Corollary 1.5: slowly changing delays / clocks / fault behaviour ==\n");
  std::printf("   grid %ux%u, per-pulse variation budget n^-1/2 u lgD = %.3f, "
              "modulation amplitude %.2f\n\n",
              columns, columns, delta, 4.0 * delta);

  const Outcome base = run_scenario(columns, seed, false, 0.0, false);
  Table table({"scenario", "L intra", "L inter", "delta vs static"});
  table.row().add("static (baseline)").add(base.local, 1).add(base.inter, 1).add(0.0, 1);
  const Outcome drift = run_scenario(columns, seed, false, 4.0 * delta, false);
  table.row().add("(ii) delay drift").add(drift.local, 1).add(drift.inter, 1)
      .add(drift.local - base.local, 1);
  const Outcome clocks = run_scenario(columns, seed, false, 0.0, true);
  table.row().add("(iii) clock-speed spread").add(clocks.local, 1).add(clocks.inter, 1)
      .add(clocks.local - base.local, 1);
  const Outcome jitter = run_scenario(columns, seed, true, 0.0, false);
  table.row().add("(i) behaviour-changing fault").add(jitter.local, 1).add(jitter.inter, 1)
      .add(jitter.local - base.local, 1);
  const Outcome all = run_scenario(columns, seed, true, 4.0 * delta, true);
  table.row().add("(i)+(ii)+(iii)").add(all.local, 1).add(all.inter, 1)
      .add(all.local - base.local, 1);
  std::printf("%s\n", table.render().c_str());

  const double bound = params.thm11_bound(columns - 1);
  std::printf("shape check: every scenario stays O(kappa log D) -- reference bound %.1f;\n"
              "the deltas are of the order of the injected variation, not amplified.\n",
              bound);
  return all.local <= 3.0 * bound ? 0 : 1;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
