// Experiment E5 (Theorem 1.3): uniformly random faults.
//
// With nodes failing independently with probability p in o(n^-1/2), the
// local skew stays O(kappa log D) w.h.p. -- the exponential compounding of
// Theorem 1.2 never materializes because faults are sparse enough for the
// self-stabilizing gradient machinery to flatten each disturbance before
// the next one lands nearby. Sweep p (parameterized as p * sqrt(n)) over
// many seeds and report skew quantiles.
//
// All (p, seed) cells are independent experiments; the whole matrix is
// dispatched in one SweepRunner fan-out and aggregated per row afterwards.
#include <cmath>
#include <cstdio>
#include <vector>

#include "runner/experiment.hpp"
#include "runner/sweep.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  const std::uint32_t columns = static_cast<std::uint32_t>(
      flags.get_int("columns", large ? 32 : 16));
  const std::uint32_t layers = columns;
  const int seeds = static_cast<int>(flags.get_int("seeds", large ? 20 : 8));
  const auto threads = static_cast<unsigned>(flags.get_int("threads", 0));

  const Grid grid(BaseGraph::line_replicated(columns), layers);
  const double n = static_cast<double>(grid.node_count());
  const Params params = Params::with(1000.0, 10.0, 1.0005);
  const double bound = params.thm11_bound(columns - 1);

  const SweepRunner runner(SweepOptions{threads});
  std::printf("== Theorem 1.3: random i.i.d. faults, skew vs p ==\n");
  std::printf("   grid %ux%u (n=%u), %d seeds per row; mixed crash/offset/split faults\n"
              "   bound: O(kappa log D); reference 4k(2+lgD) = %.1f; %u sweep threads\n\n",
              columns, layers, grid.node_count(), seeds, bound, runner.thread_count());

  const std::vector<double> scaled_ps = {0.0, 0.125, 0.25, 0.5, 1.0};

  // Build the full (p, seed) config matrix up front; each config carries its
  // own fault plan drawn from a seed-derived RNG, so cells stay independent.
  std::vector<ExperimentConfig> configs;
  std::vector<std::size_t> fault_count(scaled_ps.size() * static_cast<std::size_t>(seeds));
  for (std::size_t row = 0; row < scaled_ps.size(); ++row) {
    const double p = scaled_ps[row] / std::sqrt(n);
    for (int s = 0; s < seeds; ++s) {
      ExperimentConfig config;
      config.columns = columns;
      config.layers = layers;
      config.pulses = 18;
      config.seed = 1000 + static_cast<std::uint64_t>(s);
      Rng rng(config.seed * 77 + 13);
      PlacementOptions options;
      options.probability = p;
      // Alternate the fault flavour per placement for variety.
      auto faults = sample_iid_faults(grid, options, FaultSpec::crash(), rng);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (i % 3 == 1) faults[i].spec = FaultSpec::static_offset(150.0);
        if (i % 3 == 2) faults[i].spec = FaultSpec::split(100.0);
      }
      fault_count[configs.size()] = faults.size();
      config.faults = std::move(faults);
      configs.push_back(std::move(config));
    }
  }

  const std::vector<ExperimentResult> results = runner.run(configs);

  Table table({"p*sqrt(n)", "p", "mean #faults", "skew mean", "skew p95", "skew max",
               "max/bound"});
  for (std::size_t row = 0; row < scaled_ps.size(); ++row) {
    const double p = scaled_ps[row] / std::sqrt(n);
    Summary skews;
    Summary fault_counts;
    std::vector<double> all;
    for (int s = 0; s < seeds; ++s) {
      const std::size_t cell = row * static_cast<std::size_t>(seeds) +
                               static_cast<std::size_t>(s);
      skews.add(results[cell].skew.max_intra);
      all.push_back(results[cell].skew.max_intra);
      fault_counts.add(static_cast<double>(fault_count[cell]));
    }
    table.row()
        .add(scaled_ps[row], 3)
        .add(p, 6)
        .add(fault_counts.mean(), 1)
        .add(skews.mean(), 1)
        .add(quantile(all, 0.95), 1)
        .add(skews.max(), 1)
        .add(skews.max() / bound, 3);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: skew stays O(kappa log D) across the p range (max/bound < 1\n"
              "for p in o(n^-1/2)); no blow-up as faults appear, unlike the adversarial\n"
              "clustered placement of Theorem 1.2.\n");
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
