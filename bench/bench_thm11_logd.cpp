// Experiment E3 (Theorem 1.1): fault-free local skew vs diameter D.
//
// The paper proves L_l <= 4 kappa (2 + log2 D) without faults. This harness
// sweeps D, prints measured max local skew against the bound, and fits the
// growth to a + b log2 D -- the shape claim is logarithmic scaling.
#include <cstdio>
#include <vector>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  std::vector<std::uint32_t> diameters = {4, 8, 16, 32, 64};
  if (large) diameters = {4, 8, 16, 32, 64, 128, 256};
  const auto pulses = flags.get_int("pulses", 20);
  const auto seed = flags.get_u64("seed", 1);

  std::printf("== Theorem 1.1: fault-free local skew is O(kappa log D) ==\n");
  Table table({"D", "layers", "kappa", "L_intra", "L_inter", "global",
               "bound 4k(2+lgD)", "intra/kappa"});
  std::vector<double> xs, ys;
  for (const std::uint32_t d : diameters) {
    ExperimentConfig config;
    config.columns = d + 1;  // line diameter = columns - 1
    config.layers = d + 1;   // roughly square grid, as in the paper
    config.params = Params::derive_for(d, 10.0, 1.0005, 1.1);
    config.pulses = pulses;
    config.seed = seed;
    const ExperimentResult result = run_experiment(config);
    const double kappa = config.params.kappa();
    table.row()
        .add(static_cast<std::uint64_t>(d))
        .add(static_cast<std::uint64_t>(config.layers))
        .add(kappa, 2)
        .add(result.skew.max_intra, 2)
        .add(result.skew.max_inter, 2)
        .add(result.skew.global_skew, 2)
        .add(result.thm11_bound, 2)
        .add(result.skew.max_intra / kappa, 3);
    xs.push_back(static_cast<double>(d));
    ys.push_back(result.skew.max_intra / kappa);
  }
  std::printf("%s", table.render().c_str());
  const LinearFit fit = fit_log2(xs, ys);
  std::printf("\nfit: L/kappa ~= %.3f + %.3f * log2(D)   (r2 = %.3f)\n", fit.intercept,
              fit.slope, fit.r2);
  std::printf("shape check: skew in kappa units grows (sub)logarithmically; the paper's\n"
              "bound has slope 4 in these units, measured slope should be well below.\n");
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
