// Experiment E1 (Table 1): method comparison.
//
// The paper's Table 1 compares HEX, TRIX and Gradient TRIX on skew and
// resilience. This harness measures local and global skew for each method
// on the same grid sizes, fault-free and with one crash fault, and prints
// rows in the table's spirit. The shape claims to verify:
//  * Gradient TRIX's local skew ~ kappa log D, flat in D compared to TRIX,
//  * naive TRIX's skew grows with D under adversarial (split) delays,
//  * HEX pays ~d after a crash; Gradient TRIX pays O(kappa).
#include <cstdio>
#include <functional>
#include <vector>

#include "baseline/hex.hpp"
#include "baseline/lynch_welch.hpp"
#include "gcs/gcs.hpp"
#include "runner/experiment.hpp"
#include "runner/sweep.hpp"
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

struct Row {
  std::string method;
  std::string scenario;
  std::uint32_t diameter;
  double local = 0.0;
  double global = 0.0;
  std::string paper_bound;
};

Row run_gradient(std::uint32_t columns, bool crash, DelayModelKind delays,
                 std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = columns;
  config.pulses = 16;
  config.seed = seed;
  config.delay_kind = delays;
  config.delay_split_column = columns / 2;
  if (crash) config.faults = {{columns / 2, columns / 3, FaultSpec::crash()}};
  const ExperimentResult result = run_experiment(config);
  Row row;
  row.method = "GradientTRIX";
  row.diameter = result.diameter;
  row.local = result.skew.max_intra;
  row.global = result.skew.global_skew;
  row.paper_bound = "O(u logD) local, O(uD) global";
  return row;
}

Row run_trix(std::uint32_t columns, bool crash, DelayModelKind delays,
             std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = columns;
  config.pulses = 16;
  config.seed = seed;
  config.algorithm = Algorithm::kTrixNaive;
  config.delay_kind = delays;
  config.delay_split_column = columns / 2;
  if (crash) config.faults = {{columns / 2, columns / 3, FaultSpec::crash()}};
  const ExperimentResult result = run_experiment(config);
  Row row;
  row.method = "TRIX";
  row.diameter = result.diameter;
  row.local = result.skew.max_intra;
  row.global = result.skew.global_skew;
  row.paper_bound = "O(uD) local, O(uD^2) global";
  return row;
}

Row run_lw_row(std::uint64_t seed, bool faults) {
  // Complete graph reference point: D = 1, tolerates f < n/3 Byzantine.
  LynchWelchConfig config;
  config.n = 16;
  config.f = 5;
  config.byzantine = faults ? 5 : 0;
  config.rounds = 24;
  config.seed = seed;
  const LynchWelchResult result = run_lynch_welch(config);
  Row row;
  row.method = "LW (complete)";
  row.diameter = 1;
  row.local = result.max_skew_after_convergence;
  row.global = result.max_skew_after_convergence;
  row.paper_bound = "O(1); < n/3 Byzantine";
  return row;
}

Row run_gcs_row(std::uint32_t columns, bool crash, std::uint64_t seed) {
  GcsConfig config;
  config.columns = columns;
  config.seed = seed;
  if (crash) config.crashes = {static_cast<BaseNodeId>(columns / 2)};
  const GcsResult result = run_gcs(config);
  Row row;
  row.method = "GCS";
  row.diameter = columns - 1;
  row.local = result.local_skew;
  row.global = result.global_skew;
  row.paper_bound = "O(u logD) local, O(uD) global; crashes only";
  return row;
}

Row run_hex_row(std::uint32_t columns, bool crash, std::uint64_t seed) {
  HexConfig config;
  config.columns = columns;
  config.layers = columns;
  config.pulses = 14;
  config.seed = seed;
  if (crash) config.crashes = {{columns / 2, columns / 3}};
  const HexResult result = run_hex(config);
  Row row;
  row.method = "HEX";
  row.diameter = columns - 1;
  row.local = result.max_intra;
  row.global = 0.0;  // HEX harness tracks local skew only
  row.paper_bound = "d + O(u^2 D/d) local (+d per fault)";
  return row;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  std::vector<std::uint32_t> sizes = {8, 16, 32};
  if (large) sizes = {8, 16, 32, 64, 128};
  const auto seed = flags.get_u64("seed", 1);
  const auto threads = static_cast<unsigned>(flags.get_int("threads", 0));

  std::printf("== Table 1: method comparison (measured skews, same substrate) ==\n");
  std::printf("   delay model: adversarial column split (worst case for TRIX);\n");
  std::printf("   'crash' adds one crash fault mid-grid. Time unit: d = 1000.\n\n");

  // Every row is an independent simulation (each harness builds its own
  // Simulator), so the whole table is computed as one parallel fan-out and
  // rendered in input order afterwards.
  struct Cell {
    std::string scenario;
    std::function<Row()> task;
    Row row;
  };
  std::vector<Cell> cells;
  auto plan = [&cells](std::string scenario, std::function<Row()> task) {
    cells.push_back(Cell{std::move(scenario), std::move(task), Row{}});
  };
  plan("fault-free", [seed] { return run_lw_row(seed, false); });
  plan("5/16 Byzantine", [seed] { return run_lw_row(seed, true); });
  // The shape checks below reuse table cells instead of re-simulating them;
  // remember the relevant indices while planning.
  std::size_t idx_trix_small = 0, idx_trix_big = 0, idx_grad_small = 0, idx_grad_big = 0;
  std::size_t idx_hex16_crash = cells.size();  // sentinel: not planned yet
  for (const std::uint32_t columns : sizes) {
    for (const bool crash : {false, true}) {
      const char* scenario = crash ? "1 crash" : "fault-free";
      plan(scenario, [columns, crash, seed] { return run_gcs_row(columns, crash, seed); });
      plan(scenario, [columns, crash, seed] { return run_hex_row(columns, crash, seed); });
      if (crash && columns == 16) idx_hex16_crash = cells.size() - 1;
      plan(scenario, [columns, crash, seed] {
        return run_trix(columns, crash, DelayModelKind::kColumnSplit, seed);
      });
      if (!crash && columns == sizes.front()) idx_trix_small = cells.size() - 1;
      if (!crash && columns == sizes.back()) idx_trix_big = cells.size() - 1;
      plan(scenario, [columns, crash, seed] {
        return run_gradient(columns, crash, DelayModelKind::kColumnSplit, seed);
      });
      if (!crash && columns == sizes.front()) idx_grad_small = cells.size() - 1;
      if (!crash && columns == sizes.back()) idx_grad_big = cells.size() - 1;
    }
  }
  // Cells that only the shape checks need ride along in the same fan-out.
  const std::size_t shape_base = cells.size();
  GTRIX_CHECK_MSG(idx_hex16_crash < shape_base, "size list must include 16");
  const std::size_t idx_grad16_random = cells.size();
  plan("shape", [seed] {
    return run_gradient(16, true, DelayModelKind::kUniformRandom, seed);
  });

  parallel_for_index(cells.size(), threads,
                     [&](std::size_t i) { cells[i].row = cells[i].task(); });

  Table table({"method", "scenario", "D", "local skew", "global skew", "paper bound"});
  for (std::size_t i = 0; i < shape_base; ++i) {
    const Cell& cell = cells[i];
    table.row().add(cell.row.method).add(cell.scenario);
    table.add(static_cast<std::uint64_t>(cell.row.diameter));
    table.add(cell.row.local, 1);
    if (cell.row.method == "HEX") {
      table.add("-");
    } else {
      table.add(cell.row.global, 1);
    }
    table.add(cell.row.paper_bound);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("shape checks (paper Table 1):\n");
  const Row& trix_small = cells[idx_trix_small].row;
  const Row& trix_big = cells[idx_trix_big].row;
  const Row& grad_small = cells[idx_grad_small].row;
  const Row& grad_big = cells[idx_grad_big].row;
  std::printf("  TRIX local skew growth  D=%u -> D=%u : %.1f -> %.1f (x%.2f; linear in D)\n",
              trix_small.diameter, trix_big.diameter, trix_small.local, trix_big.local,
              trix_big.local / trix_small.local);
  std::printf("  GTRIX local skew growth D=%u -> D=%u : %.1f -> %.1f (x%.2f; ~log D)\n",
              grad_small.diameter, grad_big.diameter, grad_small.local, grad_big.local,
              grad_big.local / grad_small.local);
  const Row& hex_crash = cells[idx_hex16_crash].row;
  const Row& grad_crash = cells[idx_grad16_random].row;
  std::printf("  crash cost at D=15: HEX %.1f (~d=1000) vs GradientTRIX %.1f (~kappa)\n",
              hex_crash.local, grad_crash.local);
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
