// Experiment E1 (Table 1): method comparison.
//
// The paper's Table 1 compares HEX, TRIX and Gradient TRIX on skew and
// resilience. This harness measures local and global skew for each method
// on the same grid sizes, fault-free and with one crash fault, and prints
// rows in the table's spirit. The shape claims to verify:
//  * Gradient TRIX's local skew ~ kappa log D, flat in D compared to TRIX,
//  * naive TRIX's skew grows with D under adversarial (split) delays,
//  * HEX pays ~d after a crash; Gradient TRIX pays O(kappa).
#include <cstdio>
#include <vector>

#include "baseline/hex.hpp"
#include "baseline/lynch_welch.hpp"
#include "gcs/gcs.hpp"
#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

struct Row {
  std::string method;
  std::string scenario;
  std::uint32_t diameter;
  double local = 0.0;
  double global = 0.0;
  std::string paper_bound;
};

Row run_gradient(std::uint32_t columns, bool crash, DelayModelKind delays,
                 std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = columns;
  config.pulses = 16;
  config.seed = seed;
  config.delay_kind = delays;
  config.delay_split_column = columns / 2;
  if (crash) config.faults = {{columns / 2, columns / 3, FaultSpec::crash()}};
  const ExperimentResult result = run_experiment(config);
  Row row;
  row.method = "GradientTRIX";
  row.diameter = result.diameter;
  row.local = result.skew.max_intra;
  row.global = result.skew.global_skew;
  row.paper_bound = "O(u logD) local, O(uD) global";
  return row;
}

Row run_trix(std::uint32_t columns, bool crash, DelayModelKind delays,
             std::uint64_t seed) {
  ExperimentConfig config;
  config.columns = columns;
  config.layers = columns;
  config.pulses = 16;
  config.seed = seed;
  config.algorithm = Algorithm::kTrixNaive;
  config.delay_kind = delays;
  config.delay_split_column = columns / 2;
  if (crash) config.faults = {{columns / 2, columns / 3, FaultSpec::crash()}};
  const ExperimentResult result = run_experiment(config);
  Row row;
  row.method = "TRIX";
  row.diameter = result.diameter;
  row.local = result.skew.max_intra;
  row.global = result.skew.global_skew;
  row.paper_bound = "O(uD) local, O(uD^2) global";
  return row;
}

Row run_lw_row(std::uint64_t seed, bool faults) {
  // Complete graph reference point: D = 1, tolerates f < n/3 Byzantine.
  LynchWelchConfig config;
  config.n = 16;
  config.f = 5;
  config.byzantine = faults ? 5 : 0;
  config.rounds = 24;
  config.seed = seed;
  const LynchWelchResult result = run_lynch_welch(config);
  Row row;
  row.method = "LW (complete)";
  row.diameter = 1;
  row.local = result.max_skew_after_convergence;
  row.global = result.max_skew_after_convergence;
  row.paper_bound = "O(1); < n/3 Byzantine";
  return row;
}

Row run_gcs_row(std::uint32_t columns, bool crash, std::uint64_t seed) {
  GcsConfig config;
  config.columns = columns;
  config.seed = seed;
  if (crash) config.crashes = {static_cast<BaseNodeId>(columns / 2)};
  const GcsResult result = run_gcs(config);
  Row row;
  row.method = "GCS";
  row.diameter = columns - 1;
  row.local = result.local_skew;
  row.global = result.global_skew;
  row.paper_bound = "O(u logD) local, O(uD) global; crashes only";
  return row;
}

Row run_hex_row(std::uint32_t columns, bool crash, std::uint64_t seed) {
  HexConfig config;
  config.columns = columns;
  config.layers = columns;
  config.pulses = 14;
  config.seed = seed;
  if (crash) config.crashes = {{columns / 2, columns / 3}};
  const HexResult result = run_hex(config);
  Row row;
  row.method = "HEX";
  row.diameter = columns - 1;
  row.local = result.max_intra;
  row.global = 0.0;  // HEX harness tracks local skew only
  row.paper_bound = "d + O(u^2 D/d) local (+d per fault)";
  return row;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool large = Flags::bench_scale() == "large";
  std::vector<std::uint32_t> sizes = {8, 16, 32};
  if (large) sizes = {8, 16, 32, 64, 128};
  const auto seed = flags.get_u64("seed", 1);

  std::printf("== Table 1: method comparison (measured skews, same substrate) ==\n");
  std::printf("   delay model: adversarial column split (worst case for TRIX);\n");
  std::printf("   'crash' adds one crash fault mid-grid. Time unit: d = 1000.\n\n");

  Table table({"method", "scenario", "D", "local skew", "global skew", "paper bound"});
  // Complete-graph reference rows (diameter 1; no grid scenario applies).
  const Row lw_clean = run_lw_row(seed, false);
  table.row().add(lw_clean.method).add("fault-free").add(std::uint64_t{1});
  table.add(lw_clean.local, 1).add(lw_clean.global, 1).add(lw_clean.paper_bound);
  const Row lw_byz = run_lw_row(seed, true);
  table.row().add(lw_byz.method).add("5/16 Byzantine").add(std::uint64_t{1});
  table.add(lw_byz.local, 1).add(lw_byz.global, 1).add(lw_byz.paper_bound);
  for (const std::uint32_t columns : sizes) {
    for (const bool crash : {false, true}) {
      const char* scenario = crash ? "1 crash" : "fault-free";
      const Row gcs = run_gcs_row(columns, crash, seed);
      table.row().add(gcs.method).add(scenario).add(static_cast<std::uint64_t>(gcs.diameter));
      table.add(gcs.local, 1).add(gcs.global, 1).add(gcs.paper_bound);
      const Row hex = run_hex_row(columns, crash, seed);
      table.row().add(hex.method).add(scenario).add(static_cast<std::uint64_t>(hex.diameter));
      table.add(hex.local, 1).add("-").add(hex.paper_bound);
      const Row trix = run_trix(columns, crash, DelayModelKind::kColumnSplit, seed);
      table.row().add(trix.method).add(scenario).add(static_cast<std::uint64_t>(trix.diameter));
      table.add(trix.local, 1).add(trix.global, 1).add(trix.paper_bound);
      const Row grad = run_gradient(columns, crash, DelayModelKind::kColumnSplit, seed);
      table.row().add(grad.method).add(scenario).add(static_cast<std::uint64_t>(grad.diameter));
      table.add(grad.local, 1).add(grad.global, 1).add(grad.paper_bound);
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("shape checks (paper Table 1):\n");
  const Row trix_small = run_trix(sizes.front(), false, DelayModelKind::kColumnSplit, seed);
  const Row trix_big = run_trix(sizes.back(), false, DelayModelKind::kColumnSplit, seed);
  const Row grad_small = run_gradient(sizes.front(), false, DelayModelKind::kColumnSplit, seed);
  const Row grad_big = run_gradient(sizes.back(), false, DelayModelKind::kColumnSplit, seed);
  std::printf("  TRIX local skew growth  D=%u -> D=%u : %.1f -> %.1f (x%.2f; linear in D)\n",
              trix_small.diameter, trix_big.diameter, trix_small.local, trix_big.local,
              trix_big.local / trix_small.local);
  std::printf("  GTRIX local skew growth D=%u -> D=%u : %.1f -> %.1f (x%.2f; ~log D)\n",
              grad_small.diameter, grad_big.diameter, grad_small.local, grad_big.local,
              grad_big.local / grad_small.local);
  const Row hex_crash = run_hex_row(16, true, seed);
  const Row grad_crash = run_gradient(16, true, DelayModelKind::kUniformRandom, seed);
  std::printf("  crash cost at D=15: HEX %.1f (~d=1000) vs GradientTRIX %.1f (~kappa)\n",
              hex_crash.local, grad_crash.local);
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) { return gtrix::run(argc, argv); }
