// Experiment E12: engine microbenchmarks (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/correction.hpp"
#include "runner/experiment.hpp"
#include "sim/event_queue.hpp"
#include "support/rng.hpp"

namespace gtrix {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    EventQueue q;
    std::uint64_t sink = 0;
    for (double t : times) q.schedule(t, [&sink](SimTime) { ++sink; });
    while (q.run_next()) {
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_ComputeCorrection(benchmark::State& state) {
  const Params params = Params::with(1000.0, 10.0, 1.0005);
  Rng rng(2);
  std::vector<std::array<double, 3>> inputs(256);
  for (auto& in : inputs) {
    const double own = rng.uniform(0.0, 100.0);
    const double a = rng.uniform(-200.0, 200.0);
    const double b = rng.uniform(-200.0, 200.0);
    in = {own, own + std::min(a, b), own + std::max(a, b)};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& in = inputs[i++ % inputs.size()];
    benchmark::DoNotOptimize(compute_correction(in[0], in[1], in[2], params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ComputeCorrection);

void BM_FullGridPulse(benchmark::State& state) {
  // Cost of simulating one full grid wave (per-pulse amortized).
  const auto columns = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    ExperimentConfig config;
    config.columns = columns;
    config.layers = columns;
    config.pulses = 10;
    config.seed = 3;
    World world(config);
    world.run_to_completion();
    benchmark::DoNotOptimize(world.counters().iterations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_FullGridPulse)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gtrix

BENCHMARK_MAIN();
