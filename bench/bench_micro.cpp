// Experiment E12: engine microbenchmarks (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/correction.hpp"
#include "runner/experiment.hpp"
#include "sim/event_queue.hpp"
#include "support/rng.hpp"

namespace gtrix {
namespace {

/// Counting target for the engine microbenchmarks.
struct CountingTarget final : TimerTarget {
  std::uint64_t fired = 0;
  void on_timer(const Event& /*event*/) override { ++fired; }
};

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    EventQueue q;
    CountingTarget target;
    for (double t : times) q.schedule(t, &target, 0);
    while (q.run_next()) {
    }
    benchmark::DoNotOptimize(target.fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

/// Steady-state schedule+fire throughput (events/sec): a fixed window of
/// pending events slides forward, so every schedule reuses a recycled slot
/// and performs no allocation. This is the engine's hot path in grid runs.
void BM_EventEngineScheduleFire(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  EventQueue q;
  CountingTarget target;
  double t = 0.0;
  for (std::size_t i = 0; i < window; ++i) q.schedule(t += 1.0, &target, 0);
  for (auto _ : state) {
    q.run_next();              // fire the oldest event...
    q.schedule(t += 1.0, &target, 0);  // ...and refill the window
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["slot_capacity"] =
      static_cast<double>(q.slot_capacity());  // must equal the window size
}
BENCHMARK(BM_EventEngineScheduleFire)->Arg(16)->Arg(1024)->Arg(65536);

/// Schedule+cancel throughput: every scheduled event is cancelled before it
/// can fire. Slots must be recycled immediately (O(pending) memory), so this
/// also measures the freelist turnaround.
void BM_EventEngineScheduleCancel(benchmark::State& state) {
  EventQueue q;
  CountingTarget target;
  double t = 0.0;
  for (auto _ : state) {
    const TimerHandle h = q.schedule(t += 1.0, &target, 0);
    benchmark::DoNotOptimize(q.cancel(h));
    benchmark::DoNotOptimize(q.empty());  // skims the lazily-deleted entry
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["slot_capacity"] = static_cast<double>(q.slot_capacity());
}
BENCHMARK(BM_EventEngineScheduleCancel);

void BM_ComputeCorrection(benchmark::State& state) {
  const Params params = Params::with(1000.0, 10.0, 1.0005);
  Rng rng(2);
  std::vector<std::array<double, 3>> inputs(256);
  for (auto& in : inputs) {
    const double own = rng.uniform(0.0, 100.0);
    const double a = rng.uniform(-200.0, 200.0);
    const double b = rng.uniform(-200.0, 200.0);
    in = {own, own + std::min(a, b), own + std::max(a, b)};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& in = inputs[i++ % inputs.size()];
    benchmark::DoNotOptimize(compute_correction(in[0], in[1], in[2], params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ComputeCorrection);

void BM_FullGridPulse(benchmark::State& state) {
  // Cost of simulating one full grid wave (per-pulse amortized).
  const auto columns = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    ExperimentConfig config;
    config.columns = columns;
    config.layers = columns;
    config.pulses = 10;
    config.seed = 3;
    World world(config);
    world.run_to_completion();
    benchmark::DoNotOptimize(world.counters().iterations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_FullGridPulse)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gtrix

BENCHMARK_MAIN();
