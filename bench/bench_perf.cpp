// Engine performance bench: the committed perf trajectory (BENCH_perf.json)
// and the behaviour-preservation proof for the hot-path refactor.
//
// Every scenario runs twice per repeat -- optimized engine (calendar queue
// + batched broadcast, the defaults) vs reference engine (binary heap,
// unbatched, the pre-refactor behaviour). Per-cell skew outputs must be
// bit-identical between the two; throughput is reported as logical
// events/sec (invariant under broadcast batching, see runner/perf.hpp) and
// the headline number is the optimized:reference speedup.
//
// Modes:
//   (default)  timing on the timing set (quickstart-grid, torus-smoke,
//              table1-comparison, thm11-logd, thm16-stabilization) with
//              --repeats, identity check on ALL built-in scenarios; prints
//              the BENCH_perf.json document.
//   --quick    CI smoke: timing on quickstart-grid + table1-comparison with
//              2 repeats, identity additionally on torus-smoke.
//   --baseline=FILE  regression gate: compares the measured table1-comparison
//              speedup against the committed baseline's and fails (exit 1)
//              if it dropped by more than --max-regression (default 0.25).
//              The gate is on the engine-relative speedup, not absolute
//              events/sec, so it is meaningful on any hardware.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/perf.hpp"
#include "scenario/registry.hpp"
#include "support/flags.hpp"

namespace gtrix {
namespace {

// The regression gate anchors on table1-comparison: a ~0.5 s workload with
// the largest committed speedup (batching + column-split delays), far less
// noise-prone than gating on the ~6 ms quickstart-grid cells.
constexpr const char* kGateScenario = "table1-comparison";

void write_file(const std::filesystem::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << contents;
  if (!out.flush()) throw std::runtime_error("short write to " + path.string());
}

double baseline_speedup(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read baseline " + path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const Json doc = Json::parse(text);
  for (const Json& scenario : doc.at("scenarios").as_array()) {
    if (scenario.at("scenario").as_string() == kGateScenario) {
      return scenario.at("speedup").as_double();
    }
  }
  throw std::runtime_error("baseline " + path + " has no '" + kGateScenario +
                           "' scenario entry");
}

int run(int argc, char** argv) {
  Usage usage("bench_perf",
              "Engine throughput vs the reference engine, with a bit-identity check.");
  usage.flag("--quick", "CI smoke: small timing + identity sets");
  usage.flag("--repeats=N", "timing repeats per scenario (best run counts; default 5)");
  usage.flag("--scenario=NAME", "time only this built-in scenario");
  usage.flag("--out=FILE", "also write the report JSON to FILE");
  usage.flag("--baseline=FILE", "fail on speedup regression vs this BENCH_perf.json");
  usage.flag("--max-regression=X", "allowed fractional speedup drop (default 0.25)");
  usage.flag("--telemetry-gate=TOL",
             "run ONLY the telemetry on/off overhead comparison on the gate "
             "scenario and fail if overhead exceeds TOL (e.g. 0.05); results "
             "must stay bit-identical");
  usage.flag("--checkpoint-gate=BUDGET",
             "run ONLY the checkpointing comparison (plain vs snapshotting, "
             "plus a restore pass) on the gate scenario and fail if the mean "
             "per-snapshot write or restore cost exceeds BUDGET seconds; all "
             "three paths must stay bit-identical");
  usage.flag("--checkpoint-every=T",
             "snapshot interval for --checkpoint-gate (simulated time; "
             "default 4000 = two nominal waves)");
  usage.flag("--help", "show this help");
  const Flags flags(argc, argv, {"--quick", "--help"});
  if (flags.get_bool("help", false)) {
    std::fputs(usage.str().c_str(), stdout);
    return 0;
  }
  for (const std::string& name : flags.names()) {
    const auto known = usage.flag_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", name.c_str());
      return 2;
    }
  }

  const bool quick = flags.get_bool("quick", false);
  const int repeats = static_cast<int>(flags.get_int("repeats", quick ? 2 : 5));

  if (flags.has("telemetry-gate")) {
    if (!kObsCompiled) {
      // Nothing to gate: the disabled build has no telemetry code at all.
      std::fprintf(stderr, "telemetry gate skipped: built with GTRIX_OBS=OFF\n");
      return 0;
    }
    const double tolerance = flags.get_double("telemetry-gate", 0.05);
    const std::string name = flags.get_string("scenario", kGateScenario);
    std::fprintf(stderr, "telemetry overhead on %s (%d repeats, on vs off)...\n",
                 name.c_str(), repeats);
    const TelemetryOverheadReport report =
        run_telemetry_overhead(builtin_scenario(name), repeats);
    const Json doc = telemetry_overhead_json(report);
    std::fputs((doc.dump(2) + "\n").c_str(), stdout);
    if (flags.has("out")) write_file(flags.get_string("out", ""), doc.dump(2) + "\n");
    if (!report.skew_identical) {
      std::fprintf(stderr, "FAIL: telemetry changed skew results -- it must be "
                           "purely observational\n");
      return 1;
    }
    if (report.overhead > tolerance) {
      std::fprintf(stderr,
                   "FAIL: telemetry overhead %.1f%% exceeds %.1f%% tolerance "
                   "(%.3fs on vs %.3fs off)\n",
                   report.overhead * 100.0, tolerance * 100.0, report.on_wall_seconds,
                   report.off_wall_seconds);
      return 1;
    }
    std::fprintf(stderr, "telemetry gate OK: %.1f%% overhead <= %.1f%% (%.3fs on, %.3fs off)\n",
                 report.overhead * 100.0, tolerance * 100.0, report.on_wall_seconds,
                 report.off_wall_seconds);
    return 0;
  }

  if (flags.has("checkpoint-gate")) {
    // The gate budgets the MEAN PER-SNAPSHOT cost, not overhead relative to
    // the plain run: the CI scenarios burn huge simulated time per
    // wall-second, so any relative figure is dominated by the snapshot
    // cadence, not by how cheap a snapshot is. Relative overhead, size and
    // count are still reported for the trajectory.
    const double budget = flags.get_double("checkpoint-gate", 0.025);
    const double every = flags.get_double("checkpoint-every", 4000.0);
    const std::string name = flags.get_string("scenario", kGateScenario);
    const std::string scratch =
        (std::filesystem::temp_directory_path() / "gtrix-bench-ckpt-gate").string();
    std::fprintf(stderr,
                 "checkpoint cost on %s (%d repeats, plain vs snapshots every "
                 "%g sim-time, then a restore pass)...\n",
                 name.c_str(), repeats, every);
    const CheckpointOverheadReport report =
        run_checkpoint_overhead(builtin_scenario(name), repeats, scratch, every);
    const Json doc = checkpoint_overhead_json(report);
    std::fputs((doc.dump(2) + "\n").c_str(), stdout);
    if (flags.has("out")) write_file(flags.get_string("out", ""), doc.dump(2) + "\n");
    if (!report.skew_identical) {
      std::fprintf(stderr, "FAIL: checkpointed or resumed cells diverged from the "
                           "plain run -- snapshots must be exact\n");
      return 1;
    }
    if (report.checkpoints_written == 0 || report.checkpoints_restored == 0) {
      std::fprintf(stderr, "FAIL: the gate wrote %llu and restored %llu snapshots "
                           "(interval %g longer than every cell?) -- nothing was "
                           "measured\n",
                   static_cast<unsigned long long>(report.checkpoints_written),
                   static_cast<unsigned long long>(report.checkpoints_restored), every);
      return 1;
    }
    const double write_each = report.checkpoint_write_seconds /
                              static_cast<double>(report.checkpoints_written);
    const double restore_each = report.checkpoint_restore_seconds /
                                static_cast<double>(report.checkpoints_restored);
    if (write_each > budget || restore_each > budget) {
      std::fprintf(stderr,
                   "FAIL: per-snapshot cost exceeds the %.1f ms budget: "
                   "%.2f ms/write (%llu snapshots, %.1f KiB total), "
                   "%.2f ms/restore (%llu restores)\n",
                   budget * 1e3, write_each * 1e3,
                   static_cast<unsigned long long>(report.checkpoints_written),
                   static_cast<double>(report.checkpoint_bytes) / 1024.0,
                   restore_each * 1e3,
                   static_cast<unsigned long long>(report.checkpoints_restored));
      return 1;
    }
    std::fprintf(stderr,
                 "checkpoint gate OK: %.2f ms/write, %.2f ms/restore <= %.1f ms "
                 "budget (%llu snapshots, %.1f KiB; overhead vs plain %.0f%% at "
                 "every=%g)\n",
                 write_each * 1e3, restore_each * 1e3, budget * 1e3,
                 static_cast<unsigned long long>(report.checkpoints_written),
                 static_cast<double>(report.checkpoint_bytes) / 1024.0,
                 report.overhead * 100.0, every);
    return 0;
  }

  std::vector<std::string> timing_set;
  std::vector<std::string> identity_set;
  if (flags.has("scenario")) {
    timing_set = {flags.get_string("scenario", "")};
    identity_set = timing_set;
  } else if (quick) {
    timing_set = {"quickstart-grid", kGateScenario};
    identity_set = {"quickstart-grid", kGateScenario, "torus-smoke"};
  } else {
    // The timing set spans the engine's regimes: tiny grid with i.i.d.
    // random delays (quickstart), component-spec torus (torus-smoke),
    // uniform-delay batching (table1), large-grid scheduling (thm11-logd),
    // and the corruption/realign path (thm16).
    timing_set = {"quickstart-grid", "torus-smoke", kGateScenario, "thm11-logd",
                  "thm16-stabilization"};
    for (const BuiltinInfo& info : builtin_scenarios()) {
      identity_set.emplace_back(info.name);
    }
  }

  std::vector<PerfScenarioReport> reports;
  for (const std::string& name : timing_set) {
    std::fprintf(stderr, "timing %s (%d repeats, both engines)...\n", name.c_str(),
                 repeats);
    reports.push_back(run_perf_scenario(builtin_scenario(name), repeats));
  }
  bool all_identical = true;
  for (const std::string& name : identity_set) {
    const bool timed_already =
        std::find(timing_set.begin(), timing_set.end(), name) != timing_set.end();
    if (timed_already) continue;
    std::fprintf(stderr, "identity check %s...\n", name.c_str());
    const PerfScenarioReport report = check_perf_identity(builtin_scenario(name));
    all_identical = all_identical && report.skew_identical;
    if (!report.skew_identical) {
      std::fprintf(stderr, "FAIL: %s skew diverged between engines\n", name.c_str());
    }
  }
  for (const PerfScenarioReport& report : reports) {
    all_identical = all_identical && report.skew_identical;
    std::fprintf(stderr, "%s: %.3g ev/s optimized vs %.3g ev/s reference (%.2fx)%s\n",
                 report.scenario.c_str(), report.optimized.events_per_sec,
                 report.reference.events_per_sec, report.speedup,
                 report.skew_identical ? "" : "  SKEW MISMATCH");
  }

  const Json doc = perf_report_json(reports);
  std::fputs((doc.dump(2) + "\n").c_str(), stdout);
  if (flags.has("out")) write_file(flags.get_string("out", ""), doc.dump(2) + "\n");

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: engines disagree -- the refactor is not "
                         "behaviour-preserving\n");
    return 1;
  }

  if (flags.has("baseline")) {
    const double committed = baseline_speedup(flags.get_string("baseline", ""));
    const double allowed_drop = flags.get_double("max-regression", 0.25);
    double measured = 0.0;
    for (const PerfScenarioReport& report : reports) {
      if (report.scenario == kGateScenario) measured = report.speedup;
    }
    if (measured <= 0.0) {
      std::fprintf(stderr, "FAIL: no %s timing to gate on\n", kGateScenario);
      return 1;
    }
    const double floor = committed * (1.0 - allowed_drop);
    if (measured < floor) {
      std::fprintf(stderr,
                   "FAIL: %s speedup regressed: measured %.2fx < %.2fx "
                   "(committed %.2fx minus %.0f%% tolerance)\n",
                   kGateScenario, measured, floor, committed, allowed_drop * 100.0);
      return 1;
    }
    std::fprintf(stderr, "perf gate OK: %.2fx >= %.2fx floor (committed %.2fx)\n",
                 measured, floor, committed);
  }
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) {
  try {
    return gtrix::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf: %s\n", e.what());
    return 1;
  }
}
