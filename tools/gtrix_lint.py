#!/usr/bin/env python3
"""gtrix_lint: static determinism lint for the gradient-TRIX engine.

Every headline number this repository produces rests on a determinism
discipline -- byte-identical JSONL across (threads x shards), engine-
invariant telemetry counters, fully-serialized checkpoint state -- that the
differential test batteries can only SAMPLE (they diff specific
configurations).  This linter makes the forbidden patterns unwritable: it
runs over the C++ sources with zero dependencies beyond the Python stdlib
(the same pattern as check_doc_links.py / ckpt_inspect.py) and fails on any
construct that could leak nondeterminism into results or let serialized
state drift out of sync with its codec.  docs/determinism.md is the prose
contract; this file is the executable one.

Rules (kebab-case ids, used in allow pragmas):

  unordered-output-path  std::unordered_{map,set,multimap,multiset} are
                         banned in the output/measurement paths
                         (src/metrics, src/runner, src/registry,
                         src/scenario): hash-table iteration order is
                         unspecified, so a single loop over one can leak
                         arbitrary ordering into JSONL or skew results.
                         Banned at the TYPE level -- a lookup-only table is
                         one refactor away from an iteration, and the
                         allow pragma exists for the justified cases.
  wall-clock             rand()/srand(), std::random_device, time(),
                         gettimeofday, clock_gettime and
                         std::chrono::system_clock are banned in src/
                         outside src/obs/: wall-clock and environment
                         entropy belong to telemetry only.  Monotonic
                         steady_clock is allowed (it times work, it never
                         feeds results); all simulation randomness must
                         come from the seeded support/rng.hpp streams.
  pointer-key-ordered    std::map/std::set keyed on a pointer type are
                         banned in src/ outside src/obs/: their iteration
                         order is the allocator's address order, which
                         varies run to run.  (Pointer-keyed *unordered*
                         lookup tables are fine anywhere the two rules
                         above don't already ban them -- they cannot be
                         iterated deterministically, but lookups are.)
  reinterpret-cast       reinterpret_cast is banned in src/: the codec
                         layer uses std::bit_cast / std::memcpy for type
                         punning, and every remaining cast must carry an
                         allow pragma stating the aliasing/lifetime
                         argument (char-access of raw bytes is the only
                         blessed case).
  gate-desc              every EngineOptions field must have a matching
                         engine_gate_descs() row (by NAME, superseding the
                         old field-count test) and a name-level mention in
                         docs/, so every gate stays discoverable via
                         --list and documented.
  counter-tag            every ObsCounter enumerator must have a catalog
                         row whose engine-invariant tag is an explicit
                         bool literal; the JSONL byte-identity contract
                         hangs on that tag being a deliberate decision.
  ckpt-field-guard       every struct serialized in src/ckpt/state_ckpt.cpp
                         / nodes_ckpt.cpp / detail.hpp must have a
                         GTRIX_CKPT_FIELDS / GTRIX_CKPT_SIZEOF static
                         assert adjacent to its codec, so adding a field
                         without serializing it fails the BUILD, not a
                         kill-and-resume diff three PRs later.
  pragma                 allow pragmas must be well-formed and must carry a
                         reason; a pragma that suppresses nothing is a
                         finding too (stale escapes rot the budget).

Allow pragma contract (docs/determinism.md):

    // gtrix-lint: allow(rule-id) -- reason text
    // gtrix-lint: allow(rule-a,rule-b) -- shared reason

placed on the offending line or the line directly above it.  The reason is
mandatory.  The total number of allow pragmas under src/ is budgeted
(--pragma-budget, default 10): an escape hatch that grows without bound is
not a lint.

Usage:
    tools/gtrix_lint.py                 lint the repository (src/)
    tools/gtrix_lint.py --root DIR      lint another tree (fixtures)
    tools/gtrix_lint.py --self-test     run the fixture battery under
                                        tests/lint_fixtures/
    tools/gtrix_lint.py --list-rules    print the rule table
    tools/gtrix_lint.py --rules a,b     restrict to specific rules

Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/internal.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# --- configuration -----------------------------------------------------------

# Directories whose files feed JSONL / summary output or measurement:
# iteration order there IS the output contract.
OUTPUT_PATH_DIRS = ("src/metrics", "src/runner", "src/registry", "src/scenario")

# src/obs is the telemetry subsystem: wall-clock is its whole point, and its
# outputs are quarantined to summary/trace files (docs/observability.md).
WALL_CLOCK_EXEMPT_DIRS = ("src/obs",)

# Codec files whose serialized structs need field-count guards.
CKPT_CODEC_FILES = (
    "src/ckpt/state_ckpt.cpp",
    "src/ckpt/nodes_ckpt.cpp",
    "src/ckpt/detail.hpp",
)

# Types the ckpt-field-guard const-ref scan ignores: codec plumbing and
# standard library, not serialized payload records.
CKPT_PLUMBING_TYPES = {
    "CkptWriter", "CkptCursor", "CkptTargetMap", "CkptFile", "CkptError",
    "Json", "Section",
}

GATE_HEADER = "src/runner/experiment.hpp"
GATE_IMPL = "src/runner/experiment.cpp"
TELEMETRY_HEADER = "src/obs/telemetry.hpp"
TELEMETRY_IMPL = "src/obs/telemetry.cpp"
DOCS_DIR = "docs"

CPP_EXTENSIONS = (".cpp", ".hpp", ".cc", ".h")

PRAGMA_RE = re.compile(
    r"//\s*gtrix-lint:\s*allow\(([^)]*)\)\s*(?:--\s*(.*))?$")


# --- findings and pragmas ----------------------------------------------------

@dataclass
class Finding:
    path: str      # repo-relative, '/'-separated
    line: int      # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Pragma:
    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class SourceFile:
    """One C++ source with comments/strings stripped (line structure kept)."""
    path: str                      # repo-relative
    raw_lines: list[str]
    code_lines: list[str]          # stripped: pragmas and literals removed
    pragmas: list[Pragma] = field(default_factory=list)

    @property
    def code(self) -> str:
        return "\n".join(self.code_lines)

    def line_of_offset(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1


def strip_cpp(text: str) -> str:
    """Removes comment and string/char literal CONTENT, preserving newlines.

    Good enough for pattern linting: no preprocessor evaluation, raw strings
    handled in their common R"( ... )" form only.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                out.extend(ch if ch == "\n" else " " for ch in text[i:])
                i = n
            else:
                out.extend(ch if ch == "\n" else " " for ch in text[i:j + 2])
                i = j + 2
        elif c == "R" and text.startswith('R"(', i):
            j = text.find(')"', i + 3)
            end = n if j < 0 else j + 2
            out.append('""')
            out.extend(ch for ch in text[i:end] if ch == "\n")
            i = end
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    i += 2
                elif text[i] == "\n":  # unterminated; keep line structure
                    break
                else:
                    i += 1
            if i < n and text[i] == quote:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_source(root: str, rel: str) -> SourceFile | None:
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except (OSError, UnicodeDecodeError):
        return None
    raw_lines = raw.split("\n")
    pragmas: list[Pragma] = []
    for idx, line in enumerate(raw_lines, start=1):
        m = PRAGMA_RE.search(line)
        if m:
            rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
            reason = (m.group(2) or "").strip()
            pragmas.append(Pragma(line=idx, rules=rules, reason=reason))
    return SourceFile(path=rel, raw_lines=raw_lines,
                      code_lines=strip_cpp(raw).split("\n"), pragmas=pragmas)


# --- rule engine -------------------------------------------------------------

class Rule:
    name: str = ""
    summary: str = ""

    def run(self, ctx: "LintContext") -> list[Finding]:
        raise NotImplementedError


class LintContext:
    def __init__(self, root: str, rules: list[Rule]):
        self.root = root
        self.rules = rules
        self._cache: dict[str, SourceFile | None] = {}

    def source(self, rel: str) -> SourceFile | None:
        if rel not in self._cache:
            self._cache[rel] = load_source(self.root, rel)
        return self._cache[rel]

    def walk_cpp(self, subdir: str = "src") -> list[SourceFile]:
        base = os.path.join(self.root, subdir)
        rels = []
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    rels.append(os.path.relpath(full, self.root).replace(os.sep, "/"))
        return [s for rel in sorted(rels) if (s := self.source(rel))]

    def docs_texts(self) -> dict[str, str]:
        texts = {}
        base = os.path.join(self.root, DOCS_DIR)
        if os.path.isdir(base):
            for name in sorted(os.listdir(base)):
                if name.endswith(".md"):
                    try:
                        with open(os.path.join(base, name), encoding="utf-8") as f:
                            texts[f"{DOCS_DIR}/{name}"] = f.read()
                    except OSError:
                        pass
        return texts


def pattern_findings(src: SourceFile, rule: str, regex: re.Pattern,
                     message) -> list[Finding]:
    found = []
    for idx, line in enumerate(src.code_lines, start=1):
        for m in regex.finditer(line):
            msg = message(m) if callable(message) else message
            found.append(Finding(src.path, idx, rule, msg))
    return found


# --- pattern rules -----------------------------------------------------------

UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")


class UnorderedOutputPathRule(Rule):
    name = "unordered-output-path"
    summary = ("no std::unordered_{map,set} in output/measurement paths "
               "(src/metrics, src/runner, src/registry, src/scenario)")

    def run(self, ctx: LintContext) -> list[Finding]:
        findings = []
        for src in ctx.walk_cpp():
            if not src.path.startswith(OUTPUT_PATH_DIRS):
                continue
            findings += pattern_findings(
                src, self.name, UNORDERED_RE,
                "unordered container in an output/measurement path: "
                "iteration order is unspecified and can leak into JSONL or "
                "skew results; use std::vector / std::map keyed on a "
                "deterministic value, or justify with an allow pragma")
        return findings


WALL_CLOCK_RES = (
    (re.compile(r"\bsrand\s*\("), "srand() seeds the C RNG from ambient state"),
    (re.compile(r"(?<![\w.>])rand\s*\("), "rand() is a hidden global RNG"),
    (re.compile(r"\brandom_device\b"), "std::random_device draws environment entropy"),
    (re.compile(r"\bsystem_clock\b"), "system_clock is wall-clock time"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday is wall-clock time"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime belongs to telemetry"),
    (re.compile(r"(?:\bstd::time|(?<![\w.>:])time)\s*\(\s*(?:NULL|nullptr|0|&|\))"),
     "time() is wall-clock time"),
)


class WallClockRule(Rule):
    name = "wall-clock"
    summary = ("no rand()/random_device/time()/system_clock outside src/obs "
               "(results must draw from seeded Rng streams only)")

    def run(self, ctx: LintContext) -> list[Finding]:
        findings = []
        for src in ctx.walk_cpp():
            if src.path.startswith(WALL_CLOCK_EXEMPT_DIRS):
                continue
            for regex, why in WALL_CLOCK_RES:
                findings += pattern_findings(
                    src, self.name, regex,
                    f"{why}; simulation state must be a function of the "
                    "config and seed (wall-clock/entropy belong to src/obs)")
        return findings


ORDERED_CONTAINER_RE = re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<")


class PointerKeyOrderedRule(Rule):
    name = "pointer-key-ordered"
    summary = ("no pointer-keyed std::map/std::set outside src/obs "
               "(iteration order would be address order)")

    def run(self, ctx: LintContext) -> list[Finding]:
        findings = []
        for src in ctx.walk_cpp():
            if src.path.startswith(WALL_CLOCK_EXEMPT_DIRS):
                continue
            for idx, line in enumerate(src.code_lines, start=1):
                for m in ORDERED_CONTAINER_RE.finditer(line):
                    key = first_template_arg(line[m.end():])
                    if key is not None and "*" in key:
                        findings.append(Finding(
                            src.path, idx, self.name,
                            f"ordered container keyed on a pointer "
                            f"('{key.strip()}'): iteration order is the "
                            "allocator's address order, which varies run to "
                            "run; key on a stable id instead"))
        return findings


def first_template_arg(rest: str) -> str | None:
    """Text of the first template argument after 'std::map<'."""
    depth = 0
    for i, c in enumerate(rest):
        if c in "<([":
            depth += 1
        elif c in ">)]":
            if depth == 0:
                return rest[:i]
            depth -= 1
        elif c == "," and depth == 0:
            return rest[:i]
    return None  # declaration continues on the next line; next line rescans


class ReinterpretCastRule(Rule):
    name = "reinterpret-cast"
    summary = ("no reinterpret_cast in src/ (std::bit_cast / std::memcpy "
               "for punning; char-access of bytes needs an allow pragma)")

    def run(self, ctx: LintContext) -> list[Finding]:
        findings = []
        for src in ctx.walk_cpp():
            findings += pattern_findings(
                src, self.name, re.compile(r"\breinterpret_cast\b"),
                "reinterpret_cast: use std::bit_cast or std::memcpy for "
                "type punning; if this is defined char-level access of raw "
                "bytes, state the aliasing argument in an allow pragma")
        return findings


# --- project rules -----------------------------------------------------------

def extract_braced_block(code: str, open_brace: int) -> str:
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return code[open_brace:i + 1]
    return code[open_brace:]


def top_level_only(block: str) -> str:
    """Blanks out text nested inside inner braces (member function bodies),
    keeping newlines, so field scans see only depth-1 declarations."""
    out: list[str] = []
    depth = 0
    for c in block:
        if c == "{":
            depth += 1
            out.append(c if depth <= 1 else " ")
        elif c == "}":
            out.append(c if depth <= 1 else " ")
            depth -= 1
        elif c == "\n":
            out.append(c)
        else:
            out.append(c if depth <= 1 else " ")
    return "".join(out)


FIELD_DECL_RE = re.compile(
    r"^\s*(?!static\b|using\b|typedef\b|friend\b|public|private|protected)"
    r"[A-Za-z_][\w:<>,\s*&]*?[\s&*]([a-z_][a-z0-9_]*)\s*(?:=[^;]*)?;",
    re.MULTILINE)


class GateDescRule(Rule):
    name = "gate-desc"
    summary = ("every EngineOptions field needs an engine_gate_descs() row "
               "and a name-level docs/ mention")

    def run(self, ctx: LintContext) -> list[Finding]:
        header = ctx.source(GATE_HEADER)
        impl = ctx.source(GATE_IMPL)
        if header is None or impl is None:
            return []
        findings: list[Finding] = []

        m = re.search(r"struct\s+EngineOptions[^{;]*\{", header.code)
        if not m:
            return [Finding(GATE_HEADER, 1, self.name,
                            "cannot locate 'struct EngineOptions'")]
        block = top_level_only(extract_braced_block(header.code, m.end() - 1))
        field_lines: dict[str, int] = {}
        base_line = header.line_of_offset(m.end() - 1)
        for fm in FIELD_DECL_RE.finditer(block):
            decl = fm.group(0)
            if "(" in decl or ")" in decl:
                continue  # member function / constructor noise
            field_lines[fm.group(1)] = base_line + block.count("\n", 0, fm.start())

        dm = re.search(r"engine_gate_descs\s*\(\s*\)\s*\{", impl.code)
        if not dm:
            return [Finding(GATE_IMPL, 1, self.name,
                            "cannot locate the engine_gate_descs() definition")]
        body = extract_braced_block(impl.code, dm.end() - 1)
        # Row names are string literals, which strip_cpp blanks out -- read
        # them from the raw text of the same region instead.
        body_start = impl.line_of_offset(dm.end() - 1)
        body_end = body_start + body.count("\n")
        raw_body = "\n".join(impl.raw_lines[body_start - 1:body_end])
        desc_names: dict[str, int] = {}
        for rm in re.finditer(r"\{\s*\"([^\"]+)\"", raw_body):
            desc_names[rm.group(1)] = body_start + raw_body.count("\n", 0, rm.start())

        docs = ctx.docs_texts()
        for name, line in sorted(field_lines.items()):
            if name not in desc_names:
                findings.append(Finding(
                    GATE_HEADER, line, self.name,
                    f"EngineOptions field '{name}' has no engine_gate_descs() "
                    "row: the gate would be invisible to gtrix_campaign "
                    "--list/--describe"))
            if not any(re.search(rf"\b{re.escape(name)}\b", text)
                       for text in docs.values()):
                findings.append(Finding(
                    GATE_HEADER, line, self.name,
                    f"EngineOptions field '{name}' is not mentioned by name "
                    f"anywhere under {DOCS_DIR}/: document the gate"))
        for name, line in sorted(desc_names.items()):
            if name not in field_lines:
                findings.append(Finding(
                    GATE_IMPL, line, self.name,
                    f"engine_gate_descs() row '{name}' matches no "
                    "EngineOptions field: stale row or renamed gate"))
        return findings


class CounterTagRule(Rule):
    name = "counter-tag"
    summary = ("every ObsCounter needs a catalog row whose engine-invariant "
               "tag is an explicit bool literal")

    def run(self, ctx: LintContext) -> list[Finding]:
        header = ctx.source(TELEMETRY_HEADER)
        impl = ctx.source(TELEMETRY_IMPL)
        if header is None or impl is None:
            return []
        findings: list[Finding] = []

        em = re.search(r"enum\s+class\s+ObsCounter[^{;]*\{", header.code)
        if not em:
            return [Finding(TELEMETRY_HEADER, 1, self.name,
                            "cannot locate 'enum class ObsCounter'")]
        block = extract_braced_block(header.code, em.end() - 1)
        base_line = header.line_of_offset(em.end() - 1)
        enum_lines: dict[str, int] = {}
        for em2 in re.finditer(r"^\s*(k[A-Z]\w*)\s*[,=}]", block, re.MULTILINE):
            if em2.group(1) != "kCount":
                enum_lines[em2.group(1)] = base_line + block.count("\n", 0, em2.start())

        cm = re.search(r"ObsCounterInfo\s+kCatalog\[\]\s*=\s*\{", impl.code)
        if not cm:
            return [Finding(TELEMETRY_IMPL, 1, self.name,
                            "cannot locate the kCatalog table")]
        body = extract_braced_block(impl.code, cm.end() - 1)
        body_line = impl.line_of_offset(cm.end() - 1)
        rows: dict[str, tuple[int, str | None]] = {}
        for rm in re.finditer(
                r"\{\s*ObsCounter::(k[A-Z]\w*)\s*,([^{}]*)", body):
            row_line = body_line + body.count("\n", 0, rm.start())
            # rest = '"name", true, ...' with the literal blanked to "";
            # the tag is the token after the first comma.
            rest = rm.group(2)
            parts = [p.strip() for p in rest.split(",")]
            tag = parts[1] if len(parts) > 1 else None
            rows[rm.group(1)] = (row_line, tag)

        for name, line in sorted(enum_lines.items()):
            if name not in rows:
                findings.append(Finding(
                    TELEMETRY_HEADER, line, self.name,
                    f"ObsCounter::{name} has no kCatalog row: the counter "
                    "would export without a name or tag"))
        for name, (line, tag) in sorted(rows.items()):
            if name not in enum_lines:
                findings.append(Finding(
                    TELEMETRY_IMPL, line, self.name,
                    f"kCatalog row for unknown ObsCounter::{name}"))
            if tag not in ("true", "false"):
                findings.append(Finding(
                    TELEMETRY_IMPL, line, self.name,
                    f"kCatalog row {name}: the engine-invariant tag must be "
                    "a literal true (JSONL-safe) or false (summary-only), "
                    "written out explicitly -- this is the byte-identity "
                    "contract, not a default"))
        return findings


GUARD_RE = re.compile(r"GTRIX_CKPT_(?:FIELDS|SIZEOF)\s*\(\s*([\w:]+)")
CODEC_DEF_RE = re.compile(
    r"(?:void|^\s*\w[\w:<>]*)\s+(?:[\w:]+::)?(\w+)::checkpoint_save\s*\([^)]*\)\s*"
    r"(?:const\s*)?\{", re.MULTILINE)
WRITE_FN_RE = re.compile(
    r"inline\s+void\s+(write_\w+)\s*\([^)]*\)\s*\{", re.MULTILINE)
CONST_REF_RE = re.compile(r"\bconst\s+([A-Z]\w*)\s*&")


class CkptFieldGuardRule(Rule):
    name = "ckpt-field-guard"
    summary = ("every struct serialized in the ckpt codecs needs an "
               "adjacent GTRIX_CKPT_FIELDS/GTRIX_CKPT_SIZEOF guard")

    def run(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for rel in CKPT_CODEC_FILES:
            src = ctx.source(rel)
            if src is None:
                continue
            code = src.code
            regions: list[tuple[str, int, str, set[str]]] = []
            for dm in CODEC_DEF_RE.finditer(code):
                body = extract_braced_block(code, dm.end() - 1)
                line = src.line_of_offset(dm.start())
                required = {dm.group(1)}
                required |= {t for t in const_ref_types(body)
                             if t not in CKPT_PLUMBING_TYPES}
                regions.append((dm.group(1), line, body, required))
            for wm in WRITE_FN_RE.finditer(code):
                body = extract_braced_block(code, wm.end() - 1)
                line = src.line_of_offset(wm.start())
                required = set()
                # a write_* helper serializes the type of its const-ref param
                sig = code[wm.start():wm.end()]
                required |= {t for t in const_ref_types(sig + body)
                             if t not in CKPT_PLUMBING_TYPES}
                regions.append((wm.group(1), line, body, required))
            for codec_name, line, body, required in regions:
                guards = {g.split("::")[-1]
                          for g in GUARD_RE.findall(body)}
                for t in sorted(required - guards):
                    findings.append(Finding(
                        src.path, line, self.name,
                        f"codec '{codec_name}' serializes {t} but carries no "
                        f"GTRIX_CKPT_FIELDS({t}, N) / GTRIX_CKPT_SIZEOF "
                        "guard: a new field could silently skip "
                        "serialization; add the static assert inside the "
                        "codec body"))
        return findings


def const_ref_types(body: str) -> set[str]:
    return {m.group(1) for m in CONST_REF_RE.finditer(body)}


ALL_RULES: list[Rule] = [
    UnorderedOutputPathRule(),
    WallClockRule(),
    PointerKeyOrderedRule(),
    ReinterpretCastRule(),
    GateDescRule(),
    CounterTagRule(),
    CkptFieldGuardRule(),
]
RULE_NAMES = {r.name for r in ALL_RULES}


# --- pragma application ------------------------------------------------------

def apply_pragmas(ctx: LintContext, findings: list[Finding],
                  pragma_budget: int | None) -> list[Finding]:
    """Suppresses findings covered by allow pragmas; flags bad/stale ones."""
    out: list[Finding] = []
    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        by_file.setdefault(f.path, []).append(f)

    touched = set(by_file)
    touched.update(rel for rel, src in ctx._cache.items()
                   if src is not None and src.pragmas)

    pragma_count = 0
    for rel in sorted(touched):
        src = ctx.source(rel)
        if src is None:
            out.extend(by_file.get(rel, []))
            continue
        for f in by_file.get(rel, []):
            suppressed = False
            for p in src.pragmas:
                if p.line in (f.line, f.line - 1) and f.rule in p.rules:
                    p.used = True
                    suppressed = True
            if not suppressed:
                out.append(f)
        for p in src.pragmas:
            if rel.startswith("src/"):
                pragma_count += 1
            unknown = [r for r in p.rules if r not in RULE_NAMES]
            if unknown:
                out.append(Finding(
                    rel, p.line, "pragma",
                    f"allow pragma names unknown rule(s) {unknown}; "
                    f"known: {sorted(RULE_NAMES)}"))
            if not p.reason:
                out.append(Finding(
                    rel, p.line, "pragma",
                    "allow pragma without a reason: write "
                    "'// gtrix-lint: allow(rule) -- why this is safe'"))
            elif not p.used and not unknown:
                out.append(Finding(
                    rel, p.line, "pragma",
                    f"allow pragma for {list(p.rules)} suppresses nothing: "
                    "stale escape, delete it"))
    if pragma_budget is not None and pragma_count > pragma_budget:
        out.append(Finding(
            "src", 1, "pragma",
            f"{pragma_count} allow pragmas under src/ exceed the budget of "
            f"{pragma_budget}: the escape hatch is becoming the rule"))
    return out


# --- driver ------------------------------------------------------------------

def run_lint(root: str, rule_filter: set[str] | None,
             pragma_budget: int | None) -> list[Finding]:
    rules = [r for r in ALL_RULES
             if rule_filter is None or r.name in rule_filter]
    ctx = LintContext(root, rules)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.run(ctx))
    findings = apply_pragmas(ctx, findings, pragma_budget)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def self_test(repo_root: str) -> int:
    """Fixture battery: every rule must fire on its bad/ tree and stay
    silent on its good/ tree (tests/lint_fixtures/README.md)."""
    fixtures = os.path.join(repo_root, "tests", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"gtrix_lint: no fixture tree at {fixtures}", file=sys.stderr)
        return 2
    failures = 0
    covered: set[str] = set()
    for rule_dir in sorted(os.listdir(fixtures)):
        rule_path = os.path.join(fixtures, rule_dir)
        if not os.path.isdir(rule_path):
            continue
        if rule_dir not in RULE_NAMES and rule_dir != "pragma":
            print(f"FAIL {rule_dir}: fixture directory matches no rule")
            failures += 1
            continue
        covered.add(rule_dir)
        for direction in ("bad", "good"):
            droot = os.path.join(rule_path, direction)
            if not os.path.isdir(droot):
                print(f"FAIL {rule_dir}/{direction}: fixture missing")
                failures += 1
                continue
            findings = run_lint(droot, None, pragma_budget=10)
            hits = [f for f in findings if f.rule == rule_dir]
            if direction == "bad" and not hits:
                print(f"FAIL {rule_dir}/bad: expected >=1 {rule_dir} "
                      "finding, got none")
                failures += 1
            elif direction == "good" and findings:
                print(f"FAIL {rule_dir}/good: expected a clean run, got:")
                for f in findings:
                    print(f"  {f.render()}")
                failures += 1
            else:
                print(f"ok   {rule_dir}/{direction}"
                      + (f" ({len(hits)} finding(s))" if direction == "bad" else ""))
    missing = (RULE_NAMES | {"pragma"}) - covered
    for rule in sorted(missing):
        print(f"FAIL {rule}: no fixture directory exercises this rule")
        failures += 1
    if failures:
        print(f"gtrix_lint self-test: {failures} failure(s)")
        return 1
    print(f"gtrix_lint self-test: all {len(covered)} rule fixtures pass "
          "in both directions")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="gtrix_lint.py",
        description="Static determinism lint for the gradient-TRIX engine "
                    "(rules and pragma contract: docs/determinism.md).")
    parser.add_argument("--root", default=None,
                        help="tree to lint (default: the repository root "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture battery under tests/lint_fixtures/")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--pragma-budget", type=int, default=10,
                        help="max allow pragmas under src/ (default 10; "
                             "negative disables the budget)")
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:22} {rule.summary}")
        print(f"{'pragma':22} allow pragmas must be well-formed, justified "
              "and in use")
        return 0
    if args.self_test:
        return self_test(repo_root)

    rule_filter = None
    if args.rules:
        rule_filter = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = rule_filter - RULE_NAMES
        if unknown:
            print(f"gtrix_lint: unknown rule(s): {sorted(unknown)}",
                  file=sys.stderr)
            return 2

    root = args.root or repo_root
    budget = None if args.pragma_budget < 0 else args.pragma_budget
    findings = run_lint(root, rule_filter, budget)
    for f in findings:
        print(f.render())
    if findings:
        print(f"gtrix_lint: {len(findings)} finding(s)")
        return 1
    print("gtrix_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
