#!/usr/bin/env python3
"""Validates a gtrix_campaign --trace-out Chrome trace and summarizes it.

Checks the trace-event JSON schema (the subset gtrix emits, loadable in
Perfetto / chrome://tracing):
  * top level is an object with a "traceEvents" array;
  * every event has string "ph" and "name"; spans ("ph": "X") additionally
    carry numeric "ts" >= 0 and "dur" >= 0 plus integer "pid"/"tid";
  * metadata events ("ph": "M") are process_name/thread_name with an
    args.name string;
  * every span's (pid, tid) has a thread_name, every pid a process_name
    (so Perfetto shows labeled tracks, never bare numbers);
  * span names are from the emitter's fixed vocabulary: per-shard
    "window"/"window-final"/"drain"/"barrier", cell phases
    "run"/"corrupt"/"recover"/"realign", and campaign cell labels on pid 1.

Then prints a per-shard busy / barrier-wait breakdown per cell process and
the campaign-level cell spans. Exits non-zero on any schema violation.

Stdlib only; CI runs it against the sharded campaign smoke trace.

Usage: tools/trace_summary.py TRACE.json [--quiet]
"""
import collections
import json
import sys

CAMPAIGN_PID = 1
SHARD_SPANS = {"window", "window-final", "drain", "barrier"}
PHASE_SPANS = {"run", "corrupt", "recover", "realign"}


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(doc):
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" array')
    if not events:
        fail("trace has no events")

    process_names = {}
    thread_names = {}
    spans = []
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where} is not an object")
        ph = e.get("ph")
        name = e.get("name")
        if not isinstance(ph, str) or not isinstance(name, str):
            fail(f'{where} needs string "ph" and "name"')
        if ph == "M":
            if name not in ("process_name", "thread_name"):
                fail(f"{where}: unknown metadata event {name!r}")
            args = e.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                fail(f"{where}: metadata event without args.name string")
            if name == "process_name":
                process_names[e.get("pid")] = args["name"]
            else:
                thread_names[(e.get("pid"), e.get("tid"))] = args["name"]
        elif ph == "X":
            for key in ("pid", "tid"):
                if not isinstance(e.get(key), int):
                    fail(f'{where}: span needs integer "{key}"')
            for key in ("ts", "dur"):
                v = e.get(key)
                if not isinstance(v, (int, float)) or v < 0:
                    fail(f'{where}: span needs numeric "{key}" >= 0')
            if e["pid"] != CAMPAIGN_PID and name not in SHARD_SPANS | PHASE_SPANS:
                fail(f"{where}: unexpected span name {name!r} on cell pid {e['pid']}")
            spans.append(e)
        else:
            fail(f"{where}: unexpected phase {ph!r} (emitter only writes X and M)")

    if not spans:
        fail("trace has no spans")
    for e in spans:
        if e["pid"] not in process_names:
            fail(f"span on pid {e['pid']} has no process_name metadata")
        # Campaign-level (pid 1) tracks are sweep workers; cell pids name
        # every shard tid, and phase spans share tid 0 with shard 0.
        if e["pid"] != CAMPAIGN_PID and (e["pid"], e["tid"]) not in thread_names:
            fail(f"span on pid {e['pid']} tid {e['tid']} has no thread_name metadata")
    return process_names, spans


def summarize(process_names, spans):
    print(f"{len(spans)} spans across {len(process_names)} processes")

    cell_spans = [e for e in spans if e["pid"] == CAMPAIGN_PID]
    if cell_spans:
        print("\ncampaign cells (pid 1):")
        for e in sorted(cell_spans, key=lambda e: e["ts"]):
            events = e.get("args", {}).get("events")
            extra = f"  {events} logical events" if isinstance(events, int) else ""
            print(f"  {e['name']:40s} {e['dur'] / 1e3:9.2f} ms{extra}")

    by_cell = collections.defaultdict(lambda: collections.defaultdict(
        lambda: {"busy_us": 0.0, "barrier_us": 0.0, "windows": 0}))
    for e in spans:
        if e["pid"] == CAMPAIGN_PID:
            continue
        row = by_cell[e["pid"]][e["tid"]]
        if e["name"] == "barrier":
            row["barrier_us"] += e["dur"]
        elif e["name"] in SHARD_SPANS:
            row["busy_us"] += e["dur"]
            row["windows"] += 1
    shard_cells = {
        pid: tids
        for pid, tids in by_cell.items()
        if any(r["windows"] > 0 for r in tids.values())
    }
    if shard_cells:
        print("\nper-shard busy / barrier-wait (sharded cells):")
        for pid in sorted(shard_cells):
            print(f"  {process_names[pid]} (pid {pid}):")
            for tid in sorted(shard_cells[pid]):
                r = shard_cells[pid][tid]
                total = r["busy_us"] + r["barrier_us"]
                pct = 100.0 * r["busy_us"] / total if total > 0 else 0.0
                print(f"    shard {tid}: {r['windows']:5d} windows  "
                      f"busy {r['busy_us'] / 1e3:9.2f} ms  "
                      f"barrier {r['barrier_us'] / 1e3:9.2f} ms  "
                      f"({pct:.0f}% busy)")


def main(argv):
    args = [a for a in argv[1:] if a != "--quiet"]
    quiet = "--quiet" in argv[1:]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    try:
        with open(args[0], "rb") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        fail(f"cannot load {args[0]}: {err}")
    process_names, spans = validate(doc)
    if not quiet:
        summarize(process_names, spans)
    print(f"trace_summary: OK: {args[0]} ({len(spans)} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
