#!/usr/bin/env python3
"""Checks that relative markdown links in the docs resolve to real files.

Scans README.md and docs/*.md for inline links `[text](target)`, skips
external URLs (scheme://, mailto:) and pure in-page anchors (#...), and
verifies every remaining target exists relative to the linking file (an
optional #fragment is stripped first; fragments themselves are not checked).
Exits non-zero listing every broken link. Stdlib only; runs in CI after the
build so docs can't drift from the tree.
"""
import glob
import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_file(path: str) -> list[str]:
    errors = []
    text = open(path, encoding="utf-8").read()
    base = os.path.dirname(path)
    for target in LINK.findall(text):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        if target.startswith("#"):
            continue
        resolved = os.path.normpath(os.path.join(base, target.split("#", 1)[0]))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link '{target}' (resolved to {resolved})")
    return errors


def main() -> int:
    files = ["README.md"] + sorted(glob.glob("docs/*.md"))
    missing = [f for f in files if not os.path.exists(f)]
    errors = [f"missing expected file: {f}" for f in missing]
    for f in files:
        if f not in missing:
            errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files) - len(missing)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
