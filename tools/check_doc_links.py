#!/usr/bin/env python3
"""Checks that relative markdown links in the docs resolve, anchors included.

Scans README.md and docs/*.md for inline links `[text](target)` and verifies:
  * external URLs (scheme://, mailto:) are skipped;
  * every relative target exists on disk relative to the linking file;
  * every `#fragment` -- in-page (`#section`) or cross-file
    (`other.md#section`) -- matches a real heading in the target markdown
    file, using GitHub's slug rules (lowercase, punctuation stripped, spaces
    to hyphens, `-N` suffixes for duplicate headings). Renamed headings
    therefore break CI instead of rotting silently.

Exits non-zero listing every broken link or anchor. Stdlib only; runs in CI
after the build so docs can't drift from the tree.
"""
import glob
import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^(```|~~~)")
# Markdown decoration stripped from heading text before slugging. Star
# emphasis only: underscores inside identifiers (`bench_scale`) are kept by
# GitHub's slugger, so stripping `_` here would produce false positives.
INLINE_CODE = re.compile(r"`([^`]*)`")
INLINE_LINK = re.compile(r"\[([^\]]*)\]\([^)]*\)")
EMPHASIS = re.compile(r"(\*\*|\*)")


def github_slug(text: str) -> str:
    text = INLINE_CODE.sub(r"\1", text)
    text = INLINE_LINK.sub(r"\1", text)
    text = EMPHASIS.sub("", text)
    text = text.strip().lower()
    # GitHub keeps word characters, spaces and hyphens; everything else drops.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: str) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in open(path, encoding="utf-8"):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: str, slug_cache: dict[str, set[str]]) -> list[str]:
    errors = []
    text = open(path, encoding="utf-8").read()
    base = os.path.dirname(path)

    def slugs_of(md_path: str) -> set[str]:
        if md_path not in slug_cache:
            slug_cache[md_path] = heading_slugs(md_path)
        return slug_cache[md_path]

    for target in LINK.findall(text):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                errors.append(f"{path}: broken link '{target}' (resolved to {resolved})")
                continue
        else:
            resolved = path  # pure in-page anchor
        if fragment and resolved.endswith(".md"):
            if fragment.lower() not in slugs_of(resolved):
                errors.append(
                    f"{path}: broken anchor '{target}' "
                    f"(no heading slugs to '#{fragment}' in {resolved})")
    return errors


def main() -> int:
    files = ["README.md"] + sorted(glob.glob("docs/*.md"))
    missing = [f for f in files if not os.path.exists(f)]
    errors = [f"missing expected file: {f}" for f in missing]
    slug_cache: dict[str, set[str]] = {}
    for f in files:
        if f not in missing:
            errors.extend(check_file(f, slug_cache))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files) - len(missing)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
