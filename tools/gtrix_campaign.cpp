// gtrix_campaign: run declarative scenario campaigns.
//
//   gtrix_campaign thm13-random-faults --threads=8 --out=results
//   gtrix_campaign scenarios/*.json --threads=4
//   gtrix_campaign --list
//   gtrix_campaign --export=scenarios
//
// Each scenario expands into a config matrix, runs through the parallel
// sweep runner, and produces <out>/<name>.jsonl (one deterministic JSON
// object per cell) plus <out>/<name>.summary.json (aggregate percentiles,
// counters, wall time).
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/codec.hpp"
#include "obs/trace.hpp"
#include "registry/describe.hpp"
#include "runner/campaign.hpp"
#include "scenario/registry.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

namespace gtrix {
namespace {

Usage make_usage(const std::string& program) {
  Usage usage(program, "Run declarative Gradient TRIX scenario campaigns.");
  usage.positional("SCENARIO", "scenario .json file or built-in name (--list)");
  usage.flag("--list", "list built-in scenarios and registered components, then exit");
  usage.flag("--describe=KIND", "show a registered component's parameter schema and exit");
  usage.flag("--export=DIR", "write built-in scenarios as JSON files and exit");
  usage.flag("--out=DIR", "output directory (default: campaign-out)");
  usage.flag("--threads=N", "sweep worker threads (default 0 = all cores)");
  usage.flag("--shards=N",
             "engine shards per cell (default 0 = the scenario's own engine "
             "default); budgeted so cells x shards stays within hardware "
             "concurrency -- results are bit-identical for every shard count");
  usage.flag("--recording=MODE",
             "override every cell's trace retention: full, windowed or streaming "
             "(see docs/scaling.md; applies to corrupt cells too -- realignment "
             "replays from a corruption-anchored look-back window)");
  usage.flag("--recording-window=K",
             "waves retained / ring capacity for the override mode; on corrupt "
             "cells also the look-back half-width around the corruption wave -- "
             "too small is a hard error, never silently wrong numbers");
  usage.flag("--telemetry",
             "harvest engine telemetry: per-cell engine_stats in the JSONL "
             "(engine-invariant counters) and a merged block in the summary "
             "(docs/observability.md)");
  usage.flag("--trace-out=FILE",
             "write a Chrome trace-event JSON timeline (Perfetto-loadable) of "
             "the campaign: per-cell spans plus per-shard window/barrier "
             "spans; implies --telemetry");
  usage.flag("--progress=SECONDS",
             "live heartbeat on stderr every SECONDS (bare --progress = 2): "
             "cells done, cumulative events/s, ETA");
  usage.flag("--checkpoint-dir=DIR",
             "crash-safe campaigns (docs/checkpointing.md): snapshot every "
             "cell's full simulator state into DIR/<scenario>/ at sim-time "
             "boundaries and record finished cells as done files");
  usage.flag("--checkpoint-every=T",
             "simulated time between snapshots (default 4000 = two nominal "
             "waves; needs --checkpoint-dir)");
  usage.flag("--resume",
             "reuse artifacts under --checkpoint-dir: completed cells reload "
             "their done files (never re-run), interrupted cells restore "
             "their newest snapshot and continue; output bytes are identical "
             "to an uninterrupted run");
  usage.flag("--dry-run", "expand and list cells without running");
  usage.flag("--quiet", "suppress the per-scenario result table");
  usage.flag("--help", "show this help");
  return usage;
}

void write_file(const std::filesystem::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << contents;
  if (!out.flush()) throw std::runtime_error("short write to " + path.string());
}

int list_builtins() {
  Table table({"name", "summary", "cells"});
  for (const BuiltinInfo& info : builtin_scenarios()) {
    const Scenario scenario = builtin_scenario(info.name);
    table.row()
        .add(std::string(info.name))
        .add(std::string(info.summary))
        .add(static_cast<std::uint64_t>(scenario.cell_count()));
  }
  std::printf("built-in scenarios:\n%s", table.render().c_str());

  Table components({"dimension", "kind", "parameters", "summary"});
  for (const ComponentDesc& desc : all_component_descs()) {
    components.row()
        .add(desc.config_key)
        .add(desc.kind)
        .add(desc.params.empty() ? "-" : render_param_schema(desc.params))
        .add(desc.summary);
  }
  std::printf("\nregistered components (scenario config syntax: \"<dimension>\": \"<kind>\" "
              "or {\"kind\": ..., <params>}):\n%s",
              components.render().c_str());
  std::printf(
      "\ncorrupt cells honor the configured recording mode: realignment, conditions\n"
      "and the recovery scan replay from a corruption-anchored look-back window\n"
      "(+/-window waves around the corruption wave). An under-sized window is a\n"
      "hard error naming the lost waves -- there is no silent fallback to full\n"
      "recording. See docs/scaling.md, 'Realignment at scale'.\n");

  Table gates({"engine gate", "fast", "reference", "summary"});
  for (const EngineGateDesc& desc : engine_gate_descs()) {
    gates.row().add(desc.name).add(desc.fast_value).add(desc.reference_value).add(desc.summary);
  }
  std::printf("\nengine gates (EngineOptions; performance only -- every combination "
              "produces bit-identical results):\n%s",
              gates.render().c_str());
  return 0;
}

int describe_component(const std::string& kind) {
  bool found = false;
  for (const ComponentDesc& desc : all_component_descs()) {
    if (desc.kind != kind) continue;
    found = true;
    std::printf("%s '%s' (config key \"%s\")\n  %s\n", desc.dimension.c_str(),
                desc.kind.c_str(), desc.config_key.c_str(), desc.summary.c_str());
    if (desc.params.empty()) {
      std::printf("  parameters: none\n");
    } else {
      Table params({"parameter", "type", "default", "description"});
      for (const ParamInfo& info : desc.params) {
        params.row()
            .add(info.name)
            .add(param_type_name(info.type))
            .add(info.default_value.dump())
            .add(info.description);
      }
      std::printf("%s", params.render().c_str());
    }
    std::printf("\n");
  }
  // Engine gates share the --describe namespace: they are not scenario
  // components (they never appear in configs or JSONL), but users discover
  // them through the same --list table.
  for (const EngineGateDesc& desc : engine_gate_descs()) {
    if (desc.name != kind) continue;
    found = true;
    std::printf("engine gate '%s' (EngineOptions; performance only, results are "
                "bit-identical)\n  %s\n  fast engine: %s, reference engine: %s\n\n",
                desc.name.c_str(), desc.summary.c_str(), desc.fast_value.c_str(),
                desc.reference_value.c_str());
  }
  if (!found) {
    std::string valid;
    for (const ComponentDesc& desc : all_component_descs()) {
      if (!valid.empty()) valid += ", ";
      valid += desc.kind;
    }
    for (const EngineGateDesc& desc : engine_gate_descs()) {
      valid += ", " + desc.name;
    }
    std::fprintf(stderr, "error: no registered component named '%s' (valid: %s)\n",
                 kind.c_str(), valid.c_str());
    return 2;
  }
  return 0;
}

int export_builtins(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const BuiltinInfo& info : builtin_scenarios()) {
    const Json doc = builtin_scenario_doc(info.name);
    const std::filesystem::path path =
        std::filesystem::path(dir) / (std::string(info.name) + ".json");
    write_file(path, doc.dump(2) + "\n");
    std::printf("wrote %s\n", path.string().c_str());
  }
  return 0;
}

Scenario load_scenario(const std::string& ref) {
  if (is_builtin_scenario(ref)) return builtin_scenario(ref);
  return Scenario::from_file(ref);
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"list", "dry-run", "quiet", "help", "telemetry", "progress", "resume"});
  const Usage usage = make_usage(flags.program());
  // Reject typos ("--thread=1") instead of silently using defaults; the
  // accepted set is exactly what --help documents.
  const std::vector<std::string> known = usage.flag_names();
  for (const std::string& name : flags.names()) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "error: unknown flag --%s (see --help)\n", name.c_str());
      return 2;
    }
  }
  if (flags.get_bool("help", false)) {
    std::fputs(usage.str().c_str(), stdout);
    return 0;
  }
  if (flags.get_bool("list", false)) return list_builtins();
  if (flags.has("describe")) {
    const std::string kind = flags.get_string("describe", "");
    if (kind.empty() || kind == "true") {
      std::fputs("error: --describe requires a component kind (--describe=KIND)\n", stderr);
      return 2;
    }
    return describe_component(kind);
  }
  if (flags.has("export")) {
    const std::string dir = flags.get_string("export", "");
    // A bare "--export" parses as the boolean value "true" -- demand a real
    // directory rather than silently creating one named "true".
    if (dir.empty() || dir == "true") {
      std::fputs("error: --export requires a directory (--export=DIR)\n", stderr);
      return 2;
    }
    return export_builtins(dir);
  }

  const std::vector<std::string>& refs = flags.positional();
  if (refs.empty()) {
    std::fputs(usage.str().c_str(), stderr);
    std::fputs("\nerror: no scenario given\n", stderr);
    return 2;
  }

  const std::int64_t threads = flags.get_int("threads", 0);
  if (threads < 0 || threads > 1024) {
    std::fprintf(stderr, "error: --threads must be in [0, 1024], got %lld\n",
                 static_cast<long long>(threads));
    return 2;
  }
  const std::int64_t shards = flags.get_int("shards", 0);
  if (shards < 0 || shards > 4096) {
    std::fprintf(stderr, "error: --shards must be in [0, 4096], got %lld\n",
                 static_cast<long long>(shards));
    return 2;
  }
  CampaignOptions options;
  options.threads = static_cast<unsigned>(threads);
  options.shards = static_cast<std::uint32_t>(shards);
  if (flags.has("recording")) {
    const std::string mode = flags.get_string("recording", "");
    if (mode.empty() || mode == "true") {
      std::fputs("error: --recording requires a mode (--recording=streaming)\n", stderr);
      return 2;
    }
    options.recording_override = ComponentSpec::of(mode);
    if (flags.has("recording-window")) {
      recording_registry().set_param(options.recording_override, "window",
                                     Json(flags.get_int("recording-window", 0)));
    }
    // Validate eagerly so an unknown mode OR out-of-range window fails
    // before any scenario runs (canonicalize checks names and types only;
    // resolve_recording runs the factory's range checks).
    options.recording_override = recording_registry().canonicalize(options.recording_override);
    (void)resolve_recording(options.recording_override);
  } else if (flags.has("recording-window")) {
    std::fputs("error: --recording-window needs --recording=MODE\n", stderr);
    return 2;
  }
  options.telemetry = flags.get_bool("telemetry", false);
  const std::string trace_out = flags.get_string("trace-out", "");
  if (flags.has("trace-out") && (trace_out.empty() || trace_out == "true")) {
    std::fputs("error: --trace-out requires a file path (--trace-out=FILE)\n", stderr);
    return 2;
  }
  if (flags.has("progress")) {
    // Bare "--progress" parses as the boolean value "true": default cadence.
    const std::string raw = flags.get_string("progress", "");
    options.progress_seconds = raw == "true" ? 2.0 : flags.get_double("progress", 2.0);
    if (!(options.progress_seconds > 0.0)) {
      std::fputs("error: --progress needs a positive interval in seconds\n", stderr);
      return 2;
    }
  }
  const std::string checkpoint_dir = flags.get_string("checkpoint-dir", "");
  if (flags.has("checkpoint-dir") && (checkpoint_dir.empty() || checkpoint_dir == "true")) {
    std::fputs("error: --checkpoint-dir requires a directory (--checkpoint-dir=DIR)\n", stderr);
    return 2;
  }
  options.checkpoint.every = 4000.0;
  if (flags.has("checkpoint-every")) {
    if (checkpoint_dir.empty()) {
      std::fputs("error: --checkpoint-every needs --checkpoint-dir=DIR\n", stderr);
      return 2;
    }
    const std::string raw = flags.get_string("checkpoint-every", "");
    options.checkpoint.every = raw == "true" ? 0.0 : flags.get_double("checkpoint-every", 0.0);
    if (!(options.checkpoint.every > 0.0)) {
      std::fputs("error: --checkpoint-every needs a positive simulated-time interval\n",
                 stderr);
      return 2;
    }
  }
  options.checkpoint.resume = flags.get_bool("resume", false);
  if (options.checkpoint.resume && checkpoint_dir.empty()) {
    std::fputs("error: --resume needs --checkpoint-dir=DIR\n", stderr);
    return 2;
  }
  if (!kObsCompiled && (options.telemetry || !trace_out.empty())) {
    std::fputs("error: this binary was built with GTRIX_OBS=OFF; rebuild with "
               "telemetry compiled in to use --telemetry/--trace-out\n",
               stderr);
    return 2;
  }
  const std::string out_dir = flags.get_string("out", "campaign-out");
  const bool dry_run = flags.get_bool("dry-run", false);
  const bool quiet = flags.get_bool("quiet", false);

  TraceCollector trace_collector;
  if (!trace_out.empty()) options.trace = &trace_collector;

  if (!dry_run) std::filesystem::create_directories(out_dir);

  Table table({"scenario", "cells", "local p95", "local max", "within Thm1.1",
               "wall s", "output"});
  std::vector<std::string> seen_names;
  for (const std::string& ref : refs) {
    const Scenario scenario = load_scenario(ref);
    // Output files are keyed by the scenario's internal name; two inputs
    // sharing one name would silently clobber each other's results.
    if (std::find(seen_names.begin(), seen_names.end(), scenario.name()) !=
        seen_names.end()) {
      std::fprintf(stderr, "error: duplicate scenario name '%s' (from %s)\n",
                   scenario.name().c_str(), ref.c_str());
      return 2;
    }
    seen_names.push_back(scenario.name());
    if (dry_run) {
      std::printf("%s: %zu cells\n", scenario.name().c_str(), scenario.cell_count());
      for (const ScenarioCell& cell : scenario.cells()) {
        std::printf("  %s\n", cell.label.c_str());
      }
      continue;
    }

    // Checkpoint artifacts are keyed per scenario: cell keys are positional
    // within one scenario, so two scenarios must never share a directory.
    if (!checkpoint_dir.empty()) {
      options.checkpoint.dir =
          (std::filesystem::path(checkpoint_dir) / scenario.name()).string();
    }
    const CampaignResult result = run_campaign(scenario, options);
    // Next scenario's cells get fresh trace pids (pid 1 stays the shared
    // campaign-level track).
    options.trace_pid_base += static_cast<std::uint32_t>(result.cells.size());
    const std::filesystem::path jsonl_path =
        std::filesystem::path(out_dir) / (result.scenario + ".jsonl");
    const std::filesystem::path summary_path =
        std::filesystem::path(out_dir) / (result.scenario + ".summary.json");
    write_file(jsonl_path, campaign_jsonl(result));
    const Json summary = campaign_summary(result);
    write_file(summary_path, summary.dump(2) + "\n");

    // Percentiles are null (not 0.0) for empty sample sets; render a dash.
    const auto pct = [&](const char* key) -> std::string {
      const Json& v = summary.at("local_skew").at(key);
      return v.is_null() ? "-" : format_double(v.as_double(), 1);
    };
    table.row()
        .add(result.scenario)
        .add(static_cast<std::uint64_t>(result.cells.size()))
        .add(pct("p95"))
        .add(pct("max"))
        .add(std::to_string(summary.at("cells_within_thm11_bound").as_int()) + "/" +
             std::to_string(result.cells.size()))
        .add(result.wall_seconds, 2)
        .add(jsonl_path.string());
  }
  if (!dry_run && options.trace != nullptr) {
    write_file(trace_out, trace_collector.to_json().dump() + "\n");
    std::printf("wrote %s (%zu trace events; open in ui.perfetto.dev)\n", trace_out.c_str(),
                trace_collector.event_count());
  }
  if (!dry_run && !quiet) std::printf("%s", table.render().c_str());
  return 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) {
  try {
    return gtrix::run(argc, argv);
  } catch (const gtrix::CkptError& e) {
    // Truncated / corrupt / version- or config-mismatched checkpoint
    // artifacts are a usage-level failure with a path-qualified message,
    // not a crash: exit 2, like every other validation error.
    std::fprintf(stderr, "gtrix_campaign: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtrix_campaign: %s\n", e.what());
    return 1;
  }
}
