// gtrix_serve: long-running campaign job-queue service (docs/checkpointing.md).
//
//   gtrix_serve --spool=SPOOL                 poll SPOOL/jobs/ forever
//   gtrix_serve --spool=SPOOL --once          drain the queue, then exit
//   gtrix_serve --spool=SPOOL --stdin         accept jobs as JSON lines
//
// Jobs are scenario documents dropped into SPOOL/jobs/<name>.json (or
// submitted over stdin as {"name": ..., "scenario": {...}}). Results land in
// SPOOL/results/ -- <name>.jsonl plus <name>.summary.json, the summary being
// the completion marker. Cells checkpoint into SPOOL/state/<name>/ while
// running, so the server can be SIGKILLed at any instant and restarted:
// completed jobs are never re-run (their bytes stay untouched), interrupted
// jobs resume from their newest snapshots and reproduce the exact output an
// uninterrupted run would have written.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "obs/telemetry.hpp"
#include "runner/serve.hpp"
#include "support/flags.hpp"

namespace gtrix {
namespace {

Usage make_usage(const std::string& program) {
  Usage usage(program, "Serve Gradient TRIX campaign jobs from a spool directory.");
  usage.flag("--spool=DIR",
             "spool root: jobs/ queue, state/ checkpoints, results/ outputs "
             "(created if missing)");
  usage.flag("--threads=N", "sweep worker threads per job (default 0 = all cores)");
  usage.flag("--shards=N", "engine shards per cell (default 0 = scenario default)");
  usage.flag("--checkpoint-every=T",
             "simulated time between per-cell snapshots (default 4000 = two "
             "nominal waves)");
  usage.flag("--telemetry", "harvest engine telemetry per job (docs/observability.md)");
  usage.flag("--progress=SECONDS",
             "live heartbeat on stderr every SECONDS (bare --progress = 2)");
  usage.flag("--once", "process every queued job, then exit instead of polling");
  usage.flag("--poll-seconds=S", "queue re-scan cadence when idle (default 1)");
  usage.flag("--stdin",
             "accept jobs as JSON lines on stdin ({\"name\": ..., \"scenario\": "
             "{...}}); each is spooled atomically, then run; EOF drains and exits");
  usage.flag("--help", "show this help");
  return usage;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv, {"help", "telemetry", "once", "stdin", "progress"});
  const Usage usage = make_usage(flags.program());
  const std::vector<std::string> known = usage.flag_names();
  for (const std::string& name : flags.names()) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "error: unknown flag --%s (see --help)\n", name.c_str());
      return 2;
    }
  }
  if (flags.get_bool("help", false)) {
    std::fputs(usage.str().c_str(), stdout);
    return 0;
  }
  if (!flags.positional().empty()) {
    std::fprintf(stderr, "error: unexpected argument '%s' (jobs are spooled, not given "
                 "on the command line; see --help)\n",
                 flags.positional().front().c_str());
    return 2;
  }

  ServeOptions options;
  options.spool = flags.get_string("spool", "");
  if (options.spool.empty() || options.spool == "true") {
    std::fputs("error: --spool requires a directory (--spool=DIR)\n", stderr);
    return 2;
  }
  const std::int64_t threads = flags.get_int("threads", 0);
  if (threads < 0 || threads > 1024) {
    std::fprintf(stderr, "error: --threads must be in [0, 1024], got %lld\n",
                 static_cast<long long>(threads));
    return 2;
  }
  options.threads = static_cast<unsigned>(threads);
  const std::int64_t shards = flags.get_int("shards", 0);
  if (shards < 0 || shards > 4096) {
    std::fprintf(stderr, "error: --shards must be in [0, 4096], got %lld\n",
                 static_cast<long long>(shards));
    return 2;
  }
  options.shards = static_cast<std::uint32_t>(shards);
  if (flags.has("checkpoint-every")) {
    options.checkpoint_every = flags.get_double("checkpoint-every", 0.0);
    if (!(options.checkpoint_every > 0.0)) {
      std::fputs("error: --checkpoint-every needs a positive simulated-time interval\n",
                 stderr);
      return 2;
    }
  }
  options.telemetry = flags.get_bool("telemetry", false);
  if (!kObsCompiled && options.telemetry) {
    std::fputs("error: this binary was built with GTRIX_OBS=OFF; rebuild with "
               "telemetry compiled in to use --telemetry\n",
               stderr);
    return 2;
  }
  if (flags.has("progress")) {
    const std::string raw = flags.get_string("progress", "");
    options.progress_seconds = raw == "true" ? 2.0 : flags.get_double("progress", 2.0);
    if (!(options.progress_seconds > 0.0)) {
      std::fputs("error: --progress needs a positive interval in seconds\n", stderr);
      return 2;
    }
  }
  options.once = flags.get_bool("once", false);
  if (flags.has("poll-seconds")) {
    options.poll_seconds = flags.get_double("poll-seconds", 1.0);
    if (!(options.poll_seconds > 0.0)) {
      std::fputs("error: --poll-seconds needs a positive interval\n", stderr);
      return 2;
    }
  }
  const bool use_stdin = flags.get_bool("stdin", false);

  const ServeReport report =
      run_serve(options, use_stdin ? &std::cin : nullptr, std::cout);
  // Failed jobs are recorded and reported, not fatal to the SERVICE -- but a
  // drain that saw failures still exits nonzero so CI notices.
  return report.failed > 0 ? 1 : 0;
}

}  // namespace
}  // namespace gtrix

int main(int argc, char** argv) {
  try {
    return gtrix::run(argc, argv);
  } catch (const gtrix::CkptError& e) {
    std::fprintf(stderr, "gtrix_serve: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtrix_serve: %s\n", e.what());
    return 1;
  }
}
