// Process-memory sampling: the ONE code path for peak-RSS numbers.
//
// bench_scale's forked-child measurements and campaign engine_stats both
// report through peak_rss_mb(), so "peak RSS" means the same thing in every
// artifact (getrusage ru_maxrss, the kernel's high-water mark for the
// calling process).
#pragma once

namespace gtrix {

/// Peak resident set size of this process in MB (ru_maxrss); 0.0 when the
/// platform offers no measurement.
double peak_rss_mb();

/// Current resident set size in MB (/proc/self/statm); 0.0 when
/// unavailable. Informational only -- never part of any gate.
double current_rss_mb();

}  // namespace gtrix
