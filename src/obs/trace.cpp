#include "obs/trace.hpp"

#include <thread>
#include <utility>

namespace gtrix {

void TraceCollector::add_complete(std::uint32_t pid, std::uint32_t tid, std::string name,
                                  double ts_us, double dur_us, std::int64_t arg_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(Span{pid, tid, std::move(name), ts_us, dur_us, arg_events});
}

void TraceCollector::set_process_name(std::uint32_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  names_.push_back(Name{false, pid, 0, std::move(name)});
}

void TraceCollector::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                     std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  names_.push_back(Name{true, pid, tid, std::move(name)});
}

std::uint32_t TraceCollector::tid_for_current_thread() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, tid] : thread_tids_) {
    if (id == self) return tid;
  }
  const std::uint32_t tid = static_cast<std::uint32_t>(thread_tids_.size());
  thread_tids_.emplace_back(self, tid);
  return tid;
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size() + names_.size();
}

Json TraceCollector::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json events = Json::array();
  // Metadata first: viewers apply process/thread names to subsequent rows.
  for (const Name& n : names_) {
    Json m = Json::object();
    m.set("name", n.is_thread ? "thread_name" : "process_name");
    m.set("ph", "M");
    m.set("pid", n.pid);
    if (n.is_thread) m.set("tid", n.tid);
    Json args = Json::object();
    args.set("name", n.name);
    m.set("args", std::move(args));
    events.push_back(std::move(m));
  }
  for (const Span& s : spans_) {
    Json e = Json::object();
    e.set("name", s.name);
    e.set("cat", "sim");
    e.set("ph", "X");
    e.set("ts", s.ts_us);
    e.set("dur", s.dur_us);
    e.set("pid", s.pid);
    e.set("tid", s.tid);
    if (s.arg_events >= 0) {
      Json args = Json::object();
      args.set("events", s.arg_events);
      e.set("args", std::move(args));
    }
    events.push_back(std::move(e));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

}  // namespace gtrix
