// Chrome trace-event collection (docs/observability.md, "Timelines").
//
// TraceCollector accumulates complete ("ph":"X") spans plus process/thread
// name metadata and serializes the standard trace-event JSON object format
// ({"traceEvents": [...]}), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing and validated by tools/trace_summary.py.
//
// Layout convention for campaign traces:
//  * pid 1 = the campaign itself; one tid per sweep worker thread, one span
//    per cell (name = cell label, args.events = logical events).
//  * pid 2+i = cell i; tid = shard index inside the cell. Sharded runs emit
//    a "window"/"drain" span per conservative window per shard and a
//    "barrier" span for the time parked at the window barrier; serial runs
//    emit the run_cell phase spans ("run", "corrupt", "realign", ...) on
//    tid 0.
//
// Thread safety: add_complete / set_*_name / tid_for_current_thread take a
// mutex. Spans are recorded per window / per cell phase -- hundreds per
// second, not per event -- so contention is irrelevant; what matters is
// that shard workers and sweep workers can append concurrently.
//
// Timestamps are microseconds since the collector's construction, measured
// on the steady clock -- wall-clock data, so traces are never part of any
// determinism contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace gtrix {

class TraceCollector {
 public:
  TraceCollector() : t0_(std::chrono::steady_clock::now()) {}

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Microseconds elapsed since construction (the trace time base).
  double now_us() const { return us_at(std::chrono::steady_clock::now()); }

  /// Converts a caller-captured steady-clock point to the trace time base
  /// (instrumentation sites capture time points once and stamp spans later).
  double us_at(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - t0_).count();
  }

  /// Records a complete span [ts_us, ts_us + dur_us). `arg_events >= 0`
  /// attaches an args.events payload (events executed in the span).
  void add_complete(std::uint32_t pid, std::uint32_t tid, std::string name,
                    double ts_us, double dur_us, std::int64_t arg_events = -1);

  void set_process_name(std::uint32_t pid, std::string name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid, std::string name);

  /// Stable small tid for the calling OS thread (first come, first
  /// numbered) -- sweep workers have no natural index, Chrome tids must be
  /// integers.
  std::uint32_t tid_for_current_thread();

  std::size_t event_count() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}.
  Json to_json() const;

 private:
  struct Span {
    std::uint32_t pid;
    std::uint32_t tid;
    std::string name;
    double ts_us;
    double dur_us;
    std::int64_t arg_events;  ///< < 0: no args
  };
  struct Name {
    bool is_thread;
    std::uint32_t pid;
    std::uint32_t tid;
    std::string name;
  };

  std::chrono::steady_clock::time_point t0_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::vector<Name> names_;
  std::vector<std::pair<std::thread::id, std::uint32_t>> thread_tids_;
};

}  // namespace gtrix
