#include "obs/telemetry.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace gtrix {

namespace {

constexpr ObsCounterInfo kCatalog[] = {
    {ObsCounter::kLogicalEvents, "logical_events", true,
     "executed events minus delivery events plus delivered messages; the "
     "engine-invariant unit of simulation work"},
    {ObsCounter::kMessagesSent, "messages_sent", true,
     "pulses sent over network edges"},
    {ObsCounter::kMessagesDelivered, "messages_delivered", true,
     "pulses delivered to sinks"},
    {ObsCounter::kNodeIterations, "node_iterations", true,
     "algorithm node iterations"},
    {ObsCounter::kTimerCancels, "timer_cancels", true,
     "successful timer cancellations issued by node code"},
    {ObsCounter::kPulsesRecorded, "pulses_recorded", true,
     "pulses recorded by the metrics recorder"},
    {ObsCounter::kRealignShiftedNodes, "realign_shifted_nodes", true,
     "nodes whose wave labels post-run realignment shifted (corrupt cells; "
     "0 elsewhere)"},
    {ObsCounter::kCorruptPinnedPulses, "corrupt_pinned_pulses", true,
     "pulses retained by the corruption-anchored pin box of the windowed/"
     "streaming recorder (0 under full recording)"},
    {ObsCounter::kEventsExecuted, "events_executed", false,
     "raw queue events popped; depends on broadcast batching and the shard "
     "plan's cross-shard fan-out splitting"},
    {ObsCounter::kEventsScheduled, "events_scheduled", false,
     "raw queue events scheduled (includes later-cancelled ones)"},
    {ObsCounter::kEventsPurged, "events_purged", false,
     "lazy-cancelled entries physically removed by scan skims and purge "
     "rebuilds"},
    {ObsCounter::kCalendarRebuilds, "calendar_rebuilds", false,
     "calendar-queue resize/purge rebuilds"},
    {ObsCounter::kShardWindows, "shard_windows", false,
     "conservative windows executed, summed over shards (0 on serial runs)"},
    {ObsCounter::kEnvelopesPublished, "envelopes_published", false,
     "cross-shard envelopes handed from senders to receivers at barriers"},
    {ObsCounter::kEnvelopesDrained, "envelopes_drained", false,
     "cross-shard envelopes drained into receiver queues"},
};

static_assert(std::size(kCatalog) == kObsCounterCount,
              "every ObsCounter needs a catalog row");

}  // namespace

std::span<const ObsCounterInfo> obs_counter_catalog() {
  // The enum indexes straight into the table; keep them aligned.
  for (std::size_t i = 0; i < kObsCounterCount; ++i) {
    GTRIX_DEBUG_CHECK(static_cast<std::size_t>(kCatalog[i].id) == i);
  }
  return kCatalog;
}

std::size_t ObsHistogram::bin_of(std::uint64_t v) {
  if (v == 0) return 0;
  // Value v (>= 1) has bit_width w, so v is in [2^(w-1), 2^w): bin w.
  const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
  return std::min(w, kBins - 1);
}

std::uint64_t ObsHistogram::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts_) sum += c;
  return sum;
}

Json ObsHistogram::to_json() const {
  Json floors = Json::array();
  Json counts = Json::array();
  for (std::size_t i = 0; i < kBins; ++i) {
    floors.push_back(static_cast<std::int64_t>(bin_floor(i)));
    counts.push_back(static_cast<std::int64_t>(counts_[i]));
  }
  Json j = Json::object();
  j.set("bin_floors", std::move(floors));
  j.set("counts", std::move(counts));
  return j;
}

Json EngineStats::invariant_json() const {
  Json j = Json::object();
  for (const ObsCounterInfo& info : obs_counter_catalog()) {
    if (!info.engine_invariant) continue;
    j.set(info.name, static_cast<std::int64_t>(get(info.id)));
  }
  return j;
}

Json EngineStats::summary_json() const {
  Json j = Json::object();
  for (const ObsCounterInfo& info : obs_counter_catalog()) {
    j.set(info.name, static_cast<std::int64_t>(get(info.id)));
  }
  j.set("window_events", window_events.to_json());
  Json shard_rows = Json::array();
  for (const EngineShardStats& s : shards) {
    Json row = Json::object();
    row.set("windows", static_cast<std::int64_t>(s.windows));
    row.set("envelopes_drained", static_cast<std::int64_t>(s.envelopes_drained));
    row.set("busy_seconds", s.busy_seconds);
    row.set("barrier_wait_seconds", s.barrier_wait_seconds);
    shard_rows.push_back(std::move(row));
  }
  j.set("shards", std::move(shard_rows));
  j.set("run_wall_seconds", run_wall_seconds);
  j.set("peak_rss_mb", peak_rss_mb);
  if (checkpoints_written + checkpoints_restored + cells_resumed_done > 0) {
    Json ckpt = Json::object();
    ckpt.set("written", static_cast<std::int64_t>(checkpoints_written));
    ckpt.set("bytes", static_cast<std::int64_t>(checkpoint_bytes));
    ckpt.set("restored", static_cast<std::int64_t>(checkpoints_restored));
    ckpt.set("cells_resumed_done", static_cast<std::int64_t>(cells_resumed_done));
    ckpt.set("write_seconds", checkpoint_write_seconds);
    ckpt.set("restore_seconds", checkpoint_restore_seconds);
    j.set("checkpoint", std::move(ckpt));
  }
  return j;
}

void EngineStats::merge(const EngineStats& other) {
  if (!other.enabled) return;
  enabled = true;
  for (std::size_t i = 0; i < kObsCounterCount; ++i) counters[i] += other.counters[i];
  window_events.merge(other.window_events);
  if (shards.size() < other.shards.size()) shards.resize(other.shards.size());
  for (std::size_t s = 0; s < other.shards.size(); ++s) {
    shards[s].windows += other.shards[s].windows;
    shards[s].envelopes_drained += other.shards[s].envelopes_drained;
    shards[s].busy_seconds += other.shards[s].busy_seconds;
    shards[s].barrier_wait_seconds += other.shards[s].barrier_wait_seconds;
  }
  run_wall_seconds += other.run_wall_seconds;
  peak_rss_mb = std::max(peak_rss_mb, other.peak_rss_mb);
  checkpoints_written += other.checkpoints_written;
  checkpoint_bytes += other.checkpoint_bytes;
  checkpoints_restored += other.checkpoints_restored;
  cells_resumed_done += other.cells_resumed_done;
  checkpoint_write_seconds += other.checkpoint_write_seconds;
  checkpoint_restore_seconds += other.checkpoint_restore_seconds;
}

void Telemetry::harvest_into(EngineStats& out) const {
  if (out.shards.size() < lanes_.size()) out.shards.resize(lanes_.size());
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    const Lane& lane = lanes_[s];
    out.add(ObsCounter::kShardWindows, lane.windows);
    out.window_events.merge(lane.window_events);
    out.shards[s].windows += lane.windows;
    out.shards[s].busy_seconds += lane.busy_seconds;
    out.shards[s].barrier_wait_seconds += lane.barrier_wait_seconds;
  }
}

}  // namespace gtrix
