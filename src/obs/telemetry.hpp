// Engine telemetry: the counter/histogram registry behind EngineOptions::
// telemetry (docs/observability.md).
//
// Determinism discipline -- the part that makes telemetry safe to embed in
// campaign JSONL: every counter in the catalog is tagged either
//  * engine-invariant: the value is identical for EVERY EngineOptions
//    combination (scheduler kind, batching, shard count, sweep threads),
//    because it counts behaviour the engine gates provably preserve --
//    algorithm-issued timer cancels, recorded pulses, logical events. Only
//    these fields appear in the per-cell `engine_stats` JSONL block, so the
//    CI byte-identity diffs across (threads, shards) keep holding with
//    telemetry on; or
//  * engine-shaped: deterministic for a FIXED engine config but dependent
//    on it (raw executed events, lazy-cancel purges, window counts, mailbox
//    envelopes). These live only in the summary JSON, next to the equally
//    non-portable wall_seconds.
// Wall-clock data (per-shard busy / barrier-wait seconds, peak RSS) is not
// a counter at all and is likewise summary/trace-only.
//
// Collection is pull-based: the hot paths (event queue, network) keep their
// existing always-on O(1) counters and World::engine_stats() harvests them
// after the run, so enabling telemetry adds NO per-event work. The only
// push-style instrumentation is per-WINDOW in the shard driver, which
// writes into one Telemetry lane per shard (own cache line, own writer) --
// merged here in fixed lane order, so the merge is deterministic.
//
// Compile-time kill switch: configuring with -DGTRIX_OBS=OFF removes the
// GTRIX_OBS macro, kObsCompiled turns false, and World never allocates
// telemetry state nor hands the shard driver an observer -- the disabled
// path is the pre-telemetry binary.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "support/json.hpp"

namespace gtrix {

#ifdef GTRIX_OBS
inline constexpr bool kObsCompiled = true;
#else
inline constexpr bool kObsCompiled = false;
#endif

/// Every telemetry counter. Order is the (stable) export order.
enum class ObsCounter : std::uint32_t {
  // --- engine-invariant: safe for the JSONL engine_stats block ------------
  kLogicalEvents,     ///< executed - delivery_events + delivered (see campaign)
  kMessagesSent,      ///< pulses sent over network edges
  kMessagesDelivered, ///< pulses arriving at sinks
  kNodeIterations,    ///< algorithm node iterations
  kTimerCancels,      ///< successful timer cancellations issued by node code
  kPulsesRecorded,    ///< pulses recorded by the metrics recorder
  kRealignShiftedNodes, ///< nodes whose wave labels realignment shifted
  kCorruptPinnedPulses, ///< pulses pinned by the corruption-anchored retention box
  // --- engine-shaped: summary JSON only -----------------------------------
  kEventsExecuted,    ///< raw queue events popped (batching/shard dependent)
  kEventsScheduled,   ///< raw queue events scheduled
  kEventsPurged,      ///< lazy-cancelled entries physically removed by skims/rebuilds
  kCalendarRebuilds,  ///< calendar-queue resize/purge rebuilds
  kShardWindows,      ///< conservative windows executed, summed over shards
  kEnvelopesPublished,///< cross-shard envelopes handed over at barriers
  kEnvelopesDrained,  ///< cross-shard envelopes drained into receiver queues
  kCount,
};

inline constexpr std::size_t kObsCounterCount =
    static_cast<std::size_t>(ObsCounter::kCount);

struct ObsCounterInfo {
  ObsCounter id;
  const char* name;        ///< JSON key / catalog name
  bool engine_invariant;   ///< true: identical across every engine config
  const char* summary;
};

/// The full catalog, in ObsCounter order (docs/observability.md renders it).
std::span<const ObsCounterInfo> obs_counter_catalog();

/// Fixed-layout power-of-two histogram: bin 0 holds the value 0, bin i
/// (1 <= i < kBins-1) holds [2^(i-1), 2^i), the last bin is the overflow
/// tail. The edges are compile-time constants -- never fitted to data -- so
/// merging histograms bin-wise is exact and the layout is stable across
/// runs, shard counts and releases (tests/test_obs.cpp pins the edges).
class ObsHistogram {
 public:
  static constexpr std::size_t kBins = 16;

  /// Inclusive lower edge of bin i: 0, 1, 2, 4, 8, ..., 2^(kBins-2).
  static constexpr std::uint64_t bin_floor(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  static std::size_t bin_of(std::uint64_t v);

  void add(std::uint64_t v) { ++counts_[bin_of(v)]; }
  void merge(const ObsHistogram& other) {
    for (std::size_t i = 0; i < kBins; ++i) counts_[i] += other.counts_[i];
  }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  /// Direct bin write (bounds-checked) -- used when deserializing a
  /// previously exported histogram (runner/result_io.cpp).
  void set_count(std::size_t bin, std::uint64_t v) { counts_.at(bin) = v; }
  std::uint64_t total() const;

  /// {"bin_floors": [...], "counts": [...]} -- floors emitted so consumers
  /// never have to hard-code the layout.
  Json to_json() const;

 private:
  std::array<std::uint64_t, kBins> counts_{};
};

/// Per-shard slice of a sharded run's telemetry (summary/trace only: window
/// counts and wall times depend on the shard layout and the host).
struct EngineShardStats {
  std::uint64_t windows = 0;
  std::uint64_t envelopes_drained = 0;
  double busy_seconds = 0.0;          ///< executing windows (incl. mailbox drain)
  double barrier_wait_seconds = 0.0;  ///< parked at the window barrier
};

/// One run's harvested telemetry. Default-constructed == telemetry disabled
/// (enabled == false, everything zero) -- what World::engine_stats() returns
/// when the gate is off or the subsystem is compiled out.
struct EngineStats {
  bool enabled = false;
  std::array<std::uint64_t, kObsCounterCount> counters{};
  /// Events executed per conservative window (sharded runs only).
  ObsHistogram window_events;
  std::vector<EngineShardStats> shards;  ///< empty on serial runs
  double run_wall_seconds = 0.0;         ///< wall time inside run_* calls
  double peak_rss_mb = 0.0;              ///< process peak RSS at harvest time

  // Checkpoint activity (runner-level, filled by the checkpointed cell
  // runner -- docs/checkpointing.md). Snapshot sizes and wall times are
  // host/engine-shaped, so the block is summary-only, like wall_seconds.
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;       ///< total snapshot bytes written
  std::uint64_t checkpoints_restored = 0;   ///< resumes from a snapshot
  std::uint64_t cells_resumed_done = 0;     ///< cells satisfied from done files
  double checkpoint_write_seconds = 0.0;
  double checkpoint_restore_seconds = 0.0;

  std::uint64_t get(ObsCounter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  void set(ObsCounter c, std::uint64_t v) {
    counters[static_cast<std::size_t>(c)] = v;
  }
  void add(ObsCounter c, std::uint64_t v) {
    counters[static_cast<std::size_t>(c)] += v;
  }

  /// The JSONL block: engine-invariant counters ONLY, in catalog order.
  /// Byte-identical across every (threads, shards) combination -- the CI
  /// determinism diffs and tests/test_obs.cpp enforce it.
  Json invariant_json() const;

  /// The summary block: every counter, the window histogram, per-shard
  /// busy/barrier breakdown, run wall time, peak RSS and -- when any
  /// checkpoint was written or restored -- the checkpoint activity block.
  Json summary_json() const;

  /// Accumulates another run's stats (campaign summary aggregation):
  /// counters and histograms add, wall times add, peak RSS takes the max
  /// (it is a process-wide high-water mark), per-shard rows add index-wise.
  void merge(const EngineStats& other);
};

/// Per-shard telemetry lanes for the shard driver: lane s is written only
/// by shard s's worker thread (own cache line), harvested serially after
/// the run in lane order -- a deterministic merge by construction.
class Telemetry {
 public:
  explicit Telemetry(std::uint32_t lanes) : lanes_(lanes) {}

  struct alignas(64) Lane {
    std::uint64_t windows = 0;
    double busy_seconds = 0.0;
    double barrier_wait_seconds = 0.0;
    ObsHistogram window_events;
  };

  Lane& lane(std::uint32_t i) { return lanes_[i]; }
  std::uint32_t lane_count() const { return static_cast<std::uint32_t>(lanes_.size()); }

  /// Adds lane data into `out` (kShardWindows, window_events, per-shard
  /// busy/barrier seconds). `out.shards` is resized to cover every lane.
  void harvest_into(EngineStats& out) const;

 private:
  std::vector<Lane> lanes_;
};

}  // namespace gtrix
