#include "obs/rss.hpp"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace gtrix {

double peak_rss_mb() {
#if defined(__APPLE__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#elif defined(__unix__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB
#else
  return 0.0;
#endif
}

double current_rss_mb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long long pages_total = 0;
  long long pages_resident = 0;
  const int got = std::fscanf(f, "%lld %lld", &pages_total, &pages_resident);
  std::fclose(f);
  if (got != 2) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(pages_resident) * static_cast<double>(page) /
         (1024.0 * 1024.0);
#else
  return 0.0;
#endif
}

}  // namespace gtrix
