#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>

#include "support/check.hpp"

namespace gtrix {

namespace {

/// "1.82M", "912k", "431" -- enough precision for a heartbeat.
std::string human_rate(double per_sec) {
  char buf[32];
  if (per_sec >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", per_sec / 1e6);
  } else if (per_sec >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fk", per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", per_sec);
  }
  return buf;
}

}  // namespace

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total_cells,
                             double interval_seconds)
    : label_(std::move(label)),
      total_cells_(total_cells),
      started_(std::chrono::steady_clock::now()) {
  GTRIX_CHECK_MSG(interval_seconds > 0.0, "progress interval must be positive");
  thread_ = std::thread([this, interval_seconds] { heartbeat_loop(interval_seconds); });
}

ProgressMeter::~ProgressMeter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  if (done_.load(std::memory_order_relaxed) > 0) print_line();
}

void ProgressMeter::heartbeat_loop(double interval_seconds) {
  const auto interval = std::chrono::duration<double>(interval_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
    print_line();
  }
}

void ProgressMeter::print_line() const {
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t events = events_.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
  const double rate = elapsed > 0.0 ? static_cast<double>(events) / elapsed : 0.0;
  char eta[32];
  if (done == 0 || done >= total_cells_) {
    std::snprintf(eta, sizeof eta, "-");
  } else {
    const double remaining =
        elapsed * static_cast<double>(total_cells_ - done) / static_cast<double>(done);
    std::snprintf(eta, sizeof eta, "%.1fs", remaining);
  }
  std::fprintf(stderr, "[%s] %llu/%llu cells | %s ev/s | %.1fs elapsed | eta %s\n",
               label_.c_str(), static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(total_cells_), human_rate(rate).c_str(),
               elapsed, eta);
}

}  // namespace gtrix
