// Live campaign progress heartbeat (gtrix_campaign --progress[=SECONDS]).
//
// One stderr line per interval:
//
//   [quickstart-grid] 3/8 cells | 1.82M ev/s | 4.1s elapsed | eta 6.8s
//
// The meter is fed from the SweepRunner worker threads (cell_done is two
// relaxed atomic adds -- safe from any thread, nanoseconds of work) and
// printed from its own heartbeat thread, so a stalled cell still heartbeats
// and the workers never block on I/O. Progress is presentation only: it
// writes stderr exclusively, touches no result state, and therefore cannot
// perturb the JSONL determinism contract.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace gtrix {

class ProgressMeter {
 public:
  /// Starts the heartbeat thread; `interval_seconds` > 0. `label` prefixes
  /// every line (the scenario name).
  ProgressMeter(std::string label, std::uint64_t total_cells, double interval_seconds);

  /// Stops the heartbeat thread (prints one final line if any cell ran).
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Reports one finished cell and its logical event count. Thread-safe.
  void cell_done(std::uint64_t logical_events) {
    events_.fetch_add(logical_events, std::memory_order_relaxed);
    done_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  void heartbeat_loop(double interval_seconds);
  void print_line() const;

  std::string label_;
  std::uint64_t total_cells_;
  std::chrono::steady_clock::time_point started_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> events_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace gtrix
