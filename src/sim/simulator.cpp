#include "sim/simulator.hpp"

#include "support/check.hpp"

namespace gtrix {

TimerHandle Simulator::at(SimTime t, TimerTarget* target, std::uint32_t kind,
                          EventPayload payload) {
  GTRIX_CHECK_MSG(t >= now_, "scheduling into the past");
  return queue_.schedule(t, target, kind, payload);
}

TimerHandle Simulator::after(SimTime delay, TimerTarget* target, std::uint32_t kind,
                             EventPayload payload) {
  GTRIX_CHECK_MSG(delay >= 0.0, "negative delay");
  return queue_.schedule(now_ + delay, target, kind, payload);
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t executed = 0;
  if (single_locate_) {
    // run_next_due writes now_ before dispatching, so handlers observe the
    // event's time as now() -- and the loop locates each minimum only once.
    while (queue_.run_next_due(deadline, now_)) {
      ++executed;
    }
  } else {
    // Pre-refactor driver loop (EngineOptions::reference()): a separate
    // minimum location per next_time() and per run_next().
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      now_ = queue_.next_time();
      queue_.run_next();
      ++executed;
    }
  }
  // Advance the cursor so subsequent scheduling is relative to the deadline.
  if (deadline > now_) now_ = deadline;
  return executed;
}

std::uint64_t Simulator::run_before(SimTime horizon) {
  std::uint64_t executed = 0;
  if (single_locate_) {
    while (queue_.run_next_strictly_before(horizon, now_)) {
      ++executed;
    }
  } else {
    while (!queue_.empty() && queue_.next_time() < horizon) {
      now_ = queue_.next_time();
      queue_.run_next();
      ++executed;
    }
  }
  // The whole window [old now, horizon) is settled; scheduling below the
  // horizon from outside an event handler would now be scheduling into the
  // past of a window already executed.
  if (horizon > now_) now_ = horizon;
  return executed;
}

std::uint64_t Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  if (single_locate_) {
    while (!queue_.empty()) {
      GTRIX_CHECK_MSG(executed < max_events, "event budget exhausted");
      queue_.run_next_due(kTimeInfinity, now_);
      ++executed;
    }
  } else {
    while (!queue_.empty()) {
      GTRIX_CHECK_MSG(executed < max_events, "event budget exhausted");
      now_ = queue_.next_time();
      queue_.run_next();
      ++executed;
    }
  }
  return executed;
}

}  // namespace gtrix
