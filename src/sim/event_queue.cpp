#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace gtrix {

namespace {

constexpr std::size_t kMinBuckets = 8;
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

}  // namespace

EventQueue::EventQueue(SchedulerKind kind) : kind_(kind) {
  if (kind_ == SchedulerKind::kCalendar) {
    buckets_.resize(kMinBuckets);
    bucket_mask_ = buckets_.size() - 1;
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kInvalidEventSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  GTRIX_CHECK_MSG(slots_.size() < kInvalidEventSlot, "event slot table overflow");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  slot.target = nullptr;
  ++slot.gen;  // invalidates every outstanding handle and queue entry
  slot.next_free = free_head_;
  free_head_ = index;
}

TimerHandle EventQueue::schedule(SimTime t, TimerTarget* target, std::uint32_t kind,
                                 EventPayload payload) {
  GTRIX_CHECK_MSG(target != nullptr, "event target must not be null");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.payload = payload;
  slot.target = target;
  slot.time = t;
  slot.kind = kind;
  slot.live = true;
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_.push(QueueEntry{t, next_seq_++, 0, index, slot.gen});
  } else {
    calendar_insert(QueueEntry{t, next_seq_++, 0, index, slot.gen});
  }
  ++scheduled_;
  ++live_;
  return TimerHandle{index, slot.gen};
}

bool EventQueue::cancel(TimerHandle handle) {
  if (!pending(handle)) return false;
  if (kind_ == SchedulerKind::kCalendar) {
    // The bucket entry stays until a scan meets it; account it as dead so
    // the purge policy keeps the calendar free of cancelled bulk.
    ++dead_;
    if (peek_.valid) {
      const QueueEntry& cached = buckets_[peek_.bucket][peek_.index];
      if (cached.slot == handle.slot && cached.gen == handle.gen) peek_.valid = false;
    }
  }
  release_slot(handle.slot);
  --live_;
  ++cancelled_;
  if (kind_ == SchedulerKind::kCalendar && dead_ > 64 && dead_ * 2 > entry_count_) {
    calendar_rebuild(kMinBuckets);
  }
  return true;
}

bool EventQueue::pending(TimerHandle handle) const noexcept {
  if (handle.slot == kInvalidEventSlot || handle.slot >= slots_.size()) return false;
  const Slot& slot = slots_[handle.slot];
  return slot.live && slot.gen == handle.gen;
}

SimTime EventQueue::next_time() const {
  GTRIX_CHECK_MSG(live_ > 0, "next_time on empty queue");
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_skim();
    return heap_.top().time;
  }
  GTRIX_CHECK(calendar_find_min());
  return buckets_[peek_.bucket][peek_.index].time;
}

bool EventQueue::run_next() {
  SimTime fired;
  return run_next_due(kTimeInfinity, fired);
}

bool EventQueue::run_next_due(SimTime deadline, SimTime& fired) {
  if (live_ == 0) return false;
  std::uint32_t slot_index;
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_skim();
    if (heap_.top().time > deadline) return false;
    slot_index = heap_.top().slot;
    heap_.pop();
  } else {
    GTRIX_CHECK(calendar_find_min());
    const QueueEntry& top = buckets_[peek_.bucket][peek_.index];
    if (top.time > deadline) return false;
    slot_index = top.slot;
    calendar_pop_peeked();
  }
  Slot& slot = slots_[slot_index];
  const Event event{slot.time, slot.kind, slot.payload};
  TimerTarget* target = slot.target;
  // Recycle before dispatch: the handler may reschedule into this very slot,
  // and the fired handle is stale from the handler's point of view.
  release_slot(slot_index);
  --live_;
  ++executed_;
  fired = event.time;
  target->on_timer(event);
  return true;
}

bool EventQueue::run_next_strictly_before(SimTime horizon, SimTime& fired) {
  if (live_ == 0) return false;
  std::uint32_t slot_index;
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_skim();
    if (heap_.top().time >= horizon) return false;
    slot_index = heap_.top().slot;
    heap_.pop();
  } else {
    GTRIX_CHECK(calendar_find_min());
    const QueueEntry& top = buckets_[peek_.bucket][peek_.index];
    if (top.time >= horizon) return false;
    slot_index = top.slot;
    calendar_pop_peeked();
  }
  Slot& slot = slots_[slot_index];
  const Event event{slot.time, slot.kind, slot.payload};
  TimerTarget* target = slot.target;
  release_slot(slot_index);
  --live_;
  ++executed_;
  fired = event.time;
  target->on_timer(event);
  return true;
}

// --- binary-heap engine ------------------------------------------------------

void EventQueue::heap_skim() const {
  while (!heap_.empty() && stale(heap_.top())) {
    heap_.pop();
    ++purged_;
  }
}

// --- calendar engine ---------------------------------------------------------
//
// Invariants (kCalendar):
//  * an entry with time t lives in bucket epoch_of(t) mod nbuckets;
//  * every bucket is sorted DESCENDING by (time, seq), so the bucket's
//    earliest entry sits at the back and a pop is an O(1) pop_back;
//  * no live entry has an epoch below cur_epoch_ (inserts behind the cursor
//    pull it back), so the year scan starting at cur_epoch_ always meets
//    the global (time, seq) minimum first;
//  * equal times map to equal buckets, so FIFO among ties falls out of the
//    (time, seq) sort order.

long long EventQueue::epoch_of(SimTime t) const noexcept {
  // Multiply by the precomputed inverse: cheaper than dividing, and any
  // rounding difference vs t / width_ is harmless -- the mapping only has
  // to be one deterministic monotone function used consistently.
  return static_cast<long long>(std::floor(t * inv_width_));
}

std::size_t EventQueue::bucket_of_epoch(long long epoch) const noexcept {
  // Bucket count is a power of two; masking the two's-complement epoch
  // equals the positive modulo for negatives as well.
  return static_cast<std::size_t>(static_cast<unsigned long long>(epoch) & bucket_mask_);
}

void EventQueue::calendar_insert(const QueueEntry& entry_in) {
  if (calendar_live() > buckets_.size() * 2) {
    calendar_rebuild(buckets_.size() * 2);
  }
  QueueEntry entry = entry_in;
  entry.epoch = epoch_of(entry.time);  // rebuild above may have changed width
  const long long epoch = entry.epoch;
  const std::size_t b = bucket_of_epoch(epoch);
  std::vector<QueueEntry>& bucket = buckets_[b];
  // Keep the bucket sorted descending by (time, seq): first index whose
  // entry fires before the new one is the insertion point. Buckets hold
  // ~2 entries on average (the rebuild policy pins occupancy), so a linear
  // scan beats binary search here.
  std::size_t pos = 0;
  while (pos < bucket.size() && !fires_before(bucket[pos], entry)) ++pos;
  bucket.insert(bucket.begin() + static_cast<std::ptrdiff_t>(pos), entry);
  ++entry_count_;
  if (peek_.valid && peek_.bucket == b && pos <= peek_.index) ++peek_.index;
  if (epoch < cur_epoch_) {
    // Scheduled behind the scan cursor (a queue used directly before any
    // pop, or after the cursor chased a sparse far-future tail). Pull the
    // cursor back; by the cursor invariant no other live entry sits at an
    // epoch this low, so the new entry is the minimum.
    cur_epoch_ = epoch;
    peek_ = PeekRef{b, pos, true};
#ifdef GTRIX_DEBUG_CHECKS
    // The behind-cursor insert is exactly the spot the EPOCH FRESHNESS
    // INVARIANT (header) protects: after a purge rebuild refit width_, a
    // pre-rebuild epoch would bucket this entry into a year the scan never
    // meets. Walk the whole calendar while the debug build has the chance.
    calendar_verify_epochs();
#endif
  } else if (peek_.valid &&
             fires_before(entry, buckets_[peek_.bucket][peek_.index])) {
    peek_ = PeekRef{b, pos, true};
  }
}

bool EventQueue::calendar_find_min() const {
  if (peek_.valid) return true;
  if (live_ == 0) return false;
  for (std::size_t lap = 0; lap < buckets_.size(); ++lap) {
    const long long epoch = cur_epoch_ + static_cast<long long>(lap);
    std::vector<QueueEntry>& bucket = buckets_[bucket_of_epoch(epoch)];
    // Skim the stale tail; what remains at the back is the bucket's
    // earliest live entry (sorted descending).
    while (!bucket.empty() && stale(bucket.back())) {
      bucket.pop_back();
      --entry_count_;
      --dead_;
      ++purged_;
    }
    if (!bucket.empty() && bucket.back().epoch == epoch) {
      GTRIX_DEBUG_CHECK_MSG(bucket.back().epoch == epoch_of(bucket.back().time),
                            "calendar entry epoch stamped under a stale width");
      cur_epoch_ = epoch;
      peek_ = PeekRef{bucket_of_epoch(epoch), bucket.size() - 1, true};
      return true;
    }
  }
  // A full lap found nothing inside its year window: the population is
  // sparse relative to the calendar span. Fall back to a direct global
  // minimum scan and re-anchor the cursor there.
  return calendar_global_min();
}

bool EventQueue::calendar_global_min() const {
  std::size_t best_bucket = kNoIndex;
  std::size_t best_index = kNoIndex;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    std::vector<QueueEntry>& bucket = buckets_[b];
    // Back-most live entry is the bucket's earliest; stale entries deeper
    // in are left for the purge rebuild.
    for (std::size_t i = bucket.size(); i-- > 0;) {
      if (stale(bucket[i])) continue;
      if (best_bucket == kNoIndex ||
          fires_before(bucket[i], buckets_[best_bucket][best_index])) {
        best_bucket = b;
        best_index = i;
      }
      break;
    }
  }
  if (best_bucket == kNoIndex) return false;
  cur_epoch_ = buckets_[best_bucket][best_index].epoch;
  peek_ = PeekRef{best_bucket, best_index, true};
  return true;
}

void EventQueue::calendar_pop_peeked() {
  std::vector<QueueEntry>& bucket = buckets_[peek_.bucket];
  GTRIX_DEBUG_CHECK_MSG(
      bucket[peek_.index].epoch == epoch_of(bucket[peek_.index].time),
      "popping a calendar entry whose epoch predates the current width");
  // Order-preserving removal; the peeked entry is at or near the back.
  bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(peek_.index));
  --entry_count_;
  peek_.valid = false;
  if (buckets_.size() > kMinBuckets && calendar_live() * 8 < buckets_.size()) {
    calendar_rebuild(kMinBuckets);
  }
}

void EventQueue::calendar_rebuild(std::size_t min_buckets) {
  // Collect the live population and fit the calendar to it: bucket count ~
  // the next power of two above the population (about one entry per bucket)
  // and width ~ twice the mean gap between pending event times, so one
  // year spans the whole pending window. Bucket vectors are reused (only
  // cleared), so a purge rebuild performs no per-bucket reallocation.
  ++rebuilds_;
  std::vector<QueueEntry>& entries = rebuild_scratch_;
  entries.clear();
  entries.reserve(calendar_live());
  for (std::vector<QueueEntry>& bucket : buckets_) {
    for (const QueueEntry& entry : bucket) {
      if (!stale(entry)) entries.push_back(entry);
    }
    bucket.clear();
  }
  purged_ += dead_;  // the stale entries just dropped with their buckets
  dead_ = 0;
  entry_count_ = entries.size();
  const std::size_t target = std::max(min_buckets, std::bit_ceil(entries.size()));
  if (target != buckets_.size()) buckets_.resize(target);

  double min_t = std::numeric_limits<double>::infinity();
  double max_t = -std::numeric_limits<double>::infinity();
  for (const QueueEntry& entry : entries) {
    min_t = std::min(min_t, entry.time);
    max_t = std::max(max_t, entry.time);
  }
  double width = 1.0;
  if (entries.size() >= 2 && max_t > min_t) {
    width = 2.0 * (max_t - min_t) / static_cast<double>(entries.size());
    // Keep floor(t / width) well inside the integer range even for large
    // absolute times with tightly clustered events.
    width = std::max(width, (std::abs(max_t) + 1.0) * 1e-12);
  }
  width_ = width;
  inv_width_ = 1.0 / width_;
  bucket_mask_ = buckets_.size() - 1;

  // Distributing in globally descending (time, seq) order leaves every
  // bucket sorted descending.
  std::sort(entries.begin(), entries.end(),
            [](const QueueEntry& a, const QueueEntry& b) { return fires_before(b, a); });
  for (QueueEntry& entry : entries) {
    entry.epoch = epoch_of(entry.time);
    buckets_[bucket_of_epoch(entry.epoch)].push_back(entry);
  }
  // Re-anchor the cursor at the earliest entry (or at zero when empty).
  peek_.valid = false;
  cur_epoch_ = entries.empty() ? 0 : epoch_of(min_t);
#ifdef GTRIX_DEBUG_CHECKS
  calendar_verify_epochs();
#endif
}

void EventQueue::calendar_verify_epochs() const {
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::vector<QueueEntry>& bucket = buckets_[b];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const QueueEntry& entry = bucket[i];
      if (stale(entry)) continue;
      GTRIX_CHECK_MSG(entry.epoch == epoch_of(entry.time),
                      "live calendar entry carries an epoch from an older width");
      GTRIX_CHECK_MSG(bucket_of_epoch(entry.epoch) == b,
                      "live calendar entry sits in a bucket its epoch does not map to");
      GTRIX_CHECK_MSG(entry.epoch >= cur_epoch_,
                      "live calendar entry hides behind the scan cursor");
    }
  }
}

}  // namespace gtrix
