#include "sim/event_queue.hpp"

#include "support/check.hpp"

namespace gtrix {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kInvalidEventSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  GTRIX_CHECK_MSG(slots_.size() < kInvalidEventSlot, "event slot table overflow");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  slot.target = nullptr;
  ++slot.gen;  // invalidates every outstanding handle and heap entry
  slot.next_free = free_head_;
  free_head_ = index;
}

TimerHandle EventQueue::schedule(SimTime t, TimerTarget* target, std::uint32_t kind,
                                 EventPayload payload) {
  GTRIX_CHECK_MSG(target != nullptr, "event target must not be null");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.payload = payload;
  slot.target = target;
  slot.time = t;
  slot.kind = kind;
  slot.live = true;
  heap_.push(HeapEntry{t, next_seq_++, index, slot.gen});
  ++scheduled_;
  ++live_;
  return TimerHandle{index, slot.gen};
}

bool EventQueue::cancel(TimerHandle handle) {
  if (!pending(handle)) return false;
  release_slot(handle.slot);
  --live_;
  // The heap entry stays until it reaches the top; skim() detects the
  // generation mismatch and drops it. Slot storage is already reusable.
  return true;
}

bool EventQueue::pending(TimerHandle handle) const noexcept {
  if (handle.slot == kInvalidEventSlot || handle.slot >= slots_.size()) return false;
  const Slot& slot = slots_[handle.slot];
  return slot.live && slot.gen == handle.gen;
}

void EventQueue::skim() const {
  while (!heap_.empty() && stale(heap_.top())) {
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept {
  skim();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  skim();
  GTRIX_CHECK_MSG(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

bool EventQueue::run_next() {
  skim();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.top();
  heap_.pop();
  Slot& slot = slots_[top.slot];
  const Event event{slot.time, slot.kind, slot.payload};
  TimerTarget* target = slot.target;
  // Recycle before dispatch: the handler may reschedule into this very slot,
  // and the fired handle is stale from the handler's point of view.
  release_slot(top.slot);
  --live_;
  ++executed_;
  target->on_timer(event);
  return true;
}

}  // namespace gtrix
