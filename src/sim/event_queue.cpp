#include "sim/event_queue.hpp"

#include "support/check.hpp"

namespace gtrix {

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  const EventId id = next_id_++;
  handlers_.push_back(std::move(fn));
  cancelled_.push_back(false);
  heap_.push(Entry{t, id});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id] || !handlers_[id]) return false;
  cancelled_[id] = true;
  --live_;
  return true;
}

void EventQueue::skim() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) {
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept {
  skim();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  skim();
  GTRIX_CHECK_MSG(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

bool EventQueue::run_next() {
  skim();
  if (heap_.empty()) return false;
  const Entry top = heap_.top();
  heap_.pop();
  --live_;
  EventFn fn = std::move(handlers_[top.id]);
  handlers_[top.id] = nullptr;  // release captured state eagerly
  ++executed_;
  fn(top.time);
  return true;
}

}  // namespace gtrix
