// Deterministic discrete-event priority queue with typed POD events.
//
// Design (see README.md, "Typed zero-allocation event engine"):
//  * An event is plain data -- {time, target, kind, payload} -- not a
//    heap-allocated closure. Dispatch goes through the small TimerTarget
//    interface: the engine calls target->on_timer(event) at fire time.
//  * Event state lives in recycled slots. A freelist returns a slot the
//    moment its event fires or is cancelled, so memory is O(pending events),
//    not O(events ever executed). The heap itself uses lazy deletion
//    (cancelled entries are skimmed off the top), which keeps cancel() O(1).
//  * Every slot carries a generation counter, bumped whenever the slot is
//    freed. A TimerHandle is {slot, generation}; a handle whose generation
//    no longer matches is stale, so cancelling an already-fired, already-
//    cancelled, or recycled event is a safe no-op. This subsumes the ad-hoc
//    generation counters algorithm nodes previously kept by hand.
//  * Events are ordered by (time, sequence number); the sequence number is
//    assigned at schedule time, so two events scheduled for the same instant
//    fire in scheduling order. Entire simulations are bit-reproducible.
//  * Steady-state scheduling performs no per-event heap allocation: the slot
//    vector, freelist and binary heap all reuse storage (growth is amortized
//    and bounded by the peak number of simultaneously pending events).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace gtrix {

inline constexpr std::uint32_t kInvalidEventSlot = 0xffffffffU;

/// POD payload carried by every event, interpreted by the target according
/// to the event kind. The fields are deliberately generic so one layout
/// serves message delivery (a=from, b=edge, c=to, i=stamp), local-time
/// timers (f=threshold) and index-carrying ticks (i=pulse index) alike.
struct EventPayload {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::int64_t i = 0;
  double f = 0.0;
};

/// The typed event handed to TimerTarget::on_timer. `time` is the absolute
/// simulation time the event was scheduled for (== fire time).
struct Event {
  SimTime time = 0.0;
  std::uint32_t kind = 0;
  EventPayload payload{};
};

/// Dispatch interface. Anything that schedules events implements this and
/// demultiplexes on Event::kind (each class defines its own kind enum).
/// Targets are non-owning: the engine never deletes them, so no virtual
/// destructor is needed (and kept protected to prevent misuse).
class TimerTarget {
 public:
  virtual void on_timer(const Event& event) = 0;

 protected:
  ~TimerTarget() = default;
};

/// First-class cancellable reference to a scheduled event. Default-
/// constructed handles are invalid; handles become stale (cancel() and
/// pending() return false) once the event fires or is cancelled.
struct TimerHandle {
  std::uint32_t slot = kInvalidEventSlot;
  std::uint32_t gen = 0;

  constexpr explicit operator bool() const noexcept { return slot != kInvalidEventSlot; }
  constexpr void reset() noexcept {
    slot = kInvalidEventSlot;
    gen = 0;
  }
};

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules an event for `target` at absolute time `t`. Returns a handle
  /// usable with cancel() / pending() until the event fires.
  TimerHandle schedule(SimTime t, TimerTarget* target, std::uint32_t kind,
                       EventPayload payload = {});

  /// Cancels a previously scheduled event and frees its slot immediately.
  /// Stale handles (already fired / cancelled / recycled) return false.
  bool cancel(TimerHandle handle);

  /// True while the referenced event is scheduled and not yet fired.
  bool pending(TimerHandle handle) const noexcept;

  bool empty() const noexcept;

  /// Time of the next (non-cancelled) event; undefined if empty().
  SimTime next_time() const;

  /// Pops and dispatches the next event; returns false if the queue was
  /// empty. The event's slot is recycled before dispatch, so the handler may
  /// immediately reschedule without growing the slot table.
  bool run_next();

  std::uint64_t executed_count() const noexcept { return executed_; }
  std::uint64_t scheduled_count() const noexcept { return scheduled_; }
  std::size_t pending_count() const noexcept { return live_; }

  /// High-water mark of simultaneously pending events: the slot table never
  /// exceeds the peak pending count (churn tests assert this stays flat).
  std::size_t slot_capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    EventPayload payload{};
    TimerTarget* target = nullptr;
    SimTime time = 0.0;
    std::uint32_t kind = 0;
    std::uint32_t gen = 0;  ///< bumped on every free; stale handles mismatch
    std::uint32_t next_free = kInvalidEventSlot;
    bool live = false;
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;  ///< schedule order; breaks same-time ties FIFO
    std::uint32_t slot;
    std::uint32_t gen;
    // Heap is a max-heap by default; invert the comparison.
    bool operator<(const HeapEntry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  bool stale(const HeapEntry& entry) const noexcept {
    const Slot& s = slots_[entry.slot];
    return !s.live || s.gen != entry.gen;
  }

  /// Drops cancelled (stale) entries from the top of the heap.
  void skim() const;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  mutable std::priority_queue<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kInvalidEventSlot;
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
};

}  // namespace gtrix
