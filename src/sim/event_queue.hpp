// Deterministic discrete-event scheduler with typed POD events.
//
// Design (see docs/performance.md, "Calendar-queue scheduler"):
//  * An event is plain data -- {time, target, kind, payload} -- not a
//    heap-allocated closure. Dispatch goes through the small TimerTarget
//    interface: the engine calls target->on_timer(event) at fire time.
//  * Event state lives in recycled slots. A freelist returns a slot the
//    moment its event fires or is cancelled, so memory is O(pending events),
//    not O(events ever executed). Cancellation is lazy (a cancelled entry is
//    skimmed when a scan meets it), which keeps cancel() O(1).
//  * Every slot carries a generation counter, bumped whenever the slot is
//    freed. A TimerHandle is {slot, generation}; a handle whose generation
//    no longer matches is stale, so cancelling an already-fired, already-
//    cancelled, or recycled event is a safe no-op.
//  * Events are ordered by (time, sequence number); the sequence number is
//    assigned at schedule time, so two events scheduled for the same instant
//    fire in scheduling order. Entire simulations are bit-reproducible.
//
// Two interchangeable scheduler structures sit behind the one interface:
//  * SchedulerKind::kCalendar (default) -- a calendar queue (Brown 1988):
//    an array of time buckets of width ~ the mean gap between pending
//    events. The simulation's bounded-delay event horizon (every event is
//    scheduled at most ~Lambda + d past the cursor) keeps the calendar a
//    single "year" wide in steady state, so schedule and pop are O(1)
//    bucket operations instead of O(log n) heap sifts on pointer-cold
//    array levels.
//  * SchedulerKind::kBinaryHeap -- the pre-calendar binary-heap engine,
//    kept as the bit-identity reference for bench_perf and the
//    differential tests. Both structures pop the global (time, seq)
//    minimum, so they execute identical event sequences.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace gtrix {

class CkptWriter;
class CkptCursor;
class CkptTargetMap;

inline constexpr std::uint32_t kInvalidEventSlot = 0xffffffffU;

/// Which internal priority structure an EventQueue / Simulator uses. The
/// two kinds execute bit-identical event sequences; kCalendar is the fast
/// default, kBinaryHeap the reference engine bench_perf compares against.
enum class SchedulerKind : std::uint8_t { kCalendar, kBinaryHeap };

/// POD payload carried by every event, interpreted by the target according
/// to the event kind. The fields are deliberately generic so one layout
/// serves message delivery (a=from, b=edge, c=to, i=stamp), local-time
/// timers (f=threshold) and index-carrying ticks (i=pulse index) alike.
struct EventPayload {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::int64_t i = 0;
  double f = 0.0;
};

/// The typed event handed to TimerTarget::on_timer. `time` is the absolute
/// simulation time the event was scheduled for (== fire time).
struct Event {
  SimTime time = 0.0;
  std::uint32_t kind = 0;
  EventPayload payload{};
};

/// Dispatch interface. Anything that schedules events implements this and
/// demultiplexes on Event::kind (each class defines its own kind enum).
/// Targets are non-owning: the engine never deletes them, so no virtual
/// destructor is needed (and kept protected to prevent misuse).
class TimerTarget {
 public:
  virtual void on_timer(const Event& event) = 0;

 protected:
  ~TimerTarget() = default;
};

/// First-class cancellable reference to a scheduled event. Default-
/// constructed handles are invalid; handles become stale (cancel() and
/// pending() return false) once the event fires or is cancelled.
struct TimerHandle {
  std::uint32_t slot = kInvalidEventSlot;
  std::uint32_t gen = 0;

  constexpr explicit operator bool() const noexcept { return slot != kInvalidEventSlot; }
  constexpr void reset() noexcept {
    slot = kInvalidEventSlot;
    gen = 0;
  }
};

class EventQueue {
 public:
  explicit EventQueue(SchedulerKind kind = SchedulerKind::kCalendar);

  /// Schedules an event for `target` at absolute time `t`. Returns a handle
  /// usable with cancel() / pending() until the event fires.
  TimerHandle schedule(SimTime t, TimerTarget* target, std::uint32_t kind,
                       EventPayload payload = {});

  /// Cancels a previously scheduled event and frees its slot immediately.
  /// Stale handles (already fired / cancelled / recycled) return false.
  bool cancel(TimerHandle handle);

  /// True while the referenced event is scheduled and not yet fired.
  bool pending(TimerHandle handle) const noexcept;

  bool empty() const noexcept { return live_ == 0; }

  /// Time of the next (non-cancelled) event; undefined if empty().
  SimTime next_time() const;

  /// Pops and dispatches the next event; returns false if the queue was
  /// empty. The event's slot is recycled before dispatch, so the handler may
  /// immediately reschedule without growing the slot table.
  bool run_next();

  /// run_next() gated on the event being due: pops and dispatches only if
  /// the next event's time is <= deadline. `fired` is set to the event time
  /// BEFORE dispatch, so a driver passing its clock cursor exposes the
  /// correct now() to the handler. One minimum-location per event, instead
  /// of the next_time() + run_next() pair (the simulator's main loop).
  bool run_next_due(SimTime deadline, SimTime& fired);

  /// run_next_due with an exclusive bound: dispatches only events strictly
  /// before `horizon`. The sharded engine's window loop (runner/
  /// shard_driver.cpp) runs each shard up to but not including the window
  /// horizon, which is the earliest time a cross-shard message can land.
  bool run_next_strictly_before(SimTime horizon, SimTime& fired);

  SchedulerKind scheduler_kind() const noexcept { return kind_; }

  std::uint64_t executed_count() const noexcept { return executed_; }
  std::uint64_t scheduled_count() const noexcept { return scheduled_; }
  /// Successful cancel() calls. Engine-invariant: cancellations are issued
  /// by node code, which behaves identically under every scheduler kind and
  /// shard layout (telemetry's JSONL block relies on this).
  std::uint64_t cancelled_count() const noexcept { return cancelled_; }
  /// Lazily-cancelled entries physically removed by scan skims and purge
  /// rebuilds. Engine-SHAPED (scheduler- and traffic-pattern dependent):
  /// summary telemetry only.
  std::uint64_t purged_count() const noexcept { return purged_; }
  std::size_t pending_count() const noexcept { return live_; }

  /// High-water mark of simultaneously pending events: the slot table never
  /// exceeds the peak pending count (churn tests assert this stays flat).
  std::size_t slot_capacity() const noexcept { return slots_.size(); }

  /// Calendar internals exposed read-only for tests: bucket count, current
  /// bucket width, rebuild count. Meaningless under kBinaryHeap.
  std::size_t calendar_buckets() const noexcept { return buckets_.size(); }
  double calendar_width() const noexcept { return width_; }
  std::uint64_t calendar_rebuilds() const noexcept { return rebuilds_; }

  /// Checkpoint hooks (src/ckpt/state_ckpt.cpp). The snapshot preserves the
  /// exact slot table -- indices, generations, freelist order and the
  /// per-entry sequence numbers -- so outstanding TimerHandles stay valid
  /// across a restore and the (time, seq) total order continues
  /// unperturbed. The priority structure itself is refit on restore
  /// (calendar width/bucket layout are engine-shaped, not part of the
  /// simulated behaviour). Targets round-trip through `targets` ids.
  void checkpoint_save(CkptWriter& w, const CkptTargetMap& targets) const;
  void checkpoint_restore(CkptCursor& r, const CkptTargetMap& targets);

 private:
  struct Slot {
    EventPayload payload{};
    TimerTarget* target = nullptr;
    SimTime time = 0.0;
    std::uint32_t kind = 0;
    std::uint32_t gen = 0;  ///< bumped on every free; stale handles mismatch
    std::uint32_t next_free = kInvalidEventSlot;
    bool live = false;
  };

  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;  ///< schedule order; breaks same-time ties FIFO
    long long epoch;    ///< calendar only: epoch_of(time), cached at insert
    std::uint32_t slot;
    std::uint32_t gen;
    // priority_queue is a max-heap by default; invert the comparison.
    bool operator<(const QueueEntry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Lexicographic (time, seq) order -- the one total event order both
  /// scheduler kinds realize.
  static bool fires_before(const QueueEntry& a, const QueueEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  bool stale(const QueueEntry& entry) const noexcept {
    const Slot& s = slots_[entry.slot];
    return !s.live || s.gen != entry.gen;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  // --- binary-heap engine ---------------------------------------------------
  /// Drops cancelled (stale) entries from the top of the heap.
  void heap_skim() const;

  // --- calendar engine ------------------------------------------------------
  /// Epoch = which width_-sized time window a timestamp falls in. Exact
  /// integer bookkeeping (no accumulated float boundaries): an entry lives
  /// in bucket epoch mod nbuckets and belongs to the cursor's window iff
  /// its epoch equals the scan epoch.
  ///
  /// EPOCH FRESHNESS INVARIANT: a QueueEntry's cached epoch is only
  /// meaningful under the width_ in force when it was bucketed, so
  ///  (a) calendar_insert stamps entry.epoch AFTER its possible
  ///      grow-rebuild, never before (a rebuild refits width_, and an epoch
  ///      computed under the old width would bucket the entry into a year
  ///      the scan never visits or visits too early), and
  ///  (b) calendar_rebuild re-stamps every surviving entry's epoch under
  ///      the new width as it redistributes them.
  /// Together with the cursor rule -- an insert with epoch < cur_epoch_
  /// pulls the cursor back to it -- this keeps behind-cursor inserts
  /// immediately after a lazy-cancel purge rebuild correct: the insert is
  /// bucketed and cursored under the post-purge width, so the year scan
  /// meets it first. tests/test_calendar_queue.cpp pins this with a
  /// directed purge -> behind-cursor-insert regression and a purge/resize
  /// differential fuzz against the binary heap at the >= 64k-pending
  /// scale-grid population.
  long long epoch_of(SimTime t) const noexcept;
  std::size_t bucket_of_epoch(long long epoch) const noexcept;
  void calendar_insert(const QueueEntry& entry);
  /// Locates the (time, seq)-minimum live entry, caching it in peek_.
  /// Returns false when no live entry exists.
  bool calendar_find_min() const;
  /// Full scan fallback for sparse calendars: min over every bucket.
  bool calendar_global_min() const;
  void calendar_pop_peeked();
  /// Rebuilds the calendar with a bucket count / width fitted to the
  /// current live population. Also drops all stale entries.
  void calendar_rebuild(std::size_t min_buckets);
  std::size_t calendar_live() const noexcept { return entry_count_ - dead_; }
  /// GTRIX_DEBUG_CHECKS walk of the EPOCH FRESHNESS INVARIANT above: every
  /// live entry's cached epoch matches epoch_of(time) under the current
  /// width, sits in the bucket its epoch maps to, and none is behind the
  /// cursor. O(pending), so only the debug-assertion builds call it.
  void calendar_verify_epochs() const;

  SchedulerKind kind_;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kInvalidEventSlot;
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  /// mutable: the skims that remove stale entries run inside const peeks
  /// (same reason the structures below are mutable).
  mutable std::uint64_t purged_ = 0;
  std::size_t live_ = 0;

  // kBinaryHeap state. mutable: next_time()/empty() skim lazily.
  mutable std::priority_queue<QueueEntry> heap_;

  // kCalendar state. mutable for the same reason: locating the minimum from
  // const peeks skims stale entries and advances the cursor.
  mutable std::vector<std::vector<QueueEntry>> buckets_;
  double width_ = 1.0;
  double inv_width_ = 1.0;        ///< 1 / width_; epochs use the multiply form
  std::size_t bucket_mask_ = 0;   ///< buckets_.size() - 1 (power of two)
  mutable std::size_t entry_count_ = 0;  ///< bucket entries incl. stale
  mutable std::size_t dead_ = 0;         ///< stale entries not yet skimmed
  /// Scan cursor: no live entry has an epoch below this (inserts behind the
  /// cursor pull it back), so the year scan meets the global minimum first.
  mutable long long cur_epoch_ = 0;

  struct PeekRef {
    std::size_t bucket = 0;
    std::size_t index = 0;
    bool valid = false;
  };
  mutable PeekRef peek_;
  std::uint64_t rebuilds_ = 0;
  std::vector<QueueEntry> rebuild_scratch_;  ///< reused across rebuilds
};

}  // namespace gtrix
