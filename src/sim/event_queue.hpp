// Deterministic discrete-event priority queue.
//
// Events are ordered by (time, sequence number); the sequence number is
// assigned at push time, so two events scheduled for the same instant fire
// in scheduling order. This makes entire simulations bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace gtrix {

using EventFn = std::function<void(SimTime now)>;

/// Handle for cancelling a scheduled event. Cancellation is lazy: the event
/// stays in the heap but is skipped when popped.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedules `fn` at absolute time `t`. Returns an id usable with cancel().
  EventId schedule(SimTime t, EventFn fn);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a no-op and returns false.
  bool cancel(EventId id);

  bool empty() const noexcept;

  /// Time of the next (non-cancelled) event; undefined if empty().
  SimTime next_time() const;

  /// Pops and runs the next event; returns false if the queue was empty.
  bool run_next();

  std::uint64_t executed_count() const noexcept { return executed_; }
  std::uint64_t scheduled_count() const noexcept { return next_id_; }
  std::size_t pending_count() const noexcept { return live_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Heap is a max-heap by default; invert the comparison.
    bool operator<(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Drops cancelled entries from the top of the heap.
  void skim() const;

  mutable std::priority_queue<Entry> heap_;
  std::vector<EventFn> handlers_;       // indexed by id
  std::vector<bool> cancelled_;         // indexed by id
  EventId next_id_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
};

}  // namespace gtrix
