// The simulation driver: wraps the typed event queue with a current-time
// cursor and run-until / run-all loops.
//
// Scheduling is typed end to end: callers pass a TimerTarget plus an event
// kind and POD payload (see sim/event_queue.hpp for the design rationale);
// at() / after() return cancellable TimerHandles. There is no closure path,
// so the steady-state scheduling loop performs no per-event heap allocation.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace gtrix {

class Simulator {
 public:
  /// `kind` selects the scheduler structure (calendar queue by default;
  /// the binary-heap reference engine for differential runs -- both execute
  /// bit-identical event sequences, see sim/event_queue.hpp).
  /// `single_locate_loop` keeps the one-find-minimum-per-event driver loop;
  /// false reproduces the pre-refactor next_time() + run_next() pair.
  explicit Simulator(SchedulerKind kind = SchedulerKind::kCalendar,
                     bool single_locate_loop = true)
      : queue_(kind), single_locate_(single_locate_loop) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SchedulerKind scheduler_kind() const noexcept { return queue_.scheduler_kind(); }

  SimTime now() const noexcept { return now_; }

  /// Schedules an event at absolute time `t`; `t` must not precede now().
  TimerHandle at(SimTime t, TimerTarget* target, std::uint32_t kind,
                 EventPayload payload = {});

  /// Schedules an event `delay >= 0` after now().
  TimerHandle after(SimTime delay, TimerTarget* target, std::uint32_t kind,
                    EventPayload payload = {});

  /// Cancels the referenced event (no-op on stale handles) and resets the
  /// handle so it cannot be cancelled twice by accident.
  bool cancel(TimerHandle& handle) {
    const bool cancelled = queue_.cancel(handle);
    handle.reset();
    return cancelled;
  }

  bool pending(TimerHandle handle) const noexcept { return queue_.pending(handle); }

  /// Runs until the queue is empty or the next event is strictly after
  /// `deadline`. Events exactly at `deadline` are executed. Returns the
  /// number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Runs events strictly before `horizon` and leaves now() == horizon.
  /// The sharded engine's window primitive: a shard may execute everything
  /// below the window horizon because no cross-shard message sent in the
  /// window can arrive before it (see runner/shard_driver.hpp). Returns the
  /// number of events executed.
  std::uint64_t run_before(SimTime horizon);

  /// Runs until the queue is empty. An event budget guards against
  /// accidental infinite self-scheduling. Returns events executed.
  std::uint64_t run_all(std::uint64_t max_events = 2'000'000'000ULL);

  /// Moves the clock cursor forward to `t` without executing anything
  /// (no-op if now() >= t). The sharded driver aligns every shard's clock
  /// with the run_until deadline after the final window.
  void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

  /// Time of the earliest pending event, or kTimeInfinity when idle. The
  /// sharded driver's barrier takes the minimum across shards to place the
  /// next window.
  SimTime next_event_time() const {
    return queue_.empty() ? kTimeInfinity : queue_.next_time();
  }

  std::uint64_t executed_events() const noexcept { return queue_.executed_count(); }
  std::size_t pending_events() const noexcept { return queue_.pending_count(); }
  bool idle() const noexcept { return queue_.empty(); }

  /// Read-only queue access for telemetry harvesting (scheduled / cancelled
  /// / purged / rebuild counters); see obs/telemetry.hpp.
  const EventQueue& event_queue() const noexcept { return queue_; }

  /// Checkpoint hooks (src/ckpt/state_ckpt.cpp): the clock cursor and the
  /// full queue. Scheduler kind and loop shape are construction parameters
  /// validated by the World-level engine fingerprint, not snapshotted.
  void checkpoint_save(CkptWriter& w, const CkptTargetMap& targets) const;
  void checkpoint_restore(CkptCursor& r, const CkptTargetMap& targets);

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  bool single_locate_ = true;
};

}  // namespace gtrix
