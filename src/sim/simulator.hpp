// The simulation driver: wraps the event queue with a current-time cursor
// and run-until / run-all loops.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace gtrix {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules an event at absolute time `t`; `t` must not precede now().
  EventId at(SimTime t, EventFn fn);

  /// Schedules an event `delay >= 0` after now().
  EventId after(SimTime delay, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty or the next event is strictly after
  /// `deadline`. Events exactly at `deadline` are executed. Returns the
  /// number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Runs until the queue is empty. An event budget guards against
  /// accidental infinite self-scheduling. Returns events executed.
  std::uint64_t run_all(std::uint64_t max_events = 2'000'000'000ULL);

  std::uint64_t executed_events() const noexcept { return queue_.executed_count(); }
  std::size_t pending_events() const noexcept { return queue_.pending_count(); }
  bool idle() const noexcept { return queue_.empty(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
};

}  // namespace gtrix
