// Simulated time. Real ("Newtonian") time is a double in abstract units;
// the default parameterization uses d = 1000 units for the maximum message
// delay, so one unit can be read as a picosecond at d = 1ns.
#pragma once

#include <limits>

namespace gtrix {

using SimTime = double;

inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Local (hardware-clock) readings use the same representation.
using LocalTime = double;

inline constexpr LocalTime kLocalInfinity = std::numeric_limits<LocalTime>::infinity();

}  // namespace gtrix
