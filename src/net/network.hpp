// Message transport between nodes (paper §2, "Communication").
//
// Each directed edge e has an unknown but fixed delay delta_e in [d-u, d];
// every pulse sent over e is delivered delta_e later. An optional global
// modulation hook lets experiments vary delays slowly over time
// (Corollary 1.5); the modulated delay is clamped to [d-u, d] by the caller
// that installs the hook.
//
// Faulty nodes may send point-to-point on individual out-edges at arbitrary
// times (§2: edge faults are mapped to node faults), so send() is per-edge;
// broadcast() is the well-behaved path used by correct nodes.
//
// Sharded mode (configure_shards; docs/performance.md, "Sharded execution"):
// nodes are partitioned across several Simulators, one per worker thread.
// Sends between same-shard nodes stay ordinary queue events; sends that
// cross shards become ShardEnvelopes parked in single-writer mailboxes and
// are drained into the receiving shard's queue at the next window barrier,
// sorted by the deterministic (arrival time, sender, edge) key so the merge
// order is engine-invariant. shard_count() == 1 leaves every code path of
// the serial engine untouched.
//
// Simultaneous arrivals (zero-jitter scenarios, post-corruption chaos) get
// the same canonical order in EVERY engine: when more than one event shares
// a delivery's instant, the sink calls are deferred and flushed in
// (receiver, sender, edge) order once the instant's queue events have all
// executed. Without this, the serial engine would process tied arrivals in
// queue-insertion order while a shard mixes directly-queued local sends
// with barrier-drained envelopes -- two different orders, and an
// order-sensitive receiver (e.g. a wave-label vote over differing stamps
// after state corruption) would diverge between engines.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/simulator.hpp"

namespace gtrix {

using NetNodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// A clock pulse. `stamp` is a metrics-only wave index: correct algorithm
/// code never reads it to make decisions (the paper's pulses carry no data);
/// it exists so the harness can associate pulses across nodes.
struct Pulse {
  std::int64_t stamp = 0;
};

/// Receiver interface implemented by algorithm nodes and fault behaviours.
class PulseSink {
 public:
  virtual ~PulseSink() = default;

  /// `from` is the sending node, `edge` the delivering edge.
  virtual void on_pulse(NetNodeId from, EdgeId edge, const Pulse& pulse, SimTime now) = 0;
};

class Network final : public TimerTarget {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node. `sink` is non-owning and may be null initially
  /// (wired later via set_sink); it must outlive the network runs.
  NetNodeId add_node(PulseSink* sink = nullptr);
  void set_sink(NetNodeId node, PulseSink* sink);

  /// Adds a directed edge with fixed delay (must be positive).
  EdgeId add_edge(NetNodeId from, NetNodeId to, double delay);

  std::uint32_t node_count() const noexcept { return static_cast<std::uint32_t>(sinks_.size()); }
  std::uint32_t edge_count() const noexcept { return static_cast<std::uint32_t>(edges_.size()); }

  NetNodeId edge_from(EdgeId e) const { return edges_.at(e).from; }
  NetNodeId edge_to(EdgeId e) const { return edges_.at(e).to; }
  double edge_delay(EdgeId e) const { return edges_.at(e).delay; }
  void set_edge_delay(EdgeId e, double delay);

  std::span<const EdgeId> out_edges(NetNodeId node) const { return out_.at(node); }
  std::span<const EdgeId> in_edges(NetNodeId node) const { return in_.at(node); }

  /// Finds the edge from -> to; returns true and sets `out` on success.
  bool find_edge(NetNodeId from, NetNodeId to, EdgeId& out) const;

  /// Sends a pulse on one edge; delivery after the edge's (possibly
  /// modulated) delay.
  void send(EdgeId e, const Pulse& pulse);

  /// Performs send(e, pulse) `extra >= 0` time from now (the edge delay and
  /// modulation are sampled at that later send time). Used by fault
  /// behaviours that delay or jitter individual out-edges.
  void send_after(EdgeId e, const Pulse& pulse, double extra);

  /// Sends on every out-edge of `from`.
  void broadcast(NetNodeId from, const Pulse& pulse);

  /// Delivers a pulse directly to `to` at absolute time `t` with a synthetic
  /// source. Used to model spurious in-flight messages for self-stabilization
  /// experiments and ideal layer-0 input.
  void inject(NetNodeId from, NetNodeId to, const Pulse& pulse, SimTime t);

  /// Optional slow delay modulation: extra(e, send_time) is added to the
  /// static delay. The installer is responsible for keeping the total within
  /// the model bounds. Installing a modulation disables batched broadcast
  /// delivery (delays become per-edge again). Unavailable in sharded mode:
  /// the conservative lookahead is the minimum STATIC cross-shard delay, and
  /// a modulation could shrink a delay below it mid-run.
  using DelayModulation = std::function<double(EdgeId, SimTime)>;
  void set_delay_modulation(DelayModulation fn);

  /// Batched broadcast delivery (on by default): when every out-edge of the
  /// sender carries the same delay and no modulation is installed, one
  /// broadcast schedules ONE queue event that fans out to all sinks at fire
  /// time, instead of one event per edge. Within a broadcast the per-edge
  /// events would occupy consecutive sequence numbers anyway (the send loop
  /// is atomic), so collapsing them preserves the global event order --
  /// simulations are bit-identical with batching on or off; only the
  /// events_executed / delivery_events counters differ. The reference mode
  /// of bench_perf turns this off.
  void set_broadcast_batching(bool enabled) noexcept { batching_ = enabled; }
  bool broadcast_batching() const noexcept { return batching_; }

  // Counter accessors sum the per-shard cells (empty in serial mode); call
  // them only outside a sharded run, i.e. with no worker threads live.
  std::uint64_t messages_sent() const noexcept;
  std::uint64_t messages_delivered() const noexcept;

  /// Cross-shard mailbox traffic (telemetry summary; both 0 in serial
  /// mode). Published counts accumulate in the serial barrier completion;
  /// drained counts live in the per-shard counter cells.
  std::uint64_t envelopes_published() const noexcept { return envelopes_published_; }
  std::uint64_t envelopes_drained() const noexcept;
  std::uint64_t shard_envelopes_drained(std::uint32_t shard) const {
    return shard_counters_.at(shard).envelopes_drained;
  }

  /// Queue events spent performing deliveries (one per message unbatched,
  /// one per broadcast batched). executed_events - delivery_events +
  /// messages_delivered is the engine-independent logical event count
  /// bench_perf normalizes throughput with.
  std::uint64_t delivery_events() const noexcept;

  Simulator& simulator() noexcept { return sim_; }

  // --- sharded mode (runner/shard_driver.cpp is the only driver) ------------

  /// A cross-shard message parked in a mailbox until the receiving shard's
  /// next window. (arrival, from, edge) is the deterministic merge key.
  struct ShardEnvelope {
    SimTime arrival;
    NetNodeId from;
    EdgeId edge;
    NetNodeId to;
    std::int64_t stamp;
  };

  /// Enters sharded mode: `sims[s]` is shard s's event queue and
  /// `node_shard[n]` the shard owning node n. sims[0] must be the Simulator
  /// this Network was constructed with. Must be called after the topology is
  /// final (add_node/add_edge refuse afterwards) and before any traffic.
  /// Passing a single simulator keeps the serial engine byte-for-byte.
  void configure_shards(std::vector<Simulator*> sims,
                        std::vector<std::uint32_t> node_shard);

  std::uint32_t shard_count() const noexcept { return shard_count_; }
  std::uint32_t shard_of(NetNodeId node) const { return shard_count_ <= 1 ? 0 : node_shard_.at(node); }

  /// Minimum static delay over edges whose endpoints live in different
  /// shards -- the conservative lookahead L: a message sent at time t
  /// cannot arrive in another shard before t + L. kTimeInfinity when no
  /// edge crosses a shard boundary (shards are then fully independent).
  SimTime cross_shard_lookahead() const noexcept { return lookahead_; }

  /// Earliest arrival time over every parked envelope (published or not),
  /// kTimeInfinity when all mailboxes are empty. Serial: called from the
  /// barrier completion.
  SimTime earliest_mailbox_time() const;

  /// Moves every freshly written mailbox cell into the published buffer the
  /// workers drain from. MUST run in the barrier completion (all workers
  /// parked): it is the hand-off point between the senders -- who append to
  /// mail_ cells throughout a window -- and the receivers, who drain the
  /// published buffer concurrently with the next window's sends. Draining
  /// mail_ directly would race those sends (lost or duplicated envelopes).
  void publish_mailboxes();

  /// Moves every PUBLISHED envelope addressed to shard `dst` into dst's
  /// event queue, ordered by (arrival, from, edge). Called by shard dst's
  /// own worker right after a window barrier; only publish_mailboxes()
  /// (serial, in the barrier completion) writes the published cells, so the
  /// read is race-free even while other shards are already sending.
  void drain_mailbox(std::uint32_t dst);

  /// Typed-event dispatch (kDeliver message arrivals, kDeferredSend).
  void on_timer(const Event& event) override;

  /// Checkpoint hooks (src/ckpt/state_ckpt.cpp): message counters plus, in
  /// sharded mode, every parked mailbox envelope (written and published).
  /// Topology, delays and shard wiring are construction state; delay
  /// modulations are not snapshotted (the campaign path never installs
  /// one). Must be called at a window barrier (no worker threads live).
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  /// Event kinds this target schedules. Payload conventions:
  ///   kDeliver:        a=from, b=edge, c=to, i=pulse stamp
  ///   kDeferredSend:   b=edge, i=pulse stamp
  ///   kBatchDeliver:   a=from, i=pulse stamp (fans out over out_[from])
  ///   kFlushArrivals:  a=defer cell index (the executing shard)
  enum TimerKind : std::uint32_t {
    kDeliver = 1,
    kDeferredSend = 2,
    kBatchDeliver = 3,
    kFlushArrivals = 4,
  };

  struct Edge {
    NetNodeId from;
    NetNodeId to;
    double delay;
  };

  /// Per-shard message counters on private cache lines: each cell is only
  /// ever written by its own worker thread (sent by the sending shard,
  /// delivered/delivery_events by the receiving one) and summed serially.
  struct alignas(64) ShardCounters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t delivery_events = 0;
    /// Envelopes this shard drained into its queue (written only by the
    /// owning worker in drain_mailbox); telemetry summary data.
    std::uint64_t envelopes_drained = 0;
  };

  /// A sink call captured while other events still share its instant;
  /// flushed by kFlushArrivals in (to, from, edge, stamp) order.
  struct DeferredArrival {
    NetNodeId to;
    NetNodeId from;
    EdgeId edge;
    std::int64_t stamp;
  };

  /// Per-shard canonical-arrival cell (single-writer: the owning worker;
  /// [0] doubles as the serial engine's cell). `active` means a
  /// kFlushArrivals event for `time` is pending in the shard's queue; such
  /// an event never survives past its instant, so none is ever pending at a
  /// window barrier or checkpoint.
  struct alignas(64) DeferCell {
    bool active = false;
    SimTime time = 0.0;
    std::vector<DeferredArrival> buf;
  };

  void deliver(NetNodeId from, EdgeId edge, NetNodeId to, const Pulse& pulse, SimTime at);
  /// Calls the receiver's sink (and counts the delivery) immediately when
  /// this delivery is alone at its instant, else defers it into the shard's
  /// DeferCell for the canonical flush.
  void sink_or_defer(Simulator& sim, std::uint32_t cell, NetNodeId from, EdgeId edge,
                     NetNodeId to, std::int64_t stamp, SimTime t);
  void sink_pulse(NetNodeId from, EdgeId edge, NetNodeId to, std::int64_t stamp, SimTime t);
  void send_sharded(EdgeId e, const Pulse& pulse);
  void broadcast_sharded(NetNodeId from, const Pulse& pulse,
                         const std::vector<EdgeId>& outs);
  void recompute_lookahead();
  Simulator& sim_of(NetNodeId node) {
    return shard_count_ <= 1 ? sim_ : *shard_sims_[node_shard_[node]];
  }

  Simulator& sim_;
  std::vector<PulseSink*> sinks_;  // non-owning
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  /// Per node: the shared delay of all its out-edges, or NaN once any two
  /// out-edge delays differ. Maintained by add_edge / set_edge_delay; the
  /// broadcast fast path keys off it.
  std::vector<double> uniform_out_delay_;
  DelayModulation modulation_;
  bool batching_ = true;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivery_events_ = 0;
  /// Written only inside publish_mailboxes (serial barrier completion).
  std::uint64_t envelopes_published_ = 0;

  // Sharded-mode state; all empty / trivial while shard_count_ == 1.
  std::uint32_t shard_count_ = 1;
  std::vector<Simulator*> shard_sims_;        // non-owning, [0] == &sim_
  std::vector<std::uint32_t> node_shard_;
  SimTime lookahead_ = kTimeInfinity;
  /// Mailbox matrix, cell [src * shard_count_ + dst]: written only by shard
  /// src's worker during windows. The barrier completion moves full cells
  /// into pending_ (publish_mailboxes), and shard dst's worker drains the
  /// pending_ cells addressed to it at the next window start -- so senders
  /// and receivers never touch the same vector concurrently, no locks
  /// needed.
  std::vector<std::vector<ShardEnvelope>> mail_;
  std::vector<std::vector<ShardEnvelope>> pending_;        // published at barriers
  std::vector<std::vector<ShardEnvelope>> drain_scratch_;  // per-dst reuse
  std::vector<ShardCounters> shard_counters_;
  /// One canonical-arrival cell per shard; size 1 in serial mode.
  std::vector<DeferCell> defer_ = std::vector<DeferCell>(1);
};

}  // namespace gtrix
