#include "net/delay_model.hpp"

#include "support/check.hpp"

namespace gtrix {

double DelayModel::sample(std::uint32_t from_column, std::uint32_t to_column,
                          std::uint32_t from_layer, std::uint32_t to_layer,
                          Rng& rng) const {
  (void)from_layer;
  (void)to_layer;
  GTRIX_CHECK_MSG(u >= 0.0 && u < d, "require 0 <= u < d");
  switch (kind) {
    case DelayModelKind::kUniformRandom:
      return rng.uniform(d - u, d);
    case DelayModelKind::kAllMax:
      return d;
    case DelayModelKind::kAllMin:
      return d - u;
    case DelayModelKind::kColumnSplit:
      return from_column < split_column ? d - u : d;
    case DelayModelKind::kAlternating:
      return (to_column % 2 == 0) ? d : d - u;
    case DelayModelKind::kOwnSlowCrossFast:
      return from_column == to_column ? d : d - u;
  }
  return d;
}

}  // namespace gtrix
