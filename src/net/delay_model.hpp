// Legacy closed enumeration of delay strategies, kept as a thin adapter on
// ExperimentConfig for source compatibility. The implementations live as
// registered DelayProvider kinds in registry/delay.cpp (the single home of
// the sampling semantics); new strategies exist only there, without enum
// values.
#pragma once

namespace gtrix {

enum class DelayModelKind {
  kUniformRandom,  ///< i.i.d. uniform in [d-u, d] (default realistic model)
  kAllMax,         ///< every edge at d
  kAllMin,         ///< every edge at d-u
  kColumnSplit,    ///< edges leaving columns < split_column get d-u, others d
                   ///< (the Fig. 1 adversarial scenario for naive TRIX)
  kAlternating,    ///< d-u / d alternating by destination-column parity
  kOwnSlowCrossFast,  ///< own-copy edges d, cross edges d-u: every offset
                      ///< measurement overestimates by u, the consistent
                      ///< overshoot the jump condition exists to damp
                      ///< (Figure 5 scenario)
};

}  // namespace gtrix
