// Strategies for assigning static per-edge delays delta_e in [d-u, d].
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace gtrix {

enum class DelayModelKind {
  kUniformRandom,  ///< i.i.d. uniform in [d-u, d] (default realistic model)
  kAllMax,         ///< every edge at d
  kAllMin,         ///< every edge at d-u
  kColumnSplit,    ///< edges leaving columns < split_column get d-u, others d
                   ///< (the Fig. 1 adversarial scenario for naive TRIX)
  kAlternating,    ///< d-u / d alternating by destination-column parity
  kOwnSlowCrossFast,  ///< own-copy edges d, cross edges d-u: every offset
                      ///< measurement overestimates by u, the consistent
                      ///< overshoot the jump condition exists to damp
                      ///< (Figure 5 scenario)
};

struct DelayModel {
  DelayModelKind kind = DelayModelKind::kUniformRandom;
  double d = 1000.0;  ///< maximum end-to-end delay
  double u = 10.0;    ///< delay uncertainty
  std::uint32_t split_column = 0;  ///< for kColumnSplit

  /// Delay for an edge described by its endpoints' columns and layers.
  /// `rng` is consumed only by the random model.
  double sample(std::uint32_t from_column, std::uint32_t to_column,
                std::uint32_t from_layer, std::uint32_t to_layer, Rng& rng) const;
};

}  // namespace gtrix
