#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace gtrix {

NetNodeId Network::add_node(PulseSink* sink) {
  GTRIX_CHECK_MSG(shard_count_ <= 1, "cannot add nodes after configure_shards");
  const NetNodeId id = static_cast<NetNodeId>(sinks_.size());
  sinks_.push_back(sink);
  out_.emplace_back();
  in_.emplace_back();
  uniform_out_delay_.push_back(std::numeric_limits<double>::quiet_NaN());
  return id;
}

void Network::set_sink(NetNodeId node, PulseSink* sink) { sinks_.at(node) = sink; }

EdgeId Network::add_edge(NetNodeId from, NetNodeId to, double delay) {
  GTRIX_CHECK_MSG(delay > 0.0, "edge delay must be positive");
  GTRIX_CHECK_MSG(shard_count_ <= 1, "cannot add edges after configure_shards");
  GTRIX_CHECK(from < sinks_.size() && to < sinks_.size());
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, delay});
  out_[from].push_back(id);
  in_[to].push_back(id);
  if (out_[from].size() == 1) {
    uniform_out_delay_[from] = delay;
  } else if (uniform_out_delay_[from] != delay) {
    uniform_out_delay_[from] = std::numeric_limits<double>::quiet_NaN();
  }
  return id;
}

void Network::set_edge_delay(EdgeId e, double delay) {
  GTRIX_CHECK_MSG(delay > 0.0, "edge delay must be positive");
  edges_.at(e).delay = delay;
  // Re-derive the sender's uniformity from scratch (rare, config-time call).
  const NetNodeId from = edges_[e].from;
  double uniform = edges_[out_[from].front()].delay;
  for (EdgeId out_edge : out_[from]) {
    if (edges_[out_edge].delay != uniform) {
      uniform = std::numeric_limits<double>::quiet_NaN();
      break;
    }
  }
  uniform_out_delay_[from] = uniform;
  if (shard_count_ > 1) recompute_lookahead();
}

void Network::set_delay_modulation(DelayModulation fn) {
  GTRIX_CHECK_MSG(shard_count_ <= 1 || !fn,
                  "delay modulation is unavailable on the sharded engine");
  modulation_ = std::move(fn);
}

void Network::configure_shards(std::vector<Simulator*> sims,
                               std::vector<std::uint32_t> node_shard) {
  GTRIX_CHECK_MSG(!sims.empty() && sims[0] == &sim_,
                  "shard 0 must be the network's own simulator");
  GTRIX_CHECK_MSG(!modulation_, "delay modulation is unavailable on the sharded engine");
  GTRIX_CHECK_MSG(shard_count_ == 1 && mail_.empty(), "shards already configured");
  GTRIX_CHECK_MSG(node_shard.size() == sinks_.size(), "node_shard must cover every node");
  if (sims.size() == 1) return;  // serial engine, untouched
  shard_sims_ = std::move(sims);
  node_shard_ = std::move(node_shard);
  shard_count_ = static_cast<std::uint32_t>(shard_sims_.size());
  for (std::uint32_t s : node_shard_) GTRIX_CHECK(s < shard_count_);
  mail_.resize(static_cast<std::size_t>(shard_count_) * shard_count_);
  pending_.resize(mail_.size());
  drain_scratch_.resize(shard_count_);
  shard_counters_.assign(shard_count_, ShardCounters{});
  defer_.resize(shard_count_);
  recompute_lookahead();
}

void Network::recompute_lookahead() {
  lookahead_ = kTimeInfinity;
  for (const Edge& edge : edges_) {
    if (node_shard_[edge.from] != node_shard_[edge.to]) {
      lookahead_ = std::min(lookahead_, edge.delay);
    }
  }
}

SimTime Network::earliest_mailbox_time() const {
  SimTime earliest = kTimeInfinity;
  for (const std::vector<ShardEnvelope>& cell : mail_) {
    for (const ShardEnvelope& env : cell) earliest = std::min(earliest, env.arrival);
  }
  for (const std::vector<ShardEnvelope>& cell : pending_) {
    for (const ShardEnvelope& env : cell) earliest = std::min(earliest, env.arrival);
  }
  return earliest;
}

void Network::publish_mailboxes() {
  for (std::size_t i = 0; i < mail_.size(); ++i) {
    std::vector<ShardEnvelope>& cell = mail_[i];
    if (cell.empty()) continue;
    envelopes_published_ += cell.size();
    std::vector<ShardEnvelope>& published = pending_[i];
    if (published.empty()) {
      published.swap(cell);  // the common case: last window's batch was drained
    } else {
      published.insert(published.end(), cell.begin(), cell.end());
      cell.clear();
    }
  }
}

void Network::drain_mailbox(std::uint32_t dst) {
  std::vector<ShardEnvelope>& batch = drain_scratch_[dst];
  batch.clear();
  for (std::uint32_t src = 0; src < shard_count_; ++src) {
    std::vector<ShardEnvelope>& cell =
        pending_[static_cast<std::size_t>(src) * shard_count_ + dst];
    batch.insert(batch.end(), cell.begin(), cell.end());
    cell.clear();
  }
  // (arrival, from, edge) is a total order over envelopes: a sender emits at
  // most one message per edge per instant. Scheduling in that order assigns
  // queue sequence numbers deterministically, independent of which shard
  // parked its envelopes first.
  std::sort(batch.begin(), batch.end(),
            [](const ShardEnvelope& a, const ShardEnvelope& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.from != b.from) return a.from < b.from;
              return a.edge < b.edge;
            });
  Simulator& sim = *shard_sims_[dst];
  shard_counters_[dst].envelopes_drained += batch.size();
  for (const ShardEnvelope& env : batch) {
    sim.at(env.arrival, this, kDeliver,
           EventPayload{.a = env.from, .b = env.edge, .c = env.to, .i = env.stamp, .f = 0.0});
  }
}

std::uint64_t Network::messages_sent() const noexcept {
  std::uint64_t total = sent_;
  for (const ShardCounters& c : shard_counters_) total += c.sent;
  return total;
}

std::uint64_t Network::messages_delivered() const noexcept {
  std::uint64_t total = delivered_;
  for (const ShardCounters& c : shard_counters_) total += c.delivered;
  return total;
}

std::uint64_t Network::envelopes_drained() const noexcept {
  std::uint64_t total = 0;
  for (const ShardCounters& c : shard_counters_) total += c.envelopes_drained;
  return total;
}

std::uint64_t Network::delivery_events() const noexcept {
  std::uint64_t total = delivery_events_;
  for (const ShardCounters& c : shard_counters_) total += c.delivery_events;
  return total;
}

bool Network::find_edge(NetNodeId from, NetNodeId to, EdgeId& out) const {
  for (EdgeId e : out_.at(from)) {
    if (edges_[e].to == to) {
      out = e;
      return true;
    }
  }
  return false;
}

void Network::send(EdgeId e, const Pulse& pulse) {
  if (shard_count_ > 1) {
    send_sharded(e, pulse);
    return;
  }
  const Edge& edge = edges_.at(e);
  double delay = edge.delay;
  if (modulation_) delay += modulation_(e, sim_.now());
  GTRIX_CHECK_MSG(delay > 0.0, "modulated delay must stay positive");
  ++sent_;
  deliver(edge.from, e, edge.to, pulse, sim_.now() + delay);
}

void Network::send_sharded(EdgeId e, const Pulse& pulse) {
  const Edge& edge = edges_.at(e);
  const std::uint32_t src = node_shard_[edge.from];
  const std::uint32_t dst = node_shard_[edge.to];
  Simulator& sim = *shard_sims_[src];
  ++shard_counters_[src].sent;
  const SimTime arrival = sim.now() + edge.delay;  // no modulation when sharded
  if (dst == src) {
    sim.at(arrival, this, kDeliver,
           EventPayload{.a = edge.from, .b = e, .c = edge.to, .i = pulse.stamp, .f = 0.0});
  } else {
    mail_[static_cast<std::size_t>(src) * shard_count_ + dst].push_back(
        ShardEnvelope{arrival, edge.from, e, edge.to, pulse.stamp});
  }
}

void Network::send_after(EdgeId e, const Pulse& pulse, double extra) {
  GTRIX_CHECK_MSG(extra >= 0.0, "deferred send cannot target the past");
  GTRIX_CHECK(e < edges_.size());
  // The deferred-send timer fires on the SENDING node's shard; the eventual
  // send() then routes the message itself.
  sim_of(edges_[e].from)
      .after(extra, this, kDeferredSend,
             EventPayload{.a = 0, .b = e, .c = 0, .i = pulse.stamp, .f = 0.0});
}

void Network::broadcast(NetNodeId from, const Pulse& pulse) {
  const std::vector<EdgeId>& outs = out_.at(from);
  if (shard_count_ > 1) {
    broadcast_sharded(from, pulse, outs);
    return;
  }
  const double uniform = uniform_out_delay_[from];
  if (batching_ && !modulation_ && outs.size() > 1 && !std::isnan(uniform)) {
    // All out-edges share one delay: a single queue event fans the pulse out
    // at fire time. Order-equivalent to the per-edge path (see the header).
    sent_ += outs.size();
    sim_.after(uniform, this, kBatchDeliver, EventPayload{.a = from, .i = pulse.stamp});
    return;
  }
  for (EdgeId e : outs) send(e, pulse);
}

void Network::broadcast_sharded(NetNodeId from, const Pulse& pulse,
                                const std::vector<EdgeId>& outs) {
  const std::uint32_t src = node_shard_[from];
  const double uniform = uniform_out_delay_[from];
  if (batching_ && outs.size() > 1 && !std::isnan(uniform)) {
    // Batched fan-out splits: same-shard receivers keep the single
    // kBatchDeliver event (whose fan-out skips remote edges), cross-shard
    // receivers get envelopes immediately -- the arrival time and the
    // (arrival, from, edge) merge key are identical either way, so skew
    // results don't depend on the split (only the executed-event counters
    // do, which is why the campaign reports logical events).
    Simulator& sim = *shard_sims_[src];
    shard_counters_[src].sent += outs.size();
    const SimTime arrival = sim.now() + uniform;
    bool any_local = false;
    for (EdgeId e : outs) {
      const Edge& edge = edges_[e];
      const std::uint32_t dst = node_shard_[edge.to];
      if (dst == src) {
        any_local = true;
        continue;
      }
      mail_[static_cast<std::size_t>(src) * shard_count_ + dst].push_back(
          ShardEnvelope{arrival, from, e, edge.to, pulse.stamp});
    }
    if (any_local) {
      sim.after(uniform, this, kBatchDeliver, EventPayload{.a = from, .i = pulse.stamp});
    }
    return;
  }
  for (EdgeId e : outs) send_sharded(e, pulse);
}

void Network::inject(NetNodeId from, NetNodeId to, const Pulse& pulse, SimTime t) {
  if (shard_count_ > 1) {
    // Test/self-stabilization hook; legal only while no worker threads run
    // (before run_* or between driver calls), so scheduling straight into
    // the receiving shard's queue is race-free.
    Simulator& sim = sim_of(to);
    GTRIX_CHECK_MSG(t >= sim.now(), "cannot inject into the past");
    ++shard_counters_[node_shard_[to]].sent;
    sim.at(t, this, kDeliver,
           EventPayload{.a = from, .b = static_cast<EdgeId>(-1), .c = to, .i = pulse.stamp, .f = 0.0});
    return;
  }
  GTRIX_CHECK_MSG(t >= sim_.now(), "cannot inject into the past");
  ++sent_;
  deliver(from, static_cast<EdgeId>(-1), to, pulse, t);
}

void Network::deliver(NetNodeId from, EdgeId edge, NetNodeId to, const Pulse& pulse,
                      SimTime at) {
  sim_.at(at, this, kDeliver,
          EventPayload{.a = from, .b = edge, .c = to, .i = pulse.stamp, .f = 0.0});
}

void Network::sink_pulse(NetNodeId from, EdgeId edge, NetNodeId to, std::int64_t stamp,
                         SimTime t) {
  if (shard_count_ > 1) {
    ++shard_counters_[node_shard_[to]].delivered;
  } else {
    ++delivered_;
  }
  PulseSink* sink = sinks_[to];
  if (sink != nullptr) sink->on_pulse(from, edge, Pulse{stamp}, t);
}

void Network::sink_or_defer(Simulator& sim, std::uint32_t cell_index, NetNodeId from,
                            EdgeId edge, NetNodeId to, std::int64_t stamp, SimTime t) {
  DeferCell& cell = defer_[cell_index];
  if (cell.active && cell.time == t) {
    cell.buf.push_back(DeferredArrival{to, from, edge, stamp});
    return;
  }
  if (sim.next_event_time() == t) {
    // At least one more event shares this instant (every arrival at t for a
    // node of this shard is already queued here: delays are positive, so
    // nothing new can be scheduled AT t once t executes). Capture sink
    // calls until the instant's events have run, then flush canonically.
    cell.active = true;
    cell.time = t;
    cell.buf.push_back(DeferredArrival{to, from, edge, stamp});
    sim.at(t, this, kFlushArrivals,
           EventPayload{.a = cell_index, .b = 0, .c = 0, .i = 0, .f = 0.0});
    return;
  }
  sink_pulse(from, edge, to, stamp, t);
}

void Network::on_timer(const Event& event) {
  const EventPayload& p = event.payload;
  switch (event.kind) {
    case kDeliver: {
      const std::uint32_t cell = shard_count_ > 1 ? node_shard_[p.c] : 0;
      if (shard_count_ > 1) {
        ++shard_counters_[cell].delivery_events;
      } else {
        ++delivery_events_;
      }
      sink_or_defer(sim_of(p.c), cell, p.a, p.b, p.c, p.i, event.time);
      return;
    }
    case kBatchDeliver: {
      // Fan out in out-edge order -- exactly the order the per-edge events
      // would fire in (their sequence numbers were consecutive). In sharded
      // mode this event runs on the sender's shard and fans out only to its
      // same-shard receivers; cross-shard receivers got envelopes instead.
      const std::uint32_t src = shard_count_ > 1 ? node_shard_[p.a] : 0;
      if (shard_count_ > 1) {
        ++shard_counters_[src].delivery_events;
      } else {
        ++delivery_events_;
      }
      Simulator& sim = sim_of(p.a);
      for (EdgeId e : out_[p.a]) {
        const Edge& edge = edges_[e];
        if (shard_count_ > 1 && node_shard_[edge.to] != src) continue;
        sink_or_defer(sim, src, edge.from, e, edge.to, p.i, event.time);
      }
      return;
    }
    case kFlushArrivals: {
      DeferCell& cell = defer_[p.a];
      if (shard_count_ > 1) {
        ++shard_counters_[p.a].delivery_events;
      } else {
        ++delivery_events_;
      }
      // Swap out before delivering: the sinks may schedule (strictly later)
      // events but can never re-enter this instant's buffer.
      std::vector<DeferredArrival> batch;
      batch.swap(cell.buf);
      cell.active = false;
      std::sort(batch.begin(), batch.end(),
                [](const DeferredArrival& a, const DeferredArrival& b) {
                  if (a.to != b.to) return a.to < b.to;
                  if (a.from != b.from) return a.from < b.from;
                  if (a.edge != b.edge) return a.edge < b.edge;
                  return a.stamp < b.stamp;
                });
      for (const DeferredArrival& d : batch) {
        sink_pulse(d.from, d.edge, d.to, d.stamp, event.time);
      }
      // Hand the capacity back so later instants reuse it.
      batch.clear();
      if (cell.buf.empty()) cell.buf.swap(batch);
      return;
    }
    case kDeferredSend:
      send(p.b, Pulse{p.i});
      return;
  }
}

}  // namespace gtrix
