#include "net/network.hpp"

#include "support/check.hpp"

namespace gtrix {

NetNodeId Network::add_node(PulseSink* sink) {
  const NetNodeId id = static_cast<NetNodeId>(sinks_.size());
  sinks_.push_back(sink);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

void Network::set_sink(NetNodeId node, PulseSink* sink) { sinks_.at(node) = sink; }

EdgeId Network::add_edge(NetNodeId from, NetNodeId to, double delay) {
  GTRIX_CHECK_MSG(delay > 0.0, "edge delay must be positive");
  GTRIX_CHECK(from < sinks_.size() && to < sinks_.size());
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, delay});
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

void Network::set_edge_delay(EdgeId e, double delay) {
  GTRIX_CHECK_MSG(delay > 0.0, "edge delay must be positive");
  edges_.at(e).delay = delay;
}

bool Network::find_edge(NetNodeId from, NetNodeId to, EdgeId& out) const {
  for (EdgeId e : out_.at(from)) {
    if (edges_[e].to == to) {
      out = e;
      return true;
    }
  }
  return false;
}

void Network::send(EdgeId e, const Pulse& pulse) {
  const Edge& edge = edges_.at(e);
  double delay = edge.delay;
  if (modulation_) delay += modulation_(e, sim_.now());
  GTRIX_CHECK_MSG(delay > 0.0, "modulated delay must stay positive");
  ++sent_;
  deliver(edge.from, e, edge.to, pulse, sim_.now() + delay);
}

void Network::send_after(EdgeId e, const Pulse& pulse, double extra) {
  GTRIX_CHECK_MSG(extra >= 0.0, "deferred send cannot target the past");
  GTRIX_CHECK(e < edges_.size());
  sim_.after(extra, this, kDeferredSend,
             EventPayload{.a = 0, .b = e, .c = 0, .i = pulse.stamp, .f = 0.0});
}

void Network::broadcast(NetNodeId from, const Pulse& pulse) {
  for (EdgeId e : out_.at(from)) send(e, pulse);
}

void Network::inject(NetNodeId from, NetNodeId to, const Pulse& pulse, SimTime t) {
  GTRIX_CHECK_MSG(t >= sim_.now(), "cannot inject into the past");
  ++sent_;
  deliver(from, static_cast<EdgeId>(-1), to, pulse, t);
}

void Network::deliver(NetNodeId from, EdgeId edge, NetNodeId to, const Pulse& pulse,
                      SimTime at) {
  sim_.at(at, this, kDeliver,
          EventPayload{.a = from, .b = edge, .c = to, .i = pulse.stamp, .f = 0.0});
}

void Network::on_timer(const Event& event) {
  const EventPayload& p = event.payload;
  switch (event.kind) {
    case kDeliver: {
      ++delivered_;
      PulseSink* sink = sinks_[p.c];
      if (sink != nullptr) sink->on_pulse(p.a, p.b, Pulse{p.i}, event.time);
      return;
    }
    case kDeferredSend:
      send(p.b, Pulse{p.i});
      return;
  }
}

}  // namespace gtrix
