#include "net/network.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace gtrix {

NetNodeId Network::add_node(PulseSink* sink) {
  const NetNodeId id = static_cast<NetNodeId>(sinks_.size());
  sinks_.push_back(sink);
  out_.emplace_back();
  in_.emplace_back();
  uniform_out_delay_.push_back(std::numeric_limits<double>::quiet_NaN());
  return id;
}

void Network::set_sink(NetNodeId node, PulseSink* sink) { sinks_.at(node) = sink; }

EdgeId Network::add_edge(NetNodeId from, NetNodeId to, double delay) {
  GTRIX_CHECK_MSG(delay > 0.0, "edge delay must be positive");
  GTRIX_CHECK(from < sinks_.size() && to < sinks_.size());
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, delay});
  out_[from].push_back(id);
  in_[to].push_back(id);
  if (out_[from].size() == 1) {
    uniform_out_delay_[from] = delay;
  } else if (uniform_out_delay_[from] != delay) {
    uniform_out_delay_[from] = std::numeric_limits<double>::quiet_NaN();
  }
  return id;
}

void Network::set_edge_delay(EdgeId e, double delay) {
  GTRIX_CHECK_MSG(delay > 0.0, "edge delay must be positive");
  edges_.at(e).delay = delay;
  // Re-derive the sender's uniformity from scratch (rare, config-time call).
  const NetNodeId from = edges_[e].from;
  double uniform = edges_[out_[from].front()].delay;
  for (EdgeId out_edge : out_[from]) {
    if (edges_[out_edge].delay != uniform) {
      uniform = std::numeric_limits<double>::quiet_NaN();
      break;
    }
  }
  uniform_out_delay_[from] = uniform;
}

bool Network::find_edge(NetNodeId from, NetNodeId to, EdgeId& out) const {
  for (EdgeId e : out_.at(from)) {
    if (edges_[e].to == to) {
      out = e;
      return true;
    }
  }
  return false;
}

void Network::send(EdgeId e, const Pulse& pulse) {
  const Edge& edge = edges_.at(e);
  double delay = edge.delay;
  if (modulation_) delay += modulation_(e, sim_.now());
  GTRIX_CHECK_MSG(delay > 0.0, "modulated delay must stay positive");
  ++sent_;
  deliver(edge.from, e, edge.to, pulse, sim_.now() + delay);
}

void Network::send_after(EdgeId e, const Pulse& pulse, double extra) {
  GTRIX_CHECK_MSG(extra >= 0.0, "deferred send cannot target the past");
  GTRIX_CHECK(e < edges_.size());
  sim_.after(extra, this, kDeferredSend,
             EventPayload{.a = 0, .b = e, .c = 0, .i = pulse.stamp, .f = 0.0});
}

void Network::broadcast(NetNodeId from, const Pulse& pulse) {
  const std::vector<EdgeId>& outs = out_.at(from);
  const double uniform = uniform_out_delay_[from];
  if (batching_ && !modulation_ && outs.size() > 1 && !std::isnan(uniform)) {
    // All out-edges share one delay: a single queue event fans the pulse out
    // at fire time. Order-equivalent to the per-edge path (see the header).
    sent_ += outs.size();
    sim_.after(uniform, this, kBatchDeliver, EventPayload{.a = from, .i = pulse.stamp});
    return;
  }
  for (EdgeId e : outs) send(e, pulse);
}

void Network::inject(NetNodeId from, NetNodeId to, const Pulse& pulse, SimTime t) {
  GTRIX_CHECK_MSG(t >= sim_.now(), "cannot inject into the past");
  ++sent_;
  deliver(from, static_cast<EdgeId>(-1), to, pulse, t);
}

void Network::deliver(NetNodeId from, EdgeId edge, NetNodeId to, const Pulse& pulse,
                      SimTime at) {
  sim_.at(at, this, kDeliver,
          EventPayload{.a = from, .b = edge, .c = to, .i = pulse.stamp, .f = 0.0});
}

void Network::on_timer(const Event& event) {
  const EventPayload& p = event.payload;
  switch (event.kind) {
    case kDeliver: {
      ++delivery_events_;
      ++delivered_;
      PulseSink* sink = sinks_[p.c];
      if (sink != nullptr) sink->on_pulse(p.a, p.b, Pulse{p.i}, event.time);
      return;
    }
    case kBatchDeliver: {
      ++delivery_events_;
      // Deliver in out-edge order -- exactly the order the per-edge events
      // would fire in (their sequence numbers were consecutive).
      for (EdgeId e : out_[p.a]) {
        const Edge& edge = edges_[e];
        ++delivered_;
        PulseSink* sink = sinks_[edge.to];
        if (sink != nullptr) sink->on_pulse(edge.from, e, Pulse{p.i}, event.time);
      }
      return;
    }
    case kDeferredSend:
      send(p.b, Pulse{p.i});
      return;
  }
}

}  // namespace gtrix
