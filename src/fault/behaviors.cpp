#include "fault/behaviors.hpp"

#include "support/check.hpp"

namespace gtrix {

FixedPeriodRogue::FixedPeriodRogue(Simulator& sim, Network& net, NetNodeId self,
                                   double period, double first_at,
                                   std::int64_t max_pulses, Recorder* recorder)
    : sim_(sim), net_(net), self_(self), period_(period), first_at_(first_at),
      max_pulses_(max_pulses), recorder_(recorder) {
  GTRIX_CHECK_MSG(period_ > 0.0, "rogue period must be positive");
}

void FixedPeriodRogue::start() {
  sim_.at(first_at_, this, kTick);
}

void FixedPeriodRogue::on_timer(const Event& event) { tick(event.time); }

void FixedPeriodRogue::tick(SimTime now) {
  ++sigma_;
  ++emitted_;
  if (recorder_ != nullptr) recorder_->record_pulse(self_, sigma_, now);
  net_.broadcast(self_, Pulse{sigma_});
  if (static_cast<std::int64_t>(emitted_) < max_pulses_) {
    sim_.at(now + period_, this, kTick);
  }
}

}  // namespace gtrix
