#include "fault/fault.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "support/check.hpp"
#include "support/json.hpp"

namespace gtrix {

namespace {

struct FaultName {
  FaultKind value;
  std::string_view name;
};

constexpr FaultName kFaultNames[] = {
    {FaultKind::kCrash, "crash"},
    {FaultKind::kMuteAfter, "mute-after"},
    {FaultKind::kStaticOffset, "static-offset"},
    {FaultKind::kSplit, "split"},
    {FaultKind::kJitter, "jitter"},
    {FaultKind::kFixedPeriod, "fixed-period"},
};

}  // namespace

std::string_view to_string(FaultKind v) {
  for (const FaultName& entry : kFaultNames) {
    if (entry.value == v) return entry.name;
  }
  return "?";
}

FaultKind fault_kind_from_string(std::string_view s) {
  for (const FaultName& entry : kFaultNames) {
    if (entry.name == s) return entry.value;
  }
  std::string valid;
  for (const FaultName& entry : kFaultNames) {
    if (!valid.empty()) valid += ", ";
    valid += entry.name;
  }
  throw JsonError("unknown fault kind '" + std::string(s) + "' (valid: " + valid + ")");
}

FaultSpec FaultSpec::static_offset(double offset) {
  FaultSpec s;
  s.kind = FaultKind::kStaticOffset;
  s.offset = offset;
  return s;
}

FaultSpec FaultSpec::split(double alpha) {
  FaultSpec s;
  s.kind = FaultKind::kSplit;
  s.alpha = alpha;
  return s;
}

FaultSpec FaultSpec::jitter(double alpha) {
  FaultSpec s;
  s.kind = FaultKind::kJitter;
  s.alpha = alpha;
  return s;
}

FaultSpec FaultSpec::fixed_period(double period) {
  FaultSpec s;
  s.kind = FaultKind::kFixedPeriod;
  s.period = period;
  return s;
}

FaultSpec FaultSpec::mute_after(std::int64_t after) {
  FaultSpec s;
  s.kind = FaultKind::kMuteAfter;
  s.after = after;
  return s;
}

std::vector<PlacedFault> sample_iid_faults(const Grid& grid, const PlacementOptions& options,
                                           const FaultSpec& spec, Rng& rng) {
  for (std::uint32_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    std::vector<PlacedFault> faults;
    for (std::uint32_t layer = options.exclude_layer0 ? 1 : 0; layer < grid.layers();
         ++layer) {
      for (BaseNodeId v = 0; v < grid.base().node_count(); ++v) {
        if (rng.bernoulli(options.probability)) {
          faults.push_back(PlacedFault{v, layer, spec});
        }
      }
    }
    if (!options.enforce_one_local || is_one_local(grid, faults)) return faults;
  }
  GTRIX_CHECK_MSG(false, "could not sample a 1-local fault set; p too large");
  return {};
}

std::vector<PlacedFault> clustered_faults(const Grid& grid, std::uint32_t f,
                                          std::uint32_t column, std::uint32_t start_layer,
                                          std::uint32_t stride, const FaultSpec& spec) {
  GTRIX_CHECK_MSG(stride >= 1, "stride must be at least 1");
  GTRIX_CHECK_MSG(column < grid.base().column_count(), "column out of range");
  std::vector<PlacedFault> faults;
  const BaseNodeId base = grid.base().nodes_in_column(column).front();
  std::uint32_t layer = start_layer;
  for (std::uint32_t i = 0; i < f; ++i) {
    GTRIX_CHECK_MSG(layer < grid.layers(), "fault cluster exceeds layer count");
    faults.push_back(PlacedFault{base, layer, spec});
    layer += stride;
  }
  GTRIX_CHECK_MSG(is_one_local(grid, faults), "clustered faults violate 1-locality");
  return faults;
}

std::vector<GridNodeId> locality_violations(const Grid& grid,
                                            const std::vector<PlacedFault>& faults,
                                            std::uint32_t max_faulty_preds) {
  std::set<GridNodeId> fault_set;
  for (const auto& f : faults) fault_set.insert(grid.id(f.base, f.layer));
  std::vector<GridNodeId> violations;
  if (fault_set.size() != faults.size()) {
    // Duplicate fault placements: report them all.
    for (const auto& f : faults) violations.push_back(grid.id(f.base, f.layer));
    return violations;
  }
  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    std::uint32_t faulty_preds = 0;
    for (GridNodeId p : grid.predecessors(g)) {
      if (fault_set.contains(p)) ++faulty_preds;
    }
    if (faulty_preds > max_faulty_preds) violations.push_back(g);
  }
  return violations;
}

std::vector<GridNodeId> one_locality_violations(const Grid& grid,
                                                const std::vector<PlacedFault>& faults) {
  return locality_violations(grid, faults, 1);
}

bool is_one_local(const Grid& grid, const std::vector<PlacedFault>& faults) {
  return one_locality_violations(grid, faults).empty();
}

}  // namespace gtrix
