// Fault model (paper §2, "Fault Model").
//
// Faulty nodes behave arbitrarily subject to the model constraint that at
// most a constant number change their timing between consecutive pulses.
// The behaviours below cover the spectrum the paper discusses:
//
//  * kCrash        -- never sends (permanent silent fault)
//  * kMuteAfter    -- correct for `after` pulses, then silent
//  * kStaticOffset -- correct algorithm, pulse shifted by a constant
//                     ("delay fault with a static timing profile", §1)
//  * kSplit        -- per-successor static offsets: sends early to some
//                     successors and late to others (maximally divisive;
//                     exercises the median-sticking defence)
//  * kJitter       -- per-pulse random offset (changes behaviour every
//                     pulse; allowed for a constant number of nodes,
//                     Corollary 1.5)
//  * kFixedPeriod  -- ignores all inputs and pulses at its own period
//                     (a node whose control logic is dead but whose
//                     oscillator still runs)
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/grid.hpp"
#include "support/rng.hpp"

namespace gtrix {

enum class FaultKind : std::uint8_t {
  kCrash,
  kMuteAfter,
  kStaticOffset,
  kSplit,
  kJitter,
  kFixedPeriod,
};

struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  double offset = 0.0;        ///< kStaticOffset: shift in time units (may be negative)
  double alpha = 0.0;         ///< kSplit: half-spread; kJitter: amplitude
  double period = 0.0;        ///< kFixedPeriod: self period (0 -> Lambda)
  std::int64_t after = 0;     ///< kMuteAfter: correct pulses before silence

  static FaultSpec crash() { return {}; }
  static FaultSpec static_offset(double offset);
  static FaultSpec split(double alpha);
  static FaultSpec jitter(double alpha);
  static FaultSpec fixed_period(double period);
  static FaultSpec mute_after(std::int64_t after);

  bool operator==(const FaultSpec&) const = default;
};

struct PlacedFault {
  BaseNodeId base = 0;
  std::uint32_t layer = 0;
  FaultSpec spec;

  bool operator==(const PlacedFault&) const = default;
};

/// Canonical kind names shared by the scenario parser, result emission and
/// error messages.
std::string_view to_string(FaultKind v);
/// Throws JsonError-compatible std::runtime_error listing the valid names.
FaultKind fault_kind_from_string(std::string_view s);

/// Options for random fault placement.
struct PlacementOptions {
  double probability = 0.0;     ///< independent per-node failure probability p
  bool exclude_layer0 = true;   ///< Theorem 1.2/1.3 settings assume layer 0 correct
  bool enforce_one_local = true;///< resample until no node has 2 faulty predecessors
  std::uint32_t max_attempts = 64;
};

/// Samples an i.i.d. fault set; every selected node receives `spec`.
/// Throws if `enforce_one_local` cannot be satisfied within max_attempts.
std::vector<PlacedFault> sample_iid_faults(const Grid& grid, const PlacementOptions& options,
                                           const FaultSpec& spec, Rng& rng);

/// Worst-case clustering for Theorem 1.2: f faults in the same base column,
/// on layers start_layer, start_layer + stride, ... (1-local by construction
/// when stride >= 2; stride 1 stacks them as tightly as the model allows).
std::vector<PlacedFault> clustered_faults(const Grid& grid, std::uint32_t f,
                                          std::uint32_t column, std::uint32_t start_layer,
                                          std::uint32_t stride, const FaultSpec& spec);

/// True if no node of the grid has two or more faulty in-neighbours and no
/// two faults coincide (the paper's 1-locality requirement). Faults are
/// identified by (base, layer).
bool is_one_local(const Grid& grid, const std::vector<PlacedFault>& faults);

/// Nodes violating 1-locality (for diagnostics).
std::vector<GridNodeId> one_locality_violations(const Grid& grid,
                                                const std::vector<PlacedFault>& faults);

/// Generalized f-locality: nodes with more than `max_faulty_preds` faulty
/// in-neighbours (used by the degree-(2f+1) extension experiments).
std::vector<GridNodeId> locality_violations(const Grid& grid,
                                            const std::vector<PlacedFault>& faults,
                                            std::uint32_t max_faulty_preds);

}  // namespace gtrix
