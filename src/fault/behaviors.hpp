// Standalone faulty-node behaviours that do not reuse the correct
// algorithm's logic. Behaviours derived from the correct algorithm
// (static offset, split, jitter, mute-after) are realized in the runner by
// configuring a GradientTrixNode with a broadcast offset / send override.
#pragma once

#include <cstdint>

#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gtrix {

class CkptWriter;
class CkptCursor;

/// A node whose control logic is dead but whose oscillator still runs: it
/// ignores every input and broadcasts at a fixed period. Its wave stamps
/// advance monotonically but bear no relation to real waves.
class FixedPeriodRogue final : public PulseSink, public TimerTarget {
 public:
  /// Emits at `first_at`, `first_at + period`, ... up to `max_pulses` pulses
  /// (the cap keeps the event queue finite).
  FixedPeriodRogue(Simulator& sim, Network& net, NetNodeId self, double period,
                   double first_at, std::int64_t max_pulses, Recorder* recorder);

  void start();

  void on_pulse(NetNodeId /*from*/, EdgeId /*edge*/, const Pulse& /*pulse*/,
                SimTime /*now*/) override {
    // Ignores all inputs.
  }

  void on_timer(const Event& event) override;

  std::uint64_t pulses_emitted() const noexcept { return emitted_; }

  /// Checkpoint hooks (src/ckpt/nodes_ckpt.cpp): wave label + emit counter
  /// (the pending tick event lives in the queue snapshot).
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  enum TimerKind : std::uint32_t { kTick = 1 };

  void tick(SimTime now);

  Simulator& sim_;
  Network& net_;
  NetNodeId self_;
  double period_;
  double first_at_;
  std::int64_t max_pulses_;
  Recorder* recorder_;
  Sigma sigma_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Silently absorbs all pulses (crash fault). Useful where a null sink is
/// not convenient (keeps counters).
class CrashSink final : public PulseSink {
 public:
  void on_pulse(NetNodeId /*from*/, EdgeId /*edge*/, const Pulse& /*pulse*/,
                SimTime /*now*/) override {
    ++absorbed_;
  }

  std::uint64_t absorbed() const noexcept { return absorbed_; }

  /// Checkpoint hooks (src/ckpt/nodes_ckpt.cpp): the absorbed counter.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  std::uint64_t absorbed_ = 0;
};

}  // namespace gtrix
