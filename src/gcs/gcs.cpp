#include "gcs/gcs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace gtrix {

namespace {

struct GcsNodeState {
  double hw_rate = 1.0;       // hardware clock rate in [1, theta]
  bool fast = false;          // fast mode active
  bool crashed = false;
  double logical = 0.0;       // L_v at `updated_at`
  SimTime updated_at = 0.0;   // real time of last logical-clock update
  // Neighbour estimates: value at reception plus nominal advance since.
  std::vector<double> est_value;     // received L_w
  std::vector<SimTime> est_at;       // reception real time
  std::vector<bool> est_valid;
};

class GcsSim final : public TimerTarget {
 public:
  explicit GcsSim(const GcsConfig& config)
      : cfg_(config),
        graph_(BaseGraph::line_replicated(config.columns)),
        rng_(config.seed ^ 0x6C5347ULL) {
    const std::uint32_t n = graph_.node_count();
    nodes_.resize(n);
    for (BaseNodeId v = 0; v < n; ++v) {
      GcsNodeState& node = nodes_[v];
      node.hw_rate = rng_.uniform(1.0, cfg_.theta);
      const std::size_t degree = graph_.neighbors(v).size();
      node.est_value.assign(degree, 0.0);
      node.est_at.assign(degree, 0.0);
      node.est_valid.assign(degree, false);
    }
    for (BaseNodeId v : cfg_.crashes) nodes_.at(v).crashed = true;
    // Estimate-error scale: delay uncertainty plus drift across one
    // broadcast interval (the continuous kappa).
    kappa_g_ = cfg_.u + (cfg_.theta - 1.0) * (cfg_.d + cfg_.broadcast_interval);
  }

  GcsResult run() {
    // Stagger initial broadcasts to avoid artificial synchrony.
    for (BaseNodeId v = 0; v < graph_.node_count(); ++v) {
      if (nodes_[v].crashed) continue;
      sim_.at(rng_.uniform(0.0, cfg_.broadcast_interval), this, kBroadcast,
              EventPayload{.a = v});
    }
    for (SimTime t = cfg_.sample_interval; t <= cfg_.run_time;
         t += cfg_.sample_interval) {
      sim_.at(t, this, kSample);
    }
    sim_.run_all();
    result_.kappa_g = kappa_g_;
    return result_;
  }

  void on_timer(const Event& event) override {
    const EventPayload& p = event.payload;
    switch (event.kind) {
      case kBroadcast:
        broadcast(p.a, event.time);
        return;
      case kSample:
        sample(event.time);
        return;
      case kDeliver: {
        // a=receiver, b=neighbour slot, f=sender's logical value at send.
        GcsNodeState& receiver = nodes_[p.a];
        if (receiver.crashed) return;
        // Estimate: sender's value plus the nominal (minimum) delay.
        receiver.est_value[p.b] = p.f + (cfg_.d - cfg_.u);
        receiver.est_at[p.b] = event.time;
        receiver.est_valid[p.b] = true;
        update_mode(p.a, event.time);
        return;
      }
    }
  }

 private:
  enum TimerKind : std::uint32_t { kBroadcast = 1, kSample = 2, kDeliver = 3 };
  double logical_at(const GcsNodeState& node, SimTime now) const {
    const double rate = node.hw_rate * (node.fast ? 1.0 + cfg_.mu : 1.0);
    return node.logical + rate * (now - node.updated_at);
  }

  void advance(GcsNodeState& node, SimTime now) {
    node.logical = logical_at(node, now);
    node.updated_at = now;
  }

  /// Neighbour estimate advanced at nominal rate 1 since reception.
  double estimate(const GcsNodeState& node, std::size_t slot, SimTime now) const {
    return node.est_value[slot] + (now - node.est_at[slot]);
  }

  void update_mode(BaseNodeId v, SimTime now) {
    GcsNodeState& node = nodes_[v];
    advance(node, now);
    double ahead = -std::numeric_limits<double>::infinity();
    double behind = std::numeric_limits<double>::infinity();
    bool any = false;
    for (std::size_t slot = 0; slot < node.est_valid.size(); ++slot) {
      if (!node.est_valid[slot]) continue;
      any = true;
      const double offset = estimate(node, slot, now) - node.logical;
      ahead = std::max(ahead, offset);
      behind = std::min(behind, offset);
    }
    bool fast = false;
    if (any && ahead > 0.0) {
      // fast <=> exists s >= 1: ahead >= (4s-2) kappa and behind >= -4s kappa.
      const auto s_max = static_cast<std::int64_t>(
          std::floor((ahead + 2.0 * kappa_g_) / (4.0 * kappa_g_)));
      for (std::int64_t s = 1; s <= s_max; ++s) {
        if (behind >= -4.0 * static_cast<double>(s) * kappa_g_) {
          fast = true;
          break;
        }
      }
    }
    if (fast && !node.fast) ++result_.fast_mode_activations;
    node.fast = fast;
  }

  void broadcast(BaseNodeId v, SimTime now) {
    GcsNodeState& node = nodes_[v];
    if (node.crashed) return;
    update_mode(v, now);
    const double value = node.logical;
    const auto neighbors = graph_.neighbors(v);
    for (BaseNodeId w : neighbors) {
      if (nodes_[w].crashed) continue;
      // Slot of v in w's neighbour list.
      const auto wn = graph_.neighbors(w);
      const auto it = std::find(wn.begin(), wn.end(), v);
      const auto slot = static_cast<std::size_t>(it - wn.begin());
      const double delay = rng_.uniform(cfg_.d - cfg_.u, cfg_.d);
      sim_.at(now + delay, this, kDeliver,
              EventPayload{.a = w, .b = static_cast<std::uint32_t>(slot), .f = value});
    }
    // Next broadcast after broadcast_interval local time.
    const double real_gap = cfg_.broadcast_interval / node.hw_rate;
    if (now + real_gap <= cfg_.run_time) {
      sim_.at(now + real_gap, this, kBroadcast, EventPayload{.a = v});
    }
  }

  void sample(SimTime now) {
    if (now < cfg_.warmup) return;
    ++result_.samples;
    for (BaseNodeId v = 0; v < graph_.node_count(); ++v) {
      if (nodes_[v].crashed) continue;
      const double lv = logical_at(nodes_[v], now);
      for (BaseNodeId w = 0; w < graph_.node_count(); ++w) {
        if (w == v || nodes_[w].crashed) continue;
        const double diff = std::abs(lv - logical_at(nodes_[w], now));
        result_.global_skew = std::max(result_.global_skew, diff);
        if (graph_.has_edge(v, w)) {
          result_.local_skew = std::max(result_.local_skew, diff);
        }
      }
    }
  }

  GcsConfig cfg_;
  BaseGraph graph_;
  Rng rng_;
  Simulator sim_;
  std::vector<GcsNodeState> nodes_;
  double kappa_g_ = 0.0;
  GcsResult result_;
};

}  // namespace

GcsResult run_gcs(const GcsConfig& config) {
  GTRIX_CHECK_MSG(config.mu > 0.0, "fast-mode boost must be positive");
  GcsSim sim(config);
  return sim.run();
}

}  // namespace gtrix
