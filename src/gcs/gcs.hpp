// Baseline: continuous gradient clock synchronization [LLW10/KO09] -- the
// algorithm Gradient TRIX simulates in discretized, fault-tolerant form
// (paper Table 1, row "GCS").
//
// Each node runs a logical clock L_v at its hardware rate, optionally
// boosted by a factor (1 + mu) when in "fast mode". Nodes broadcast their
// logical clock value to all neighbours every broadcast_interval; receivers
// keep estimates (received value, advanced at nominal rate since
// reception). Fast mode follows the paper's fast-condition shape
// (Definition 4.4, continuous analogue):
//
//   fast  <=>  exists s >= 1:  max_w est_w - L_v >= (4s - 2) kappa_g
//              and             min_w est_w - L_v >= -4s kappa_g
//
// i.e. catch up when some neighbour is far ahead unless another is so far
// behind that catching up would hurt it. With kappa_g ~ estimate error this
// yields O(kappa_g log D) local skew [LLW10]. No fault tolerance beyond
// crashes: a Byzantine node could drag its neighbours arbitrarily.
//
// Self-contained simulation on an undirected base graph; the harness
// samples the logical clocks periodically and reports skews.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/base_graph.hpp"

namespace gtrix {

struct GcsConfig {
  std::uint32_t columns = 16;      ///< replicated-line columns
  double d = 1000.0;               ///< max message delay
  double u = 10.0;                 ///< delay uncertainty
  double theta = 1.0005;           ///< hardware clock rate bound
  double mu = 0.05;                ///< fast-mode boost (rate * (1 + mu))
  double broadcast_interval = 500.0;  ///< local time between estimate broadcasts
  double run_time = 200000.0;      ///< simulated real time
  double sample_interval = 2000.0; ///< skew sampling period
  double warmup = 40000.0;         ///< ignore samples before this time
  std::uint64_t seed = 1;
  std::vector<BaseNodeId> crashes; ///< nodes that stop participating at t=0
};

struct GcsResult {
  double local_skew = 0.0;   ///< max |L_v - L_w| over adjacent correct pairs
  double global_skew = 0.0;  ///< max |L_v - L_w| over all correct pairs
  double kappa_g = 0.0;      ///< estimate-error scale used by the conditions
  std::uint64_t samples = 0;
  std::uint64_t fast_mode_activations = 0;
};

GcsResult run_gcs(const GcsConfig& config);

}  // namespace gtrix
