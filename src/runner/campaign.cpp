#include "runner/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include <filesystem>

#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "runner/ckpt_runner.hpp"
#include "support/stats.hpp"

namespace gtrix {

namespace {

Json skew_to_json(const SkewReport& skew) {
  Json j = Json::object();
  j.set("max_intra", skew.max_intra);
  j.set("max_inter", skew.max_inter);
  j.set("local", skew.local_skew);
  j.set("global", skew.global_skew);
  j.set("sigma_lo", skew.sigma_lo);
  j.set("sigma_hi", skew.sigma_hi);
  j.set("pairs_checked", skew.pairs_checked);
  j.set("pairs_skipped", skew.pairs_skipped);
  Json by_layer = Json::array();
  for (const double v : skew.intra_by_layer) by_layer.push_back(v);
  j.set("intra_by_layer", std::move(by_layer));
  Json dev = Json::object();
  dev.set("samples", skew.deviations.count);
  // Same empty-set convention as the summary percentiles: null, never a
  // fake 0.0 that reads as a genuine zero-skew measurement.
  const bool has = skew.deviations.count > 0;
  dev.set("mean", has ? Json(skew.deviations.mean) : Json());
  dev.set("p50", has ? Json(skew.deviations.p50) : Json());
  dev.set("p90", has ? Json(skew.deviations.p90) : Json());
  dev.set("p99", has ? Json(skew.deviations.p99) : Json());
  dev.set("exact", skew.deviations.exact);
  j.set("deviations", std::move(dev));
  return j;
}

Json counters_to_json(const ExperimentCounters& counters) {
  Json j = Json::object();
  j.set("iterations", counters.iterations);
  j.set("late_broadcasts", counters.late_broadcasts);
  j.set("guard_aborts", counters.guard_aborts);
  j.set("watchdog_resets", counters.watchdog_resets);
  j.set("timeout_branches", counters.timeout_branches);
  j.set("duplicate_drops", counters.duplicate_drops);
  // Logical events, not raw executed events: broadcast batching and the
  // sharded engine's cross-shard fan-out splitting change how many queue
  // events realize the same deliveries, so the raw count is engine-
  // dependent. This normalized count is invariant across every
  // EngineOptions combination, which keeps the JSONL byte-identical across
  // (threads, shards) -- the CI determinism diffs rely on it.
  j.set("logical_events", counters.events_executed - counters.delivery_events +
                              counters.messages_delivered);
  j.set("messages_sent", counters.messages_sent);
  j.set("messages_delivered", counters.messages_delivered);
  return j;
}

Json percentiles_to_json(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  // An empty sample set used to report 0.0 everywhere, indistinguishable
  // from a genuine zero-skew run. Emit the sample count plus JSON null for
  // every percentile instead; consumers key off "samples".
  const auto q = [&](double p) {
    return values.empty() ? Json() : Json(quantile_sorted(values, p));
  };
  Json j = Json::object();
  j.set("samples", static_cast<std::int64_t>(values.size()));
  j.set("min", q(0.0));
  j.set("mean", values.empty() ? Json()
                               : Json(sum / static_cast<double>(values.size())));
  j.set("p50", q(0.50));
  j.set("p90", q(0.90));
  j.set("p95", q(0.95));
  j.set("max", q(1.0));
  return j;
}

}  // namespace

ExperimentResult measure_cell(World& world, const ExperimentConfig& config,
                              const CorruptPlan& corrupt) {
  ExperimentResult result;
  result.counters = world.counters();
  result.diameter = world.grid().base().diameter();
  result.thm11_bound = config.params.thm11_bound(result.diameter);
  result.global_bound = config.params.global_skew_bound(result.diameter);
  if (corrupt.enabled) {
    result.realign = world.realign_labels();
    // Measure after the recovery budget (one layer per wave plus slack), not
    // over the corruption transient itself -- the scenario's claim is about
    // the post-stabilization skew.
    const auto [lo, hi] = default_window(world.recorder(), config.warmup);
    const Sigma recovered =
        static_cast<Sigma>(corrupt.wave) + static_cast<Sigma>(config.layers) + 6;
    if (recovered > hi) {
      throw std::runtime_error(
          "corrupt scenario leaves no post-recovery measurement window: "
          "recovery budget ends at wave " + std::to_string(recovered) +
          " but the run's window ends at wave " + std::to_string(hi) +
          " -- increase 'pulses' (need roughly corrupt.wave + layers + warmup + 10)");
    }
    result.skew = world.skew_window(std::max(lo, recovered), hi);

    // Recovery-time scan (Theorems 1.2/1.3): worst local deviation per wave
    // from the injection on, against the steady-state bound. Scanning stops
    // two waves past the recovery budget -- the scan's answer is "when did
    // the series re-enter the bound for good", and waves beyond the budget
    // are already covered by the post-recovery skew window above.
    const Sigma scan_lo = static_cast<Sigma>(corrupt.wave);
    const Sigma scan_hi = std::min(hi, recovered + 2);
    world.require_retained(scan_lo, scan_hi + 1, "recovery");
    RecoveryReport& rec = result.recovery;
    rec.enabled = true;
    rec.corrupt_wave = scan_lo;
    rec.scan_hi = scan_hi;
    rec.threshold = result.thm11_bound;
    rec.local_by_wave = local_skew_by_sigma(world.trace(), scan_lo, scan_hi);
    Sigma last_violation = scan_lo - 1;
    for (std::size_t i = 0; i < rec.local_by_wave.size(); ++i) {
      const double v = rec.local_by_wave[i];
      if (!std::isnan(v) && v > rec.threshold) {
        last_violation = scan_lo + static_cast<Sigma>(i);
      }
    }
    rec.recovered = last_violation < scan_hi;  // still out at scan end -> not recovered
    rec.recovered_wave = last_violation + 1;
  } else {
    result.skew = world.skew();
  }
  result.engine_stats = world.engine_stats();
  return result;
}

ExperimentResult run_cell(const ExperimentConfig& config, const CorruptPlan& corrupt,
                          EngineOptions engine, CellObs obs) {
  // Phase spans land on (cell pid, tid 0); sharded window spans nest inside
  // them on the per-shard tids. Null trace -> zero added work.
  TraceCollector* trace = kObsCompiled && engine.telemetry ? obs.trace : nullptr;
  const auto phase_span = [&](const char* name, auto&& body) {
    if (trace == nullptr) {
      body();
      return;
    }
    const double t0 = trace->now_us();
    body();
    trace->add_complete(obs.trace_pid, 0, name, t0, trace->now_us() - t0);
  };

  if (!corrupt.enabled) {
    if (trace == nullptr) return run_experiment(config, engine);
    World world(config, engine);
    world.set_trace(trace, obs.trace_pid);
    phase_span("run", [&] { world.run_to_completion(); });
    return measure_cell(world, config, corrupt);
  }

  // Corrupt cells honor the configured recording mode. Under the
  // memory-bounded modes the corruption anchor pins a look-back box of
  // waves around the injection so realignment, the post-recovery skew
  // window and the recovery-time scan stay answerable after eviction --
  // with insufficient look-back they fail loudly, never silently
  // (docs/scaling.md, "Realignment at scale").
  World world(config, engine);
  world.set_corruption_anchor(corrupt.wave);
  world.set_trace(trace, obs.trace_pid);
  // Seed derivation matches the historical stabilization harnesses.
  Rng rng(config.seed ^ 0xFEED);
  phase_span("run", [&] { world.run_until(corrupt.wave * config.params.lambda); });
  phase_span("corrupt", [&] { world.corrupt_fraction(corrupt.fraction, rng); });
  phase_span("recover", [&] { world.run_to_completion(); });
  ExperimentResult result;
  phase_span("realign", [&] { result = measure_cell(world, config, corrupt); });
  return result;
}

CampaignResult run_campaign(const Scenario& scenario, const CampaignOptions& options) {
  const auto started = std::chrono::steady_clock::now();

  CampaignResult campaign;
  campaign.scenario = scenario.name();

  std::vector<ScenarioCell> cells = scenario.cells();
  const ComponentSpec canonical_override =
      options.recording_override.empty()
          ? ComponentSpec{}
          : recording_registry().canonicalize(options.recording_override);
  for (ScenarioCell& cell : cells) {
    // Every cell -- corrupt or not -- runs the mode its config says (the
    // historical silent rewrite of corrupt cells to full recording is gone;
    // corruption-anchored retention answers realignment from the bounded
    // trace). The JSONL therefore always describes the mode that ran.
    if (!canonical_override.empty()) cell.config.recording_spec = canonical_override;
  }
  std::vector<ExperimentConfig> configs;
  configs.reserve(cells.size());
  for (const ScenarioCell& cell : cells) configs.push_back(cell.config);

  const SweepRunner runner(SweepOptions{options.threads});
  // parallel_for_index never spawns more workers than there is work.
  campaign.threads_used = static_cast<unsigned>(
      std::min<std::size_t>(runner.thread_count(), std::max<std::size_t>(1, cells.size())));
  // Nested-parallelism budget: sweep workers x shard threads stays within
  // hardware concurrency. Shard counts are behaviour-neutral (bit-identical
  // results), so clamping only changes the thread layout, never the output.
  const std::uint32_t requested_shards =
      options.shards != 0 ? options.shards : scenario.engine_shards();
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  campaign.shards_used = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(requested_shards,
                                 hardware / std::max(1u, campaign.threads_used)));
  EngineOptions engine;
  engine.shards = campaign.shards_used;
  engine.telemetry = kObsCompiled && (options.telemetry || options.trace != nullptr);

  TraceCollector* trace = engine.telemetry ? options.trace : nullptr;
  if (trace != nullptr) {
    trace->set_process_name(1, "campaign " + campaign.scenario);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      trace->set_process_name(options.trace_pid_base + static_cast<std::uint32_t>(i),
                              campaign.scenario + "/" + cells[i].label);
    }
  }
  if (!options.checkpoint.dir.empty()) {
    std::filesystem::create_directories(options.checkpoint.dir);
  }
  std::unique_ptr<ProgressMeter> progress;
  if (options.progress_seconds > 0.0) {
    progress = std::make_unique<ProgressMeter>(campaign.scenario, cells.size(),
                                               options.progress_seconds);
  }

  const std::vector<ExperimentResult> results = runner.run(
      configs, [&](const ExperimentConfig& config, std::size_t i) {
        CellObs obs;
        if (trace != nullptr) {
          obs.trace = trace;
          obs.trace_pid = options.trace_pid_base + static_cast<std::uint32_t>(i);
        }
        const double t0 = trace != nullptr ? trace->now_us() : 0.0;
        ExperimentResult r =
            options.checkpoint.dir.empty()
                ? run_cell(config, cells[i].corrupt, engine, obs)
                : run_cell_checkpointed(config, cells[i].corrupt, options.checkpoint, i,
                                        cells[i].label, engine, obs);
        const std::uint64_t logical = r.counters.events_executed -
                                      r.counters.delivery_events +
                                      r.counters.messages_delivered;
        if (trace != nullptr) {
          trace->add_complete(1, trace->tid_for_current_thread(), cells[i].label, t0,
                              trace->now_us() - t0,
                              static_cast<std::int64_t>(logical));
        }
        if (progress) progress->cell_done(logical);
        return r;
      });

  campaign.cells.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    CampaignCell out;
    out.label = std::move(cells[i].label);
    out.config = std::move(cells[i].config);
    out.corrupt = cells[i].corrupt;
    out.result = results[i];
    campaign.cells.push_back(std::move(out));
  }

  campaign.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return campaign;
}

std::string campaign_jsonl(const CampaignResult& result) {
  std::string out;
  for (const CampaignCell& cell : result.cells) {
    Json line = Json::object();
    line.set("scenario", result.scenario);
    line.set("cell", cell.label);
    line.set("config", to_json(cell.config));
    if (cell.corrupt.enabled) {
      Json corrupt = Json::object();
      corrupt.set("wave", cell.corrupt.wave);
      corrupt.set("fraction", cell.corrupt.fraction);
      line.set("corrupt", std::move(corrupt));
    }
    Json res = Json::object();
    res.set("diameter", cell.result.diameter);
    res.set("skew", skew_to_json(cell.result.skew));
    Json bounds = Json::object();
    bounds.set("thm11", cell.result.thm11_bound);
    bounds.set("global", cell.result.global_bound);
    res.set("bounds", std::move(bounds));
    res.set("counters", counters_to_json(cell.result.counters));
    if (cell.result.recovery.enabled) {
      Json realign = Json::object();
      realign.set("nodes_shifted",
                  static_cast<std::int64_t>(cell.result.realign.nodes_shifted));
      realign.set("max_abs_shift", cell.result.realign.max_abs_shift);
      res.set("realign", std::move(realign));
      const RecoveryReport& rec = cell.result.recovery;
      Json recovery = Json::object();
      recovery.set("corrupt_wave", static_cast<std::int64_t>(rec.corrupt_wave));
      recovery.set("scan_hi", static_cast<std::int64_t>(rec.scan_hi));
      recovery.set("threshold", rec.threshold);
      recovery.set("recovered", rec.recovered);
      // null when the cell never stabilized inside the scan -- a consumer
      // must not mistake "no recovery" for "recovered at wave 0".
      recovery.set("recovered_wave", rec.recovered
                                         ? Json(static_cast<std::int64_t>(rec.recovered_wave))
                                         : Json());
      Json series = Json::array();
      for (const double v : rec.local_by_wave) {
        series.push_back(std::isnan(v) ? Json() : Json(v));  // NaN = no readable pair
      }
      recovery.set("local_by_wave", std::move(series));
      res.set("recovery", std::move(recovery));
    }
    // Engine-invariant telemetry only: the JSONL must stay byte-identical
    // across (threads, shards), so the engine-shaped counters and all
    // wall-clock data live in the summary instead.
    if (cell.result.engine_stats.enabled) {
      res.set("engine_stats", cell.result.engine_stats.invariant_json());
    }
    line.set("result", std::move(res));
    out += line.dump();
    out += '\n';
  }
  return out;
}

Json campaign_summary(const CampaignResult& result) {
  std::vector<double> local, global;
  ExperimentCounters totals;
  EngineStats engine_totals;
  std::int64_t within_thm11 = 0;
  for (const CampaignCell& cell : result.cells) {
    engine_totals.merge(cell.result.engine_stats);
    local.push_back(cell.result.skew.max_intra);
    global.push_back(cell.result.skew.global_skew);
    if (cell.result.skew.max_intra <= cell.result.thm11_bound) ++within_thm11;
    totals.iterations += cell.result.counters.iterations;
    totals.late_broadcasts += cell.result.counters.late_broadcasts;
    totals.guard_aborts += cell.result.counters.guard_aborts;
    totals.watchdog_resets += cell.result.counters.watchdog_resets;
    totals.timeout_branches += cell.result.counters.timeout_branches;
    totals.duplicate_drops += cell.result.counters.duplicate_drops;
    totals.events_executed += cell.result.counters.events_executed;
    totals.delivery_events += cell.result.counters.delivery_events;
    totals.messages_sent += cell.result.counters.messages_sent;
    totals.messages_delivered += cell.result.counters.messages_delivered;
  }

  Json j = Json::object();
  j.set("scenario", result.scenario);
  j.set("cells", static_cast<std::int64_t>(result.cells.size()));
  j.set("local_skew", percentiles_to_json(std::move(local)));
  j.set("global_skew", percentiles_to_json(std::move(global)));
  j.set("cells_within_thm11_bound", within_thm11);
  j.set("counters", counters_to_json(totals));
  j.set("threads", result.threads_used);
  j.set("shards", result.shards_used);
  j.set("wall_seconds", result.wall_seconds);
  // Merged engine telemetry (engine-shaped + wall-clock); summary-only by
  // design -- this file already holds the non-portable wall_seconds.
  if (engine_totals.enabled) j.set("engine_stats", engine_totals.summary_json());
  return j;
}

}  // namespace gtrix
