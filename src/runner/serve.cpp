#include "runner/serve.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <istream>
#include <ostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/codec.hpp"
#include "runner/campaign.hpp"
#include "scenario/spec.hpp"
#include "support/json.hpp"

namespace gtrix {

namespace {

namespace fs = std::filesystem;

void write_text_atomic(const fs::path& path, const std::string& text) {
  ckpt_write_file_atomic(path.string(), std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::string read_text_file(const fs::path& path) {
  const std::vector<std::uint8_t> bytes = ckpt_read_file(path.string());
  return std::string(bytes.begin(), bytes.end());
}

bool valid_job_name(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' || ch == '-';
    if (!ok) return false;
  }
  return true;
}

class ServeLoop {
 public:
  ServeLoop(const ServeOptions& options, std::ostream& events)
      : options_(options), events_(events), root_(options.spool) {
    fs::create_directories(root_ / "jobs");
    fs::create_directories(root_ / "state");
    fs::create_directories(root_ / "results");
  }

  void emit(const char* event, Json fields) {
    fields.set("event", event);
    events_ << fields.dump() << "\n";
    events_.flush();
  }

  /// One pass over jobs/, sorted by name; processes everything not yet
  /// complete. Returns the number of jobs actually executed this pass.
  std::size_t drain() {
    std::vector<fs::path> queued;
    for (const auto& entry : fs::directory_iterator(root_ / "jobs")) {
      if (entry.path().extension() == ".json") queued.push_back(entry.path());
    }
    std::sort(queued.begin(), queued.end());
    std::size_t executed = 0;
    for (const fs::path& job : queued) executed += process(job) ? 1 : 0;
    return executed;
  }

  /// Materializes one stdin-protocol line as a spooled job file. The file
  /// lands atomically BEFORE processing, so a crash between accept and run
  /// leaves a queued job, never a lost one.
  void submit(const std::string& line) {
    std::string name;
    try {
      const Json doc = Json::parse(line);
      name = doc.at("name").as_string();
      if (!valid_job_name(name)) {
        throw std::runtime_error("invalid job name '" + name +
                                 "' (use [A-Za-z0-9._-], not starting with '.')");
      }
      write_text_atomic(root_ / "jobs" / (name + ".json"),
                        doc.at("scenario").dump(2) + "\n");
    } catch (const std::exception& e) {
      ++report_.failed;
      Json j = Json::object();
      j.set("job", name);
      j.set("error", std::string(e.what()));
      emit("job_rejected", std::move(j));
    }
  }

  const ServeReport& report() const { return report_; }

 private:
  bool process(const fs::path& job_path) {
    const std::string name = job_path.stem().string();
    const fs::path summary_path = root_ / "results" / (name + ".summary.json");
    const fs::path error_path = root_ / "results" / (name + ".error.json");
    if (fs::exists(summary_path)) {
      if (announced_.insert(name).second) {
        ++report_.skipped;
        Json j = Json::object();
        j.set("job", name);
        j.set("reason", "already complete");
        emit("job_skipped", std::move(j));
      }
      return false;
    }
    if (fs::exists(error_path)) {
      // A job that failed once fails the same way again (jobs are
      // deterministic); the marker stops a restart loop from burning CPU on
      // it forever. Deleting the marker re-queues the job.
      if (announced_.insert(name).second) {
        ++report_.skipped;
        Json j = Json::object();
        j.set("job", name);
        j.set("reason", "failed earlier (delete the error file to retry)");
        emit("job_skipped", std::move(j));
      }
      return false;
    }

    announced_.insert(name);
    {
      Json j = Json::object();
      j.set("job", name);
      emit("job_start", std::move(j));
    }
    try {
      const Scenario scenario = Scenario::from_file(job_path.string());
      CampaignOptions campaign;
      campaign.threads = options_.threads;
      campaign.shards = options_.shards;
      campaign.telemetry = options_.telemetry;
      campaign.progress_seconds = options_.progress_seconds;
      campaign.checkpoint.dir = (root_ / "state" / name).string();
      campaign.checkpoint.every = options_.checkpoint_every;
      // Always resume: state/<name>/ only holds artifacts if an earlier
      // attempt (this process or a killed predecessor) made progress, and
      // reusing them is exactly the crash-restart contract.
      campaign.checkpoint.resume = true;
      const CampaignResult result = run_campaign(scenario, campaign);

      write_text_atomic(root_ / "results" / (name + ".jsonl"), campaign_jsonl(result));
      const Json summary = campaign_summary(result);
      // Summary last: its existence is the completion marker, so it must
      // only appear once the JSONL is already in place.
      write_text_atomic(summary_path, summary.dump(2) + "\n");

      ++report_.completed;
      Json j = Json::object();
      j.set("job", name);
      j.set("scenario", result.scenario);
      j.set("cells", static_cast<std::int64_t>(result.cells.size()));
      j.set("wall_seconds", result.wall_seconds);
      emit("job_done", std::move(j));
      return true;
    } catch (const std::exception& e) {
      ++report_.failed;
      Json marker = Json::object();
      marker.set("job", name);
      marker.set("error", std::string(e.what()));
      write_text_atomic(error_path, marker.dump(2) + "\n");
      Json j = Json::object();
      j.set("job", name);
      j.set("error", std::string(e.what()));
      emit("job_failed", std::move(j));
      return true;
    }
  }

  const ServeOptions& options_;
  std::ostream& events_;
  fs::path root_;
  std::set<std::string> announced_;
  ServeReport report_;
};

}  // namespace

ServeReport run_serve(const ServeOptions& options, std::istream* jobs_in,
                      std::ostream& events) {
  ServeLoop loop(options, events);
  {
    Json j = Json::object();
    j.set("spool", options.spool);
    j.set("threads", options.threads);
    j.set("shards", options.shards);
    j.set("checkpoint_every", options.checkpoint_every);
    j.set("mode", jobs_in != nullptr ? "stdin" : (options.once ? "once" : "poll"));
    loop.emit("serve_start", std::move(j));
  }

  while (true) {
    loop.drain();
    if (jobs_in != nullptr) {
      std::string line;
      if (!std::getline(*jobs_in, line)) break;  // EOF: drain happened above
      if (!line.empty()) loop.submit(line);
      continue;
    }
    if (options.once) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(options.poll_seconds));
  }

  {
    Json j = Json::object();
    j.set("completed", static_cast<std::int64_t>(loop.report().completed));
    j.set("skipped", static_cast<std::int64_t>(loop.report().skipped));
    j.set("failed", static_cast<std::int64_t>(loop.report().failed));
    loop.emit("serve_idle", std::move(j));
  }
  return loop.report();
}

}  // namespace gtrix
