// Performance measurement harness: the committed perf trajectory.
//
// bench_perf (and the CI perf smoke) run every cell of a scenario twice --
// once on the optimized engine (calendar queue + batched broadcast, the
// defaults) and once on the reference engine (binary heap, unbatched, the
// pre-refactor behaviour) -- and
//  * assert the two engines' skew outputs are BIT-identical per cell (the
//    refactor is provably behaviour-preserving, not approximately so),
//  * time both and report events/sec plus the optimized:reference speedup.
//
// Throughput is normalized to LOGICAL events -- executed queue events minus
// delivery events plus messages delivered -- which is invariant under
// broadcast batching (a batched fan-out counts once per message, exactly
// like the unbatched per-edge events), so the two engines are compared on
// identical work. See docs/performance.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "scenario/spec.hpp"
#include "support/json.hpp"

namespace gtrix {

/// One engine's aggregate over all cells of a scenario.
struct PerfEngineStats {
  double wall_seconds = 0.0;  ///< best (minimum) over the repeat runs
  std::uint64_t events_executed = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t logical_events = 0;
  double events_per_sec = 0.0;  ///< logical_events / wall_seconds
};

struct PerfScenarioReport {
  std::string scenario;
  std::size_t cells = 0;
  int repeats = 1;
  PerfEngineStats reference;
  PerfEngineStats optimized;
  double speedup = 0.0;  ///< optimized.events_per_sec / reference.events_per_sec
  bool skew_identical = false;
};

/// Serializes one cell's skew report to the exact byte string the identity
/// check compares (the campaign JSONL skew object).
std::string skew_digest(const ExperimentResult& result);

/// Runs every cell of `scenario` on both engines `repeats` times (timing
/// takes the fastest repeat; the identity check covers every cell).
PerfScenarioReport run_perf_scenario(const Scenario& scenario, int repeats);

/// Identity-only variant: runs each cell once per engine and reports
/// whether all skew digests matched (no timing emphasis; wall times are
/// still filled in from the single run).
PerfScenarioReport check_perf_identity(const Scenario& scenario);

/// The BENCH_perf.json document.
Json perf_report_json(const std::vector<PerfScenarioReport>& reports);

/// Telemetry overhead measurement (the CI "telemetry is ~free" gate; see
/// docs/observability.md). Runs every cell on the DEFAULT engine with
/// telemetry off and on, alternating pass order per repeat exactly like the
/// engine comparison; wall time takes the fastest repeat per mode.
struct TelemetryOverheadReport {
  std::string scenario;
  std::size_t cells = 0;
  int repeats = 1;
  double off_wall_seconds = 0.0;  ///< best repeat, telemetry disabled
  double on_wall_seconds = 0.0;   ///< best repeat, telemetry enabled
  /// on/off - 1; <= 0 means enabling was within noise of free.
  double overhead = 0.0;
  bool skew_identical = false;    ///< telemetry must not change results
};

TelemetryOverheadReport run_telemetry_overhead(const Scenario& scenario, int repeats);

Json telemetry_overhead_json(const TelemetryOverheadReport& report);

/// Checkpoint overhead measurement (the CI "snapshots are cheap and exact"
/// gate; see docs/checkpointing.md). Runs every cell plain vs checkpointed
/// (periodic snapshots to `scratch_dir`), alternating order per repeat, then
/// one resume pass that restores each cell from its newest snapshot. All
/// three paths must produce bit-identical skew digests.
struct CheckpointOverheadReport {
  std::string scenario;
  std::size_t cells = 0;
  int repeats = 1;
  double every = 0.0;                  ///< simulated time between snapshots
  double plain_wall_seconds = 0.0;     ///< summed per-cell best, no checkpointing
  double ckpt_wall_seconds = 0.0;      ///< summed per-cell best, checkpointing on
  /// ckpt/plain - 1; <= 0 means snapshotting was within noise of free.
  double overhead = 0.0;
  std::uint64_t checkpoints_written = 0;  ///< snapshots per checkpointed pass
  std::uint64_t checkpoint_bytes = 0;     ///< bytes per checkpointed pass
  double checkpoint_write_seconds = 0.0;  ///< best pass's time inside snapshot writes
  double restore_wall_seconds = 0.0;      ///< resume pass total (restore + tail re-run)
  double checkpoint_restore_seconds = 0.0;  ///< time inside snapshot loads
  std::uint64_t checkpoints_restored = 0;
  bool skew_identical = false;  ///< plain == checkpointed == resumed, bit for bit
};

CheckpointOverheadReport run_checkpoint_overhead(const Scenario& scenario, int repeats,
                                                 const std::string& scratch_dir,
                                                 double every);

Json checkpoint_overhead_json(const CheckpointOverheadReport& report);

}  // namespace gtrix
