// Checkpointed cell execution (docs/checkpointing.md): run_cell semantics
// plus crash safety. The cell advances in sim-time chunks of
// CheckpointOptions::every; at each chunk boundary the full world state is
// snapshotted atomically (ckpt_write_file_atomic), and on completion the
// measured result is written as a done file. A campaign killed at ANY point
// and rerun with resume=true reproduces the exact bytes of an uninterrupted
// run:
//  * completed cells reload their done file -- the result_io round trip is
//    bit-exact, so the regenerated JSONL line is byte-identical and the
//    cell is never executed twice;
//  * incomplete cells restore the newest snapshot and continue -- the
//    snapshot restores the event queue with its original (time, seq) order
//    and every RNG stream mid-sequence, so the continuation replays the
//    identical event history (tests/kill_resume_test.py SIGKILLs real
//    campaigns to prove it, across thread and shard counts).
#pragma once

#include <cstddef>
#include <string>

#include "runner/campaign.hpp"

namespace gtrix {

/// Stable per-cell artifact key: "cell-<zero-padded index>-<sanitized
/// label>" (characters outside [A-Za-z0-9._-] become '_', long labels are
/// truncated). Cell order is deterministic, so the key names the same cell
/// in the original run and in every resume.
std::string cell_key(std::size_t index, const std::string& label);

/// run_cell with checkpointing (semantics above). Artifacts live in
/// `ckpt.dir` as <key>.ckpt (newest snapshot; kept after completion for
/// inspection) and <key>.done.json (completion marker + full result).
/// Throws CkptError on corrupt/mismatched artifacts when resuming.
ExperimentResult run_cell_checkpointed(const ExperimentConfig& config,
                                       const CorruptPlan& corrupt,
                                       const CheckpointOptions& ckpt,
                                       std::size_t cell_index, const std::string& label,
                                       EngineOptions engine = {}, CellObs obs = {});

}  // namespace gtrix
