// Experiment assembly: builds a complete simulated system from a declarative
// config, runs it, and produces skew/condition reports.
//
// The four experiment dimensions -- topology, clock model, delay model and
// algorithm -- are resolved against the string-keyed component registries
// (see registry/*.hpp); World is a pure wiring engine over the resolved
// providers and contains no per-kind switches. The legacy enum fields on
// ExperimentConfig (BaseGraphKind, ClockModelKind, DelayModelKind,
// Algorithm) remain as thin adapters for source compatibility: a non-empty
// ComponentSpec wins over its enum counterpart, and equality compares the
// resolved components, so both spellings are interchangeable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/trix_node.hpp"
#include "clock/hardware_clock.hpp"
#include "core/gradient_node.hpp"
#include "core/layer0.hpp"
#include "core/node_state.hpp"
#include "core/params.hpp"
#include "fault/behaviors.hpp"
#include "fault/fault.hpp"
#include "graph/grid.hpp"
#include "metrics/conditions.hpp"
#include "metrics/realign.hpp"
#include "metrics/shard_recorder.hpp"
#include "metrics/skew.hpp"
#include "metrics/streaming.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "registry/algorithm.hpp"
#include "registry/clock_model.hpp"
#include "registry/component.hpp"
#include "registry/delay.hpp"
#include "registry/recording.hpp"
#include "registry/topology.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace gtrix {

class TraceCollector;
class CkptFile;
class CkptTargetMap;

enum class Layer0Mode {
  kIdealJitter,       ///< direct synchronized input, L_0 <= jitter
  kLinePropagation,   ///< Appendix A line forwarding (Algorithm 2)
};

struct ExperimentConfig {
  /// Legacy topology selection; `topology_spec` wins when non-empty.
  BaseGraphKind base_kind = BaseGraphKind::kLineReplicated;
  /// Registered topology by kind name, e.g. {"torus", {"rows": 4}}.
  ComponentSpec topology_spec;
  std::uint32_t columns = 16;  ///< base-graph columns (diameter = columns-1)
  std::uint32_t cycle_reach = 1;  ///< legacy kCycle only: adjacency reach (degree 2*reach)
  std::uint32_t trim = 0;         ///< trimmed aggregation (extension; see core)
  std::uint32_t layers = 16;   ///< grid layers including layer 0
  Params params = Params::with(1000.0, 10.0, 1.0005);
  /// Legacy algorithm selection; `algorithm_spec` wins when non-empty.
  Algorithm algorithm = Algorithm::kGradientFull;
  ComponentSpec algorithm_spec;
  Layer0Mode layer0 = Layer0Mode::kIdealJitter;
  double layer0_jitter = -1.0;  ///< ideal-mode input jitter; < 0 -> kappa/2
  /// Optional deterministic per-column extra offsets for ideal-mode layer-0
  /// emitters (index = column; missing columns get 0). Used to set up
  /// adversarial initial skew patterns (e.g. the Figure 5 oscillation
  /// scenario) without declaring any node faulty. May contain negative
  /// values; the whole pattern is shifted to keep emitter offsets >= 0.
  std::vector<double> layer0_offset_by_column;
  /// Legacy delay selection; `delay_spec` wins when non-empty.
  DelayModelKind delay_kind = DelayModelKind::kUniformRandom;
  ComponentSpec delay_spec;
  std::uint32_t delay_split_column = 0;  ///< legacy kColumnSplit only
  /// Legacy clock selection; `clock_spec` wins when non-empty.
  ClockModelKind clock_model = ClockModelKind::kRandomStatic;
  ComponentSpec clock_spec;
  std::vector<PlacedFault> faults;
  std::int64_t pulses = 30;
  bool self_stabilizing = false;
  bool jump_condition = true;
  std::uint64_t seed = 1;
  Sigma warmup = 4;  ///< waves skipped at the start of the measurement window
  /// Trace-retention mode (registry/recording.hpp); empty means full
  /// recording. Streaming/windowed bound the metrics memory for mega-grid
  /// scenarios -- skew extrema stay bit-identical to full recording.
  ComponentSpec recording_spec;

  /// Semantic equality: the four component dimensions compare by their
  /// resolved canonical specs, so a config authored via the legacy enums
  /// equals the identical config authored via component specs.
  bool operator==(const ExperimentConfig& other) const;
};

/// The component selections with the legacy enum fields folded in,
/// canonicalized against the registries (unknown kinds throw JsonError).
/// `recording` resolves an empty spec to canonical "full".
struct ResolvedComponents {
  ComponentSpec topology;
  ComponentSpec clock;
  ComponentSpec delay;
  ComponentSpec algorithm;
  ComponentSpec recording;

  bool operator==(const ResolvedComponents&) const = default;
};

ResolvedComponents resolve_components(const ExperimentConfig& config);

/// Engine selection, orthogonal to the experiment config. Every gate is
/// behaviour-preserving (all combinations produce bit-identical
/// simulations -- tests/test_perf.cpp proves each gate in isolation); the
/// defaults are the fast path, and bench_perf runs reference() against
/// them to measure the speedup and prove the identity. Deliberately NOT
/// part of ExperimentConfig: configs describe the system under test,
/// engine options only how fast it is simulated, so they stay out of
/// config equality, serialization and the scenario format.
struct EngineOptions {
  SchedulerKind scheduler = SchedulerKind::kCalendar;
  /// One queue event per uniform-delay broadcast instead of one per edge.
  bool batched_broadcast = true;
  /// Node hot state in the World-owned struct-of-arrays arena; off = each
  /// node keeps a private single-entry arena (the pre-refactor
  /// object-per-node memory layout).
  bool soa_arena = true;
  /// Memoized per-node steady windows in skew computation; off = the
  /// pre-refactor O(pulse-log) scan per (node, wave) query.
  bool cached_metrics = true;
  /// Single find-minimum per event in the simulator loop; off = the
  /// pre-refactor next_time() + run_next() pair.
  bool single_locate_loop = true;
  /// Conservative-parallel shards for a single run (docs/performance.md,
  /// "Sharded execution"): the base graph is cut into contiguous column
  /// ranges, each with its own event queue, NodeArena and worker thread,
  /// synchronized at the minimum cross-shard link delay. Clamped to the
  /// column count; 0 and 1 both select the serial engine, whose code paths
  /// then run completely untouched.
  std::uint32_t shards = 1;
  /// Engine telemetry (docs/observability.md): World::engine_stats()
  /// harvests counters, window timings and peak RSS after a run. Purely
  /// observational -- simulations are bit-identical with it on or off, and
  /// the engine-invariant counter block is byte-identical across every
  /// engine combination. Off by default; no-op when compiled out
  /// (GTRIX_OBS=OFF).
  bool telemetry = false;

  /// The pre-refactor hot path, reproduced choice by choice: binary heap,
  /// per-edge broadcasts, object-per-node state, uncached metrics, paired
  /// locate+pop loop, serial (single-shard) execution. bench_perf measures
  /// the defaults against this and asserts bit-identical skew results.
  static EngineOptions reference() {
    EngineOptions e;
    e.scheduler = SchedulerKind::kBinaryHeap;
    e.batched_broadcast = false;
    e.soa_arena = false;
    e.cached_metrics = false;
    e.single_locate_loop = false;
    e.shards = 1;
    return e;
  }
};

/// One row per EngineOptions gate, for gtrix_campaign --list / --describe:
/// runnable engine configurations are discoverable without reading headers.
struct EngineGateDesc {
  std::string name;         ///< gate name, e.g. "shards"
  std::string fast_value;   ///< the default (fast-path) setting
  std::string reference_value;  ///< the EngineOptions::reference() setting
  std::string summary;
};

std::vector<EngineGateDesc> engine_gate_descs();

/// A fully wired simulated system. Most callers use run_experiment(); the
/// class is exposed for experiments needing custom control (e.g. corrupting
/// node state mid-run for Theorem 1.6).
class World {
 public:
  explicit World(ExperimentConfig config, EngineOptions engine = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs the simulation until the event queue drains. With engine shards
  /// > 1 this drives all shard queues through the conservative window loop
  /// (runner/shard_driver.hpp); results are bit-identical either way.
  void run_to_completion();
  void run_until(SimTime t);

  /// Shards actually used (engine request clamped to the column count).
  std::uint32_t shard_count() const noexcept { return shard_count_; }
  /// Shard owning grid/net node `id` (always 0 on the serial engine).
  std::uint32_t shard_of(NetNodeId id) const {
    return shard_count_ <= 1 ? 0 : node_shard_.at(id);
  }

  /// Randomly corrupts the state of (roughly) `fraction` of all algorithm
  /// nodes -- a system-wide transient fault (Theorem 1.6). Hard error when
  /// the algorithm does not support state corruption (the scenario layer
  /// rejects such configs earlier with path context).
  void corrupt_fraction(double fraction, Rng& rng);

  const ExperimentConfig& config() const noexcept { return config_; }
  const ResolvedComponents& components() const noexcept { return components_; }
  const Grid& grid() const noexcept { return grid_; }
  Simulator& simulator() noexcept { return sim_; }
  Network& network() noexcept { return net_; }
  Recorder& recorder() noexcept { return recorder_; }
  const Recorder& recorder() const noexcept { return recorder_; }

  GridTrace trace() const;

  /// The resolved trace-retention mode and, in streaming/windowed modes,
  /// the online accumulator (null under full recording).
  const RecordingOptions& recording() const noexcept { return recording_; }
  const StreamingSkew* streaming() const noexcept { return streaming_.get(); }

  /// Corruption anchor for memory-bounded recording of a transient-fault
  /// cell. Must be called before the first simulated event. `wave` is the
  /// corruption injection wave (CorruptPlan::wave):
  ///  * the Recorder pins the last K waves around the anchor so realignment
  ///    and the post-recovery measurement stay answerable after eviction
  ///    (metrics/recorder.hpp, corruption-anchored retention), and
  ///  * the StreamingSkew accumulators suppress pulses from the injection
  ///    INSTANT (wave * lambda) on, freezing them on the clean epoch --
  ///    corrupted labels would otherwise poison the online extrema. The
  ///    post-recovery skew is measured exactly via skew_window instead.
  /// No-op under full recording.
  void set_corruption_anchor(double wave);

  /// Skew over the default measurement window (warmup from config). Under
  /// streaming/windowed recording this reads the online accumulators --
  /// extrema and counts are bit-identical to full recording.
  SkewReport skew() const;
  /// Arbitrary-window skew from the retained trace. Full recording answers
  /// any window; windowed and corruption-anchored streaming recording
  /// answer windows their retained waves (rolling tail + corruption box)
  /// cover, and throw a runtime_error naming the node, the lost waves and
  /// the recording mode when look-back is insufficient -- never a silently
  /// different result. Un-anchored streaming keeps no per-wave trace at all
  /// (hard logic_error; use skew()).
  SkewReport skew_window(Sigma lo, Sigma hi) const;

  /// Verifies that the retained trace (rolling tail + corruption box) still
  /// holds every pulse wave in [lo, hi] that falls inside a non-faulty
  /// node's steady window; throws a runtime_error naming the node, the lost
  /// waves and the recording mode otherwise. No-op under full recording.
  /// `what` prefixes the error ("skew", "recovery", ...). skew_window calls
  /// this itself; exposed for measurements that read pulse times directly
  /// (the recovery-time scan in runner/campaign.cpp).
  void require_retained(Sigma lo, Sigma hi, const std::string& what) const;

  /// Condition checks over the default window. Full mode checks the whole
  /// run; windowed mode checks what the retained waves cover (hard
  /// runtime_error on any lost record inside the window); streaming mode
  /// keeps no iteration records and reports a hard error.
  ConditionReport conditions(std::uint32_t s_max) const;

  /// Post-run wave-label realignment (see metrics/realign.hpp); call after
  /// run_to_completion() in transient-fault experiments, before measuring.
  /// Runs on the full trace or on the windowed/anchored-streaming retained
  /// window (the realignment pass reads each node's rolling tail and is
  /// coverage-checked -- insufficient look-back is a runtime_error, see
  /// docs/scaling.md "Realignment at scale"). Un-anchored streaming has no
  /// per-wave trace to realign (logic_error).
  RealignStats realign_labels();
  /// Stats of the last realign_labels() call (zeroes before any call);
  /// exported as the engine-invariant realign_shifted_nodes counter.
  const RealignStats& last_realign() const noexcept { return last_realign_; }
  ConditionReport conditions_window(std::uint32_t s_max, Sigma lo, Sigma hi) const;

  ExperimentCounters counters() const;

  /// Attaches an optional Chrome-trace collector (obs/trace.hpp) for
  /// sharded window/barrier spans; non-owning, must outlive the runs.
  /// `pid` identifies this World in the trace. No-op when
  /// EngineOptions::telemetry is off or GTRIX_OBS is compiled out.
  void set_trace(TraceCollector* trace, std::uint32_t pid);

  /// Post-run telemetry harvest (EngineOptions::telemetry). Returns
  /// enabled == false with zeroed counters when telemetry is off or
  /// compiled out; callable repeatedly (counters are cumulative totals,
  /// not deltas). The invariant_json() block is byte-identical across
  /// every EngineOptions combination; summary_json() is engine-shaped
  /// and wall-clock data.
  EngineStats engine_stats() const;

  /// The gradient node simulating grid node g; null for layer 0, faulty
  /// positions, or non-gradient algorithms.
  GradientTrixNode* gradient_node(GridNodeId g);
  Layer0LineNode* layer0_node(GridNodeId g);

  /// True when no events are pending anywhere: every shard queue is empty
  /// and no cross-shard envelope is parked in a mailbox. A checkpointed
  /// chunked run uses this as its termination test.
  bool idle() const;

  /// Serializes the full mutable simulation state (src/ckpt): every shard
  /// queue with its clock cursor, the network mailboxes and counters, all
  /// node registers, fault runtimes, the recorder and the streaming
  /// accumulators. Must be called while the World is quiescent (between
  /// run_* calls -- on the sharded engine that is a window barrier with
  /// every worker parked and every shard-recorder buffer merged). Returns
  /// the complete checkpoint file image; `meta_json` (may be empty) is
  /// embedded in the header for the runner's own bookkeeping.
  std::vector<std::uint8_t> checkpoint_save(const std::string& meta_json) const;

  /// Restores the state saved by checkpoint_save into this freshly
  /// constructed World. The header's config and engine fingerprint must
  /// match this World's exactly (hard CkptError otherwise): restore never
  /// migrates state across configs or engine shapes. After it returns, the
  /// simulation continues bit-identically to the run that was snapshotted.
  void checkpoint_restore(const CkptFile& file);

  /// The snapshot's header JSON for a World with this config/engine, as
  /// checkpoint_save would embed it (used by restore-side validation and
  /// by tools that want the fingerprint without saving).
  Json checkpoint_header(const std::string& meta_json) const;

  bool is_faulty(GridNodeId g) const { return fault_map_.contains(g); }

 private:
  struct FaultRuntime {
    Rng rng;
    std::int64_t sent = 0;
    FaultRuntime() : rng(0) {}
  };

  static BaseGraph make_base(const ExperimentConfig& config,
                             const ResolvedComponents& components);
  /// Enumerates every possible event target in construction order (the
  /// identity scheme queue snapshots serialize pointers through).
  void checkpoint_targets(CkptTargetMap& targets) const;
  HardwareClock make_clock(Rng& rng, std::uint32_t column, std::uint32_t layer) const;
  double clock_horizon() const;
  void init_shards();
  void build_network(Rng& delay_rng);
  void build_layer0(Rng& clock_rng, Rng& layer0_rng);
  void build_algorithm_nodes(Rng& clock_rng, Rng& fault_rng);
  void install_fault(GridNodeId g, const FaultSpec& spec, NodeModel& model, Rng& fault_rng);

  /// Per-node wiring lookups; on the serial engine they resolve to the
  /// single sim_/arena_/recorder_ so shards=1 constructs the identical
  /// object graph the pre-sharding engine did.
  Simulator& sim_for(NetNodeId id) {
    return shard_count_ <= 1 ? sim_ : *shard_sims_[node_shard_[id]];
  }
  NodeArena* arena_for(NetNodeId id) {
    const std::uint32_t s = shard_count_ <= 1 ? 0 : node_shard_[id];
    return s == 0 ? arena_.get() : extra_arenas_[s - 1].get();
  }
  Recorder* recorder_for(NetNodeId id) {
    if (shard_count_ <= 1) return &recorder_;
    return shard_recorders_[node_shard_[id]].get();
  }

  ExperimentConfig config_;
  EngineOptions engine_;
  ResolvedComponents components_;
  std::shared_ptr<const ClockModelProvider> clock_provider_;
  std::shared_ptr<const DelayProvider> delay_provider_;
  std::shared_ptr<const AlgorithmProvider> algorithm_provider_;
  AlgorithmCaps algorithm_caps_;
  Grid grid_;
  Simulator sim_;
  Network net_;
  Recorder recorder_;
  RecordingOptions recording_;
  /// Online skew accumulators (streaming/windowed modes only).
  std::unique_ptr<StreamingSkew> streaming_;
  /// Struct-of-arrays hot state for every node this World wires; must
  /// outlive the node objects below, which hold indices into it. Shard 0's
  /// arena (and the only one on the serial engine).
  std::unique_ptr<NodeArena> arena_;

  // Sharded engine state (empty while shard_count_ == 1); see init_shards.
  std::uint32_t shard_count_ = 1;
  std::vector<std::uint32_t> node_shard_;              ///< net node -> shard
  std::vector<std::unique_ptr<Simulator>> extra_sims_;   ///< shards 1..S-1
  std::vector<std::unique_ptr<NodeArena>> extra_arenas_; ///< shards 1..S-1
  std::vector<Simulator*> shard_sims_;                 ///< [0] == &sim_
  std::vector<std::unique_ptr<ShardRecorder>> shard_recorders_;
  std::vector<ShardRecorder*> shard_recorder_ptrs_;

  // Telemetry (EngineOptions::telemetry; null/zero when off or compiled
  // out). telemetry_ holds the per-shard window lanes the ShardDriver
  // workers write; run_wall_seconds_ accumulates across run_* calls.
  std::unique_ptr<Telemetry> telemetry_;
  TraceCollector* trace_ = nullptr;  // non-owning
  std::uint32_t trace_pid_ = 0;
  double run_wall_seconds_ = 0.0;
  RealignStats last_realign_;

  NetNodeId source_id_ = 0;  // line mode only
  std::vector<std::unique_ptr<PulseSink>> sinks_;
  std::vector<std::unique_ptr<NodeModel>> models_;
  std::vector<NodeModel*> model_by_grid_;
  std::vector<GradientTrixNode*> gradient_by_grid_;
  std::vector<Layer0LineNode*> layer0_by_grid_;
  std::unique_ptr<ClockSource> source_;
  std::vector<std::unique_ptr<IdealEmitter>> emitters_;
  std::vector<FixedPeriodRogue*> rogues_;
  std::map<GridNodeId, FaultSpec> fault_map_;
  std::vector<std::unique_ptr<FaultRuntime>> fault_runtimes_;
};

/// Recovery-time measurement of a corrupt cell (Theorems 1.2/1.3/1.6): the
/// per-wave worst local deviation from the injection wave on, scanned
/// against the Theorem 1.1 steady-state bound. The measured recovery wave
/// is the first wave from which the series stays within the bound.
/// enabled == false on clean cells.
struct RecoveryReport {
  bool enabled = false;
  Sigma corrupt_wave = 0;   ///< injection wave (CorruptPlan::wave)
  Sigma scan_hi = 0;        ///< last wave of the scan
  double threshold = 0.0;   ///< Theorem 1.1 local-skew bound
  /// True when the series is back within the bound before the scan ends; a
  /// false here means the cell did NOT stabilize inside the scanned waves.
  bool recovered = false;
  Sigma recovered_wave = 0; ///< first compliant-onward wave (corrupt_wave if never out)
  /// local_by_wave[i] = worst local deviation at wave corrupt_wave + i
  /// (metrics local_skew_by_sigma); NaN where no pair was readable.
  std::vector<double> local_by_wave;
};

struct ExperimentResult {
  SkewReport skew;
  ExperimentCounters counters;
  double thm11_bound = 0.0;
  double global_bound = 0.0;
  std::uint32_t diameter = 0;
  /// Wave-label realignment stats (corrupt cells; zeroes elsewhere).
  RealignStats realign;
  /// Recovery-time scan (corrupt cells; enabled == false elsewhere).
  RecoveryReport recovery;
  /// enabled == false unless EngineOptions::telemetry was set.
  EngineStats engine_stats;
};

/// Builds, runs and summarizes in one call.
ExperimentResult run_experiment(const ExperimentConfig& config, EngineOptions engine = {});

}  // namespace gtrix
