#include "runner/result_io.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "ckpt/codec.hpp"
#include "obs/telemetry.hpp"

namespace gtrix {

namespace {

constexpr const char* kResultFormat = "gtrix-cell-result";
// v2: realign + recovery blocks (corruption-anchored windowed realignment).
constexpr std::int64_t kResultVersion = 2;

Json doubles_to_json(const std::vector<double>& values) {
  Json a = Json::array();
  for (const double v : values) a.push_back(v);
  return a;
}

std::vector<double> doubles_from_json(const Json& a) {
  std::vector<double> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(a[i].as_double());
  return out;
}

Json stats_to_json(const EngineStats& stats) {
  Json j = Json::object();
  j.set("enabled", stats.enabled);
  Json counters = Json::object();
  for (const ObsCounterInfo& info : obs_counter_catalog()) {
    counters.set(info.name, static_cast<std::int64_t>(stats.get(info.id)));
  }
  j.set("counters", std::move(counters));
  Json bins = Json::array();
  for (std::size_t i = 0; i < ObsHistogram::kBins; ++i) {
    bins.push_back(static_cast<std::int64_t>(stats.window_events.count(i)));
  }
  j.set("window_events", std::move(bins));
  Json shard_rows = Json::array();
  for (const EngineShardStats& s : stats.shards) {
    Json row = Json::object();
    row.set("windows", static_cast<std::int64_t>(s.windows));
    row.set("envelopes_drained", static_cast<std::int64_t>(s.envelopes_drained));
    row.set("busy_seconds", s.busy_seconds);
    row.set("barrier_wait_seconds", s.barrier_wait_seconds);
    shard_rows.push_back(std::move(row));
  }
  j.set("shards", std::move(shard_rows));
  j.set("run_wall_seconds", stats.run_wall_seconds);
  j.set("peak_rss_mb", stats.peak_rss_mb);
  Json ckpt = Json::object();
  ckpt.set("written", static_cast<std::int64_t>(stats.checkpoints_written));
  ckpt.set("bytes", static_cast<std::int64_t>(stats.checkpoint_bytes));
  ckpt.set("restored", static_cast<std::int64_t>(stats.checkpoints_restored));
  ckpt.set("cells_resumed_done", static_cast<std::int64_t>(stats.cells_resumed_done));
  ckpt.set("write_seconds", stats.checkpoint_write_seconds);
  ckpt.set("restore_seconds", stats.checkpoint_restore_seconds);
  j.set("checkpoint", std::move(ckpt));
  return j;
}

EngineStats stats_from_json(const Json& j) {
  EngineStats stats;
  stats.enabled = j.at("enabled").as_bool();
  const Json& counters = j.at("counters");
  for (const ObsCounterInfo& info : obs_counter_catalog()) {
    stats.set(info.id, counters.at(info.name).as_u64());
  }
  const Json& bins = j.at("window_events");
  for (std::size_t i = 0; i < ObsHistogram::kBins && i < bins.size(); ++i) {
    stats.window_events.set_count(i, bins[i].as_u64());
  }
  const Json& shard_rows = j.at("shards");
  stats.shards.resize(shard_rows.size());
  for (std::size_t s = 0; s < shard_rows.size(); ++s) {
    const Json& row = shard_rows[s];
    stats.shards[s].windows = row.at("windows").as_u64();
    stats.shards[s].envelopes_drained = row.at("envelopes_drained").as_u64();
    stats.shards[s].busy_seconds = row.at("busy_seconds").as_double();
    stats.shards[s].barrier_wait_seconds = row.at("barrier_wait_seconds").as_double();
  }
  stats.run_wall_seconds = j.at("run_wall_seconds").as_double();
  stats.peak_rss_mb = j.at("peak_rss_mb").as_double();
  const Json& ckpt = j.at("checkpoint");
  stats.checkpoints_written = ckpt.at("written").as_u64();
  stats.checkpoint_bytes = ckpt.at("bytes").as_u64();
  stats.checkpoints_restored = ckpt.at("restored").as_u64();
  stats.cells_resumed_done = ckpt.at("cells_resumed_done").as_u64();
  stats.checkpoint_write_seconds = ckpt.at("write_seconds").as_double();
  stats.checkpoint_restore_seconds = ckpt.at("restore_seconds").as_double();
  return stats;
}

}  // namespace

Json result_to_json(const ExperimentResult& result) {
  Json j = Json::object();
  j.set("format", kResultFormat);
  j.set("version", kResultVersion);

  const SkewReport& skew = result.skew;
  Json s = Json::object();
  s.set("intra_by_layer", doubles_to_json(skew.intra_by_layer));
  s.set("inter_by_layer", doubles_to_json(skew.inter_by_layer));
  s.set("spread_by_layer", doubles_to_json(skew.spread_by_layer));
  s.set("max_intra", skew.max_intra);
  s.set("max_inter", skew.max_inter);
  s.set("local_skew", skew.local_skew);
  s.set("global_skew", skew.global_skew);
  s.set("sigma_lo", skew.sigma_lo);
  s.set("sigma_hi", skew.sigma_hi);
  s.set("pairs_checked", static_cast<std::int64_t>(skew.pairs_checked));
  s.set("pairs_skipped", static_cast<std::int64_t>(skew.pairs_skipped));
  Json dev = Json::object();
  dev.set("count", static_cast<std::int64_t>(skew.deviations.count));
  dev.set("mean", skew.deviations.mean);
  dev.set("p50", skew.deviations.p50);
  dev.set("p90", skew.deviations.p90);
  dev.set("p99", skew.deviations.p99);
  dev.set("exact", skew.deviations.exact);
  s.set("deviations", std::move(dev));
  j.set("skew", std::move(s));

  const ExperimentCounters& c = result.counters;
  Json counters = Json::object();
  counters.set("iterations", static_cast<std::int64_t>(c.iterations));
  counters.set("late_broadcasts", static_cast<std::int64_t>(c.late_broadcasts));
  counters.set("guard_aborts", static_cast<std::int64_t>(c.guard_aborts));
  counters.set("watchdog_resets", static_cast<std::int64_t>(c.watchdog_resets));
  counters.set("timeout_branches", static_cast<std::int64_t>(c.timeout_branches));
  counters.set("duplicate_drops", static_cast<std::int64_t>(c.duplicate_drops));
  counters.set("events_executed", static_cast<std::int64_t>(c.events_executed));
  counters.set("messages_sent", static_cast<std::int64_t>(c.messages_sent));
  counters.set("messages_delivered", static_cast<std::int64_t>(c.messages_delivered));
  counters.set("delivery_events", static_cast<std::int64_t>(c.delivery_events));
  j.set("counters", std::move(counters));

  j.set("thm11_bound", result.thm11_bound);
  j.set("global_bound", result.global_bound);
  j.set("diameter", result.diameter);

  Json realign = Json::object();
  realign.set("nodes_shifted", static_cast<std::int64_t>(result.realign.nodes_shifted));
  realign.set("max_abs_shift", result.realign.max_abs_shift);
  j.set("realign", std::move(realign));

  const RecoveryReport& rec = result.recovery;
  Json recovery = Json::object();
  recovery.set("enabled", rec.enabled);
  recovery.set("corrupt_wave", static_cast<std::int64_t>(rec.corrupt_wave));
  recovery.set("scan_hi", static_cast<std::int64_t>(rec.scan_hi));
  recovery.set("threshold", rec.threshold);
  recovery.set("recovered", rec.recovered);
  recovery.set("recovered_wave", static_cast<std::int64_t>(rec.recovered_wave));
  Json series = Json::array();
  for (const double v : rec.local_by_wave) {
    // JSON has no NaN; null round-trips the "no readable pair" marker.
    series.push_back(std::isnan(v) ? Json() : Json(v));
  }
  recovery.set("local_by_wave", std::move(series));
  j.set("recovery", std::move(recovery));

  j.set("engine_stats", stats_to_json(result.engine_stats));
  return j;
}

ExperimentResult result_from_json(const Json& j, const std::string& path) {
  try {
    if (!(j.at("format") == Json(kResultFormat))) {
      throw CkptError(path + ": not a gtrix cell-result document (format is " +
                      j.at("format").dump() + ")");
    }
    const std::int64_t version = j.at("version").as_int();
    if (version != kResultVersion) {
      throw CkptError(path + ": cell-result format version " + std::to_string(version) +
                      " is not supported (this build reads version " +
                      std::to_string(kResultVersion) + ")");
    }

    ExperimentResult result;
    const Json& s = j.at("skew");
    SkewReport& skew = result.skew;
    skew.intra_by_layer = doubles_from_json(s.at("intra_by_layer"));
    skew.inter_by_layer = doubles_from_json(s.at("inter_by_layer"));
    skew.spread_by_layer = doubles_from_json(s.at("spread_by_layer"));
    skew.max_intra = s.at("max_intra").as_double();
    skew.max_inter = s.at("max_inter").as_double();
    skew.local_skew = s.at("local_skew").as_double();
    skew.global_skew = s.at("global_skew").as_double();
    skew.sigma_lo = s.at("sigma_lo").as_int();
    skew.sigma_hi = s.at("sigma_hi").as_int();
    skew.pairs_checked = s.at("pairs_checked").as_u64();
    skew.pairs_skipped = s.at("pairs_skipped").as_u64();
    const Json& dev = s.at("deviations");
    skew.deviations.count = dev.at("count").as_u64();
    skew.deviations.mean = dev.at("mean").as_double();
    skew.deviations.p50 = dev.at("p50").as_double();
    skew.deviations.p90 = dev.at("p90").as_double();
    skew.deviations.p99 = dev.at("p99").as_double();
    skew.deviations.exact = dev.at("exact").as_bool();

    const Json& counters = j.at("counters");
    ExperimentCounters& c = result.counters;
    c.iterations = counters.at("iterations").as_u64();
    c.late_broadcasts = counters.at("late_broadcasts").as_u64();
    c.guard_aborts = counters.at("guard_aborts").as_u64();
    c.watchdog_resets = counters.at("watchdog_resets").as_u64();
    c.timeout_branches = counters.at("timeout_branches").as_u64();
    c.duplicate_drops = counters.at("duplicate_drops").as_u64();
    c.events_executed = counters.at("events_executed").as_u64();
    c.messages_sent = counters.at("messages_sent").as_u64();
    c.messages_delivered = counters.at("messages_delivered").as_u64();
    c.delivery_events = counters.at("delivery_events").as_u64();

    result.thm11_bound = j.at("thm11_bound").as_double();
    result.global_bound = j.at("global_bound").as_double();
    result.diameter = static_cast<std::uint32_t>(j.at("diameter").as_u64());

    const Json& realign = j.at("realign");
    result.realign.nodes_shifted =
        static_cast<std::uint32_t>(realign.at("nodes_shifted").as_u64());
    result.realign.max_abs_shift = realign.at("max_abs_shift").as_int();

    const Json& recovery = j.at("recovery");
    RecoveryReport& rec = result.recovery;
    rec.enabled = recovery.at("enabled").as_bool();
    rec.corrupt_wave = recovery.at("corrupt_wave").as_int();
    rec.scan_hi = recovery.at("scan_hi").as_int();
    rec.threshold = recovery.at("threshold").as_double();
    rec.recovered = recovery.at("recovered").as_bool();
    rec.recovered_wave = recovery.at("recovered_wave").as_int();
    const Json& series = recovery.at("local_by_wave");
    rec.local_by_wave.reserve(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      rec.local_by_wave.push_back(series[i].is_null()
                                      ? std::numeric_limits<double>::quiet_NaN()
                                      : series[i].as_double());
    }

    result.engine_stats = stats_from_json(j.at("engine_stats"));
    return result;
  } catch (const JsonError& e) {
    throw CkptError(path + ": malformed cell-result document (" + e.what() + ")");
  }
}

}  // namespace gtrix
