// Full-fidelity ExperimentResult <-> JSON round trip, used by the
// checkpointed cell runner's per-cell done files (docs/checkpointing.md).
//
// Fidelity contract: result_from_json(result_to_json(r)) reproduces every
// field of `r` bit-exactly, doubles included -- Json serializes doubles via
// shortest-round-trip to_chars, so dump/parse is lossless. That is what lets
// a resumed campaign reload completed cells from their done files and still
// emit byte-identical JSONL/summary output: the emitters re-derive their
// blocks from the reloaded struct, never from cached text.
//
// This is deliberately a different schema from the campaign JSONL `result`
// block: the JSONL is a curated, engine-invariant view (logical events only,
// intra_by_layer only), while a done file must carry the WHOLE struct --
// raw executed/delivery event counts, all three by-layer vectors, the full
// engine telemetry including wall-clock data -- so nothing is lost across a
// kill/resume boundary.
#pragma once

#include <string>

#include "runner/experiment.hpp"
#include "support/json.hpp"

namespace gtrix {

/// Serializes every field of the result (schema above). Deterministic.
Json result_to_json(const ExperimentResult& result);

/// Inverse of result_to_json. Throws CkptError naming `path` on any missing
/// key, type mismatch or schema-version mismatch -- a malformed done file is
/// treated exactly like a corrupt checkpoint (hard, versioned failure).
ExperimentResult result_from_json(const Json& j, const std::string& path);

}  // namespace gtrix
