// Campaign service mode (tools/gtrix_serve; docs/checkpointing.md): a
// long-running job queue over a spool directory.
//
// Spool layout (all paths under ServeOptions::spool):
//   jobs/<name>.json       one queued job; the file IS a scenario document
//   state/<name>/          the job's per-cell checkpoint directory
//   results/<name>.jsonl   campaign JSONL, written atomically on completion
//   results/<name>.summary.json   aggregate summary; its presence IS the
//                          completion marker (written last, atomically)
//   results/<name>.error.json     failure marker: the job threw; recorded so
//                          a restart reports it instead of retrying forever
//
// Crash contract: the server may be SIGKILLed at any instant. On restart it
// rescans the spool -- jobs with a summary are reported as already complete
// and NEVER re-run (their results are left byte-untouched); jobs without one
// re-run with resume semantics, so finished cells reload their done files
// and the interrupted cell restores its newest snapshot. Every artifact
// write is atomic (tmp + fsync + rename), so a torn file cannot exist.
//
// Event stream: one JSON object per line on `events` (stdout for the tool),
// mirroring the campaign JSONL discipline -- serve_start, job_start,
// job_done, job_skipped, job_failed, serve_idle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace gtrix {

struct ServeOptions {
  std::string spool;            ///< spool root (created if missing)
  unsigned threads = 0;         ///< sweep workers per job; 0 = all cores
  std::uint32_t shards = 0;     ///< engine shards per cell; 0 = scenario default
  double checkpoint_every = 4000.0;  ///< sim time between cell snapshots
  bool telemetry = false;       ///< harvest engine telemetry per job
  double progress_seconds = 0.0;  ///< > 0: live heartbeat on stderr
  bool once = false;            ///< drain the queue, then exit (no polling)
  double poll_seconds = 1.0;    ///< queue re-scan cadence when idle
};

struct ServeReport {
  std::uint64_t completed = 0;  ///< jobs run to completion this process
  std::uint64_t skipped = 0;    ///< jobs already complete (or failed) on disk
  std::uint64_t failed = 0;     ///< jobs that threw this process
};

/// Runs the serve loop. `jobs_in` non-null enables stdin protocol mode:
/// each line is {"name": "...", "scenario": {...}}; the job is materialized
/// into the spool atomically (surviving a later crash) and then processed.
/// EOF on `jobs_in` drains the queue and returns, like `once`.
ServeReport run_serve(const ServeOptions& options, std::istream* jobs_in,
                      std::ostream& events);

}  // namespace gtrix
