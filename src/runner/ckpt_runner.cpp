#include "runner/ckpt_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "obs/trace.hpp"
#include "runner/result_io.hpp"

namespace gtrix {

namespace {

constexpr const char* kDoneFormat = "gtrix-cell-done";
constexpr std::int64_t kDoneVersion = 1;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string read_text_file(const std::string& path) {
  const std::vector<std::uint8_t> bytes = ckpt_read_file(path);
  return std::string(bytes.begin(), bytes.end());
}

void write_text_atomic(const std::string& path, const std::string& text) {
  ckpt_write_file_atomic(path, std::vector<std::uint8_t>(text.begin(), text.end()));
}

}  // namespace

std::string cell_key(std::size_t index, const std::string& label) {
  char idx[32];
  std::snprintf(idx, sizeof(idx), "%05zu", index);
  std::string sanitized;
  for (const char ch : label) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' || ch == '-';
    sanitized.push_back(ok ? ch : '_');
    if (sanitized.size() >= 80) break;
  }
  return std::string("cell-") + idx + "-" + sanitized;
}

ExperimentResult run_cell_checkpointed(const ExperimentConfig& config,
                                       const CorruptPlan& corrupt,
                                       const CheckpointOptions& ckpt,
                                       std::size_t cell_index, const std::string& label,
                                       EngineOptions engine, CellObs obs) {
  const std::string key = cell_key(cell_index, label);
  const std::string ckpt_path = ckpt.dir + "/" + key + ".ckpt";
  const std::string done_path = ckpt.dir + "/" + key + ".done.json";

  // Completed cells are NEVER re-run on resume: the done file carries the
  // full result (result_io round trip is bit-exact), so reloading it
  // regenerates the identical JSONL line at zero simulation cost.
  if (ckpt.resume && std::filesystem::exists(done_path)) {
    Json doc;
    try {
      doc = Json::parse(read_text_file(done_path));
      if (!(doc.at("format") == Json(kDoneFormat))) {
        throw CkptError(done_path + ": not a gtrix cell-done document (format is " +
                        doc.at("format").dump() + ")");
      }
      if (doc.at("version").as_int() != kDoneVersion) {
        throw CkptError(done_path + ": cell-done format version " +
                        doc.at("version").dump() + " is not supported (this build reads version " +
                        std::to_string(kDoneVersion) + ")");
      }
    } catch (const JsonError& e) {
      throw CkptError(done_path + ": malformed cell-done document (" + e.what() + ")");
    }
    ExperimentResult result = result_from_json(doc.at("result"), done_path);
    result.engine_stats.cells_resumed_done += 1;
    return result;
  }

  TraceCollector* trace = kObsCompiled && engine.telemetry ? obs.trace : nullptr;
  World world(config, engine);
  // Mirror run_cell: corrupt cells run the configured recording mode, with
  // the corruption anchor pinning the look-back box. Config-derived, so it
  // is set identically on fresh and resumed runs -- BEFORE restore, which
  // replays the pinned state the snapshotted run had accumulated.
  if (corrupt.enabled) world.set_corruption_anchor(corrupt.wave);
  world.set_trace(trace, obs.trace_pid);

  std::uint64_t written = 0, bytes_written = 0, restored = 0;
  double write_seconds = 0.0, restore_seconds = 0.0;

  // chunk = completed sim-time chunks of length `every`; phase = 0 before
  // the corruption boundary (always 0 for non-corrupt cells), 1 after. Both
  // ride in the snapshot header's meta block so a resume re-enters the
  // chunk loop exactly where the killed run left it. Boundaries are
  // computed as every * (chunk + 1) -- an exact product, never an
  // accumulated float sum -- so the original and the resumed run stop at
  // bit-identical deadlines.
  std::uint64_t chunk = 0;
  std::uint8_t phase = 0;

  if (ckpt.resume && std::filesystem::exists(ckpt_path)) {
    const auto t0 = std::chrono::steady_clock::now();
    CkptFile file = CkptFile::parse(ckpt_read_file(ckpt_path), ckpt_path);
    world.checkpoint_restore(file);
    try {
      const Json meta = Json::parse(file.header_json()).at("meta");
      chunk = meta.at("chunk").as_u64();
      phase = static_cast<std::uint8_t>(meta.at("phase").as_u64());
    } catch (const JsonError& e) {
      throw CkptError(ckpt_path + ": checkpoint carries no usable runner metadata (" +
                      e.what() + ")");
    }
    restored = 1;
    restore_seconds += seconds_since(t0);
  }

  const auto save = [&](double t_now) {
    Json meta = Json::object();
    meta.set("t", t_now);
    meta.set("phase", phase);
    meta.set("chunk", static_cast<std::int64_t>(chunk));
    meta.set("cell", key);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::uint8_t> image = world.checkpoint_save(meta.dump());
    ckpt_write_file_atomic(ckpt_path, image);
    ++written;
    bytes_written += image.size();
    write_seconds += seconds_since(t0);
  };

  // Seed derivation matches run_cell; the stream is only ever drawn from at
  // the corruption boundary, so reconstructing it fresh on a post-corrupt
  // resume (phase == 1) is exact -- it is never touched again.
  Rng rng(config.seed ^ 0xFEED);
  const double corrupt_t = corrupt.wave * config.params.lambda;
  const double inf = std::numeric_limits<double>::infinity();

  while (!world.idle() || (corrupt.enabled && phase == 0)) {
    const double boundary = ckpt.every > 0.0 ? ckpt.every * static_cast<double>(chunk + 1) : inf;
    if (corrupt.enabled && phase == 0 && corrupt_t <= boundary) {
      world.run_until(corrupt_t);
      world.corrupt_fraction(corrupt.fraction, rng);
      phase = 1;
      save(corrupt_t);
      continue;
    }
    if (boundary == inf) {
      world.run_to_completion();
      break;
    }
    world.run_until(boundary);
    ++chunk;
    if (!world.idle()) save(boundary);
  }

  ExperimentResult result = measure_cell(world, config, corrupt);
  result.engine_stats.checkpoints_written += written;
  result.engine_stats.checkpoint_bytes += bytes_written;
  result.engine_stats.checkpoints_restored += restored;
  result.engine_stats.checkpoint_write_seconds += write_seconds;
  result.engine_stats.checkpoint_restore_seconds += restore_seconds;

  // The done file is the completion marker: written atomically AFTER the
  // result exists, so a kill at any earlier instant leaves either no file
  // or a complete one -- never a torn marker that would wrongly skip a
  // half-run cell on resume.
  Json doc = Json::object();
  doc.set("format", kDoneFormat);
  doc.set("version", kDoneVersion);
  doc.set("cell", key);
  doc.set("label", label);
  doc.set("index", static_cast<std::int64_t>(cell_index));
  doc.set("result", result_to_json(result));
  write_text_atomic(done_path, doc.dump(2) + "\n");
  return result;
}

}  // namespace gtrix
