// Campaign execution: expand a Scenario's config matrix, fan it through the
// parallel SweepRunner, and emit machine-readable results.
//
// Two output artifacts per campaign:
//  * JSONL -- one compact JSON object per cell, in cell order. Contains only
//    values derived from the simulation, so the bytes are identical no
//    matter how many worker threads ran the sweep (the CI determinism check
//    diffs --threads=1 against --threads=4).
//  * summary JSON -- aggregate skew percentiles, counter totals, bound
//    compliance and wall time; the file committed as BENCH_*.json for
//    trajectory tracking. Wall time is measured, hence non-deterministic,
//    which is why it lives here and never in the JSONL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "scenario/spec.hpp"

namespace gtrix {

class TraceCollector;

/// Per-cell checkpointing for crash-safe campaigns (docs/checkpointing.md).
/// An empty `dir` disables the subsystem entirely; with a directory set,
/// cells run through run_cell_checkpointed (runner/ckpt_runner.hpp), which
/// snapshots at sim-time boundaries and records finished cells as done
/// files. Resumed runs reproduce byte-identical JSONL output.
struct CheckpointOptions {
  std::string dir;     ///< checkpoint/done-file directory; empty = off
  /// Simulated time between snapshots (--checkpoint-every). <= 0 means no
  /// periodic snapshots: cells still write done files (and corrupt cells
  /// one snapshot at the corruption boundary), so resume skips completed
  /// cells but restarts incomplete ones from scratch.
  double every = 0.0;
  /// Reuse artifacts already in `dir`: completed cells reload their done
  /// files (never re-run), incomplete ones restore the newest snapshot and
  /// continue. Off = ignore and overwrite existing artifacts.
  bool resume = false;
};

struct CampaignOptions {
  unsigned threads = 0;  ///< sweep workers; 0 = hardware concurrency
  /// Engine shards per cell (the gtrix_campaign --shards flag); 0 = the
  /// scenario's own "engine": {"shards": N} default (1 when absent). The
  /// effective count is budgeted so sweep workers x shard threads never
  /// exceeds hardware concurrency -- shard counts are behaviour-neutral, so
  /// the clamp never changes results, only the thread layout.
  std::uint32_t shards = 0;
  /// When non-empty, overrides every cell's trace-retention mode (the
  /// gtrix_campaign --recording flag). Validated against the recording
  /// registry. Applies to corrupt cells too: corruption-anchored retention
  /// lets the memory-bounded modes answer realignment and the
  /// post-recovery measurement from a bounded look-back box (insufficient
  /// look-back fails loudly). The emitted JSONL configs always describe
  /// the mode that actually ran.
  ComponentSpec recording_override;
  /// Engine telemetry per cell (--telemetry; docs/observability.md): cells
  /// harvest EngineStats, the JSONL gains the engine-invariant
  /// `engine_stats` block and the summary the merged engine-shaped one.
  /// Implied by a non-null `trace`. No-op when GTRIX_OBS is compiled out.
  bool telemetry = false;
  /// Optional Chrome-trace collector (--trace-out; non-owning). Cell i's
  /// run is traced under pid `trace_pid_base + i`; the campaign itself
  /// under pid 1, one span per cell on the executing sweep worker's tid.
  TraceCollector* trace = nullptr;
  /// First pid used for per-cell trace processes (pid 1 is the campaign);
  /// callers tracing several campaigns into one file bump this.
  std::uint32_t trace_pid_base = 2;
  /// > 0: print a live progress heartbeat to stderr every this-many
  /// seconds (--progress) -- cells done, cumulative events/s, ETA.
  /// Diagnostics only; never written to the JSONL or summary.
  double progress_seconds = 0.0;
  /// Crash-safe per-cell checkpointing (--checkpoint-dir / --resume).
  CheckpointOptions checkpoint;
};

struct CampaignCell {
  std::string label;
  ExperimentConfig config;
  CorruptPlan corrupt;
  ExperimentResult result;
};

struct CampaignResult {
  std::string scenario;
  std::vector<CampaignCell> cells;  ///< in deterministic cell order
  unsigned threads_used = 0;
  std::uint32_t shards_used = 1;  ///< engine shards per cell after budgeting
  double wall_seconds = 0.0;
};

/// Per-cell observers (campaign internals; defaulted so direct run_cell
/// callers -- tests, bench_perf -- are untouched). Only honored when
/// `engine.telemetry` is set and GTRIX_OBS is compiled in.
struct CellObs {
  TraceCollector* trace = nullptr;  ///< non-owning
  std::uint32_t trace_pid = 0;      ///< trace process id for this cell
};

/// Runs one cell, honoring an optional mid-run corruption plan (the
/// Theorem 1.6 workload: run to wave * lambda, scramble `fraction` of all
/// nodes, run out, realign labels, then measure -- in the configured
/// recording mode; memory-bounded modes pin a corruption-anchored look-back
/// box). `engine` selects the simulation engine (bench_perf runs the
/// reference engine through here; results are bit-identical for every
/// engine).
ExperimentResult run_cell(const ExperimentConfig& config, const CorruptPlan& corrupt,
                          EngineOptions engine = {}, CellObs obs = {});

/// Harvests a cell's final measurement from a COMPLETED world: for corrupt
/// cells realigns wave labels and measures the post-recovery sub-window,
/// otherwise the default window. Shared by run_cell and the checkpointed
/// runner so a resumed cell measures exactly like an uninterrupted one.
ExperimentResult measure_cell(World& world, const ExperimentConfig& config,
                              const CorruptPlan& corrupt);

/// Expands and runs the whole scenario matrix in parallel.
CampaignResult run_campaign(const Scenario& scenario, const CampaignOptions& options = {});

/// One JSON line per cell (newline-terminated). Deterministic.
std::string campaign_jsonl(const CampaignResult& result);

/// Aggregate summary (percentiles, counters, wall time).
Json campaign_summary(const CampaignResult& result);

}  // namespace gtrix
