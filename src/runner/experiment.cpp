#include "runner/experiment.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace gtrix {

BaseGraph World::make_base(const ExperimentConfig& config) {
  switch (config.base_kind) {
    case BaseGraphKind::kLineReplicated:
      return BaseGraph::line_replicated(config.columns);
    case BaseGraphKind::kCycle:
      return BaseGraph::cycle_wide(config.columns, config.cycle_reach);
    case BaseGraphKind::kPath:
      return BaseGraph::path(config.columns);
  }
  return BaseGraph::line_replicated(config.columns);
}

World::World(ExperimentConfig config)
    : config_(std::move(config)), grid_(make_base(config_), config_.layers), sim_(), net_(sim_) {
  GTRIX_CHECK_MSG(config_.layers >= 2, "need at least layer 0 and one algorithm layer");
  GTRIX_CHECK_MSG(config_.pulses >= 1, "need at least one pulse");

  delay_model_.kind = config_.delay_kind;
  delay_model_.d = config_.params.d;
  delay_model_.u = config_.params.u;
  delay_model_.split_column = config_.delay_split_column;

  for (const PlacedFault& f : config_.faults) {
    fault_map_[grid_.id(f.base, f.layer)] = f.spec;
  }

  Rng master(config_.seed);
  Rng delay_rng = master.split("delays");
  Rng clock_rng = master.split("clocks");
  Rng layer0_rng = master.split("layer0");
  Rng fault_rng = master.split("faults");

  sinks_.resize(grid_.node_count() + 1);  // +1 possible source slot
  gradient_by_grid_.assign(grid_.node_count(), nullptr);
  layer0_by_grid_.assign(grid_.node_count(), nullptr);

  build_network(delay_rng);
  build_layer0(clock_rng, layer0_rng);
  build_algorithm_nodes(clock_rng, fault_rng);
}

World::~World() = default;

void World::build_network(Rng& delay_rng) {
  const BaseGraph& base = grid_.base();
  // Grid nodes get network ids equal to their grid ids.
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    const NetNodeId id = net_.add_node(nullptr);
    GTRIX_CHECK(id == g);
    NodeMeta meta;
    meta.layer = grid_.layer_of(g);
    meta.base = grid_.base_of(g);
    meta.column = base.column(grid_.base_of(g));
    meta.faulty = fault_map_.contains(g);
    recorder_.register_node(g, meta);
  }
  if (config_.layer0 == Layer0Mode::kLinePropagation) {
    source_id_ = net_.add_node(nullptr);
    NodeMeta meta;
    meta.is_source = true;
    recorder_.register_node(source_id_, meta);
  }
  // Inter-layer edges, deterministic order.
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    const std::uint32_t from_col = base.column(grid_.base_of(g));
    const std::uint32_t from_layer = grid_.layer_of(g);
    for (GridNodeId succ : grid_.successors(g)) {
      const double delay = delay_model_.sample(from_col, base.column(grid_.base_of(succ)),
                                               from_layer, grid_.layer_of(succ), delay_rng);
      net_.add_edge(g, succ, delay);
    }
  }
  // Layer-0 line edges (Appendix A wiring).
  if (config_.layer0 == Layer0Mode::kLinePropagation) {
    // Source feeds every column-0 node.
    for (BaseNodeId v : base.nodes_in_column(0)) {
      const double delay = delay_model_.sample(0, 0, 0, 0, delay_rng);
      net_.add_edge(source_id_, grid_.id(v, 0), delay);
    }
    // Column c's primary node feeds every node of column c+1.
    for (std::uint32_t c = 0; c + 1 < base.column_count(); ++c) {
      const BaseNodeId primary = base.nodes_in_column(c).front();
      for (BaseNodeId w : base.nodes_in_column(c + 1)) {
        const double delay = delay_model_.sample(c, c + 1, 0, 0, delay_rng);
        net_.add_edge(grid_.id(primary, 0), grid_.id(w, 0), delay);
      }
    }
  }
}

HardwareClock World::make_clock(Rng& rng, std::uint32_t column) const {
  const double theta = config_.params.theta;
  double rate = 1.0;
  switch (config_.clock_model) {
    case ClockModelKind::kRandomStatic:
      rate = rng.uniform(1.0, theta);
      break;
    case ClockModelKind::kAllFast:
      rate = theta;
      break;
    case ClockModelKind::kAllSlow:
      rate = 1.0;
      break;
    case ClockModelKind::kAlternating:
      rate = column % 2 == 0 ? 1.0 : theta;
      break;
  }
  const double offset = rng.uniform(0.0, config_.params.lambda);
  return HardwareClock(rate, offset);
}

void World::build_layer0(Rng& clock_rng, Rng& layer0_rng) {
  const BaseGraph& base = grid_.base();
  const double kappa = config_.params.kappa();
  const double jitter = config_.layer0_jitter >= 0.0 ? config_.layer0_jitter : kappa / 2.0;

  if (config_.layer0 == Layer0Mode::kIdealJitter) {
    // Deterministic per-column pattern, shifted so all offsets stay >= 0
    // (a uniform shift of layer 0 is unobservable in skew metrics).
    double pattern_shift = 0.0;
    for (const double extra : config_.layer0_offset_by_column) {
      pattern_shift = std::max(pattern_shift, -extra);
    }
    for (BaseNodeId v = 0; v < base.node_count(); ++v) {
      const GridNodeId g = grid_.id(v, 0);
      (void)clock_rng.next_u64();  // keep clock stream aligned across modes
      double offset = layer0_rng.uniform(0.0, jitter) + pattern_shift;
      const std::uint32_t column = base.column(v);
      if (column < config_.layer0_offset_by_column.size()) {
        offset += config_.layer0_offset_by_column[column];
      }
      const auto fault_it = fault_map_.find(g);
      if (fault_it != fault_map_.end()) {
        if (fault_it->second.kind == FaultKind::kCrash) continue;  // silent
        offset = std::max(0.0, offset + fault_it->second.offset);
      }
      auto emitter = std::make_unique<IdealEmitter>(sim_, net_, g, offset, config_.params,
                                                    config_.pulses, &recorder_);
      emitter->start();
      emitters_.push_back(std::move(emitter));
    }
    return;
  }

  // Line propagation (Algorithm 2).
  source_ = std::make_unique<ClockSource>(sim_, net_, source_id_, config_.params,
                                          config_.pulses, &recorder_);
  source_->start();
  for (BaseNodeId v = 0; v < base.node_count(); ++v) {
    const GridNodeId g = grid_.id(v, 0);
    const std::uint32_t col = base.column(v);
    const NetNodeId line_pred =
        col == 0 ? source_id_ : grid_.id(base.nodes_in_column(col - 1).front(), 0);
    const auto fault_it = fault_map_.find(g);
    if (fault_it != fault_map_.end()) {
      GTRIX_CHECK_MSG(fault_it->second.kind == FaultKind::kCrash,
                      "layer-0 line faults support kCrash only");
      auto sink = std::make_unique<CrashSink>();
      net_.set_sink(g, sink.get());
      sinks_[g] = std::move(sink);
      (void)clock_rng.next_u64();
      continue;
    }
    auto node = std::make_unique<Layer0LineNode>(sim_, net_, g, make_clock(clock_rng, col),
                                                 line_pred, config_.params, &recorder_);
    layer0_by_grid_[g] = node.get();
    net_.set_sink(g, node.get());
    sinks_[g] = std::move(node);
  }
}

void World::build_algorithm_nodes(Rng& clock_rng, Rng& fault_rng) {
  const BaseGraph& base = grid_.base();
  const std::uint32_t diameter = base.diameter();

  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    const std::uint32_t layer = grid_.layer_of(g);
    if (layer == 0) continue;
    const std::uint32_t column = base.column(grid_.base_of(g));
    HardwareClock clock = make_clock(clock_rng, column);

    const auto preds_span = grid_.predecessors(g);
    std::vector<NetNodeId> preds(preds_span.begin(), preds_span.end());

    const auto fault_it = fault_map_.find(g);
    const FaultSpec* spec = fault_it == fault_map_.end() ? nullptr : &fault_it->second;

    if (spec != nullptr && spec->kind == FaultKind::kCrash) {
      auto sink = std::make_unique<CrashSink>();
      net_.set_sink(g, sink.get());
      sinks_[g] = std::move(sink);
      continue;
    }
    if (spec != nullptr && spec->kind == FaultKind::kFixedPeriod) {
      const double period = spec->period > 0.0 ? spec->period : config_.params.lambda;
      const double first_at = (static_cast<double>(layer) + 1.0) * config_.params.lambda;
      auto rogue = std::make_unique<FixedPeriodRogue>(sim_, net_, g, period, first_at,
                                                      config_.pulses, &recorder_);
      rogue->start();
      rogues_.push_back(rogue.get());
      net_.set_sink(g, rogue.get());
      sinks_[g] = std::move(rogue);
      continue;
    }

    if (config_.algorithm == Algorithm::kTrixNaive) {
      GTRIX_CHECK_MSG(spec == nullptr, "naive TRIX supports crash/fixed-period faults only");
      auto node = std::make_unique<TrixNaiveNode>(sim_, net_, g, std::move(clock),
                                                  std::move(preds), config_.params,
                                                  &recorder_);
      net_.set_sink(g, node.get());
      sinks_[g] = std::move(node);
      continue;
    }

    GradientNodeConfig node_config;
    node_config.params = config_.params;
    node_config.simplified = config_.algorithm == Algorithm::kGradientSimplified;
    node_config.self_stabilizing = config_.self_stabilizing;
    node_config.jump_condition = config_.jump_condition;
    node_config.trim = config_.trim;
    node_config.skew_bound_hint = config_.params.thm11_bound(diameter);
    if (spec != nullptr && spec->kind == FaultKind::kStaticOffset) {
      node_config.broadcast_offset = spec->offset;
    }
    if (spec != nullptr && (spec->kind == FaultKind::kSplit || spec->kind == FaultKind::kJitter)) {
      node_config.broadcast_offset = -spec->alpha;
    }

    auto node = std::make_unique<GradientTrixNode>(sim_, net_, g, std::move(clock),
                                                   std::move(preds), node_config, &recorder_);
    if (spec != nullptr) install_fault(g, *spec, node.get(), fault_rng);
    gradient_by_grid_[g] = node.get();
    net_.set_sink(g, node.get());
    sinks_[g] = std::move(node);
  }
}

void World::install_fault(GridNodeId g, const FaultSpec& spec, GradientTrixNode* node,
                          Rng& fault_rng) {
  switch (spec.kind) {
    case FaultKind::kStaticOffset:
      // Handled via broadcast_offset; no override needed.
      return;
    case FaultKind::kSplit: {
      // Send early to lower-column successors, late to higher-column ones.
      // The node already fires alpha early (broadcast_offset = -alpha);
      // per-edge extras of 0 / alpha / 2 alpha realize -alpha / 0 / +alpha.
      const std::uint32_t own_col = grid_.base().column(grid_.base_of(g));
      std::vector<std::pair<EdgeId, double>> plan;
      for (EdgeId e : net_.out_edges(g)) {
        const auto to_col = grid_.base().column(grid_.base_of(net_.edge_to(e)));
        double extra = spec.alpha;  // same column: on time
        if (to_col < own_col) extra = 0.0;
        if (to_col > own_col) extra = 2.0 * spec.alpha;
        plan.emplace_back(e, extra);
      }
      node->set_send_override([this, plan](const Pulse& pulse, SimTime /*now*/) {
        for (const auto& [edge, extra] : plan) {
          if (extra <= 0.0) {
            net_.send(edge, pulse);
          } else {
            net_.send_after(edge, pulse, extra);
          }
        }
      });
      return;
    }
    case FaultKind::kJitter: {
      auto runtime = std::make_unique<FaultRuntime>();
      runtime->rng = fault_rng.split("jitter");
      FaultRuntime* rt = runtime.get();
      fault_runtimes_.push_back(std::move(runtime));
      const double alpha = spec.alpha;
      node->set_send_override([this, rt, alpha, g](const Pulse& pulse, SimTime /*now*/) {
        for (EdgeId e : net_.out_edges(g)) {
          const double extra = rt->rng.uniform(0.0, 2.0 * alpha);
          net_.send_after(e, pulse, extra);
        }
      });
      return;
    }
    case FaultKind::kMuteAfter: {
      auto runtime = std::make_unique<FaultRuntime>();
      FaultRuntime* rt = runtime.get();
      fault_runtimes_.push_back(std::move(runtime));
      const std::int64_t after = spec.after;
      node->set_send_override([this, rt, after, g](const Pulse& pulse, SimTime) {
        if (rt->sent >= after) return;  // silent from now on
        ++rt->sent;
        net_.broadcast(g, pulse);
      });
      return;
    }
    case FaultKind::kCrash:
    case FaultKind::kFixedPeriod:
      GTRIX_CHECK_MSG(false, "handled before node construction");
  }
}

void World::run_to_completion() { sim_.run_all(); }

void World::corrupt_fraction(double fraction, Rng& rng) {
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    if (gradient_by_grid_[g] != nullptr && rng.bernoulli(fraction)) {
      gradient_by_grid_[g]->corrupt_state(rng);
    } else if (layer0_by_grid_[g] != nullptr && rng.bernoulli(fraction)) {
      layer0_by_grid_[g]->corrupt_state(rng);
    }
  }
}

GridTrace World::trace() const {
  GridTrace t;
  t.grid = &grid_;
  t.recorder = &recorder_;
  t.node_ids.resize(grid_.node_count());
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) t.node_ids[g] = g;
  t.node_warmup = config_.warmup;
  t.node_tail = 1;
  return t;
}

SkewReport World::skew() const {
  const auto [lo, hi] = default_window(recorder_, config_.warmup);
  return skew_window(lo, hi);
}

SkewReport World::skew_window(Sigma lo, Sigma hi) const {
  const GridTrace t = trace();
  return compute_skew(t, lo, hi);
}

RealignStats World::realign_labels() {
  const GridTrace t = trace();
  return realign_wave_labels(recorder_, t, config_.params.lambda);
}

ConditionReport World::conditions(std::uint32_t s_max) const {
  const auto [lo, hi] = default_window(recorder_, config_.warmup);
  return conditions_window(s_max, lo, hi);
}

ConditionReport World::conditions_window(std::uint32_t s_max, Sigma lo, Sigma hi) const {
  const GridTrace t = trace();
  return check_conditions(t, config_.params, s_max, lo, hi);
}

ExperimentCounters World::counters() const {
  ExperimentCounters total;
  for (const GradientTrixNode* node : gradient_by_grid_) {
    if (node == nullptr) continue;
    const auto& c = node->counters();
    total.iterations += c.iterations;
    total.late_broadcasts += c.late_broadcasts;
    total.guard_aborts += c.guard_aborts;
    total.watchdog_resets += c.watchdog_resets;
    total.timeout_branches += c.timeout_branches;
    total.duplicate_drops += c.duplicate_drops;
  }
  total.events_executed = sim_.executed_events();
  total.messages_sent = net_.messages_sent();
  return total;
}

GradientTrixNode* World::gradient_node(GridNodeId g) { return gradient_by_grid_.at(g); }
Layer0LineNode* World::layer0_node(GridNodeId g) { return layer0_by_grid_.at(g); }

ExperimentResult run_experiment(const ExperimentConfig& config) {
  World world(config);
  world.run_to_completion();
  ExperimentResult result;
  result.skew = world.skew();
  result.counters = world.counters();
  result.diameter = world.grid().base().diameter();
  result.thm11_bound = config.params.thm11_bound(result.diameter);
  result.global_bound = config.params.global_skew_bound(result.diameter);
  return result;
}

}  // namespace gtrix
