#include "runner/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/rss.hpp"
#include "runner/shard_driver.hpp"
#include "support/check.hpp"

namespace gtrix {

std::vector<EngineGateDesc> engine_gate_descs() {
  return {
      {"scheduler", "calendar", "binary-heap",
       "event queue structure; both kinds execute identical event sequences"},
      {"batched_broadcast", "on", "off",
       "one queue event per uniform-delay broadcast instead of one per edge"},
      {"soa_arena", "on", "off",
       "node hot state in a struct-of-arrays arena vs object-per-node"},
      {"cached_metrics", "on", "off",
       "memoized per-node steady windows in skew computation"},
      {"single_locate_loop", "on", "off",
       "one find-minimum per event in the simulator loop"},
      {"shards", "1", "1",
       "conservative-parallel shards per run (--shards; clamped to columns "
       "and the thread budget); every count is bit-identical"},
      {"telemetry", "off", "off",
       "engine counters, window timings and peak RSS (--telemetry; "
       "docs/observability.md); purely observational, results identical"},
  };
}

ResolvedComponents resolve_components(const ExperimentConfig& c) {
  ResolvedComponents r;
  r.topology = topology_registry().canonicalize(
      c.topology_spec.empty() ? topology_spec_from_legacy(c.base_kind, c.cycle_reach)
                              : c.topology_spec);
  r.clock = clock_model_registry().canonicalize(
      c.clock_spec.empty() ? clock_spec_from_legacy(c.clock_model) : c.clock_spec);
  r.delay = delay_registry().canonicalize(
      c.delay_spec.empty() ? delay_spec_from_legacy(c.delay_kind, c.delay_split_column)
                           : c.delay_spec);
  r.algorithm = algorithm_registry().canonicalize(
      c.algorithm_spec.empty() ? algorithm_spec_from_legacy(c.algorithm) : c.algorithm_spec);
  r.recording = recording_registry().canonicalize(
      c.recording_spec.empty() ? ComponentSpec::of("full") : c.recording_spec);
  return r;
}

bool ExperimentConfig::operator==(const ExperimentConfig& other) const {
  // Cheap scalar fields first: the common unequal case never touches the
  // registries.
  if (!(columns == other.columns && trim == other.trim && layers == other.layers &&
        params == other.params && layer0 == other.layer0 &&
        layer0_jitter == other.layer0_jitter &&
        layer0_offset_by_column == other.layer0_offset_by_column && faults == other.faults &&
        pulses == other.pulses && self_stabilizing == other.self_stabilizing &&
        jump_condition == other.jump_condition && seed == other.seed &&
        warmup == other.warmup)) {
    return false;
  }
  try {
    return resolve_components(*this) == resolve_components(other);
  } catch (const JsonError&) {
    // Unresolvable (unregistered kind) on either side: equality must not
    // throw, so fall back to comparing the raw selections.
    return topology_spec == other.topology_spec && base_kind == other.base_kind &&
           cycle_reach == other.cycle_reach && clock_spec == other.clock_spec &&
           clock_model == other.clock_model && delay_spec == other.delay_spec &&
           delay_kind == other.delay_kind &&
           delay_split_column == other.delay_split_column &&
           algorithm_spec == other.algorithm_spec && algorithm == other.algorithm &&
           recording_spec == other.recording_spec;
  }
}

BaseGraph World::make_base(const ExperimentConfig& config,
                           const ResolvedComponents& components) {
  TopologyContext ctx;
  ctx.columns = config.columns;
  return topology_registry().create(components.topology)->build(ctx);
}

World::World(ExperimentConfig config, EngineOptions engine)
    : config_(std::move(config)),
      engine_(engine),
      components_(resolve_components(config_)),
      clock_provider_(clock_model_registry().create(components_.clock)),
      delay_provider_(delay_registry().create(components_.delay)),
      algorithm_provider_(algorithm_registry().create(components_.algorithm)),
      algorithm_caps_(algorithm_provider_->caps()),
      grid_(make_base(config_, components_), config_.layers),
      sim_(engine.scheduler, engine.single_locate_loop),
      net_(sim_),
      arena_(std::make_unique<NodeArena>()) {
  net_.set_broadcast_batching(engine.batched_broadcast);
  GTRIX_CHECK_MSG(config_.layers >= 2, "need at least layer 0 and one algorithm layer");
  GTRIX_CHECK_MSG(config_.pulses >= 1, "need at least one pulse");
  GTRIX_CHECK_MSG(config_.params.u >= 0.0 && config_.params.u < config_.params.d,
                  "require 0 <= u < d");
  // Node-count overflow is checked in the Grid constructor (before any
  // allocation) and, with path context, in the scenario layer.

  for (const PlacedFault& f : config_.faults) {
    fault_map_[grid_.id(f.base, f.layer)] = f.spec;
    // Backstop mirroring the scenario layer's capability check (which has
    // path context): a silent node at any layer starves its successors.
    if (f.spec.kind == FaultKind::kCrash || f.spec.kind == FaultKind::kFixedPeriod) {
      GTRIX_CHECK_MSG(algorithm_caps_.tolerates_silent_preds,
                      "algorithm '" + components_.algorithm.kind + "' does not tolerate '" +
                          std::string(to_string(f.spec.kind)) + "' faults");
    }
  }

  // Trace retention: resolve the mode and, for the memory-bounded modes,
  // stand up the online skew accumulators before any node can record.
  recording_ = resolve_recording(components_.recording);
  recorder_.configure(recording_);
  if (recording_.mode != RecordingMode::kFull) {
    std::vector<bool> faulty(grid_.node_count(), false);
    for (const auto& [g, spec] : fault_map_) faulty[g] = true;
    StreamingSkew::Config stream_config;
    stream_config.warmup = config_.warmup;
    stream_config.ring_waves = recording_.window;
    streaming_ = std::make_unique<StreamingSkew>(grid_, std::move(faulty), stream_config);
    recorder_.set_stream(streaming_.get());
  }

  Rng master(config_.seed);
  Rng delay_rng = master.split("delays");
  Rng clock_rng = master.split("clocks");
  Rng layer0_rng = master.split("layer0");
  Rng fault_rng = master.split("faults");

  sinks_.resize(grid_.node_count() + 1);  // +1 possible source slot
  model_by_grid_.assign(grid_.node_count(), nullptr);
  gradient_by_grid_.assign(grid_.node_count(), nullptr);
  layer0_by_grid_.assign(grid_.node_count(), nullptr);

  init_shards();
  // Telemetry lanes exist only for sharded runs (the serial engine has no
  // windows to time); counters are harvested from always-on sources either
  // way. kObsCompiled is constexpr, so with GTRIX_OBS=OFF this folds away.
  if (kObsCompiled && engine_.telemetry && shard_count_ > 1) {
    telemetry_ = std::make_unique<Telemetry>(shard_count_);
  }
  build_network(delay_rng);
  if (shard_count_ > 1) net_.configure_shards(shard_sims_, node_shard_);
  build_layer0(clock_rng, layer0_rng);
  build_algorithm_nodes(clock_rng, fault_rng);
}

void World::init_shards() {
  const std::uint32_t columns = grid_.base().column_count();
  const std::uint32_t requested = std::max<std::uint32_t>(1, engine_.shards);
  shard_count_ = std::min(requested, columns);
  if (shard_count_ <= 1) return;  // serial engine: no sharded state at all

  // Contiguous column ranges: shard boundaries are the only edges that
  // cross shards, so the conservative lookahead is an ordinary link delay
  // regardless of topology (line-replicated, torus, and future registry
  // topologies all expose columns).
  const bool line_mode = config_.layer0 == Layer0Mode::kLinePropagation;
  node_shard_.assign(grid_.node_count() + (line_mode ? 1 : 0), 0);
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    const std::uint32_t col = grid_.base().column(grid_.base_of(g));
    node_shard_[g] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(col) * shard_count_ / columns);
  }
  // Line mode: the clock source (net id == grid node count) feeds column 0,
  // so it lives in shard 0 -- node_shard_ already says so.

  for (std::uint32_t s = 1; s < shard_count_; ++s) {
    extra_sims_.push_back(
        std::make_unique<Simulator>(engine_.scheduler, engine_.single_locate_loop));
    extra_arenas_.push_back(std::make_unique<NodeArena>());
  }
  shard_sims_.push_back(&sim_);
  for (const auto& sim : extra_sims_) shard_sims_.push_back(sim.get());
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    shard_recorders_.push_back(std::make_unique<ShardRecorder>(shard_sims_[s]));
    shard_recorder_ptrs_.push_back(shard_recorders_.back().get());
  }
}

World::~World() = default;

void World::build_network(Rng& delay_rng) {
  const BaseGraph& base = grid_.base();
  const auto edge_delay = [&](std::uint32_t from_col, std::uint32_t to_col,
                              std::uint32_t from_layer, std::uint32_t to_layer) {
    DelayContext ctx;
    ctx.from_column = from_col;
    ctx.to_column = to_col;
    ctx.from_layer = from_layer;
    ctx.to_layer = to_layer;
    ctx.d = config_.params.d;
    ctx.u = config_.params.u;
    return delay_provider_->sample(ctx, delay_rng);
  };
  recorder_.reserve(grid_.node_count() + 1);  // +1 possible line source
  // Grid nodes get network ids equal to their grid ids.
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    const NetNodeId id = net_.add_node(nullptr);
    GTRIX_CHECK(id == g);
    NodeMeta meta;
    meta.layer = grid_.layer_of(g);
    meta.base = grid_.base_of(g);
    meta.column = base.column(grid_.base_of(g));
    meta.faulty = fault_map_.contains(g);
    recorder_.register_node(g, meta);
  }
  if (config_.layer0 == Layer0Mode::kLinePropagation) {
    source_id_ = net_.add_node(nullptr);
    NodeMeta meta;
    meta.is_source = true;
    recorder_.register_node(source_id_, meta);
  }
  // Inter-layer edges, deterministic order.
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    const std::uint32_t from_col = base.column(grid_.base_of(g));
    const std::uint32_t from_layer = grid_.layer_of(g);
    for (GridNodeId succ : grid_.successors(g)) {
      const double delay = edge_delay(from_col, base.column(grid_.base_of(succ)), from_layer,
                                      grid_.layer_of(succ));
      net_.add_edge(g, succ, delay);
    }
  }
  // Layer-0 line edges (Appendix A wiring).
  if (config_.layer0 == Layer0Mode::kLinePropagation) {
    // Source feeds every column-0 node.
    for (BaseNodeId v : base.nodes_in_column(0)) {
      net_.add_edge(source_id_, grid_.id(v, 0), edge_delay(0, 0, 0, 0));
    }
    // Column c's primary node feeds every node of column c+1.
    for (std::uint32_t c = 0; c + 1 < base.column_count(); ++c) {
      const BaseNodeId primary = base.nodes_in_column(c).front();
      for (BaseNodeId w : base.nodes_in_column(c + 1)) {
        net_.add_edge(grid_.id(primary, 0), grid_.id(w, 0), edge_delay(c, c + 1, 0, 0));
      }
    }
  }
}

double World::clock_horizon() const {
  // Real time the run plausibly reaches: every wave plus full propagation
  // through the grid, with slack. Only rate-schedule models read this.
  double horizon =
      (static_cast<double>(config_.pulses) + static_cast<double>(config_.layers) + 8.0) *
      config_.params.lambda;
  if (config_.layer0 == Layer0Mode::kLinePropagation) {
    // Line startup: the layer-0 wavefront crosses one column per ~d of real
    // time before deep columns see their first pulse.
    horizon += static_cast<double>(config_.columns) * config_.params.d;
  }
  return horizon;
}

HardwareClock World::make_clock(Rng& rng, std::uint32_t column, std::uint32_t layer) const {
  ClockContext ctx;
  ctx.column = column;
  ctx.layer = layer;
  ctx.params = config_.params;
  ctx.horizon = clock_horizon();
  return clock_provider_->make(ctx, rng);
}

void World::build_layer0(Rng& clock_rng, Rng& layer0_rng) {
  const BaseGraph& base = grid_.base();
  const double kappa = config_.params.kappa();
  const double jitter = config_.layer0_jitter >= 0.0 ? config_.layer0_jitter : kappa / 2.0;

  if (config_.layer0 == Layer0Mode::kIdealJitter) {
    // Deterministic per-column pattern, shifted so all offsets stay >= 0
    // (a uniform shift of layer 0 is unobservable in skew metrics).
    double pattern_shift = 0.0;
    for (const double extra : config_.layer0_offset_by_column) {
      pattern_shift = std::max(pattern_shift, -extra);
    }
    for (BaseNodeId v = 0; v < base.node_count(); ++v) {
      const GridNodeId g = grid_.id(v, 0);
      (void)clock_rng.next_u64();  // keep clock stream aligned across modes
      double offset = layer0_rng.uniform(0.0, jitter) + pattern_shift;
      const std::uint32_t column = base.column(v);
      if (column < config_.layer0_offset_by_column.size()) {
        offset += config_.layer0_offset_by_column[column];
      }
      const auto fault_it = fault_map_.find(g);
      if (fault_it != fault_map_.end()) {
        if (fault_it->second.kind == FaultKind::kCrash) continue;  // silent
        // Other kinds have no emitter realization; the scenario layer
        // rejects them with path context, this is the direct-API backstop.
        GTRIX_CHECK_MSG(fault_it->second.kind == FaultKind::kStaticOffset,
                        "layer-0 faults in ideal-jitter mode support kCrash and "
                        "kStaticOffset only");
        offset = std::max(0.0, offset + fault_it->second.offset);
      }
      auto emitter = std::make_unique<IdealEmitter>(sim_for(g), net_, g, offset, config_.params,
                                                    config_.pulses, recorder_for(g));
      emitter->start();
      emitters_.push_back(std::move(emitter));
    }
    return;
  }

  // Line propagation (Algorithm 2).
  source_ = std::make_unique<ClockSource>(sim_for(source_id_), net_, source_id_, config_.params,
                                          config_.pulses, recorder_for(source_id_));
  source_->start();
  for (BaseNodeId v = 0; v < base.node_count(); ++v) {
    const GridNodeId g = grid_.id(v, 0);
    const std::uint32_t col = base.column(v);
    const NetNodeId line_pred =
        col == 0 ? source_id_ : grid_.id(base.nodes_in_column(col - 1).front(), 0);
    const auto fault_it = fault_map_.find(g);
    if (fault_it != fault_map_.end()) {
      GTRIX_CHECK_MSG(fault_it->second.kind == FaultKind::kCrash,
                      "layer-0 line faults support kCrash only");
      auto sink = std::make_unique<CrashSink>();
      net_.set_sink(g, sink.get());
      sinks_[g] = std::move(sink);
      (void)clock_rng.next_u64();
      continue;
    }
    auto node = std::make_unique<Layer0LineNode>(sim_for(g), net_, g, make_clock(clock_rng, col, 0),
                                                 line_pred, config_.params, recorder_for(g),
                                                 engine_.soa_arena ? &arena_for(g)->layer0
                                                                   : nullptr);
    layer0_by_grid_[g] = node.get();
    net_.set_sink(g, node.get());
    sinks_[g] = std::move(node);
  }
}

void World::build_algorithm_nodes(Rng& clock_rng, Rng& fault_rng) {
  const BaseGraph& base = grid_.base();
  const std::uint32_t diameter = base.diameter();

  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    const std::uint32_t layer = grid_.layer_of(g);
    if (layer == 0) continue;
    const std::uint32_t column = base.column(grid_.base_of(g));
    HardwareClock clock = make_clock(clock_rng, column, layer);

    const auto preds_span = grid_.predecessors(g);
    std::vector<NetNodeId> preds(preds_span.begin(), preds_span.end());

    const auto fault_it = fault_map_.find(g);
    const FaultSpec* spec = fault_it == fault_map_.end() ? nullptr : &fault_it->second;

    if (spec != nullptr && spec->kind == FaultKind::kCrash) {
      auto sink = std::make_unique<CrashSink>();
      net_.set_sink(g, sink.get());
      sinks_[g] = std::move(sink);
      continue;
    }
    if (spec != nullptr && spec->kind == FaultKind::kFixedPeriod) {
      const double period = spec->period > 0.0 ? spec->period : config_.params.lambda;
      const double first_at = (static_cast<double>(layer) + 1.0) * config_.params.lambda;
      auto rogue = std::make_unique<FixedPeriodRogue>(sim_for(g), net_, g, period, first_at,
                                                      config_.pulses, recorder_for(g));
      rogue->start();
      rogues_.push_back(rogue.get());
      net_.set_sink(g, rogue.get());
      sinks_[g] = std::move(rogue);
      continue;
    }

    // The config layer rejects this mismatch with path context; a direct
    // World construction gets the hard error instead of a silent no-op.
    if (spec != nullptr) {
      GTRIX_CHECK_MSG(algorithm_caps_.send_fault_overrides,
                      "algorithm '" + components_.algorithm.kind + "' does not support '" +
                          std::string(to_string(spec->kind)) + "' faults");
    }

    double broadcast_offset = 0.0;
    if (spec != nullptr && spec->kind == FaultKind::kStaticOffset) {
      broadcast_offset = spec->offset;
    }
    if (spec != nullptr && (spec->kind == FaultKind::kSplit || spec->kind == FaultKind::kJitter)) {
      broadcast_offset = -spec->alpha;
    }

    auto model = algorithm_provider_->make_node(NodeContext{
        sim_for(g), net_, g, std::move(clock), std::move(preds), config_.params, diameter,
        config_.trim, config_.self_stabilizing, config_.jump_condition, broadcast_offset,
        recorder_for(g), engine_.soa_arena ? arena_for(g) : nullptr});
    if (spec != nullptr) install_fault(g, *spec, *model, fault_rng);
    model_by_grid_[g] = model.get();
    gradient_by_grid_[g] = model->gradient();
    net_.set_sink(g, &model->sink());
    models_.push_back(std::move(model));
  }
}

void World::install_fault(GridNodeId g, const FaultSpec& spec, NodeModel& model,
                          Rng& fault_rng) {
  switch (spec.kind) {
    case FaultKind::kStaticOffset:
      // Handled via broadcast_offset; no override needed.
      return;
    case FaultKind::kSplit: {
      // Send early to lower-column successors, late to higher-column ones.
      // The node already fires alpha early (broadcast_offset = -alpha);
      // per-edge extras of 0 / alpha / 2 alpha realize -alpha / 0 / +alpha.
      const std::uint32_t own_col = grid_.base().column(grid_.base_of(g));
      std::vector<std::pair<EdgeId, double>> plan;
      for (EdgeId e : net_.out_edges(g)) {
        const auto to_col = grid_.base().column(grid_.base_of(net_.edge_to(e)));
        double extra = spec.alpha;  // same column: on time
        if (to_col < own_col) extra = 0.0;
        if (to_col > own_col) extra = 2.0 * spec.alpha;
        plan.emplace_back(e, extra);
      }
      model.set_send_override([this, plan](const Pulse& pulse, SimTime /*now*/) {
        for (const auto& [edge, extra] : plan) {
          if (extra <= 0.0) {
            net_.send(edge, pulse);
          } else {
            net_.send_after(edge, pulse, extra);
          }
        }
      });
      return;
    }
    case FaultKind::kJitter: {
      auto runtime = std::make_unique<FaultRuntime>();
      runtime->rng = fault_rng.split("jitter");
      FaultRuntime* rt = runtime.get();
      fault_runtimes_.push_back(std::move(runtime));
      const double alpha = spec.alpha;
      model.set_send_override([this, rt, alpha, g](const Pulse& pulse, SimTime /*now*/) {
        for (EdgeId e : net_.out_edges(g)) {
          const double extra = rt->rng.uniform(0.0, 2.0 * alpha);
          net_.send_after(e, pulse, extra);
        }
      });
      return;
    }
    case FaultKind::kMuteAfter: {
      auto runtime = std::make_unique<FaultRuntime>();
      FaultRuntime* rt = runtime.get();
      fault_runtimes_.push_back(std::move(runtime));
      const std::int64_t after = spec.after;
      model.set_send_override([this, rt, after, g](const Pulse& pulse, SimTime) {
        if (rt->sent >= after) return;  // silent from now on
        ++rt->sent;
        net_.broadcast(g, pulse);
      });
      return;
    }
    case FaultKind::kCrash:
    case FaultKind::kFixedPeriod:
      GTRIX_CHECK_MSG(false, "handled before node construction");
  }
}

void World::run_to_completion() {
  using Clock = std::chrono::steady_clock;
  const bool timed = kObsCompiled && engine_.telemetry;
  const Clock::time_point t0 = timed ? Clock::now() : Clock::time_point{};
  if (shard_count_ <= 1) {
    sim_.run_all();
  } else {
    ShardDriver(shard_sims_, net_, recorder_, shard_recorder_ptrs_,
                ShardDriverObs{telemetry_.get(), trace_, trace_pid_})
        .run(kTimeInfinity);
  }
  if (timed) run_wall_seconds_ += std::chrono::duration<double>(Clock::now() - t0).count();
}

void World::run_until(SimTime t) {
  using Clock = std::chrono::steady_clock;
  const bool timed = kObsCompiled && engine_.telemetry;
  const Clock::time_point t0 = timed ? Clock::now() : Clock::time_point{};
  if (shard_count_ <= 1) {
    sim_.run_until(t);
  } else {
    ShardDriver(shard_sims_, net_, recorder_, shard_recorder_ptrs_,
                ShardDriverObs{telemetry_.get(), trace_, trace_pid_})
        .run(t);
  }
  if (timed) run_wall_seconds_ += std::chrono::duration<double>(Clock::now() - t0).count();
}

void World::set_trace(TraceCollector* trace, std::uint32_t pid) {
  if (!kObsCompiled || !engine_.telemetry) return;
  trace_ = trace;
  trace_pid_ = pid;
}

EngineStats World::engine_stats() const {
  EngineStats stats;
  if (!kObsCompiled || !engine_.telemetry) return stats;
  stats.enabled = true;

  // Engine-invariant block (JSONL-safe; see obs/telemetry.hpp).
  const ExperimentCounters c = counters();
  stats.set(ObsCounter::kLogicalEvents,
            c.events_executed - c.delivery_events + c.messages_delivered);
  stats.set(ObsCounter::kMessagesSent, c.messages_sent);
  stats.set(ObsCounter::kMessagesDelivered, c.messages_delivered);
  stats.set(ObsCounter::kNodeIterations, c.iterations);
  stats.set(ObsCounter::kPulsesRecorded, recorder_.pulse_count());
  stats.set(ObsCounter::kRealignShiftedNodes, last_realign_.nodes_shifted);
  stats.set(ObsCounter::kCorruptPinnedPulses, recorder_.pinned_pulse_count());

  // Queue counters, summed over shard queues. Cancels are algorithm-issued
  // and engine-invariant; scheduled/executed/purged/rebuilds are
  // engine-shaped (summary only).
  std::uint64_t cancels = 0, scheduled = 0, purged = 0, rebuilds = 0;
  const auto harvest_queue = [&](const Simulator& sim) {
    const EventQueue& q = sim.event_queue();
    cancels += q.cancelled_count();
    scheduled += q.scheduled_count();
    purged += q.purged_count();
    rebuilds += q.calendar_rebuilds();
  };
  harvest_queue(sim_);
  for (const auto& sim : extra_sims_) harvest_queue(*sim);
  stats.set(ObsCounter::kTimerCancels, cancels);
  stats.set(ObsCounter::kEventsExecuted, c.events_executed);
  stats.set(ObsCounter::kEventsScheduled, scheduled);
  stats.set(ObsCounter::kEventsPurged, purged);
  stats.set(ObsCounter::kCalendarRebuilds, rebuilds);

  // Sharded-run extras: window lanes and mailbox traffic.
  if (telemetry_) telemetry_->harvest_into(stats);
  stats.set(ObsCounter::kEnvelopesPublished, net_.envelopes_published());
  stats.set(ObsCounter::kEnvelopesDrained, net_.envelopes_drained());
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(stats.shards.size()); ++s) {
    stats.shards[s].envelopes_drained = net_.shard_envelopes_drained(s);
  }

  stats.run_wall_seconds = run_wall_seconds_;
  stats.peak_rss_mb = peak_rss_mb();
  return stats;
}

void World::corrupt_fraction(double fraction, Rng& rng) {
  GTRIX_CHECK_MSG(algorithm_caps_.state_corruption,
                  "algorithm '" + components_.algorithm.kind +
                      "' does not support state corruption (Theorem 1.6 workloads need a "
                      "gradient algorithm)");
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    if (model_by_grid_[g] != nullptr && rng.bernoulli(fraction)) {
      model_by_grid_[g]->corrupt_state(rng);
    } else if (layer0_by_grid_[g] != nullptr && rng.bernoulli(fraction)) {
      layer0_by_grid_[g]->corrupt_state(rng);
    }
  }
}

GridTrace World::trace() const {
  GridTrace t;
  t.grid = &grid_;
  t.recorder = &recorder_;
  t.node_ids.resize(grid_.node_count());
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) t.node_ids[g] = g;
  t.node_warmup = config_.warmup;
  t.node_tail = 1;
  t.cached_metrics = engine_.cached_metrics;
  return t;
}

SkewReport World::skew() const {
  const auto [lo, hi] = default_window(recorder_, config_.warmup);
  if (recording_.mode != RecordingMode::kFull) {
    // The accumulators cover exactly the steady pulses of the whole run,
    // which is what the default window measures post-hoc.
    return streaming_->report(lo, hi);
  }
  return skew_window(lo, hi);
}

void World::set_corruption_anchor(double wave) {
  if (recording_.mode == RecordingMode::kFull) return;  // full keeps everything
  recorder_.set_corruption_anchor(static_cast<Sigma>(std::llround(wave)));
  if (streaming_) streaming_->set_corruption_anchor(wave * config_.params.lambda);
}

void World::require_retained(Sigma lo, Sigma hi, const std::string& what) const {
  if (recording_.mode == RecordingMode::kFull) return;  // nothing ever evicted
  // Every (node, wave) a measurement would read inside the node's steady
  // window must still be retained (rolling tail or corruption box).
  // Insufficient look-back is a hard error, never a silently different
  // extremum.
  const GridTrace t = trace();
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    if (t.is_faulty(g)) continue;
    const RecNodeId id = t.rec_id(g);
    const Sigma from = recorder_.steady_from(id, t.node_warmup);
    if (from == Recorder::kInvalidSigma) continue;
    const Sigma last = recorder_.last_recorded(id);
    if (last == Recorder::kInvalidSigma) continue;
    const Sigma lo_n = std::max(lo, from);
    const Sigma hi_n = std::min(hi, last - t.node_tail);
    if (lo_n > hi_n || recorder_.covers(id, lo_n, hi_n)) continue;
    const auto [llo, lhi] = recorder_.lost_range(id);
    throw std::runtime_error(
        what + ": node " + grid_.label(g) + " lost pulse waves [" + std::to_string(llo) +
        ", " + std::to_string(lhi) + "] overlapping the measurement window [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "] (recording mode " +
        std::string(to_string(recording_.mode)) + ", window " +
        std::to_string(recording_.window) +
        "): raise recording.window so the look-back covers the recovery tail");
  }
}

SkewReport World::skew_window(Sigma lo, Sigma hi) const {
  if (recording_.mode == RecordingMode::kStreaming) {
    GTRIX_CHECK_MSG(recorder_.corruption_anchored(),
                    "arbitrary-window skew needs a per-wave trace; streaming mode "
                    "retains none outside a corruption box (use skew(), or record "
                    "windowed/full)");
  }
  require_retained(lo, hi + 1, "skew");  // inter-layer pairs read wave s+1
  return compute_skew(trace(), lo, hi);
}

RealignStats World::realign_labels() {
  if (recording_.mode == RecordingMode::kStreaming) {
    GTRIX_CHECK_MSG(recorder_.corruption_anchored(),
                    "wave-label realignment needs a per-wave trace; streaming mode "
                    "retains none without a corruption anchor (set_corruption_anchor "
                    "before the run, or record windowed/full)");
  }
  const GridTrace t = trace();
  last_realign_ = realign_wave_labels(recorder_, t, config_.params.lambda);
  return last_realign_;
}

ConditionReport World::conditions(std::uint32_t s_max) const {
  const auto [lo, hi] = default_window(recorder_, config_.warmup);
  return conditions_window(s_max, lo, hi);
}

ConditionReport World::conditions_window(std::uint32_t s_max, Sigma lo, Sigma hi) const {
  GTRIX_CHECK_MSG(recording_.mode != RecordingMode::kStreaming,
                  "conditions checks need iteration records; streaming mode keeps none "
                  "(use windowed recording to check the last K waves)");
  const GridTrace t = trace();
  return check_conditions(t, config_.params, s_max, lo, hi);
}

ExperimentCounters World::counters() const {
  ExperimentCounters total;
  for (const auto& model : models_) model->add_counters(total);
  total.events_executed = sim_.executed_events();
  for (const auto& sim : extra_sims_) total.events_executed += sim->executed_events();
  total.messages_sent = net_.messages_sent();
  total.messages_delivered = net_.messages_delivered();
  total.delivery_events = net_.delivery_events();
  return total;
}

GradientTrixNode* World::gradient_node(GridNodeId g) { return gradient_by_grid_.at(g); }
Layer0LineNode* World::layer0_node(GridNodeId g) { return layer0_by_grid_.at(g); }

ExperimentResult run_experiment(const ExperimentConfig& config, EngineOptions engine) {
  World world(config, engine);
  world.run_to_completion();
  ExperimentResult result;
  result.skew = world.skew();
  result.counters = world.counters();
  result.diameter = world.grid().base().diameter();
  result.thm11_bound = config.params.thm11_bound(result.diameter);
  result.global_bound = config.params.global_skew_bound(result.diameter);
  result.engine_stats = world.engine_stats();
  return result;
}

}  // namespace gtrix
