#include "runner/sweep.hpp"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "support/check.hpp"

namespace gtrix {

namespace {

unsigned resolve_threads(unsigned requested, std::size_t work_items) {
  unsigned threads = requested;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;  // hardware_concurrency may be unknown
  }
  if (work_items < threads) threads = static_cast<unsigned>(work_items);
  return threads == 0 ? 1 : threads;
}

}  // namespace

void parallel_for_index(std::size_t n, unsigned threads,
                        const std::function<void(std::size_t)>& fn) {
  GTRIX_CHECK_MSG(static_cast<bool>(fn), "parallel_for_index requires a body");
  if (n == 0) return;
  const unsigned workers = resolve_threads(threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Keep draining: siblings finish their current item and exit via the
        // cursor; aborting mid-item would leave result slots half-written.
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

SweepRunner::SweepRunner(SweepOptions options)
    : threads_(resolve_threads(options.threads, std::numeric_limits<std::size_t>::max())) {}

std::vector<ExperimentResult> SweepRunner::run(
    const std::vector<ExperimentConfig>& configs) const {
  return run(configs, [](const ExperimentConfig& config, std::size_t /*index*/) {
    return run_experiment(config);
  });
}

std::vector<ExperimentResult> SweepRunner::run(
    const std::vector<ExperimentConfig>& configs,
    const std::function<ExperimentResult(const ExperimentConfig&, std::size_t)>& fn) const {
  std::vector<ExperimentResult> results(configs.size());
  parallel_for_index(configs.size(), threads_,
                     [&](std::size_t i) { results[i] = fn(configs[i], i); });
  return results;
}

}  // namespace gtrix
