#include "runner/perf.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>

#include "runner/ckpt_runner.hpp"
#include "support/check.hpp"

namespace gtrix {

namespace {

/// Runs every cell of the scenario on `engine`, returning aggregate
/// counters, wall time and the per-cell skew digests. Cells run serially:
/// bench_perf measures single-thread engine throughput (parallel sweep
/// scaling is the SweepRunner's own, separately tested property).
struct EnginePass {
  PerfEngineStats stats;
  std::vector<std::string> digests;
};

EnginePass run_pass(const std::vector<ScenarioCell>& cells, EngineOptions engine) {
  EnginePass pass;
  pass.digests.reserve(cells.size());
  const auto started = std::chrono::steady_clock::now();
  for (const ScenarioCell& cell : cells) {
    const ExperimentResult result = run_cell(cell.config, cell.corrupt, engine);
    const ExperimentCounters& c = result.counters;
    pass.stats.events_executed += c.events_executed;
    pass.stats.messages_delivered += c.messages_delivered;
    pass.stats.logical_events += c.events_executed - c.delivery_events + c.messages_delivered;
    pass.digests.push_back(skew_digest(result));
  }
  pass.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return pass;
}

void finalize(PerfEngineStats& stats) {
  if (stats.wall_seconds > 0.0) {
    stats.events_per_sec = static_cast<double>(stats.logical_events) / stats.wall_seconds;
  }
}

PerfScenarioReport run_both(const Scenario& scenario, int repeats) {
  GTRIX_CHECK_MSG(repeats >= 1, "perf repeats must be >= 1");
  PerfScenarioReport report;
  report.scenario = scenario.name();
  report.repeats = repeats;
  const std::vector<ScenarioCell> cells = scenario.cells();
  report.cells = cells.size();

  EnginePass reference;
  EnginePass optimized;
  for (int r = 0; r < repeats; ++r) {
    // Alternate which engine runs first so neither systematically enjoys a
    // warmer allocator / cache / frequency state from the other's pass.
    EnginePass ref_pass;
    EnginePass opt_pass;
    if (r % 2 == 0) {
      ref_pass = run_pass(cells, EngineOptions::reference());
      opt_pass = run_pass(cells, EngineOptions{});
    } else {
      opt_pass = run_pass(cells, EngineOptions{});
      ref_pass = run_pass(cells, EngineOptions::reference());
    }
    if (r == 0) {
      reference = std::move(ref_pass);
      optimized = std::move(opt_pass);
      continue;
    }
    // Counters and digests are deterministic; only wall time varies.
    GTRIX_CHECK(ref_pass.digests == reference.digests);
    GTRIX_CHECK(opt_pass.digests == optimized.digests);
    reference.stats.wall_seconds =
        std::min(reference.stats.wall_seconds, ref_pass.stats.wall_seconds);
    optimized.stats.wall_seconds =
        std::min(optimized.stats.wall_seconds, opt_pass.stats.wall_seconds);
  }
  finalize(reference.stats);
  finalize(optimized.stats);
  report.reference = reference.stats;
  report.optimized = optimized.stats;
  report.skew_identical = reference.digests == optimized.digests;
  GTRIX_CHECK_MSG(
      reference.stats.logical_events == optimized.stats.logical_events,
      "logical event counts diverged between engines -- batching accounting bug");
  if (report.reference.events_per_sec > 0.0) {
    report.speedup = report.optimized.events_per_sec / report.reference.events_per_sec;
  }
  return report;
}

Json engine_json(const PerfEngineStats& stats) {
  Json j = Json::object();
  j.set("wall_seconds", stats.wall_seconds);
  j.set("events_executed", stats.events_executed);
  j.set("messages_delivered", stats.messages_delivered);
  j.set("logical_events", stats.logical_events);
  j.set("events_per_sec", stats.events_per_sec);
  return j;
}

}  // namespace

std::string skew_digest(const ExperimentResult& result) {
  const SkewReport& skew = result.skew;
  Json j = Json::object();
  j.set("max_intra", skew.max_intra);
  j.set("max_inter", skew.max_inter);
  j.set("local", skew.local_skew);
  j.set("global", skew.global_skew);
  j.set("sigma_lo", skew.sigma_lo);
  j.set("sigma_hi", skew.sigma_hi);
  j.set("pairs_checked", skew.pairs_checked);
  j.set("pairs_skipped", skew.pairs_skipped);
  Json by_layer = Json::array();
  for (const double v : skew.intra_by_layer) by_layer.push_back(v);
  j.set("intra_by_layer", std::move(by_layer));
  return j.dump();
}

PerfScenarioReport run_perf_scenario(const Scenario& scenario, int repeats) {
  return run_both(scenario, repeats);
}

TelemetryOverheadReport run_telemetry_overhead(const Scenario& scenario, int repeats) {
  GTRIX_CHECK_MSG(repeats >= 1, "perf repeats must be >= 1");
  TelemetryOverheadReport report;
  report.scenario = scenario.name();
  report.repeats = repeats;
  const std::vector<ScenarioCell> cells = scenario.cells();
  report.cells = cells.size();

  EngineOptions on_engine;
  on_engine.telemetry = true;

  // Per-CELL best-of-repeats, not best whole pass: a scheduler hiccup on a
  // shared CI runner lands inside one cell of one pass, and the per-cell
  // minimum filters it out instead of polluting an entire pass's total.
  // The summed minima estimate "both modes on their best behaviour", which
  // is exactly the comparison an overhead gate needs.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> off_best(cells.size(), kInf);
  std::vector<double> on_best(cells.size(), kInf);
  std::vector<std::string> off_digests;
  std::vector<std::string> on_digests;

  const auto timed_pass = [&](EngineOptions engine, std::vector<double>& best,
                              std::vector<std::string>& digests) {
    std::vector<std::string> pass_digests;
    pass_digests.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto started = std::chrono::steady_clock::now();
      const ExperimentResult result = run_cell(cells[i].config, cells[i].corrupt, engine);
      best[i] = std::min(
          best[i],
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
              .count());
      pass_digests.push_back(skew_digest(result));
    }
    if (digests.empty()) {
      digests = std::move(pass_digests);
    } else {
      GTRIX_CHECK(pass_digests == digests);
    }
  };

  for (int r = 0; r < repeats; ++r) {
    // Alternate mode order per repeat, like the engine comparison.
    if (r % 2 == 0) {
      timed_pass(EngineOptions{}, off_best, off_digests);
      timed_pass(on_engine, on_best, on_digests);
    } else {
      timed_pass(on_engine, on_best, on_digests);
      timed_pass(EngineOptions{}, off_best, off_digests);
    }
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    report.off_wall_seconds += off_best[i];
    report.on_wall_seconds += on_best[i];
  }
  report.skew_identical = off_digests == on_digests;
  if (report.off_wall_seconds > 0.0) {
    report.overhead = report.on_wall_seconds / report.off_wall_seconds - 1.0;
  }
  return report;
}

Json telemetry_overhead_json(const TelemetryOverheadReport& report) {
  Json j = Json::object();
  j.set("scenario", report.scenario);
  j.set("cells", static_cast<std::int64_t>(report.cells));
  j.set("repeats", report.repeats);
  j.set("off_wall_seconds", report.off_wall_seconds);
  j.set("on_wall_seconds", report.on_wall_seconds);
  j.set("overhead", report.overhead);
  j.set("skew_identical", report.skew_identical);
  return j;
}

CheckpointOverheadReport run_checkpoint_overhead(const Scenario& scenario, int repeats,
                                                 const std::string& scratch_dir,
                                                 double every) {
  namespace fs = std::filesystem;
  GTRIX_CHECK_MSG(repeats >= 1, "perf repeats must be >= 1");
  GTRIX_CHECK_MSG(every > 0.0, "checkpoint interval must be positive");
  CheckpointOverheadReport report;
  report.scenario = scenario.name();
  report.repeats = repeats;
  report.every = every;
  const std::vector<ScenarioCell> cells = scenario.cells();
  report.cells = cells.size();

  fs::remove_all(scratch_dir);
  fs::create_directories(scratch_dir);
  CheckpointOptions ckpt;
  ckpt.dir = scratch_dir;
  ckpt.every = every;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> plain_best(cells.size(), kInf);
  std::vector<double> ckpt_best(cells.size(), kInf);
  std::vector<std::string> plain_digests;
  std::vector<std::string> ckpt_digests;
  double best_write_seconds = kInf;

  const auto plain_pass = [&] {
    std::vector<std::string> digests;
    digests.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto started = std::chrono::steady_clock::now();
      const ExperimentResult result = run_cell(cells[i].config, cells[i].corrupt);
      plain_best[i] = std::min(
          plain_best[i],
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
              .count());
      digests.push_back(skew_digest(result));
    }
    if (plain_digests.empty()) {
      plain_digests = std::move(digests);
    } else {
      GTRIX_CHECK(digests == plain_digests);
    }
  };
  const auto ckpt_pass = [&] {
    std::vector<std::string> digests;
    digests.reserve(cells.size());
    std::uint64_t written = 0;
    std::uint64_t bytes = 0;
    double write_seconds = 0.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto started = std::chrono::steady_clock::now();
      const ExperimentResult result =
          run_cell_checkpointed(cells[i].config, cells[i].corrupt, ckpt, i, cells[i].label);
      ckpt_best[i] = std::min(
          ckpt_best[i],
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
              .count());
      written += result.engine_stats.checkpoints_written;
      bytes += result.engine_stats.checkpoint_bytes;
      write_seconds += result.engine_stats.checkpoint_write_seconds;
      digests.push_back(skew_digest(result));
    }
    // Snapshot count and size are deterministic; only the timings vary.
    if (ckpt_digests.empty()) {
      ckpt_digests = std::move(digests);
      report.checkpoints_written = written;
      report.checkpoint_bytes = bytes;
    } else {
      GTRIX_CHECK(digests == ckpt_digests);
      GTRIX_CHECK(written == report.checkpoints_written);
      GTRIX_CHECK(bytes == report.checkpoint_bytes);
    }
    best_write_seconds = std::min(best_write_seconds, write_seconds);
  };

  for (int r = 0; r < repeats; ++r) {
    // Alternate mode order per repeat, like the engine comparison.
    if (r % 2 == 0) {
      plain_pass();
      ckpt_pass();
    } else {
      ckpt_pass();
      plain_pass();
    }
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    report.plain_wall_seconds += plain_best[i];
    report.ckpt_wall_seconds += ckpt_best[i];
  }
  report.checkpoint_write_seconds = best_write_seconds;
  if (report.plain_wall_seconds > 0.0) {
    report.overhead = report.ckpt_wall_seconds / report.plain_wall_seconds - 1.0;
  }

  // Resume pass: strip the done files so every cell actually restores from
  // its newest snapshot and re-runs the tail; the digests must still match.
  CheckpointOptions resume = ckpt;
  resume.resume = true;
  for (const auto& entry : fs::directory_iterator(scratch_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 10 && name.substr(name.size() - 10) == ".done.json") {
      fs::remove(entry.path());
    }
  }
  std::vector<std::string> resumed_digests;
  resumed_digests.reserve(cells.size());
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ExperimentResult result =
        run_cell_checkpointed(cells[i].config, cells[i].corrupt, resume, i, cells[i].label);
    report.checkpoints_restored += result.engine_stats.checkpoints_restored;
    report.checkpoint_restore_seconds += result.engine_stats.checkpoint_restore_seconds;
    resumed_digests.push_back(skew_digest(result));
  }
  report.restore_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();

  report.skew_identical =
      plain_digests == ckpt_digests && plain_digests == resumed_digests;
  fs::remove_all(scratch_dir);
  return report;
}

Json checkpoint_overhead_json(const CheckpointOverheadReport& report) {
  Json j = Json::object();
  j.set("scenario", report.scenario);
  j.set("cells", static_cast<std::int64_t>(report.cells));
  j.set("repeats", report.repeats);
  j.set("checkpoint_every", report.every);
  j.set("plain_wall_seconds", report.plain_wall_seconds);
  j.set("ckpt_wall_seconds", report.ckpt_wall_seconds);
  j.set("overhead", report.overhead);
  j.set("checkpoints_written", report.checkpoints_written);
  j.set("checkpoint_bytes", report.checkpoint_bytes);
  j.set("checkpoint_write_seconds", report.checkpoint_write_seconds);
  j.set("restore_wall_seconds", report.restore_wall_seconds);
  j.set("checkpoint_restore_seconds", report.checkpoint_restore_seconds);
  j.set("checkpoints_restored", report.checkpoints_restored);
  j.set("skew_identical", report.skew_identical);
  return j;
}

PerfScenarioReport check_perf_identity(const Scenario& scenario) {
  return run_both(scenario, 1);
}

Json perf_report_json(const std::vector<PerfScenarioReport>& reports) {
  Json doc = Json::object();
  doc.set("bench", std::string("bench_perf"));
  Json scenarios = Json::array();
  bool all_identical = true;
  for (const PerfScenarioReport& report : reports) {
    Json j = Json::object();
    j.set("scenario", report.scenario);
    j.set("cells", static_cast<std::int64_t>(report.cells));
    j.set("repeats", report.repeats);
    j.set("reference", engine_json(report.reference));
    j.set("optimized", engine_json(report.optimized));
    j.set("speedup", report.speedup);
    j.set("skew_identical", report.skew_identical);
    all_identical = all_identical && report.skew_identical;
    scenarios.push_back(std::move(j));
  }
  doc.set("scenarios", std::move(scenarios));
  doc.set("all_skew_identical", all_identical);
  return doc;
}

}  // namespace gtrix
