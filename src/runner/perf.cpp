#include "runner/perf.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "support/check.hpp"

namespace gtrix {

namespace {

/// Runs every cell of the scenario on `engine`, returning aggregate
/// counters, wall time and the per-cell skew digests. Cells run serially:
/// bench_perf measures single-thread engine throughput (parallel sweep
/// scaling is the SweepRunner's own, separately tested property).
struct EnginePass {
  PerfEngineStats stats;
  std::vector<std::string> digests;
};

EnginePass run_pass(const std::vector<ScenarioCell>& cells, EngineOptions engine) {
  EnginePass pass;
  pass.digests.reserve(cells.size());
  const auto started = std::chrono::steady_clock::now();
  for (const ScenarioCell& cell : cells) {
    const ExperimentResult result = run_cell(cell.config, cell.corrupt, engine);
    const ExperimentCounters& c = result.counters;
    pass.stats.events_executed += c.events_executed;
    pass.stats.messages_delivered += c.messages_delivered;
    pass.stats.logical_events += c.events_executed - c.delivery_events + c.messages_delivered;
    pass.digests.push_back(skew_digest(result));
  }
  pass.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return pass;
}

void finalize(PerfEngineStats& stats) {
  if (stats.wall_seconds > 0.0) {
    stats.events_per_sec = static_cast<double>(stats.logical_events) / stats.wall_seconds;
  }
}

PerfScenarioReport run_both(const Scenario& scenario, int repeats) {
  GTRIX_CHECK_MSG(repeats >= 1, "perf repeats must be >= 1");
  PerfScenarioReport report;
  report.scenario = scenario.name();
  report.repeats = repeats;
  const std::vector<ScenarioCell> cells = scenario.cells();
  report.cells = cells.size();

  EnginePass reference;
  EnginePass optimized;
  for (int r = 0; r < repeats; ++r) {
    // Alternate which engine runs first so neither systematically enjoys a
    // warmer allocator / cache / frequency state from the other's pass.
    EnginePass ref_pass;
    EnginePass opt_pass;
    if (r % 2 == 0) {
      ref_pass = run_pass(cells, EngineOptions::reference());
      opt_pass = run_pass(cells, EngineOptions{});
    } else {
      opt_pass = run_pass(cells, EngineOptions{});
      ref_pass = run_pass(cells, EngineOptions::reference());
    }
    if (r == 0) {
      reference = std::move(ref_pass);
      optimized = std::move(opt_pass);
      continue;
    }
    // Counters and digests are deterministic; only wall time varies.
    GTRIX_CHECK(ref_pass.digests == reference.digests);
    GTRIX_CHECK(opt_pass.digests == optimized.digests);
    reference.stats.wall_seconds =
        std::min(reference.stats.wall_seconds, ref_pass.stats.wall_seconds);
    optimized.stats.wall_seconds =
        std::min(optimized.stats.wall_seconds, opt_pass.stats.wall_seconds);
  }
  finalize(reference.stats);
  finalize(optimized.stats);
  report.reference = reference.stats;
  report.optimized = optimized.stats;
  report.skew_identical = reference.digests == optimized.digests;
  GTRIX_CHECK_MSG(
      reference.stats.logical_events == optimized.stats.logical_events,
      "logical event counts diverged between engines -- batching accounting bug");
  if (report.reference.events_per_sec > 0.0) {
    report.speedup = report.optimized.events_per_sec / report.reference.events_per_sec;
  }
  return report;
}

Json engine_json(const PerfEngineStats& stats) {
  Json j = Json::object();
  j.set("wall_seconds", stats.wall_seconds);
  j.set("events_executed", stats.events_executed);
  j.set("messages_delivered", stats.messages_delivered);
  j.set("logical_events", stats.logical_events);
  j.set("events_per_sec", stats.events_per_sec);
  return j;
}

}  // namespace

std::string skew_digest(const ExperimentResult& result) {
  const SkewReport& skew = result.skew;
  Json j = Json::object();
  j.set("max_intra", skew.max_intra);
  j.set("max_inter", skew.max_inter);
  j.set("local", skew.local_skew);
  j.set("global", skew.global_skew);
  j.set("sigma_lo", skew.sigma_lo);
  j.set("sigma_hi", skew.sigma_hi);
  j.set("pairs_checked", skew.pairs_checked);
  j.set("pairs_skipped", skew.pairs_skipped);
  Json by_layer = Json::array();
  for (const double v : skew.intra_by_layer) by_layer.push_back(v);
  j.set("intra_by_layer", std::move(by_layer));
  return j.dump();
}

PerfScenarioReport run_perf_scenario(const Scenario& scenario, int repeats) {
  return run_both(scenario, repeats);
}

TelemetryOverheadReport run_telemetry_overhead(const Scenario& scenario, int repeats) {
  GTRIX_CHECK_MSG(repeats >= 1, "perf repeats must be >= 1");
  TelemetryOverheadReport report;
  report.scenario = scenario.name();
  report.repeats = repeats;
  const std::vector<ScenarioCell> cells = scenario.cells();
  report.cells = cells.size();

  EngineOptions on_engine;
  on_engine.telemetry = true;

  // Per-CELL best-of-repeats, not best whole pass: a scheduler hiccup on a
  // shared CI runner lands inside one cell of one pass, and the per-cell
  // minimum filters it out instead of polluting an entire pass's total.
  // The summed minima estimate "both modes on their best behaviour", which
  // is exactly the comparison an overhead gate needs.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> off_best(cells.size(), kInf);
  std::vector<double> on_best(cells.size(), kInf);
  std::vector<std::string> off_digests;
  std::vector<std::string> on_digests;

  const auto timed_pass = [&](EngineOptions engine, std::vector<double>& best,
                              std::vector<std::string>& digests) {
    std::vector<std::string> pass_digests;
    pass_digests.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto started = std::chrono::steady_clock::now();
      const ExperimentResult result = run_cell(cells[i].config, cells[i].corrupt, engine);
      best[i] = std::min(
          best[i],
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
              .count());
      pass_digests.push_back(skew_digest(result));
    }
    if (digests.empty()) {
      digests = std::move(pass_digests);
    } else {
      GTRIX_CHECK(pass_digests == digests);
    }
  };

  for (int r = 0; r < repeats; ++r) {
    // Alternate mode order per repeat, like the engine comparison.
    if (r % 2 == 0) {
      timed_pass(EngineOptions{}, off_best, off_digests);
      timed_pass(on_engine, on_best, on_digests);
    } else {
      timed_pass(on_engine, on_best, on_digests);
      timed_pass(EngineOptions{}, off_best, off_digests);
    }
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    report.off_wall_seconds += off_best[i];
    report.on_wall_seconds += on_best[i];
  }
  report.skew_identical = off_digests == on_digests;
  if (report.off_wall_seconds > 0.0) {
    report.overhead = report.on_wall_seconds / report.off_wall_seconds - 1.0;
  }
  return report;
}

Json telemetry_overhead_json(const TelemetryOverheadReport& report) {
  Json j = Json::object();
  j.set("scenario", report.scenario);
  j.set("cells", static_cast<std::int64_t>(report.cells));
  j.set("repeats", report.repeats);
  j.set("off_wall_seconds", report.off_wall_seconds);
  j.set("on_wall_seconds", report.on_wall_seconds);
  j.set("overhead", report.overhead);
  j.set("skew_identical", report.skew_identical);
  return j;
}

PerfScenarioReport check_perf_identity(const Scenario& scenario) {
  return run_both(scenario, 1);
}

Json perf_report_json(const std::vector<PerfScenarioReport>& reports) {
  Json doc = Json::object();
  doc.set("bench", std::string("bench_perf"));
  Json scenarios = Json::array();
  bool all_identical = true;
  for (const PerfScenarioReport& report : reports) {
    Json j = Json::object();
    j.set("scenario", report.scenario);
    j.set("cells", static_cast<std::int64_t>(report.cells));
    j.set("repeats", report.repeats);
    j.set("reference", engine_json(report.reference));
    j.set("optimized", engine_json(report.optimized));
    j.set("speedup", report.speedup);
    j.set("skew_identical", report.skew_identical);
    all_identical = all_identical && report.skew_identical;
    scenarios.push_back(std::move(j));
  }
  doc.set("scenarios", std::move(scenarios));
  doc.set("all_skew_identical", all_identical);
  return doc;
}

}  // namespace gtrix
