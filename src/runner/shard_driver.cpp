#include "runner/shard_driver.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstddef>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace gtrix {

namespace {

/// What the barrier completion decided the workers should do next.
enum class WindowKind : std::uint8_t {
  kRunBefore,  ///< run events strictly below `horizon`
  kRunUntil,   ///< final window: run events <= `horizon` (the deadline)
  kDrain,      ///< no cross-shard edges: run each shard to completion
  kStop,
};

struct WindowPlan {
  WindowKind kind = WindowKind::kStop;
  SimTime horizon = 0.0;
};

const char* window_span_name(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRunBefore: return "window";
    case WindowKind::kRunUntil: return "window-final";
    case WindowKind::kDrain: return "drain";
    case WindowKind::kStop: break;
  }
  return "stop";
}

}  // namespace

void ShardDriver::run(SimTime deadline) {
  const std::size_t shards = sims_.size();
  GTRIX_CHECK_MSG(shards >= 2, "ShardDriver requires at least two shards");
  const SimTime lookahead = net_.cross_shard_lookahead();
  GTRIX_CHECK_MSG(lookahead > 0.0, "cross-shard lookahead must be positive");

  WindowPlan plan;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Serial section between windows: runs on exactly one thread while every
  // worker waits at the barrier, so it may touch all shards' state.
  auto completion = [&]() noexcept {
    try {
      if (failed.load(std::memory_order_acquire)) {
        plan = WindowPlan{WindowKind::kStop, 0.0};
        return;
      }
      merge_shard_records(recorder_, shard_recorders_);
      // Hand the window's cross-shard sends over to the receivers: only here,
      // with every worker parked at the barrier, is it safe to move them out
      // of the send-side cells (workers drain the published buffer while the
      // NEXT window's sends are already appending).
      net_.publish_mailboxes();
      SimTime gmin = net_.earliest_mailbox_time();
      for (Simulator* sim : sims_) gmin = std::min(gmin, sim->next_event_time());
      if (gmin > deadline || gmin == kTimeInfinity) {
        plan = WindowPlan{WindowKind::kStop, 0.0};
        return;
      }
      const SimTime horizon = gmin + lookahead;  // infinite if no cross edges
      if (horizon == kTimeInfinity && deadline == kTimeInfinity) {
        plan = WindowPlan{WindowKind::kDrain, 0.0};
      } else if (horizon > deadline) {
        // Final window, inclusive: anything sent in it arrives after the
        // deadline (gmin + L > deadline) and stays parked.
        plan = WindowPlan{WindowKind::kRunUntil, deadline};
      } else {
        plan = WindowPlan{WindowKind::kRunBefore, horizon};
      }
    } catch (...) {
      // merge_shard_records can only throw via Recorder checks; surface the
      // error instead of terminating (the completion must be noexcept).
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_release);
      plan = WindowPlan{WindowKind::kStop, 0.0};
    }
  };

  std::barrier barrier(static_cast<std::ptrdiff_t>(shards), completion);

  auto worker = [&](std::size_t shard) {
    Simulator& sim = *sims_[shard];
    Telemetry::Lane* lane =
        obs_.telemetry != nullptr ? &obs_.telemetry->lane(static_cast<std::uint32_t>(shard))
                                  : nullptr;
    TraceCollector* trace = obs_.trace;
    // Timing is one branch + at most three clock reads per WINDOW (windows
    // are milliseconds of work); with no observers attached the loop below
    // is the untimed pre-telemetry loop.
    const bool timed = lane != nullptr || trace != nullptr;
    using Clock = std::chrono::steady_clock;
    while (true) {
      Clock::time_point t_arrive{};
      if (timed) t_arrive = Clock::now();
      barrier.arrive_and_wait();
      if (plan.kind == WindowKind::kStop) return;
      Clock::time_point t_start{};
      std::uint64_t executed_before = 0;
      const WindowKind kind = plan.kind;
      if (timed) {
        t_start = Clock::now();
        executed_before = sim.executed_events();
      }
      try {
        net_.drain_mailbox(static_cast<std::uint32_t>(shard));
        switch (plan.kind) {
          case WindowKind::kRunBefore:
            sim.run_before(plan.horizon);
            break;
          case WindowKind::kRunUntil:
            sim.run_until(plan.horizon);
            break;
          case WindowKind::kDrain:
            sim.run_all();
            break;
          case WindowKind::kStop:
            break;
        }
        // Sort this shard's trace buffer here, in parallel, so the serial
        // completion only merges pre-sorted runs.
        shard_recorders_[shard]->sort_window();
      } catch (...) {
        // Keep arriving at the barrier so the other workers don't deadlock;
        // the completion sees `failed` and stops everyone.
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
      if (timed) {
        const Clock::time_point t_end = Clock::now();
        const std::uint64_t executed = sim.executed_events() - executed_before;
        if (lane != nullptr) {
          ++lane->windows;
          lane->window_events.add(executed);
          lane->barrier_wait_seconds +=
              std::chrono::duration<double>(t_start - t_arrive).count();
          lane->busy_seconds += std::chrono::duration<double>(t_end - t_start).count();
        }
        if (trace != nullptr) {
          const std::uint32_t tid = static_cast<std::uint32_t>(shard);
          trace->add_complete(obs_.trace_pid, tid, "barrier", trace->us_at(t_arrive),
                              trace->us_at(t_start) - trace->us_at(t_arrive));
          trace->add_complete(obs_.trace_pid, tid, window_span_name(kind),
                              trace->us_at(t_start),
                              trace->us_at(t_end) - trace->us_at(t_start),
                              static_cast<std::int64_t>(executed));
        }
      }
    }
  };

  if (obs_.trace != nullptr) {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      obs_.trace->set_thread_name(obs_.trace_pid, static_cast<std::uint32_t>(shard),
                                  "shard " + std::to_string(shard));
    }
  }

  {
    std::vector<std::jthread> threads;
    threads.reserve(shards);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      threads.emplace_back(worker, shard);
    }
  }  // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
  if (deadline != kTimeInfinity) {
    // run_until semantics: every shard's clock ends at the deadline even if
    // its events ran dry earlier, so follow-up scheduling is relative to it.
    for (Simulator* sim : sims_) sim->advance_to(deadline);
  }
}

}  // namespace gtrix
