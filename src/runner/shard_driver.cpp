#include "runner/shard_driver.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace gtrix {

namespace {

/// What the barrier completion decided the workers should do next.
enum class WindowKind : std::uint8_t {
  kRunBefore,  ///< run events strictly below `horizon`
  kRunUntil,   ///< final window: run events <= `horizon` (the deadline)
  kDrain,      ///< no cross-shard edges: run each shard to completion
  kStop,
};

struct WindowPlan {
  WindowKind kind = WindowKind::kStop;
  SimTime horizon = 0.0;
};

}  // namespace

void ShardDriver::run(SimTime deadline) {
  const std::size_t shards = sims_.size();
  GTRIX_CHECK_MSG(shards >= 2, "ShardDriver requires at least two shards");
  const SimTime lookahead = net_.cross_shard_lookahead();
  GTRIX_CHECK_MSG(lookahead > 0.0, "cross-shard lookahead must be positive");

  WindowPlan plan;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Serial section between windows: runs on exactly one thread while every
  // worker waits at the barrier, so it may touch all shards' state.
  auto completion = [&]() noexcept {
    try {
      if (failed.load(std::memory_order_acquire)) {
        plan = WindowPlan{WindowKind::kStop, 0.0};
        return;
      }
      merge_shard_records(recorder_, shard_recorders_);
      // Hand the window's cross-shard sends over to the receivers: only here,
      // with every worker parked at the barrier, is it safe to move them out
      // of the send-side cells (workers drain the published buffer while the
      // NEXT window's sends are already appending).
      net_.publish_mailboxes();
      SimTime gmin = net_.earliest_mailbox_time();
      for (Simulator* sim : sims_) gmin = std::min(gmin, sim->next_event_time());
      if (gmin > deadline || gmin == kTimeInfinity) {
        plan = WindowPlan{WindowKind::kStop, 0.0};
        return;
      }
      const SimTime horizon = gmin + lookahead;  // infinite if no cross edges
      if (horizon == kTimeInfinity && deadline == kTimeInfinity) {
        plan = WindowPlan{WindowKind::kDrain, 0.0};
      } else if (horizon > deadline) {
        // Final window, inclusive: anything sent in it arrives after the
        // deadline (gmin + L > deadline) and stays parked.
        plan = WindowPlan{WindowKind::kRunUntil, deadline};
      } else {
        plan = WindowPlan{WindowKind::kRunBefore, horizon};
      }
    } catch (...) {
      // merge_shard_records can only throw via Recorder checks; surface the
      // error instead of terminating (the completion must be noexcept).
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_release);
      plan = WindowPlan{WindowKind::kStop, 0.0};
    }
  };

  std::barrier barrier(static_cast<std::ptrdiff_t>(shards), completion);

  auto worker = [&](std::size_t shard) {
    Simulator& sim = *sims_[shard];
    while (true) {
      barrier.arrive_and_wait();
      if (plan.kind == WindowKind::kStop) return;
      try {
        net_.drain_mailbox(static_cast<std::uint32_t>(shard));
        switch (plan.kind) {
          case WindowKind::kRunBefore:
            sim.run_before(plan.horizon);
            break;
          case WindowKind::kRunUntil:
            sim.run_until(plan.horizon);
            break;
          case WindowKind::kDrain:
            sim.run_all();
            break;
          case WindowKind::kStop:
            break;
        }
        // Sort this shard's trace buffer here, in parallel, so the serial
        // completion only merges pre-sorted runs.
        shard_recorders_[shard]->sort_window();
      } catch (...) {
        // Keep arriving at the barrier so the other workers don't deadlock;
        // the completion sees `failed` and stops everyone.
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    }
  };

  {
    std::vector<std::jthread> threads;
    threads.reserve(shards);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      threads.emplace_back(worker, shard);
    }
  }  // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
  if (deadline != kTimeInfinity) {
    // run_until semantics: every shard's clock ends at the deadline even if
    // its events ran dry earlier, so follow-up scheduling is relative to it.
    for (Simulator* sim : sims_) sim->advance_to(deadline);
  }
}

}  // namespace gtrix
