// Conservative time-window driver for sharded runs (docs/performance.md,
// "Sharded execution").
//
// The synchronization scheme is the classic conservative-lookahead argument
// (PALS / TRIX, PAPERS.md): let L = Network::cross_shard_lookahead(), the
// minimum static delay over shard-crossing edges. A message sent at time t
// reaches another shard no earlier than t + L, so if gmin is the global
// minimum pending timestamp (queues AND parked mailbox envelopes), every
// shard may execute all its events in the window [gmin, gmin + L) without
// ever receiving a message that should have landed inside it. The loop:
//
//   barrier (serial completion):  merge per-shard trace buffers into the
//       true Recorder; gmin = min over shard queues + mailboxes; stop when
//       gmin > deadline, else horizon = gmin + L (clamped to the inclusive
//       deadline for the final window);
//   workers (parallel):           drain own mailbox in deterministic
//       (arrival, from, edge) order, then run events strictly below the
//       horizon (or <= deadline in the final window).
//
// Progress: L > 0 (edge delays are positive), so the gmin event itself is
// always inside its window -- every window executes at least one event.
// Safety of the final inclusive window: it only happens when gmin + L >
// deadline, so messages sent in it arrive strictly after the deadline and
// stay parked for the next run_until call.
#pragma once

#include <cstdint>
#include <span>

#include "metrics/shard_recorder.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gtrix {

class Telemetry;
class TraceCollector;

/// Optional observers for a sharded run (obs/telemetry.hpp). Both pointers
/// are non-owning and may be null independently; with both null the driver
/// performs no timing work at all -- the instrumentation is one
/// predictable branch per WINDOW, never per event.
struct ShardDriverObs {
  Telemetry* telemetry = nullptr;  ///< lane s <- shard s's window/wait stats
  TraceCollector* trace = nullptr; ///< window/barrier spans on (trace_pid, shard)
  std::uint32_t trace_pid = 0;
};

class ShardDriver {
 public:
  /// All spans are non-owning and must stay alive across run() calls.
  /// `sims[s]`, `shard_recorders[s]` belong to shard s; `recorder` is the
  /// true single-threaded Recorder the buffers merge into.
  ShardDriver(std::span<Simulator* const> sims, Network& net, Recorder& recorder,
              std::span<ShardRecorder* const> shard_recorders,
              ShardDriverObs obs = {})
      : sims_(sims),
        net_(net),
        recorder_(recorder),
        shard_recorders_(shard_recorders),
        obs_(obs) {}

  /// Runs every shard up to and including `deadline` (run_until semantics:
  /// afterwards each shard's now() == deadline, when finite) or to
  /// completion (deadline == kTimeInfinity). Callable repeatedly; messages
  /// still parked in mailboxes at the deadline carry over to the next call.
  void run(SimTime deadline);

 private:
  std::span<Simulator* const> sims_;
  Network& net_;
  Recorder& recorder_;
  std::span<ShardRecorder* const> shard_recorders_;
  ShardDriverObs obs_;
};

}  // namespace gtrix
