// Parallel experiment sweep execution.
//
// Parameter sweeps run thousands of independent discrete-event simulations
// (grid sizes x seeds x fault plans). Each experiment owns its Simulator,
// Network and Recorder, so a sweep is embarrassingly parallel: SweepRunner
// fans the configs across a pool of std::thread workers pulling from a
// shared atomic cursor, and writes each result into the slot matching its
// input index.
//
// Determinism: every experiment derives all randomness from its own config
// seed and shares no mutable state with its siblings, so per-config results
// are bit-identical no matter how many workers run the sweep or how the
// configs interleave (test_sweep.cpp asserts 1 thread == N threads).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runner/experiment.hpp"

namespace gtrix {

/// Invokes fn(i) for every i in [0, n), fanned across `threads` workers
/// (0 = hardware concurrency). fn must confine its writes to caller-owned
/// slot i. The first exception thrown by any worker is rethrown on the
/// calling thread after all workers have joined.
void parallel_for_index(std::size_t n, unsigned threads,
                        const std::function<void(std::size_t)>& fn);

struct SweepOptions {
  /// Worker threads; 0 resolves to std::thread::hardware_concurrency().
  unsigned threads = 0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs every config through run_experiment(); results are returned in
  /// input order regardless of completion order.
  std::vector<ExperimentResult> run(const std::vector<ExperimentConfig>& configs) const;

  /// Same fan-out with a custom per-config experiment body. `fn` is called
  /// concurrently from worker threads and must not touch shared mutable
  /// state (it receives the config by const reference and its input index).
  std::vector<ExperimentResult> run(
      const std::vector<ExperimentConfig>& configs,
      const std::function<ExperimentResult(const ExperimentConfig&, std::size_t)>& fn) const;

  /// The resolved worker count a run() call will use.
  unsigned thread_count() const noexcept { return threads_; }

 private:
  unsigned threads_;
};

}  // namespace gtrix
