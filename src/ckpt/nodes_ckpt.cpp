// Member checkpoint functions for every node class: the algorithm nodes
// (gradient, naive TRIX, Lynch-Welch), the layer-0 line node and the fault
// behaviours. Each serializes its arena registers through its own
// accessors, so the same code covers World-owned arenas and the private
// fallback arenas of standalone nodes. Timer handles are stored verbatim:
// the event-queue snapshot preserves slot indices and generations, so a
// restored handle refers to exactly the event it did at save time.
#include "baseline/lw_grid.hpp"
#include "baseline/trix_node.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/detail.hpp"
#include "core/gradient_node.hpp"
#include "core/layer0.hpp"
#include "core/node_state.hpp"
#include "fault/behaviors.hpp"

namespace gtrix {

namespace {

void check_slots(std::uint64_t saved, std::size_t now, const char* who) {
  if (saved != now) {
    throw CkptError(std::string("checkpoint ") + who + " node has " + std::to_string(saved) +
                    " predecessor slot(s), this configuration has " + std::to_string(now));
  }
}

}  // namespace

// --- GradientTrixNode --------------------------------------------------------

void GradientTrixNode::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(GradientTrixNode, 480);
  GTRIX_CKPT_FIELDS(PendingMsg, 3);
  GTRIX_CKPT_FIELDS(Counters, 8);
  w.u8(soa_->phase[i_]);
  w.f64(h_own());
  w.f64(h_min());
  w.f64(h_max());
  w.i64(last_sigma());
  ckpt::write_timer(w, soa_->until_timer[i_]);
  ckpt::write_timer(w, soa_->broadcast_timer[i_]);
  ckpt::write_timer(w, soa_->watchdog_timer[i_]);
  w.u64(preds_.size());
  for (std::size_t s = 0; s < preds_.size(); ++s) {
    w.u8(r(s));
    w.u8(seen(s));
    w.i64(slot_sigma(s));
  }
  w.u64(pending_.size());
  for (const PendingMsg& m : pending_) {
    w.u32(m.from);
    w.f64(m.h_arrival);
    w.i64(m.sigma);
  }
  ckpt::write_iteration(w, staged_record_);
  w.u64(counters_.iterations);
  w.u64(counters_.late_broadcasts);
  w.u64(counters_.guard_aborts);
  w.u64(counters_.watchdog_resets);
  w.u64(counters_.duplicate_drops);
  w.u64(counters_.pending_overflow);
  w.u64(counters_.timeout_branches);
  w.u64(counters_.late_absorbed);
}

void GradientTrixNode::checkpoint_restore(CkptCursor& cur) {
  soa_->phase[i_] = cur.u8();
  h_own() = cur.f64();
  h_min() = cur.f64();
  h_max() = cur.f64();
  last_sigma() = cur.i64();
  soa_->until_timer[i_] = ckpt::read_timer(cur);
  soa_->broadcast_timer[i_] = ckpt::read_timer(cur);
  soa_->watchdog_timer[i_] = ckpt::read_timer(cur);
  check_slots(cur.u64(), preds_.size(), "gradient");
  for (std::size_t s = 0; s < preds_.size(); ++s) {
    r(s) = cur.u8();
    seen(s) = cur.u8();
    slot_sigma(s) = cur.i64();
  }
  pending_.clear();
  const std::uint64_t npending = cur.u64();
  for (std::uint64_t i = 0; i < npending; ++i) {
    PendingMsg m;
    m.from = cur.u32();
    m.h_arrival = cur.f64();
    m.sigma = cur.i64();
    pending_.push_back(m);
  }
  staged_record_ = ckpt::read_iteration(cur);
  counters_.iterations = cur.u64();
  counters_.late_broadcasts = cur.u64();
  counters_.guard_aborts = cur.u64();
  counters_.watchdog_resets = cur.u64();
  counters_.duplicate_drops = cur.u64();
  counters_.pending_overflow = cur.u64();
  counters_.timeout_branches = cur.u64();
  counters_.late_absorbed = cur.u64();
}

// --- Layer0LineNode ----------------------------------------------------------

void Layer0LineNode::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(Layer0LineNode, 144);
  w.f64(soa_->stored_h[i_]);
  w.i64(soa_->out_sigma[i_]);
  ckpt::write_timer(w, soa_->broadcast_timer[i_]);
  w.u64(forwarded_);
}

void Layer0LineNode::checkpoint_restore(CkptCursor& cur) {
  soa_->stored_h[i_] = cur.f64();
  soa_->out_sigma[i_] = cur.i64();
  soa_->broadcast_timer[i_] = ckpt::read_timer(cur);
  forwarded_ = cur.u64();
}

// --- TrixNaiveNode -----------------------------------------------------------

void TrixNaiveNode::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(TrixNaiveNode, 240);
  GTRIX_CKPT_FIELDS(PendingMsg, 3);
  w.u8(soa_->armed[i_]);
  w.u32(soa_->seen_count[i_]);
  ckpt::write_timer(w, soa_->fire_timer[i_]);
  w.u64(preds_.size());
  for (std::size_t s = 0; s < preds_.size(); ++s) {
    w.u8(seen(s));
    w.i64(slot_sigma(s));
  }
  w.u64(pending_.size());
  for (const PendingMsg& m : pending_) {
    w.u32(m.from);
    w.f64(m.h_arrival);
    w.i64(m.sigma);
  }
  w.u64(forwarded_);
}

void TrixNaiveNode::checkpoint_restore(CkptCursor& cur) {
  soa_->armed[i_] = cur.u8();
  soa_->seen_count[i_] = cur.u32();
  soa_->fire_timer[i_] = ckpt::read_timer(cur);
  check_slots(cur.u64(), preds_.size(), "trix-naive");
  for (std::size_t s = 0; s < preds_.size(); ++s) {
    seen(s) = cur.u8();
    slot_sigma(s) = cur.i64();
  }
  pending_.clear();
  const std::uint64_t npending = cur.u64();
  for (std::uint64_t i = 0; i < npending; ++i) {
    PendingMsg m;
    m.from = cur.u32();
    m.h_arrival = cur.f64();
    m.sigma = cur.i64();
    pending_.push_back(m);
  }
  forwarded_ = cur.u64();
}

// --- LynchWelchGridNode ------------------------------------------------------

void LynchWelchGridNode::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(LynchWelchGridNode, 248);
  GTRIX_CKPT_FIELDS(PendingMsg, 3);
  w.u32(soa_->seen_count[i_]);
  ckpt::write_timer(w, soa_->fire_timer[i_]);
  w.u64(preds_.size());
  for (std::size_t s = 0; s < preds_.size(); ++s) {
    w.u8(seen(s));
    w.f64(soa_->slot_arrival[slot_base_ + s]);
    w.i64(slot_sigma(s));
  }
  w.u64(pending_.size());
  for (const PendingMsg& m : pending_) {
    w.u32(m.from);
    w.f64(m.h_arrival);
    w.i64(m.sigma);
  }
  w.u64(forwarded_);
}

void LynchWelchGridNode::checkpoint_restore(CkptCursor& cur) {
  soa_->seen_count[i_] = cur.u32();
  soa_->fire_timer[i_] = ckpt::read_timer(cur);
  check_slots(cur.u64(), preds_.size(), "lynch-welch");
  for (std::size_t s = 0; s < preds_.size(); ++s) {
    seen(s) = cur.u8();
    soa_->slot_arrival[slot_base_ + s] = cur.f64();
    slot_sigma(s) = cur.i64();
  }
  pending_.clear();
  const std::uint64_t npending = cur.u64();
  for (std::uint64_t i = 0; i < npending; ++i) {
    PendingMsg m;
    m.from = cur.u32();
    m.h_arrival = cur.f64();
    m.sigma = cur.i64();
    pending_.push_back(m);
  }
  forwarded_ = cur.u64();
}

// --- fault behaviours --------------------------------------------------------

void FixedPeriodRogue::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(FixedPeriodRogue, 88);
  w.i64(sigma_);
  w.u64(emitted_);
}

void FixedPeriodRogue::checkpoint_restore(CkptCursor& cur) {
  sigma_ = cur.i64();
  emitted_ = cur.u64();
}

void CrashSink::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(CrashSink, 16);
  w.u64(absorbed_);
}

void CrashSink::checkpoint_restore(CkptCursor& cur) { absorbed_ = cur.u64(); }

}  // namespace gtrix
