#include "ckpt/codec.hpp"

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "support/check.hpp"

namespace gtrix {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::uint32_t ckpt_crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

// --- CkptWriter --------------------------------------------------------------

void CkptWriter::begin_section(std::string_view name) {
  GTRIX_CHECK_MSG(!section_open_, "nested checkpoint sections");
  put_u32(body_, static_cast<std::uint32_t>(name.size()));
  body_.insert(body_.end(), name.begin(), name.end());
  open_len_at_ = body_.size();
  put_u64(body_, 0);  // patched by end_section
  section_open_ = true;
}

void CkptWriter::end_section() {
  GTRIX_CHECK_MSG(section_open_, "end_section without begin_section");
  const std::uint64_t len = body_.size() - open_len_at_ - 8;
  for (int i = 0; i < 8; ++i)
    body_[open_len_at_ + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  section_open_ = false;
}

void CkptWriter::u8(std::uint8_t v) { body_.push_back(v); }
void CkptWriter::u32(std::uint32_t v) { put_u32(body_, v); }
void CkptWriter::u64(std::uint64_t v) { put_u64(body_, v); }
void CkptWriter::i64(std::int64_t v) { put_u64(body_, static_cast<std::uint64_t>(v)); }
void CkptWriter::f64(double v) { put_u64(body_, std::bit_cast<std::uint64_t>(v)); }

void CkptWriter::str(std::string_view s) {
  put_u64(body_, s.size());
  body_.insert(body_.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> CkptWriter::finish(std::string_view header_json) const {
  GTRIX_CHECK_MSG(!section_open_, "finish with an open checkpoint section");
  std::vector<std::uint8_t> out;
  out.reserve(kCkptMagic.size() + 8 + header_json.size() + body_.size() + 4);
  out.insert(out.end(), kCkptMagic.begin(), kCkptMagic.end());
  put_u32(out, kCkptFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(header_json.size()));
  out.insert(out.end(), header_json.begin(), header_json.end());
  out.insert(out.end(), body_.begin(), body_.end());
  put_u32(out, ckpt_crc32(out.data(), out.size()));
  return out;
}

// --- CkptCursor --------------------------------------------------------------

void CkptCursor::need(std::size_t n) const {
  if (static_cast<std::size_t>(end_ - p_) < n) {
    throw CkptError("truncated checkpoint section '" + name_ + "'");
  }
}

std::uint8_t CkptCursor::u8() {
  need(1);
  return *p_++;
}

std::uint32_t CkptCursor::u32() {
  need(4);
  const std::uint32_t v = get_u32(p_);
  p_ += 4;
  return v;
}

std::uint64_t CkptCursor::u64() {
  need(8);
  const std::uint64_t v = get_u64(p_);
  p_ += 8;
  return v;
}

std::int64_t CkptCursor::i64() { return static_cast<std::int64_t>(u64()); }

double CkptCursor::f64() { return std::bit_cast<double>(u64()); }

std::string CkptCursor::str() {
  const std::uint64_t n = u64();
  need(n);
  // gtrix-lint: allow(reinterpret-cast) -- uint8_t* to char* for string construction: char may alias any object, and p_ points at live buffer bytes
  std::string s(reinterpret_cast<const char*>(p_), n);
  p_ += n;
  return s;
}

void CkptCursor::expect_done() const {
  if (!done()) {
    throw CkptError("checkpoint section '" + name_ + "' has trailing bytes (corrupt file)");
  }
}

// --- CkptFile ----------------------------------------------------------------

CkptFile CkptFile::parse(std::vector<std::uint8_t> bytes, const std::string& path) {
  CkptFile file;
  file.bytes_ = std::move(bytes);
  file.path_ = path;
  const std::vector<std::uint8_t>& b = file.bytes_;
  const std::size_t min_size = kCkptMagic.size() + 4 + 4 + 4;  // magic ver hlen crc
  if (b.size() < min_size ||
      std::memcmp(b.data(), kCkptMagic.data(), kCkptMagic.size()) != 0) {
    throw CkptError(path + ": not a gtrix checkpoint (bad magic)");
  }
  std::size_t at = kCkptMagic.size();
  file.version_ = get_u32(b.data() + at);
  at += 4;
  if (file.version_ != kCkptFormatVersion) {
    throw CkptError(path + ": checkpoint format version " + std::to_string(file.version_) +
                    " is not supported (this build reads version " +
                    std::to_string(kCkptFormatVersion) + ")");
  }
  // CRC first: every later framing error on a CRC-clean file is a real
  // format bug, not bit rot.
  const std::uint32_t stored_crc = get_u32(b.data() + b.size() - 4);
  const std::uint32_t actual_crc = ckpt_crc32(b.data(), b.size() - 4);
  if (stored_crc != actual_crc) {
    throw CkptError(path + ": checkpoint CRC mismatch (truncated or corrupt file)");
  }
  const std::size_t body_end = b.size() - 4;
  const std::uint32_t header_len = get_u32(b.data() + at);
  at += 4;
  if (body_end - at < header_len) {
    throw CkptError(path + ": truncated checkpoint (header extends past end of file)");
  }
  // gtrix-lint: allow(reinterpret-cast) -- uint8_t* to char* over the vector's own live bytes; char-level access is defined for any object type
  file.header_.assign(reinterpret_cast<const char*>(b.data() + at), header_len);
  at += header_len;
  while (at < body_end) {
    if (body_end - at < 4) throw CkptError(path + ": truncated checkpoint section table");
    const std::uint32_t name_len = get_u32(b.data() + at);
    at += 4;
    if (body_end - at < name_len) {
      throw CkptError(path + ": truncated checkpoint section name");
    }
    Section section;
    // gtrix-lint: allow(reinterpret-cast) -- same uint8_t* to char* aliasing as the header read above; no alignment or lifetime hazard
    section.name.assign(reinterpret_cast<const char*>(b.data() + at), name_len);
    at += name_len;
    if (body_end - at < 8) throw CkptError(path + ": truncated checkpoint section length");
    const std::uint64_t body_len = get_u64(b.data() + at);
    at += 8;
    if (body_end - at < body_len) {
      throw CkptError(path + ": truncated checkpoint section '" + section.name + "'");
    }
    section.offset = at;
    section.len = body_len;
    at += body_len;
    file.sections_.push_back(std::move(section));
  }
  return file;
}

bool CkptFile::has_section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

CkptCursor CkptFile::section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) {
      return CkptCursor(bytes_.data() + s.offset, bytes_.data() + s.offset + s.len, s.name);
    }
  }
  throw CkptError(path_ + ": checkpoint has no section '" + std::string(name) +
                  "' (corrupt or incompatible file)");
}

// --- file I/O ----------------------------------------------------------------

std::vector<std::uint8_t> ckpt_read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CkptError(path + ": cannot open checkpoint: " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> chunk;
  std::size_t n;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    bytes.insert(bytes.end(), chunk.data(), chunk.data() + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw CkptError(path + ": read error");
  return bytes;
}

void ckpt_write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw CkptError(tmp + ": cannot create checkpoint: " + std::strerror(errno));
  }
  const bool wrote = bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  // fflush moves the stdio buffer into the kernel; fsync moves the kernel's
  // copy to the device. Without the latter the rename can land while the data
  // blocks are still dirty, and a crash leaves a named-but-empty checkpoint --
  // exactly the torn file the tmp+rename dance promises to rule out.
  const bool flushed = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  const bool synced = flushed && fsync(fileno(f)) == 0;
#else
  const bool synced = flushed;
#endif
  std::fclose(f);
  if (!wrote || !flushed || !synced) {
    std::remove(tmp.c_str());
    throw CkptError(tmp + ": short write while saving checkpoint");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CkptError(path + ": cannot move checkpoint into place: " + std::strerror(errno));
  }
}

// --- CkptTargetMap -----------------------------------------------------------

void CkptTargetMap::add(TimerTarget* target) {
  GTRIX_CHECK_MSG(target != nullptr, "null checkpoint target");
  const auto [it, inserted] =
      ids_.emplace(target, static_cast<std::uint32_t>(targets_.size()));
  GTRIX_CHECK_MSG(inserted, "duplicate checkpoint target");
  targets_.push_back(target);
}

std::uint32_t CkptTargetMap::id_of(const TimerTarget* target) const {
  const auto it = ids_.find(target);
  if (it == ids_.end()) {
    throw CkptError(
        "pending event targets an object outside the checkpoint target map "
        "(the algorithm or a custom component does not support checkpointing)");
  }
  return it->second;
}

TimerTarget* CkptTargetMap::target_of(std::uint32_t id) const {
  if (id >= targets_.size()) {
    throw CkptError("checkpoint event target id " + std::to_string(id) +
                    " out of range (corrupt file or mismatched config)");
  }
  return targets_[id];
}

}  // namespace gtrix
