// Checkpoint container format (docs/checkpointing.md).
//
// A checkpoint is a single binary file:
//
//   magic "GTRXCKPT" (8 bytes)
//   u32  format version (kCkptFormatVersion)
//   u32  header length
//   JSON header (UTF-8, human-readable: tools/ckpt_inspect.py dumps it)
//   sections: { u32 name length | name | u64 body length | body } ...
//   u32  CRC-32 over every preceding byte (zlib polynomial, so Python's
//        zlib.crc32 verifies it without any native code)
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern (bit_cast), so NaN payloads -- the recorder's missing-pulse
// sentinel -- survive the round trip exactly. The header carries the full
// experiment config and the engine fingerprint; the sections carry raw
// mutable state only. Restore rebuilds a fresh World from the header's
// config (construction is deterministic) and overwrites its mutable state
// from the sections, so anything derivable from the config -- topology,
// edge delays, clock parameters, RNG split structure -- is never stored.
//
// Versioning is hard: a mismatched version, bad magic, truncated file or
// CRC failure throws CkptError with a path-qualified message; callers map
// it to exit code 2 (validation), never to undefined behavior.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gtrix {

class TimerTarget;

inline constexpr std::string_view kCkptMagic = "GTRXCKPT";
// v2: recorder corruption-anchored retention state (pin box, early list,
// lost ranges) and the streaming suppression counter.
inline constexpr std::uint32_t kCkptFormatVersion = 2;

/// Any checkpoint failure: unreadable/corrupt/truncated files, version
/// mismatches, snapshot/config mismatches. Messages are path-qualified by
/// the I/O layer.
class CkptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (zlib polynomial 0xEDB88320, init/final xor 0xffffffff), chosen so
/// ckpt_inspect.py can verify files with the stdlib's zlib.crc32.
std::uint32_t ckpt_crc32(const std::uint8_t* data, std::size_t n);

/// Serializer for the section region. Primitives append little-endian;
/// begin_section/end_section frame named sections, finish() assembles the
/// whole file image (magic, version, header, sections, CRC).
class CkptWriter {
 public:
  void begin_section(std::string_view name);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);  ///< IEEE-754 bit pattern; NaN payloads preserved
  void str(std::string_view s);

  /// Assembles the complete file image. `header_json` is stored verbatim.
  std::vector<std::uint8_t> finish(std::string_view header_json) const;

 private:
  std::vector<std::uint8_t> body_;
  std::size_t open_len_at_ = 0;  ///< offset of the open section's length field
  bool section_open_ = false;
};

/// Bounds-checked reader over one section's body. Every primitive throws
/// CkptError("truncated checkpoint section ...") instead of reading past
/// the end; expect_done() catches trailing garbage.
class CkptCursor {
 public:
  CkptCursor(const std::uint8_t* begin, const std::uint8_t* end, std::string name)
      : p_(begin), end_(end), name_(std::move(name)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();

  bool done() const noexcept { return p_ == end_; }
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  std::string name_;
};

/// A parsed checkpoint file: validated container (magic, version, CRC,
/// section framing) with random access to the header and named sections.
class CkptFile {
 public:
  /// Parses and validates `bytes`; `path` qualifies every error message.
  /// Throws CkptError on bad magic, unsupported version, truncation or CRC
  /// mismatch.
  static CkptFile parse(std::vector<std::uint8_t> bytes, const std::string& path);

  const std::string& path() const noexcept { return path_; }
  const std::string& header_json() const noexcept { return header_; }
  std::uint32_t version() const noexcept { return version_; }

  bool has_section(std::string_view name) const;
  /// Cursor over the named section's body; throws CkptError when absent.
  CkptCursor section(std::string_view name) const;

 private:
  struct Section {
    std::string name;
    std::size_t offset = 0;
    std::size_t len = 0;
  };

  std::vector<std::uint8_t> bytes_;
  std::string path_;
  std::string header_;
  std::uint32_t version_ = 0;
  std::vector<Section> sections_;
};

/// Reads a whole file; throws CkptError with the path on any I/O failure.
std::vector<std::uint8_t> ckpt_read_file(const std::string& path);

/// Writes `bytes` to `path` atomically (temp file in the same directory,
/// fsync'd, then renamed over the target), so a crash mid-write can never
/// leave a half-written checkpoint under the final name.
void ckpt_write_file_atomic(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Bidirectional TimerTarget <-> dense id mapping for event-queue
/// serialization. The World enumerates its targets in deterministic
/// construction order; a queue entry's target pointer round-trips as the
/// target's index in that enumeration.
class CkptTargetMap {
 public:
  void add(TimerTarget* target);
  std::uint32_t id_of(const TimerTarget* target) const;  ///< throws if unknown
  TimerTarget* target_of(std::uint32_t id) const;        ///< throws if out of range
  std::size_t size() const noexcept { return targets_.size(); }

 private:
  std::vector<TimerTarget*> targets_;
  std::unordered_map<const TimerTarget*, std::uint32_t> ids_;
};

}  // namespace gtrix
