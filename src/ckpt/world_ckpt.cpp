// World-level checkpoint assembly: enumerates every object that can appear
// as an event target, frames the per-subsystem snapshots into sections and
// validates the header fingerprint on restore. The target enumeration is
// pure construction order -- network, layer-0 generators, then grid nodes
// ascending -- so a fresh World built from the same config enumerates the
// identical sequence and pointer ids round-trip as dense indices.
#include <string>

#include "ckpt/codec.hpp"
#include "runner/experiment.hpp"
#include "scenario/spec.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace gtrix {

namespace {

// Per-grid-node record kinds in the "nodes" section. Which kind a node gets
// is a pure function of the config (fault map, layer-0 mode, algorithm), so
// restore recomputes the kind and treats a mismatch as corruption.
enum NodeTag : std::uint8_t {
  kTagNone = 0,       // ideal-mode layer 0: emitter state lives in the queue
  kTagLayer0 = 1,     // line-mode forwarding node
  kTagAlgorithm = 2,  // algorithm node behind a NodeModel
  kTagRogue = 3,      // fixed-period babbler
  kTagCrash = 4,      // crash sink
};

}  // namespace

bool World::idle() const {
  if (!sim_.idle()) return false;
  for (const auto& sim : extra_sims_) {
    if (!sim->idle()) return false;
  }
  return net_.earliest_mailbox_time() == kTimeInfinity;
}

Json World::checkpoint_header(const std::string& meta_json) const {
  Json j = Json::object();
  j.set("format", "gtrix-checkpoint");
  j.set("version", kCkptFormatVersion);
  j.set("config", to_json(config_));
  // The engine fingerprint pins everything that shapes serialized state:
  // the scheduler kind decides how the queue snapshot is rebuilt, the shard
  // count decides the queue/mailbox layout, and the remaining gates guard
  // against restoring into an engine whose counters would diverge from the
  // snapshotted run's summary. `shards` is the clamped effective count.
  Json engine = Json::object();
  engine.set("scheduler",
             engine_.scheduler == SchedulerKind::kCalendar ? "calendar" : "binary-heap");
  engine.set("batched_broadcast", engine_.batched_broadcast);
  engine.set("soa_arena", engine_.soa_arena);
  engine.set("cached_metrics", engine_.cached_metrics);
  engine.set("single_locate_loop", engine_.single_locate_loop);
  engine.set("shards", shard_count_);
  j.set("engine", engine);
  j.set("meta", meta_json.empty() ? Json() : Json::parse(meta_json));
  return j;
}

void World::checkpoint_targets(CkptTargetMap& targets) const {
  targets.add(&const_cast<Network&>(net_));
  if (source_ != nullptr) targets.add(source_.get());
  for (const auto& emitter : emitters_) targets.add(emitter.get());
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    if (layer0_by_grid_[g] != nullptr) targets.add(layer0_by_grid_[g]);
    if (model_by_grid_[g] != nullptr) {
      TimerTarget* t = model_by_grid_[g]->timer_target();
      if (t != nullptr) targets.add(t);
    }
    if (auto* rogue = dynamic_cast<FixedPeriodRogue*>(sinks_[g].get())) targets.add(rogue);
  }
}

std::vector<std::uint8_t> World::checkpoint_save(const std::string& meta_json) const {
  CkptTargetMap targets;
  checkpoint_targets(targets);

  CkptWriter w;

  w.begin_section("sims");
  w.u32(shard_count_);
  if (shard_count_ <= 1) {
    sim_.checkpoint_save(w, targets);
  } else {
    for (const Simulator* sim : shard_sims_) sim->checkpoint_save(w, targets);
  }
  w.end_section();

  w.begin_section("net");
  net_.checkpoint_save(w);
  w.end_section();

  w.begin_section("nodes");
  for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
    if (layer0_by_grid_[g] != nullptr) {
      w.u8(kTagLayer0);
      layer0_by_grid_[g]->checkpoint_save(w);
    } else if (model_by_grid_[g] != nullptr) {
      w.u8(kTagAlgorithm);
      model_by_grid_[g]->checkpoint_save(w);
    } else if (auto* rogue = dynamic_cast<const FixedPeriodRogue*>(sinks_[g].get())) {
      w.u8(kTagRogue);
      rogue->checkpoint_save(w);
    } else if (auto* sink = dynamic_cast<const CrashSink*>(sinks_[g].get())) {
      w.u8(kTagCrash);
      sink->checkpoint_save(w);
    } else {
      w.u8(kTagNone);
    }
  }
  w.end_section();

  w.begin_section("faults");
  w.u64(fault_runtimes_.size());
  for (const auto& rt : fault_runtimes_) {
    rt->rng.checkpoint_save(w);
    w.i64(rt->sent);
  }
  w.end_section();

  w.begin_section("recorder");
  recorder_.checkpoint_save(w);
  w.end_section();

  if (streaming_ != nullptr) {
    w.begin_section("streaming");
    streaming_->checkpoint_save(w);
    w.end_section();
  }

  return w.finish(checkpoint_header(meta_json).dump());
}

void World::checkpoint_restore(const CkptFile& file) {
  // Fingerprint first: state is only byte-compatible between identically
  // configured, identically engined Worlds. The comparison runs on parsed
  // JSON (not raw strings) so it is insensitive to meta differences.
  Json header;
  try {
    header = Json::parse(file.header_json());
  } catch (const JsonError& e) {
    throw CkptError(file.path() + ": checkpoint header is not valid JSON (" + e.what() + ")");
  }
  const Json expected = checkpoint_header("");
  try {
    if (!(header.at("config") == expected.at("config"))) {
      throw CkptError(file.path() +
                      ": checkpoint was taken under a different experiment config (restore "
                      "never migrates state across configs)");
    }
    if (!(header.at("engine") == expected.at("engine"))) {
      throw CkptError(file.path() + ": checkpoint engine fingerprint " +
                      header.at("engine").dump() + " does not match this run's " +
                      expected.at("engine").dump() +
                      " (resume with the same scheduler and shard count)");
    }
  } catch (const JsonError& e) {
    throw CkptError(file.path() + ": checkpoint header is malformed (" + e.what() + ")");
  }

  CkptTargetMap targets;
  checkpoint_targets(targets);

  {
    CkptCursor cur = file.section("sims");
    const std::uint32_t shards = cur.u32();
    if (shards != shard_count_) {
      throw CkptError(file.path() + ": checkpoint was taken with " + std::to_string(shards) +
                      " shard(s), this run has " + std::to_string(shard_count_));
    }
    if (shard_count_ <= 1) {
      sim_.checkpoint_restore(cur, targets);
    } else {
      for (Simulator* sim : shard_sims_) sim->checkpoint_restore(cur, targets);
    }
    cur.expect_done();
  }

  {
    CkptCursor cur = file.section("net");
    net_.checkpoint_restore(cur);
    cur.expect_done();
  }

  {
    CkptCursor cur = file.section("nodes");
    for (GridNodeId g = 0; g < grid_.node_count(); ++g) {
      const std::uint8_t tag = cur.u8();
      std::uint8_t want = kTagNone;
      if (layer0_by_grid_[g] != nullptr) want = kTagLayer0;
      else if (model_by_grid_[g] != nullptr) want = kTagAlgorithm;
      else if (dynamic_cast<FixedPeriodRogue*>(sinks_[g].get()) != nullptr) want = kTagRogue;
      else if (dynamic_cast<CrashSink*>(sinks_[g].get()) != nullptr) want = kTagCrash;
      if (tag != want) {
        throw CkptError(file.path() + ": checkpoint node record kind " + std::to_string(tag) +
                        " at grid node " + std::to_string(g) + " does not match this config's " +
                        std::to_string(want) + " (corrupt file?)");
      }
      switch (tag) {
        case kTagLayer0: layer0_by_grid_[g]->checkpoint_restore(cur); break;
        case kTagAlgorithm: model_by_grid_[g]->checkpoint_restore(cur); break;
        case kTagRogue: dynamic_cast<FixedPeriodRogue*>(sinks_[g].get())->checkpoint_restore(cur); break;
        case kTagCrash: dynamic_cast<CrashSink*>(sinks_[g].get())->checkpoint_restore(cur); break;
        default: break;
      }
    }
    cur.expect_done();
  }

  {
    CkptCursor cur = file.section("faults");
    const std::uint64_t nfaults = cur.u64();
    if (nfaults != fault_runtimes_.size()) {
      throw CkptError(file.path() + ": checkpoint has " + std::to_string(nfaults) +
                      " fault runtime(s), this configuration has " +
                      std::to_string(fault_runtimes_.size()));
    }
    for (const auto& rt : fault_runtimes_) {
      rt->rng.checkpoint_restore(cur);
      rt->sent = cur.i64();
    }
    cur.expect_done();
  }

  {
    CkptCursor cur = file.section("recorder");
    recorder_.checkpoint_restore(cur);
    cur.expect_done();
  }

  if (streaming_ != nullptr) {
    CkptCursor cur = file.section("streaming");
    streaming_->checkpoint_restore(cur);
    cur.expect_done();
  } else if (file.has_section("streaming")) {
    throw CkptError(file.path() +
                    ": checkpoint carries streaming accumulators but this run records in "
                    "full mode (corrupt file?)");
  }
}

}  // namespace gtrix
