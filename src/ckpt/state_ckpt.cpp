// Member checkpoint functions for the engine-layer state holders: RNG
// streams, statistics accumulators, the event queue / simulator, the
// network (mailboxes included) and the metrics recorder / streaming skew
// accumulators. Defined here -- not in each class's own TU -- so the whole
// binary serialization of the engine lives in src/ckpt and the state
// classes only carry declarations.
#include <queue>
#include <vector>

#include "ckpt/codec.hpp"
#include "ckpt/detail.hpp"
#include "metrics/recorder.hpp"
#include "metrics/streaming.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace gtrix {

// --- Rng ---------------------------------------------------------------------

void Rng::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(Rng, 48);
  for (std::uint64_t word : state_) w.u64(word);
  w.u8(have_cached_normal_ ? 1 : 0);
  w.f64(cached_normal_);
}

void Rng::checkpoint_restore(CkptCursor& cur) {
  for (std::uint64_t& word : state_) word = cur.u64();
  have_cached_normal_ = cur.u8() != 0;
  cached_normal_ = cur.f64();
}

// --- Summary -----------------------------------------------------------------

void Summary::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(Summary, 48);
  w.u64(n_);
  w.f64(mean_);
  w.f64(m2_);
  w.f64(min_);
  w.f64(max_);
  w.f64(sum_);
}

void Summary::checkpoint_restore(CkptCursor& cur) {
  n_ = static_cast<std::size_t>(cur.u64());
  mean_ = cur.f64();
  m2_ = cur.f64();
  min_ = cur.f64();
  max_ = cur.f64();
  sum_ = cur.f64();
}

// --- LogQuantileSketch -------------------------------------------------------

void LogQuantileSketch::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(LogQuantileSketch, 72);
  w.u64(counts_.size());
  for (std::uint64_t c : counts_) w.u64(c);
  w.u64(zero_);
  w.u64(overflow_high_);
  w.u64(total_);
}

void LogQuantileSketch::checkpoint_restore(CkptCursor& cur) {
  const std::uint64_t bins = cur.u64();
  if (bins != counts_.size()) {
    throw CkptError("checkpoint quantile sketch has " + std::to_string(bins) +
                    " bins, this configuration has " + std::to_string(counts_.size()));
  }
  for (std::uint64_t& c : counts_) c = cur.u64();
  zero_ = cur.u64();
  overflow_high_ = cur.u64();
  total_ = static_cast<std::size_t>(cur.u64());
}

// --- EventQueue --------------------------------------------------------------
//
// The snapshot is the SLOT TABLE, exactly: indices, generation counters,
// live payloads with their (time, seq) keys, and the freelist chain order.
// Reproducing all of that makes a restore transparent to everything holding
// a TimerHandle (arena lanes) and to the (time, seq) total order -- the
// next event scheduled after a restore gets the same slot, generation and
// sequence number it would have gotten in the uninterrupted run. Only the
// priority structure's internal layout (heap array order, calendar bucket
// geometry) is rebuilt rather than copied: it is engine-shaped state with
// no influence on the event order.

void EventQueue::checkpoint_save(CkptWriter& w, const CkptTargetMap& targets) const {
  GTRIX_CKPT_SIZEOF(EventQueue, 248);
  GTRIX_CKPT_FIELDS(Slot, 7);
  GTRIX_CKPT_FIELDS(QueueEntry, 5);
  GTRIX_CKPT_FIELDS(EventPayload, 5);
  w.u64(next_seq_);
  w.u64(scheduled_);
  w.u64(executed_);
  w.u64(cancelled_);
  w.u64(purged_);
  w.u64(rebuilds_);

  // Harvest each live slot's sequence number from the priority structure
  // (the slot itself does not store it).
  std::vector<std::uint64_t> seq_of(slots_.size(), 0);
  std::vector<std::uint8_t> has_seq(slots_.size(), 0);
  if (kind_ == SchedulerKind::kBinaryHeap) {
    std::priority_queue<QueueEntry> copy = heap_;
    while (!copy.empty()) {
      const QueueEntry entry = copy.top();
      copy.pop();
      if (!stale(entry)) {
        seq_of[entry.slot] = entry.seq;
        has_seq[entry.slot] = 1;
      }
    }
  } else {
    for (const std::vector<QueueEntry>& bucket : buckets_) {
      for (const QueueEntry& entry : bucket) {
        if (!stale(entry)) {
          seq_of[entry.slot] = entry.seq;
          has_seq[entry.slot] = 1;
        }
      }
    }
  }

  w.u64(slots_.size());
  std::size_t live_written = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    w.u32(slot.gen);
    w.u8(slot.live ? 1 : 0);
    if (!slot.live) continue;
    GTRIX_CHECK_MSG(has_seq[i], "live event slot missing from the priority structure");
    w.f64(slot.time);
    w.u32(slot.kind);
    w.u32(slot.payload.a);
    w.u32(slot.payload.b);
    w.u32(slot.payload.c);
    w.i64(slot.payload.i);
    w.f64(slot.payload.f);
    w.u32(targets.id_of(slot.target));
    w.u64(seq_of[i]);
    ++live_written;
  }
  GTRIX_CHECK_MSG(live_written == live_, "event queue live count out of sync");

  std::vector<std::uint32_t> chain;
  chain.reserve(slots_.size() - live_);
  for (std::uint32_t i = free_head_; i != kInvalidEventSlot; i = slots_[i].next_free) {
    chain.push_back(i);
  }
  w.u64(chain.size());
  for (std::uint32_t i : chain) w.u32(i);
}

void EventQueue::checkpoint_restore(CkptCursor& cur, const CkptTargetMap& targets) {
  next_seq_ = cur.u64();
  scheduled_ = cur.u64();
  executed_ = cur.u64();
  cancelled_ = cur.u64();
  purged_ = cur.u64();
  rebuilds_ = cur.u64();

  const std::uint64_t nslots = cur.u64();
  slots_.assign(nslots, Slot{});
  struct LiveRef {
    std::uint32_t slot;
    std::uint64_t seq;
  };
  std::vector<LiveRef> lives;
  live_ = 0;
  for (std::size_t i = 0; i < nslots; ++i) {
    Slot& slot = slots_[i];
    slot.gen = cur.u32();
    slot.live = cur.u8() != 0;
    slot.next_free = kInvalidEventSlot;
    if (!slot.live) continue;
    slot.time = cur.f64();
    slot.kind = cur.u32();
    slot.payload.a = cur.u32();
    slot.payload.b = cur.u32();
    slot.payload.c = cur.u32();
    slot.payload.i = cur.i64();
    slot.payload.f = cur.f64();
    slot.target = targets.target_of(cur.u32());
    lives.push_back({static_cast<std::uint32_t>(i), cur.u64()});
    ++live_;
  }

  const std::uint64_t nfree = cur.u64();
  if (nfree + live_ != nslots) {
    throw CkptError("checkpoint event queue freelist inconsistent (corrupt file)");
  }
  free_head_ = kInvalidEventSlot;
  std::uint32_t prev = kInvalidEventSlot;
  for (std::uint64_t k = 0; k < nfree; ++k) {
    const std::uint32_t idx = cur.u32();
    if (idx >= nslots || slots_[idx].live) {
      throw CkptError("checkpoint event queue freelist corrupt");
    }
    if (prev == kInvalidEventSlot) {
      free_head_ = idx;
    } else {
      slots_[prev].next_free = idx;
    }
    prev = idx;
  }

  // Reset the priority structures and refill from the exact (time, seq)
  // pairs. The calendar is refit to the restored population (same policy
  // as any purge rebuild); bucket geometry is engine-shaped state.
  heap_ = {};
  buckets_.clear();
  entry_count_ = 0;
  dead_ = 0;
  cur_epoch_ = 0;
  peek_ = PeekRef{};
  if (kind_ == SchedulerKind::kBinaryHeap) {
    for (const LiveRef& ref : lives) {
      heap_.push(QueueEntry{slots_[ref.slot].time, ref.seq, 0, ref.slot, slots_[ref.slot].gen});
    }
  } else {
    buckets_.resize(8);  // kMinBuckets; the rebuild below refits the size
    bucket_mask_ = buckets_.size() - 1;
    width_ = 1.0;
    inv_width_ = 1.0;
    for (const LiveRef& ref : lives) {
      calendar_insert(
          QueueEntry{slots_[ref.slot].time, ref.seq, 0, ref.slot, slots_[ref.slot].gen});
    }
    calendar_rebuild(8);
  }
}

// --- Simulator ---------------------------------------------------------------

void Simulator::checkpoint_save(CkptWriter& w, const CkptTargetMap& targets) const {
  GTRIX_CKPT_SIZEOF(Simulator, 264);
  w.f64(now_);
  queue_.checkpoint_save(w, targets);
}

void Simulator::checkpoint_restore(CkptCursor& cur, const CkptTargetMap& targets) {
  now_ = cur.f64();
  queue_.checkpoint_restore(cur, targets);
}

// --- Network -----------------------------------------------------------------

void Network::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(Network, 392);
  GTRIX_CKPT_FIELDS(DeferCell, 3);
  GTRIX_CKPT_FIELDS(ShardCounters, 4);
  GTRIX_CKPT_FIELDS(ShardEnvelope, 5);
  // A kFlushArrivals event never outlives its instant, so no arrival can be
  // deferred at a snapshot barrier; the cells carry no persistent state.
  for (const DeferCell& cell : defer_) {
    GTRIX_CHECK_MSG(!cell.active && cell.buf.empty(),
                    "checkpoint taken mid-instant: deferred arrivals pending");
  }
  w.u64(sent_);
  w.u64(delivered_);
  w.u64(delivery_events_);
  w.u64(envelopes_published_);
  w.u32(shard_count_);
  w.u64(shard_counters_.size());
  for (const ShardCounters& c : shard_counters_) {
    w.u64(c.sent);
    w.u64(c.delivered);
    w.u64(c.delivery_events);
    w.u64(c.envelopes_drained);
  }
  const auto write_matrix = [&w](const std::vector<std::vector<ShardEnvelope>>& matrix) {
    w.u64(matrix.size());
    for (const std::vector<ShardEnvelope>& cell : matrix) {
      w.u64(cell.size());
      for (const ShardEnvelope& e : cell) {
        w.f64(e.arrival);
        w.u32(e.from);
        w.u32(e.edge);
        w.u32(e.to);
        w.i64(e.stamp);
      }
    }
  };
  write_matrix(mail_);
  write_matrix(pending_);
}

void Network::checkpoint_restore(CkptCursor& cur) {
  sent_ = cur.u64();
  delivered_ = cur.u64();
  delivery_events_ = cur.u64();
  envelopes_published_ = cur.u64();
  const std::uint32_t shards = cur.u32();
  if (shards != shard_count_) {
    throw CkptError("checkpoint was taken with " + std::to_string(shards) +
                    " network shard(s), this run has " + std::to_string(shard_count_));
  }
  const std::uint64_t ncounters = cur.u64();
  if (ncounters != shard_counters_.size()) {
    throw CkptError("checkpoint shard counter table size mismatch");
  }
  for (ShardCounters& c : shard_counters_) {
    c.sent = cur.u64();
    c.delivered = cur.u64();
    c.delivery_events = cur.u64();
    c.envelopes_drained = cur.u64();
  }
  const auto read_matrix = [&cur](std::vector<std::vector<ShardEnvelope>>& matrix,
                                  const char* which) {
    const std::uint64_t cells = cur.u64();
    if (cells != matrix.size()) {
      throw CkptError(std::string("checkpoint mailbox matrix '") + which +
                      "' size mismatch (different shard layout)");
    }
    for (std::vector<ShardEnvelope>& cell : matrix) {
      cell.clear();
      const std::uint64_t n = cur.u64();
      cell.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        ShardEnvelope e;
        e.arrival = cur.f64();
        e.from = cur.u32();
        e.edge = cur.u32();
        e.to = cur.u32();
        e.stamp = cur.i64();
        cell.push_back(e);
      }
    }
  };
  read_matrix(mail_, "mail");
  read_matrix(pending_, "pending");
}

// --- Recorder ----------------------------------------------------------------

void Recorder::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(Recorder, 136);
  GTRIX_CKPT_FIELDS(NodeLog, 14);
  GTRIX_CKPT_FIELDS(LostIter, 2);
  GTRIX_CKPT_FIELDS(IterationRecord, 14);
  w.i64(min_sigma_);
  w.i64(max_sigma_);
  w.u64(pulses_recorded_);
  w.u64(pinned_pulses_);  // anchor/box bounds are config-derived, not state
  w.u64(logs_.size());
  for (const NodeLog& log : logs_) {
    w.i64(log.first_sigma);
    w.u64(log.times.size());
    for (SimTime t : log.times) w.f64(t);  // raw bits: NaN = missing survives
    w.u64(log.iterations.size());
    for (const IterationRecord& rec : log.iterations) ckpt::write_iteration(w, rec);
    w.u64(log.iterations_dropped);
    // Corruption-anchored retention state (all empty under full recording).
    w.u64(log.early.size());
    for (Sigma s : log.early) w.i64(s);
    w.i64(log.pin_first);
    w.u64(log.pin_times.size());
    for (SimTime t : log.pin_times) w.f64(t);
    w.u64(log.pin_iterations.size());
    for (const IterationRecord& rec : log.pin_iterations) ckpt::write_iteration(w, rec);
    for (std::uint64_t abs : log.pin_iter_abs) w.u64(abs);
    w.i64(log.lost_lo);
    w.i64(log.lost_hi);
    w.u64(log.lost_iters.size());
    for (const LostIter& li : log.lost_iters) {
      w.u64(li.abs);
      w.i64(li.sigma);
    }
    w.i64(log.iter_lost_lo);
    w.i64(log.iter_lost_hi);
  }
}

void Recorder::checkpoint_restore(CkptCursor& cur) {
  min_sigma_ = cur.i64();
  max_sigma_ = cur.i64();
  pulses_recorded_ = cur.u64();
  pinned_pulses_ = cur.u64();
  const std::uint64_t nodes = cur.u64();
  if (nodes != logs_.size()) {
    throw CkptError("checkpoint recorder covers " + std::to_string(nodes) +
                    " node(s), this configuration registers " + std::to_string(logs_.size()));
  }
  for (NodeLog& log : logs_) {
    log.first_sigma = cur.i64();
    const std::uint64_t ntimes = cur.u64();
    log.times.resize(ntimes);
    for (SimTime& t : log.times) t = cur.f64();
    const std::uint64_t niters = cur.u64();
    log.iterations.clear();
    log.iterations.reserve(niters);
    for (std::uint64_t i = 0; i < niters; ++i) {
      log.iterations.push_back(ckpt::read_iteration(cur));
    }
    log.iterations_dropped = cur.u64();
    const std::uint64_t nearly = cur.u64();
    log.early.resize(nearly);
    for (Sigma& s : log.early) s = cur.i64();
    log.pin_first = cur.i64();
    const std::uint64_t npin_times = cur.u64();
    log.pin_times.resize(npin_times);
    for (SimTime& t : log.pin_times) t = cur.f64();
    const std::uint64_t npin_iters = cur.u64();
    log.pin_iterations.clear();
    log.pin_iterations.reserve(npin_iters);
    for (std::uint64_t i = 0; i < npin_iters; ++i) {
      log.pin_iterations.push_back(ckpt::read_iteration(cur));
    }
    log.pin_iter_abs.resize(npin_iters);
    for (std::uint64_t& abs : log.pin_iter_abs) abs = cur.u64();
    log.lost_lo = cur.i64();
    log.lost_hi = cur.i64();
    const std::uint64_t nlost = cur.u64();
    log.lost_iters.resize(nlost);
    for (LostIter& li : log.lost_iters) {
      li.abs = cur.u64();
      li.sigma = cur.i64();
    }
    log.iter_lost_lo = cur.i64();
    log.iter_lost_hi = cur.i64();
  }
}

// --- StreamingSkew -----------------------------------------------------------

namespace {

template <typename T, typename WriteFn>
void write_vec(CkptWriter& w, const std::vector<T>& v, WriteFn&& fn) {
  w.u64(v.size());
  for (const T& x : v) fn(x);
}

void check_vec_size(CkptCursor& cur, std::size_t expected, const char* what) {
  const std::uint64_t n = cur.u64();
  if (n != expected) {
    throw CkptError(std::string("checkpoint streaming-skew lane '") + what +
                    "' size mismatch (different grid or ring configuration)");
  }
}

}  // namespace

void StreamingSkew::checkpoint_save(CkptWriter& w) const {
  GTRIX_CKPT_SIZEOF(StreamingSkew, 496);
  GTRIX_CKPT_FIELDS(WaveExtrema, 3);
  write_vec(w, held_sigma_, [&w](Sigma s) { w.i64(s); });
  write_vec(w, held_time_, [&w](SimTime t) { w.f64(t); });
  write_vec(w, recorded_, [&w](std::int64_t n) { w.i64(n); });
  w.u64(held_steady_.size());
  for (std::size_t i = 0; i < held_steady_.size(); ++i) w.u8(held_steady_[i] ? 1 : 0);
  write_vec(w, ring_sigma_, [&w](Sigma s) { w.i64(s); });
  write_vec(w, ring_time_, [&w](SimTime t) { w.f64(t); });
  write_vec(w, intra_by_layer_, [&w](double d) { w.f64(d); });
  write_vec(w, inter_by_layer_, [&w](double d) { w.f64(d); });
  write_vec(w, spread_by_layer_, [&w](double d) { w.f64(d); });
  write_vec(w, layer_ring_, [&w](const WaveExtrema& e) {
    w.i64(e.sigma);
    w.f64(e.min);
    w.f64(e.max);
  });
  w.u64(pairs_checked_);
  w.u64(window_overflows_);
  w.u64(out_of_order_);
  w.u64(suppressed_);  // the anchor itself is config-derived, not state
  deviation_summary_.checkpoint_save(w);
  deviation_sketch_.checkpoint_save(w);
}

void StreamingSkew::checkpoint_restore(CkptCursor& cur) {
  check_vec_size(cur, held_sigma_.size(), "held_sigma");
  for (Sigma& s : held_sigma_) s = cur.i64();
  check_vec_size(cur, held_time_.size(), "held_time");
  for (SimTime& t : held_time_) t = cur.f64();
  check_vec_size(cur, recorded_.size(), "recorded");
  for (std::int64_t& n : recorded_) n = cur.i64();
  check_vec_size(cur, held_steady_.size(), "held_steady");
  for (std::size_t i = 0; i < held_steady_.size(); ++i) held_steady_[i] = cur.u8() != 0;
  check_vec_size(cur, ring_sigma_.size(), "ring_sigma");
  for (Sigma& s : ring_sigma_) s = cur.i64();
  check_vec_size(cur, ring_time_.size(), "ring_time");
  for (SimTime& t : ring_time_) t = cur.f64();
  check_vec_size(cur, intra_by_layer_.size(), "intra_by_layer");
  for (double& d : intra_by_layer_) d = cur.f64();
  check_vec_size(cur, inter_by_layer_.size(), "inter_by_layer");
  for (double& d : inter_by_layer_) d = cur.f64();
  check_vec_size(cur, spread_by_layer_.size(), "spread_by_layer");
  for (double& d : spread_by_layer_) d = cur.f64();
  check_vec_size(cur, layer_ring_.size(), "layer_ring");
  for (WaveExtrema& e : layer_ring_) {
    e.sigma = cur.i64();
    e.min = cur.f64();
    e.max = cur.f64();
  }
  pairs_checked_ = cur.u64();
  window_overflows_ = cur.u64();
  out_of_order_ = cur.u64();
  suppressed_ = cur.u64();
  deviation_summary_.checkpoint_restore(cur);
  deviation_sketch_.checkpoint_restore(cur);
}

}  // namespace gtrix
