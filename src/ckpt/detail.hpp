// Shared serializers for small structs that appear in several checkpoint
// sections (timer handles in every node's arena lanes, iteration records in
// both the recorder log and a gradient node's staged record).
#pragma once

#include "ckpt/codec.hpp"
#include "metrics/recorder.hpp"
#include "sim/event_queue.hpp"

namespace gtrix::ckpt {

inline void write_timer(CkptWriter& w, const TimerHandle& h) {
  w.u32(h.slot);
  w.u32(h.gen);
}

inline TimerHandle read_timer(CkptCursor& cur) {
  TimerHandle h;
  h.slot = cur.u32();
  h.gen = cur.u32();
  return h;
}

inline void write_iteration(CkptWriter& w, const IterationRecord& rec) {
  w.i64(rec.sigma);
  w.f64(rec.correction);
  w.f64(rec.h_own);
  w.f64(rec.h_min);
  w.f64(rec.h_max);
  w.u8(rec.own_missing ? 1 : 0);
  w.u8(rec.max_missing ? 1 : 0);
  w.u8(rec.timeout_branch ? 1 : 0);
  w.u8(rec.late ? 1 : 0);
  w.f64(rec.pulse_time);
  w.f64(rec.pulse_local);
  w.u8(rec.slot_count);
  for (std::size_t s = 0; s < IterationRecord::kMaxSlots; ++s) w.i64(rec.slot_sigma[s]);
  for (std::size_t s = 0; s < IterationRecord::kMaxSlots; ++s)
    w.u8(rec.slot_seen[s] ? 1 : 0);
}

inline IterationRecord read_iteration(CkptCursor& cur) {
  IterationRecord rec;
  rec.sigma = cur.i64();
  rec.correction = cur.f64();
  rec.h_own = cur.f64();
  rec.h_min = cur.f64();
  rec.h_max = cur.f64();
  rec.own_missing = cur.u8() != 0;
  rec.max_missing = cur.u8() != 0;
  rec.timeout_branch = cur.u8() != 0;
  rec.late = cur.u8() != 0;
  rec.pulse_time = cur.f64();
  rec.pulse_local = cur.f64();
  rec.slot_count = cur.u8();
  for (std::size_t s = 0; s < IterationRecord::kMaxSlots; ++s) rec.slot_sigma[s] = cur.i64();
  for (std::size_t s = 0; s < IterationRecord::kMaxSlots; ++s) rec.slot_seen[s] = cur.u8() != 0;
  return rec;
}

}  // namespace gtrix::ckpt
