// Shared serializers for small structs that appear in several checkpoint
// sections (timer handles in every node's arena lanes, iteration records in
// both the recorder log and a gradient node's staged record), plus the
// field-count guards every codec must carry.
#pragma once

#include <cstddef>
#include <utility>

#include "ckpt/codec.hpp"
#include "metrics/recorder.hpp"
#include "sim/event_queue.hpp"

namespace gtrix::ckpt::probe {

// Compile-time field counter for aggregates: the largest N for which
// T{AnyConv, ... N times ...} is well-formed. Each direct member counts
// once (std::array members count as one -- AnyConv converts to the array
// wholesale). The same probe idiom tests/test_obs.cpp uses to pin
// EngineOptions' field count.
struct AnyConv {
  template <class T>
  operator T() const;  // never defined: overload-resolution probe only
};

template <class T, std::size_t... I>
constexpr bool constructible_with(std::index_sequence<I...>) {
  return requires { T{((void)I, AnyConv{})...}; };
}

template <class T, std::size_t N = 0>
constexpr std::size_t field_count() {
  if constexpr (constructible_with<T>(std::make_index_sequence<N + 1>{})) {
    return field_count<T, N + 1>();
  } else {
    return N;
  }
}

}  // namespace gtrix::ckpt::probe

// Codec drift guards (tools/gtrix_lint.py rule ckpt-field-guard): every
// struct serialized by a checkpoint codec carries one of these static
// asserts INSIDE the codec body -- where private nested types are nameable
// -- so adding a field without teaching the codec about it fails the BUILD
// instead of a kill-and-resume differential three PRs later.
//
// GTRIX_CKPT_FIELDS pins an aggregate's field count exactly.
// GTRIX_CKPT_SIZEOF pins a non-aggregate class's object size -- a weaker
// proxy (a new field swallowed by padding stays invisible), hence the
// preference for FIELDS wherever the type is an aggregate. The sizes are
// the x86-64 libstdc++ layout the project targets; other ABIs degrade to a
// presence-only check rather than guessing their padding.
// NOLINTBEGIN(bugprone-macro-parentheses): T is a type name, not an expression
#define GTRIX_CKPT_FIELDS(T, N)                                            \
  static_assert(::gtrix::ckpt::probe::field_count<T>() == (N),             \
                #T " changed shape: audit its checkpoint codec right "     \
                   "here, then update this field count")
#if defined(__x86_64__) && defined(__GLIBCXX__)
#define GTRIX_CKPT_SIZEOF(T, N)                                            \
  static_assert(sizeof(T) == (N),                                         \
                #T " changed size: audit its checkpoint codec right "      \
                   "here, then update this size guard")
#else
#define GTRIX_CKPT_SIZEOF(T, N) static_assert(sizeof(T) > 0, "")
#endif
// NOLINTEND(bugprone-macro-parentheses)

namespace gtrix::ckpt {

inline void write_timer(CkptWriter& w, const TimerHandle& h) {
  GTRIX_CKPT_FIELDS(TimerHandle, 2);
  w.u32(h.slot);
  w.u32(h.gen);
}

inline TimerHandle read_timer(CkptCursor& cur) {
  TimerHandle h;
  h.slot = cur.u32();
  h.gen = cur.u32();
  return h;
}

inline void write_iteration(CkptWriter& w, const IterationRecord& rec) {
  GTRIX_CKPT_FIELDS(IterationRecord, 14);
  static_assert(IterationRecord::kMaxSlots == 5,
                "IterationRecord slot arrays changed width: the wire format "
                "below shifts; bump the checkpoint schema when touching this");
  w.i64(rec.sigma);
  w.f64(rec.correction);
  w.f64(rec.h_own);
  w.f64(rec.h_min);
  w.f64(rec.h_max);
  w.u8(rec.own_missing ? 1 : 0);
  w.u8(rec.max_missing ? 1 : 0);
  w.u8(rec.timeout_branch ? 1 : 0);
  w.u8(rec.late ? 1 : 0);
  w.f64(rec.pulse_time);
  w.f64(rec.pulse_local);
  w.u8(rec.slot_count);
  for (std::size_t s = 0; s < IterationRecord::kMaxSlots; ++s) w.i64(rec.slot_sigma[s]);
  for (std::size_t s = 0; s < IterationRecord::kMaxSlots; ++s)
    w.u8(rec.slot_seen[s] ? 1 : 0);
}

inline IterationRecord read_iteration(CkptCursor& cur) {
  IterationRecord rec;
  rec.sigma = cur.i64();
  rec.correction = cur.f64();
  rec.h_own = cur.f64();
  rec.h_min = cur.f64();
  rec.h_max = cur.f64();
  rec.own_missing = cur.u8() != 0;
  rec.max_missing = cur.u8() != 0;
  rec.timeout_branch = cur.u8() != 0;
  rec.late = cur.u8() != 0;
  rec.pulse_time = cur.f64();
  rec.pulse_local = cur.f64();
  rec.slot_count = cur.u8();
  for (std::size_t s = 0; s < IterationRecord::kMaxSlots; ++s) rec.slot_sigma[s] = cur.i64();
  for (std::size_t s = 0; s < IterationRecord::kMaxSlots; ++s) rec.slot_seen[s] = cur.u8() != 0;
  return rec;
}

}  // namespace gtrix::ckpt
