// Minimal command-line flag parsing for examples and benchmark harnesses.
// Supports --name=value, --name value, boolean --name / --no-name, and a
// bare "--" separator after which everything is positional. Repeating a
// flag is an error (caught at parse time).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gtrix {

class Flags {
 public:
  /// Parses argv; unknown positional arguments are collected separately.
  /// Throws std::invalid_argument on malformed input (e.g. "--=x") and on
  /// duplicate flags ("--k=1 --k=2").
  ///
  /// `boolean_flags` names flags that never take a value: "--dry-run x"
  /// leaves x positional instead of binding it as the flag's value
  /// (without the declaration, "--name value" binds greedily).
  Flags(int argc, const char* const* argv,
        std::initializer_list<std::string_view> boolean_flags = {});

  bool has(std::string_view name) const;

  std::string get_string(std::string_view name, std::string def) const;
  std::int64_t get_int(std::string_view name, std::int64_t def) const;
  double get_double(std::string_view name, double def) const;
  bool get_bool(std::string_view name, bool def) const;
  std::uint64_t get_u64(std::string_view name, std::uint64_t def) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }
  const std::string& program() const noexcept { return program_; }

  /// All flag names that were passed, sorted; lets CLIs reject typos
  /// ("--thread=1") instead of silently falling back to defaults.
  std::vector<std::string> names() const;

  /// Environment-variable helper shared by benches: GTRIX_BENCH_SCALE.
  /// Returns "small" (default), or whatever the variable holds.
  static std::string bench_scale();

 private:
  std::optional<std::string> raw(std::string_view name) const;

  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

/// Builder for --help output; collects flag/positional descriptions and
/// renders them as an aligned usage block:
///
///   Usage usage("gtrix_campaign", "Run scenario campaigns.");
///   usage.positional("SCENARIO", "scenario file or built-in name");
///   usage.flag("--threads=N", "worker threads (0 = all cores)");
///   std::fputs(usage.str().c_str(), stdout);
class Usage {
 public:
  Usage(std::string program, std::string summary);

  Usage& positional(std::string name, std::string help);
  Usage& flag(std::string spec, std::string help);

  /// The formatted usage text (trailing newline included).
  std::string str() const;

  /// Bare names of the declared flags ("--threads=N" -> "threads"), letting
  /// a CLI validate Flags::names() against the exact set --help documents.
  std::vector<std::string> flag_names() const;

 private:
  struct Entry {
    std::string spec;
    std::string help;
  };

  std::string program_;
  std::string summary_;
  std::vector<Entry> positionals_;
  std::vector<Entry> flags_;
};

}  // namespace gtrix
