// Minimal command-line flag parsing for examples and benchmark harnesses.
// Supports --name=value, --name value, and boolean --name / --no-name.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gtrix {

class Flags {
 public:
  /// Parses argv; unknown positional arguments are collected separately.
  /// Throws std::invalid_argument on malformed input (e.g. "--=x").
  Flags(int argc, const char* const* argv);

  bool has(std::string_view name) const;

  std::string get_string(std::string_view name, std::string def) const;
  std::int64_t get_int(std::string_view name, std::int64_t def) const;
  double get_double(std::string_view name, double def) const;
  bool get_bool(std::string_view name, bool def) const;
  std::uint64_t get_u64(std::string_view name, std::uint64_t def) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }
  const std::string& program() const noexcept { return program_; }

  /// Environment-variable helper shared by benches: GTRIX_BENCH_SCALE.
  /// Returns "small" (default), or whatever the variable holds.
  static std::string bench_scale();

 private:
  std::optional<std::string> raw(std::string_view name) const;

  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace gtrix
