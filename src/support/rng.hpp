// Deterministic, platform-portable pseudo-random number generation.
//
// The standard library's engines are deterministic but its *distributions*
// are not portable across implementations; experiments in this repository
// must reproduce bit-identically everywhere, so we implement both the
// generator (xoshiro256++) and the distributions ourselves.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace gtrix {

class CkptWriter;
class CkptCursor;

/// SplitMix64: used to expand a 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 by Blackman and Vigna. 256 bits of state, period 2^256-1,
/// passes BigCrush. Deterministic across platforms.
class Rng {
 public:
  /// Seeds the full state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit word.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method;
  /// unbiased. bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (portable; no std::normal_distribution).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;

  /// Derives an independent child generator; `label` decorrelates children
  /// derived from the same parent seed for different purposes.
  Rng split(std::string_view label) noexcept;

  /// Jump function: advances the state by 2^128 steps (for independent
  /// long-range streams with the same seed).
  void jump() noexcept;

  /// Checkpoint hooks (src/ckpt): the full generator state -- the four
  /// xoshiro words plus the Box-Muller spare -- so a restored stream emits
  /// the exact continuation. Defined in src/ckpt/state_ckpt.cpp.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Stable 64-bit FNV-1a hash of a string; used for seed derivation.
std::uint64_t fnv1a64(std::string_view s) noexcept;

}  // namespace gtrix
