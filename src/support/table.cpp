#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gtrix {

std::string format_double(double value, int precision) {
  std::ostringstream out;
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << cell;
      if (i + 1 < widths.size()) {
        out << std::string(widths[i] - cell.size() + 2, ' ');
      }
      // Last column: no padding.
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) rule += widths[i] + (i + 1 < widths.size() ? 2 : 0);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace gtrix
