#include "support/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gtrix {

namespace {

bool parse_bool_value(const std::string& v) {
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("invalid boolean flag value: " + v);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) throw std::invalid_argument("bare '--' is not a flag");
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      std::string name(arg.substr(0, eq));
      if (name.empty()) throw std::invalid_argument("flag with empty name");
      values_[name] = std::string(arg.substr(eq + 1));
      continue;
    }
    // --no-foo form for booleans.
    if (arg.starts_with("no-")) {
      values_[std::string(arg.substr(3))] = "false";
      continue;
    }
    // --name value, or bare boolean --name.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

std::optional<std::string> Flags::raw(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::has(std::string_view name) const { return values_.contains(name); }

std::string Flags::get_string(std::string_view name, std::string def) const {
  return raw(name).value_or(std::move(def));
}

std::int64_t Flags::get_int(std::string_view name, std::int64_t def) const {
  const auto v = raw(name);
  if (!v) return def;
  return std::stoll(*v);
}

std::uint64_t Flags::get_u64(std::string_view name, std::uint64_t def) const {
  const auto v = raw(name);
  if (!v) return def;
  return std::stoull(*v);
}

double Flags::get_double(std::string_view name, double def) const {
  const auto v = raw(name);
  if (!v) return def;
  return std::stod(*v);
}

bool Flags::get_bool(std::string_view name, bool def) const {
  const auto v = raw(name);
  if (!v) return def;
  return parse_bool_value(*v);
}

std::string Flags::bench_scale() {
  const char* env = std::getenv("GTRIX_BENCH_SCALE");
  return env == nullptr ? std::string("small") : std::string(env);
}

}  // namespace gtrix
