#include "support/flags.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace gtrix {

namespace {

bool parse_bool_value(const std::string& v) {
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("invalid boolean flag value: " + v);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv,
             std::initializer_list<std::string_view> boolean_flags) {
  if (argc > 0) program_ = argv[0];
  const auto is_boolean = [&boolean_flags](std::string_view name) {
    for (const std::string_view b : boolean_flags) {
      if (b == name) return true;
    }
    return false;
  };
  const auto set = [this](std::string name, std::string value) {
    if (values_.contains(name)) {
      throw std::invalid_argument("duplicate flag --" + name);
    }
    values_[std::move(name)] = std::move(value);
  };
  bool flags_ended = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (flags_ended || !arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      // "--" separator: everything after is positional, even "--like-this".
      flags_ended = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      std::string name(arg.substr(0, eq));
      if (name.empty()) throw std::invalid_argument("flag with empty name");
      set(std::move(name), std::string(arg.substr(eq + 1)));
      continue;
    }
    // --no-foo form for booleans.
    if (arg.starts_with("no-")) {
      set(std::string(arg.substr(3)), "false");
      continue;
    }
    // --name value, or bare boolean --name.
    if (!is_boolean(arg) && i + 1 < argc &&
        std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      set(std::string(arg), argv[++i]);
    } else {
      set(std::string(arg), "true");
    }
  }
}

std::optional<std::string> Flags::raw(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::has(std::string_view name) const { return values_.contains(name); }

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

std::string Flags::get_string(std::string_view name, std::string def) const {
  return raw(name).value_or(std::move(def));
}

namespace {

// Parses the full token or throws naming the flag: "--threads=4x" must be
// rejected, not truncated to 4 the way std::stoll would.
template <typename T>
T parse_number(std::string_view name, const std::string& v) {
  T value{};
  const auto res = std::from_chars(v.data(), v.data() + v.size(), value);
  if (res.ec != std::errc() || res.ptr != v.data() + v.size()) {
    throw std::invalid_argument("invalid numeric value for --" + std::string(name) +
                                ": '" + v + "'");
  }
  return value;
}

}  // namespace

std::int64_t Flags::get_int(std::string_view name, std::int64_t def) const {
  const auto v = raw(name);
  if (!v) return def;
  return parse_number<std::int64_t>(name, *v);
}

std::uint64_t Flags::get_u64(std::string_view name, std::uint64_t def) const {
  const auto v = raw(name);
  if (!v) return def;
  return parse_number<std::uint64_t>(name, *v);
}

double Flags::get_double(std::string_view name, double def) const {
  const auto v = raw(name);
  if (!v) return def;
  return parse_number<double>(name, *v);
}

bool Flags::get_bool(std::string_view name, bool def) const {
  const auto v = raw(name);
  if (!v) return def;
  return parse_bool_value(*v);
}

std::string Flags::bench_scale() {
  const char* env = std::getenv("GTRIX_BENCH_SCALE");
  return env == nullptr ? std::string("small") : std::string(env);
}

Usage::Usage(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

Usage& Usage::positional(std::string name, std::string help) {
  positionals_.push_back({std::move(name), std::move(help)});
  return *this;
}

Usage& Usage::flag(std::string spec, std::string help) {
  flags_.push_back({std::move(spec), std::move(help)});
  return *this;
}

std::vector<std::string> Usage::flag_names() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const Entry& e : flags_) {
    std::string_view spec = e.spec;
    if (spec.starts_with("--")) spec.remove_prefix(2);
    out.emplace_back(spec.substr(0, spec.find('=')));
  }
  return out;
}

std::string Usage::str() const {
  std::size_t width = 0;
  for (const Entry& e : positionals_) width = std::max(width, e.spec.size());
  for (const Entry& e : flags_) width = std::max(width, e.spec.size());

  std::string out = "usage: " + program_;
  if (!flags_.empty()) out += " [flags]";
  for (const Entry& e : positionals_) out += " [" + e.spec + "...]";
  out += "\n\n  " + summary_ + "\n";
  const auto section = [&](const char* title, const std::vector<Entry>& entries) {
    if (entries.empty()) return;
    out += "\n";
    out += title;
    out += ":\n";
    for (const Entry& e : entries) {
      out += "  " + e.spec + std::string(width - e.spec.size() + 2, ' ') + e.help + "\n";
    }
  };
  section("arguments", positionals_);
  section("flags", flags_);
  return out;
}

}  // namespace gtrix
