// Small statistics helpers used by metrics and benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gtrix {

/// Streaming summary accumulator (Welford's online algorithm for variance).
class Summary {
 public:
  void add(double x) noexcept;

  /// Merges another summary into this one (parallel Welford combine).
  void merge(const Summary& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept;
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7, the numpy default). q in [0, 1]. The input span is copied.
double quantile(std::span<const double> xs, double q);

/// Same, but for input already sorted ascending; no copy, no sort. Callers
/// extracting several quantiles should sort once and use this.
double quantile_sorted(std::span<const double> sorted_xs, double q);

/// Convenience: median.
double median(std::span<const double> xs);

/// Ordinary least squares fit y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = a + b*log2(x); useful for checking O(log D) scaling claims.
LinearFit fit_log2(std::span<const double> xs, std::span<const double> ys);

/// Histogram with uniform bins over [lo, hi]; values outside are clamped
/// into the first/last bin. Used for diagnostic printing.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }

  /// Renders a compact ASCII bar chart, one line per bin.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace gtrix
