// Small statistics helpers used by metrics and benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gtrix {

class CkptWriter;
class CkptCursor;

/// Streaming summary accumulator (Welford's online algorithm for variance).
class Summary {
 public:
  void add(double x) noexcept;

  /// Merges another summary into this one (parallel Welford combine).
  void merge(const Summary& other) noexcept;

  /// Checkpoint hooks (src/ckpt/state_ckpt.cpp): all six accumulator words.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept;
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Streaming quantile estimator (Jain & Chlamtac's P-squared algorithm):
/// five markers track the target quantile in O(1) memory and O(1) time per
/// observation, independent of stream length. Exact for the first five
/// observations, an estimate afterwards; the error is a property of the
/// sample distribution, not of the stream length (typically well under a
/// few percent of the sample range for unimodal data -- see
/// docs/scaling.md, "Quantile estimator error"). Deterministic: the same
/// observation sequence always yields the same estimate, so streaming-mode
/// campaign output stays byte-stable across thread counts.
class P2Quantile {
 public:
  /// `q` in (0, 1): the target quantile (0.5 = median).
  explicit P2Quantile(double q);

  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  /// Current estimate; NaN while empty. Exact while count() <= 5.
  double value() const noexcept;

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5] = {};        ///< marker heights q_0..q_4
  double positions_[5] = {};      ///< actual marker positions n_i
  double desired_[5] = {};        ///< desired marker positions n'_i
  double increments_[5] = {};     ///< dn'_i per observation
};

/// Streaming quantile sketch over non-negative values with a GUARANTEED
/// relative value error (DDSketch-style logarithmic binning): each
/// observation lands in the bin whose geometric midpoint is within
/// `relative_error` of it, so any reported quantile is within
/// `relative_error` of a true order statistic at that rank -- independent
/// of the distribution's shape. This is what the streaming metrics path
/// uses for skew-deviation percentiles: unlike P-squared markers, the
/// bound holds for multimodal and point-mass distributions too (the Fig. 5
/// oscillation workload wedges P2's p90 marker; see docs/scaling.md).
/// Memory is a fixed ~2000-bin count array; fully deterministic.
class LogQuantileSketch {
 public:
  explicit LogQuantileSketch(double relative_error = 0.01);

  /// x must be >= 0; values below 1e-9 count as zero.
  void add(double x) noexcept;
  std::size_t count() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }

  /// Value within relative_error of the rank-floor(q*(n-1)) order
  /// statistic; NaN while empty. q in [0, 1].
  double quantile(double q) const noexcept;

  std::uint64_t memory_bytes() const noexcept;

  /// Checkpoint hooks (src/ckpt/state_ckpt.cpp): bin counts and totals; the
  /// binning parameters are construction state and must already match.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  double gamma_;
  double inv_log_gamma_;
  std::int32_t min_index_;
  std::vector<std::uint64_t> counts_;  ///< bin i covers gamma^(i-1)..gamma^i
  std::uint64_t zero_ = 0;
  std::uint64_t overflow_high_ = 0;    ///< beyond the top bin (kept at top value)
  std::size_t total_ = 0;
};

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7, the numpy default). q in [0, 1]. The input span is copied.
double quantile(std::span<const double> xs, double q);

/// Same, but for input already sorted ascending; no copy, no sort. Callers
/// extracting several quantiles should sort once and use this.
double quantile_sorted(std::span<const double> sorted_xs, double q);

/// Convenience: median.
double median(std::span<const double> xs);

/// Ordinary least squares fit y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = a + b*log2(x); useful for checking O(log D) scaling claims.
LinearFit fit_log2(std::span<const double> xs, std::span<const double> ys);

/// Histogram with uniform bins over [lo, hi]; values outside are clamped
/// into the first/last bin. Used for diagnostic printing.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }

  /// Renders a compact ASCII bar chart, one line per bin.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace gtrix
