#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace gtrix {

namespace {

constexpr int kMaxDepth = 200;  // parser + writer recursion guard

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    throw JsonError("cannot serialize non-finite number");
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  std::string_view text(buf, static_cast<std::size_t>(res.ptr - buf));
  out += text;
  // Keep the value recognizably a double: "2" would parse back as an int.
  if (text.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

}  // namespace

Json::Json(unsigned long v) {
  if (v > static_cast<unsigned long>(std::numeric_limits<std::int64_t>::max())) {
    throw JsonError("integer too large for JSON int64");
  }
  type_ = Type::kInt;
  int_ = static_cast<std::int64_t>(v);
}

Json::Json(unsigned long long v) {
  if (v > static_cast<unsigned long long>(std::numeric_limits<std::int64_t>::max())) {
    throw JsonError("integer too large for JSON int64");
  }
  type_ = Type::kInt;
  int_ = static_cast<std::int64_t>(v);
}

Json Json::array(Array items) {
  Json j;
  j.type_ = Type::kArray;
  j.array_ = std::move(items);
  return j;
}

Json Json::object(Object members) {
  Json j;
  j.type_ = Type::kObject;
  j.object_ = std::move(members);
  return j;
}

const char* Json::type_name(Type t) noexcept {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void type_error(const char* expected, const char* actual) {
  throw JsonError(std::string("expected ") + expected + ", got " + actual);
}
}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_name());
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kInt) type_error("int", type_name());
  return int_;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::kInt) type_error("int", type_name());
  if (int_ < 0) throw JsonError("expected non-negative int, got " + std::to_string(int_));
  return static_cast<std::uint64_t>(int_);
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ != Type::kDouble) type_error("number", type_name());
  return double_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_name());
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_name());
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_name());
  return object_;
}

const Json* Json::find(std::string_view key) const {
  for (const Member& m : as_object()) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* j = find(key);
  if (j == nullptr) throw JsonError("missing key '" + std::string(key) + "'");
  return *j;
}

Json& Json::set(std::string_view key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_name());
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return m.second;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return object_.back().second;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_name());
  array_.push_back(std::move(value));
  return array_.back();
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_name());
}

const Json& Json::operator[](std::size_t i) const {
  const Array& a = as_array();
  if (i >= a.size()) {
    throw JsonError("array index " + std::to_string(i) + " out of range (size " +
                    std::to_string(a.size()) + ")");
  }
  return a[i];
}

bool Json::operator==(const Json& other) const {
  if (is_number() && other.is_number()) {
    if (type_ == Type::kInt && other.type_ == Type::kInt) return int_ == other.int_;
    return as_double() == other.as_double();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
    default: return false;  // numbers handled above
  }
}

// --- serialization ----------------------------------------------------------

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (depth > kMaxDepth) throw JsonError("serialization depth limit exceeded");
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, int_);
      out.append(buf, res.ptr);
      break;
    }
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parsing ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("line " + std::to_string(line) + ", column " + std::to_string(col) +
                    ": " + message);
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'" +
           (eof() ? ", got end of input" : std::string(", got '") + peek() + "'"));
    }
    ++pos_;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal (expected '" + std::string(literal) + "')");
    }
    pos_ += literal.size();
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting depth limit exceeded");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Json::object();
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      Json value = parse_value(depth + 1);
      for (const Json::Member& m : members) {
        if (m.first == key) fail("duplicate key '" + key + "'");
      }
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eof()) fail("unterminated object");
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Json::object(std::move(members));
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Json::array();
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Json::array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: --pos_; fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    // Combine surrogate pairs (non-BMP code points).
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (text_.substr(pos_, 2) != "\\u") fail("unpaired UTF-16 surrogate");
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    const std::size_t int_start = pos_;
    bool is_double = false;
    auto digits = [&] {
      bool any = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        any = true;
      }
      return any;
    };
    if (!digits()) {
      pos_ = start;
      fail(eof() ? "unexpected end of input"
                 : std::string("unexpected character '") + peek() + "'");
    }
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      pos_ = start;
      fail("leading zeros are not allowed");
    }
    if (!eof() && peek() == '.') {
      is_double = true;
      ++pos_;
      if (!digits()) fail("expected digits after decimal point");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) fail("expected digits in exponent");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t value = 0;
      const auto res = std::from_chars(token.begin(), token.end(), value);
      if (res.ec == std::errc() && res.ptr == token.end()) return Json(value);
      // Integer literal overflowing int64: fall through to double.
    }
    double value = 0.0;
    const auto res = std::from_chars(token.begin(), token.end(), value);
    if (res.ec != std::errc() || res.ptr != token.end()) {
      pos_ = start;
      fail("invalid number '" + std::string(token) + "'");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace gtrix
