// Minimal dependency-free JSON reader/writer for scenario files and
// structured result emission.
//
// Design points that matter for this repository:
//  * Objects preserve insertion order (std::vector of members, not a map),
//    so serialization is deterministic and scenario files stay readable in
//    the order their author wrote them.
//  * Numbers keep their parsed representation: an integer literal stays a
//    64-bit integer, everything else is a double. Doubles serialize via
//    std::to_chars (shortest round-trip form), with a ".0" suffix added to
//    integral-looking values so the int/double distinction survives a
//    dump/parse cycle. This makes emitted result files byte-stable across
//    runs and thread counts.
//  * All accessors throw JsonError with a message naming the actual and the
//    expected type; parse errors carry line:column positions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gtrix {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kInt), int_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned long v);
  Json(unsigned long long v);
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json array(Array items = {});
  static Json object(Object members = {});

  Type type() const noexcept { return type_; }
  const char* type_name() const noexcept { return type_name(type_); }
  static const char* type_name(Type t) noexcept;

  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_int() const noexcept { return type_ == Type::kInt; }
  bool is_double() const noexcept { return type_ == Type::kDouble; }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; each throws JsonError naming actual vs expected type.
  bool as_bool() const;
  std::int64_t as_int() const;   ///< integers only (a double 3.0 is rejected)
  std::uint64_t as_u64() const;  ///< non-negative integers only
  double as_double() const;      ///< accepts both int and double
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // --- object helpers -------------------------------------------------------
  /// First member with this key, or nullptr. Objects only (throws otherwise).
  const Json* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Like find() but throws JsonError("missing key 'k'") when absent.
  const Json& at(std::string_view key) const;
  /// Inserts or overwrites; insertion order is preserved for new keys.
  Json& set(std::string_view key, Json value);

  // --- array helpers --------------------------------------------------------
  Json& push_back(Json value);
  std::size_t size() const;  ///< element/member count (arrays and objects)
  const Json& operator[](std::size_t i) const;

  /// Serializes. indent < 0 -> compact one-line form; indent >= 0 -> pretty
  /// form with that many spaces per level. Deterministic for a given value.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (rejects trailing garbage). Throws
  /// JsonError with "line L, column C" context on malformed input.
  static Json parse(std::string_view text);

  /// Deep equality. Numbers compare by value across the int/double divide
  /// (int 2 == double 2.0); everything else compares strictly.
  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace gtrix
