#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace gtrix {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
  // All-zero state is invalid for xoshiro; SplitMix64 cannot emit four
  // consecutive zeros, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  __extension__ using uint128 = unsigned __int128;
  std::uint64_t x = next_u64();
  uint128 m = static_cast<uint128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<uint128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

Rng Rng::split(std::string_view label) noexcept {
  return Rng(next_u64() ^ fnv1a64(label));
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (void)next_u64();
    }
  }
  state_ = acc;
}

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : s) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace gtrix
