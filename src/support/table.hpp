// Aligned plain-text table rendering for benchmark harness output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gtrix {

/// Builds a column-aligned ASCII table. Numeric cells are formatted with a
/// configurable precision; the header row is separated by a rule.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Cells are appended with operator<< style add() calls.
  Table& row();
  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(double value, int precision = 3);
  Table& add(std::int64_t value);
  Table& add(std::uint64_t value);
  Table& add(int value);

  /// Renders the table, including header and separator rule.
  std::string render() const;

  /// Renders as comma-separated values (no alignment), for machine use.
  std::string render_csv() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming to a compact width.
std::string format_double(double value, int precision = 3);

}  // namespace gtrix
