#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace gtrix {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double combined = n1 + n2;
  mean_ += delta * n2 / combined;
  m2_ += other.m2_ + delta * delta * n1 * n2 / combined;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double Summary::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::min() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double Summary::max() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_log2(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) lx[i] = std::log2(xs[i]);
  return fit_linear(lx, ys);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  const auto nbins = counts_.size();
  double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(nbins));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(nbins) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double left = lo_ + bin_width * static_cast<double>(i);
    const auto bar = counts_[i] * width / peak;
    out << "[" << left << ", " << left + bin_width << ") ";
    for (std::size_t j = 0; j < bar; ++j) out << '#';
    out << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace gtrix
