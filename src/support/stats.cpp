#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace gtrix {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double combined = n1 + n2;
  mean_ += delta * n2 / combined;
  m2_ += other.m2_ + delta * delta * n1 * n2 / combined;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double Summary::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double Summary::variance() const noexcept {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::min() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double Summary::max() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
  if (n_ < 5) {
    // Bootstrap: collect the first five observations sorted; the estimate
    // is exact order statistics until the markers take over.
    heights_[n_] = x;
    ++n_;
    std::sort(heights_, heights_ + n_);
    if (n_ == 5) {
      for (int i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }

  // Locate the cell k the new observation falls into, extending extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++n_;

  // Adjust the three interior markers toward their desired positions via
  // the piecewise-parabolic (P^2) height update, falling back to linear
  // interpolation when the parabolic step would leave the height ordered
  // inconsistently with its neighbours.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double step_up = positions_[i + 1] - positions_[i];
    const double step_dn = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && step_up > 1.0) || (d <= -1.0 && step_dn < -1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double np = positions_[i];
      const double parabolic =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((np - positions_[i - 1] + sign) * (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - np) +
               (positions_[i + 1] - np - sign) * (heights_[i] - heights_[i - 1]) /
                   (np - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (n_ < 5) {
    // Exact type-7 quantile over the sorted bootstrap buffer.
    const double pos = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, n_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return heights_[lo] * (1.0 - frac) + heights_[hi] * frac;
  }
  return heights_[2];
}

LogQuantileSketch::LogQuantileSketch(double relative_error) {
  const double e = std::clamp(relative_error, 1e-4, 0.5);
  gamma_ = (1.0 + e) / (1.0 - e);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  // Bin indices for the value range [1e-9, 1e12]: everything a simulated
  // time difference can plausibly be. Values below count as zero; values
  // above saturate into the top bin (counted separately for visibility).
  min_index_ = static_cast<std::int32_t>(std::floor(std::log(1e-9) * inv_log_gamma_));
  const auto max_index = static_cast<std::int32_t>(std::ceil(std::log(1e12) * inv_log_gamma_));
  counts_.assign(static_cast<std::size_t>(max_index - min_index_ + 1), 0);
}

void LogQuantileSketch::add(double x) noexcept {
  ++total_;
  if (!(x >= 1e-9)) {  // negatives/NaN defensively count as zero too
    ++zero_;
    return;
  }
  const auto index = static_cast<std::int32_t>(std::ceil(std::log(x) * inv_log_gamma_));
  if (index < min_index_) {
    ++zero_;
    return;
  }
  const auto offset = static_cast<std::size_t>(index - min_index_);
  if (offset >= counts_.size()) {
    ++overflow_high_;
    ++counts_.back();
    return;
  }
  ++counts_[offset];
}

double LogQuantileSketch::quantile(double q) const noexcept {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Type-7 semantics: interpolate between the order statistics bracketing
  // position q*(n-1). Each statistic is read from its bin's geometric
  // midpoint (within relative_error of the true value), so the result
  // matches an exact type-7 quantile to ~relative_error even when adjacent
  // tail statistics sit far apart.
  const double pos = q * static_cast<double>(total_ - 1);
  const auto rank_lo = static_cast<std::uint64_t>(pos);
  const double frac = pos - static_cast<double>(rank_lo);
  const std::uint64_t rank_hi = rank_lo + (frac > 0.0 ? 1 : 0);

  const auto value_of_bin = [this](std::size_t i) {
    const double upper = std::exp(
        static_cast<double>(static_cast<std::int32_t>(i) + min_index_) / inv_log_gamma_);
    return upper * 2.0 / (1.0 + gamma_);
  };
  double lo_value = 0.0;
  bool lo_found = false;
  std::uint64_t cumulative = zero_;
  if (rank_lo < cumulative) {
    lo_value = 0.0;
    lo_found = true;
    if (rank_hi < cumulative) return 0.0;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (!lo_found && rank_lo < cumulative) {
      lo_value = value_of_bin(i);
      lo_found = true;
    }
    if (lo_found && rank_hi < cumulative) {
      const double hi_value = counts_[i] > 0 && rank_hi < cumulative ? value_of_bin(i) : lo_value;
      return lo_value + frac * (hi_value - lo_value);
    }
  }
  return lo_found ? lo_value : std::numeric_limits<double>::quiet_NaN();
}

std::uint64_t LogQuantileSketch::memory_bytes() const noexcept {
  return counts_.size() * sizeof(std::uint64_t) + sizeof(*this);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_log2(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) lx[i] = std::log2(xs[i]);
  return fit_linear(lx, ys);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  const auto nbins = counts_.size();
  double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(nbins));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(nbins) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double left = lo_ + bin_width * static_cast<double>(i);
    const auto bar = counts_[i] * width / peak;
    out << "[" << left << ", " << left + bin_width << ") ";
    for (std::size_t j = 0; j < bar; ++j) out << '#';
    out << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace gtrix
