// Lightweight runtime precondition checking (always on, including release
// builds: simulator correctness matters more than the last few percent of
// speed, and the checks below are all O(1)).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace gtrix {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  throw std::logic_error(std::string("check failed: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (message.empty() ? "" : ": " + message));
}

/// Checked narrowing to uint32 with an explicit ceiling. Mega-grid shapes
/// (layers x base nodes) are computed in 64 bits and must pass through here
/// before they become a RecNodeId / GridNodeId / vector size, so a config
/// that would silently wrap past 2^32 fails with the *value* in the message
/// instead of truncating into a small, wrong, allocatable count.
inline std::uint32_t checked_u32(std::uint64_t value, const std::string& what,
                                 std::uint64_t ceiling =
                                     std::numeric_limits<std::uint32_t>::max()) {
  if (value > ceiling) {
    throw std::overflow_error(what + " = " + std::to_string(value) +
                              " exceeds the supported maximum of " + std::to_string(ceiling));
  }
  return static_cast<std::uint32_t>(value);
}

/// Checked uint32 product (e.g. layers * base nodes). `ceiling` defaults to
/// 2^32 - 2 so that count + 1 sentinel slots (the line-mode clock source)
/// still fit a uint32.
inline std::uint32_t checked_u32_mul(std::uint32_t a, std::uint32_t b, const std::string& what,
                                     std::uint64_t ceiling =
                                         std::numeric_limits<std::uint32_t>::max() - 1) {
  return checked_u32(static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b), what,
                     ceiling);
}

}  // namespace gtrix

// NOLINTNEXTLINE -- function-style macro is the conventional spelling here.
#define GTRIX_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) ::gtrix::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define GTRIX_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::gtrix::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Debug-build invariant assertions (cmake -DGTRIX_DEBUG_CHECKS=ON; the
// sanitizer CI jobs enable them). Unlike GTRIX_CHECK these may sit on hot
// paths or perform O(n) walks, so release builds compile them out -- the
// expression is still parsed (if (false)) so it cannot rot.
#ifdef GTRIX_DEBUG_CHECKS
#define GTRIX_DEBUG_CHECK(expr) GTRIX_CHECK(expr)
#define GTRIX_DEBUG_CHECK_MSG(expr, msg) GTRIX_CHECK_MSG(expr, msg)
#else
#define GTRIX_DEBUG_CHECK(expr) \
  do {                          \
    if (false) {                \
      (void)(expr);             \
    }                           \
  } while (false)
#define GTRIX_DEBUG_CHECK_MSG(expr, msg) \
  do {                                   \
    if (false) {                         \
      (void)(expr);                      \
      (void)(msg);                       \
    }                                    \
  } while (false)
#endif
