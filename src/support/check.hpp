// Lightweight runtime precondition checking (always on, including release
// builds: simulator correctness matters more than the last few percent of
// speed, and the checks below are all O(1)).
#pragma once

#include <stdexcept>
#include <string>

namespace gtrix {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  throw std::logic_error(std::string("check failed: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (message.empty() ? "" : ": " + message));
}

}  // namespace gtrix

// NOLINTNEXTLINE -- function-style macro is the conventional spelling here.
#define GTRIX_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) ::gtrix::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define GTRIX_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::gtrix::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
