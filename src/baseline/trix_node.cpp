#include "baseline/trix_node.hpp"

#include "support/check.hpp"

namespace gtrix {

TrixNaiveNode::TrixNaiveNode(Simulator& sim, Network& net, NetNodeId self,
                             HardwareClock clock, std::vector<NetNodeId> preds,
                             Params params, Recorder* recorder, TrixSoa* soa)
    : sim_(sim),
      net_(net),
      self_(self),
      clock_(std::move(clock)),
      preds_(std::move(preds)),
      params_(params),
      recorder_(recorder) {
  GTRIX_CHECK_MSG(preds_.size() >= 2 && preds_.size() <= kMaxSlots,
                  "naive TRIX node needs 2..5 predecessors");
  if (soa == nullptr) {
    owned_soa_ = std::make_unique<TrixSoa>();
    soa = owned_soa_.get();
  }
  soa_ = soa;
  i_ = soa_->add_node(static_cast<std::uint32_t>(preds_.size()));
  slot_base_ = soa_->slot_base[i_];
}

int TrixNaiveNode::slot_of(NetNodeId from) const {
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (preds_[i] == from) return static_cast<int>(i);
  }
  return -1;
}

void TrixNaiveNode::on_pulse(NetNodeId from, EdgeId /*edge*/, const Pulse& pulse,
                             SimTime now) {
  const int slot = slot_of(from);
  if (slot < 0) return;
  const LocalTime h = clock_.to_local(now);
  if (seen(static_cast<std::size_t>(slot))) {
    // Second message from the same predecessor within this iteration: it
    // belongs to the next wave; queue it.
    if (pending_.size() >= kPendingCap) pending_.pop_front();
    pending_.push_back(PendingMsg{from, h, pulse.stamp});
    return;
  }
  process(from, h, pulse.stamp, now);
}

void TrixNaiveNode::process(NetNodeId from, LocalTime h, Sigma sigma, SimTime /*now*/) {
  const auto slot = static_cast<std::size_t>(slot_of(from));
  seen(slot) = 1;
  slot_sigma(slot) = sigma;
  ++seen_count();
  if (seen_count() == 2 && !armed()) {
    // Second copy: forward after the nominal wait (the paper's "wait for
    // the second copy of each pulse before forwarding", Fig. 1).
    armed() = 1;
    const LocalTime target = h + params_.lambda - params_.d;
    fire_timer() =
        sim_.at(clock_.to_real(target), this, kFire, EventPayload{.f = target});
  }
}

void TrixNaiveNode::on_timer(const Event& event) {
  fire_timer().reset();
  fire(event.time, event.payload.f);
}

void TrixNaiveNode::fire(SimTime now, LocalTime fire_local) {
  (void)fire_local;
  const Sigma sigma = estimate_sigma();
  if (recorder_ != nullptr) recorder_->record_pulse(self_, sigma, now);
  ++forwarded_;
  net_.broadcast(self_, Pulse{sigma});
  reset();
  while (!pending_.empty() && !armed()) {
    const PendingMsg msg = pending_.front();
    pending_.pop_front();
    if (!seen(static_cast<std::size_t>(slot_of(msg.from)))) {
      process(msg.from, msg.h_arrival, msg.sigma, now);
    }
  }
}

void TrixNaiveNode::reset() {
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    seen(i) = 0;
    slot_sigma(i) = 0;
  }
  seen_count() = 0;
  armed() = 0;
  sim_.cancel(fire_timer());
}

Sigma TrixNaiveNode::estimate_sigma() const {
  std::array<Sigma, kMaxSlots> vals{};
  std::size_t n = 0;
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (seen(i)) vals[n++] = slot_sigma(i);
  }
  if (n == 0) return 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t same = 0;
    for (std::size_t j = 0; j < n; ++j) same += vals[j] == vals[i] ? 1U : 0U;
    if (same >= 2) return vals[i];
  }
  if (seen(0)) return slot_sigma(0);
  return vals[0];
}

}  // namespace gtrix
