// Baseline: HEX clock distribution [DFL+16] (paper Fig. 1, right).
//
// Nodes sit on a columns x layers grid. Node (c, l) has up to four
// in-neighbours: (c-1, l-1) and (c, l-1) on the preceding layer plus
// (c-1, l) and (c+1, l) on its own layer; it generates its pulse for wave k
// as soon as the *second* copy of wave k arrives and then broadcasts to
// (c, l+1), (c+1, l+1) and its same-layer neighbours.
//
// The pathology this reproduces: when a preceding-layer neighbour crashes,
// a node ends up waiting for a same-layer copy, which arrives a full
// message delay (~d) late -- each fault costs ~d of local skew, versus ~u
// for TRIX and O(kappa log D) for Gradient TRIX.
//
// Self-contained simulation (the HEX grid differs from the TRIX grid); the
// harness only needs skew profiles, not the full metrics stack.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace gtrix {

struct HexConfig {
  std::uint32_t columns = 16;
  std::uint32_t layers = 16;
  double d = 1000.0;   ///< maximum link delay
  double u = 10.0;     ///< delay uncertainty
  double period = 2000.0;  ///< input period at layer 0
  double input_jitter = 10.0;  ///< static per-node offset bound at layer 0
  std::int64_t pulses = 20;
  std::uint64_t seed = 1;
  /// Crashed nodes as (column, layer) pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> crashes;
};

struct HexResult {
  /// max_k max_c |t^k_{c,l} - t^k_{c+1,l}| per layer (crashed nodes skipped).
  std::vector<double> intra_by_layer;
  double max_intra = 0.0;
  /// Max skew over layers strictly before the first crash: the region a
  /// crash cannot affect (its dent spreads only downstream).
  double max_intra_away_from_faults = 0.0;
  std::uint64_t pulses_fired = 0;
};

HexResult run_hex(const HexConfig& config);

}  // namespace gtrix
