// Baseline: the Lynch-Welch fault-tolerant clock synchronization algorithm
// [WL88] (paper Table 1, row "LW"). Complete graph (D = 1), tolerates
// f < n/3 Byzantine nodes, O(1) skew (in u).
//
// Round structure: every round each node broadcasts a pulse when its local
// estimate of round start is reached; each node collects the n reception
// times, discards the f smallest and f largest, and adjusts its clock by
// the midpoint of the remaining extremes minus its own expected reception
// time. Skews contract towards ~u + drift per round.
//
// Self-contained simulation; used by the Table 1 harness to show the
// complete-graph reference point.
#pragma once

#include <cstdint>
#include <vector>

namespace gtrix {

struct LynchWelchConfig {
  std::uint32_t n = 8;        ///< nodes (complete graph)
  std::uint32_t f = 2;        ///< tolerated Byzantine nodes (< n/3)
  double d = 1000.0;          ///< max message delay
  double u = 10.0;            ///< delay uncertainty
  double theta = 1.0005;      ///< hardware clock rate bound
  double round_length = 4000.0;  ///< nominal local time per round
  std::uint32_t rounds = 20;
  double initial_spread = 200.0;  ///< initial clock offsets in [0, spread)
  std::uint64_t seed = 1;
  std::uint32_t byzantine = 0;  ///< actual faulty nodes (pulse at random times)
};

struct LynchWelchResult {
  /// Max |t_i - t_j| over correct nodes' pulse times, per round.
  std::vector<double> skew_by_round;
  double final_skew = 0.0;
  double max_skew_after_convergence = 0.0;  ///< max over the last half
};

LynchWelchResult run_lynch_welch(const LynchWelchConfig& config);

}  // namespace gtrix
