// Baseline: naive TRIX pulse forwarding [LW20] on the same grid as the
// Gradient TRIX algorithm. Each node waits for the *second* copy of a pulse
// from its (up to three) predecessors and forwards Lambda - d local time
// later. Resilient to one faulty predecessor, but skews accumulate
// Theta(u D) across layers (paper Fig. 1 left) -- the pathology Gradient
// TRIX removes.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "clock/hardware_clock.hpp"
#include "core/node_state.hpp"
#include "core/params.hpp"
#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gtrix {

class TrixNaiveNode final : public PulseSink, public TimerTarget {
 public:
  /// Hot per-wave state lives in `soa` (the World arena's trix lanes);
  /// null falls back to a private single-entry arena.
  TrixNaiveNode(Simulator& sim, Network& net, NetNodeId self, HardwareClock clock,
                std::vector<NetNodeId> preds, Params params, Recorder* recorder,
                TrixSoa* soa = nullptr);

  void on_pulse(NetNodeId from, EdgeId edge, const Pulse& pulse, SimTime now) override;

  void on_timer(const Event& event) override;

  std::uint64_t pulses_forwarded() const noexcept { return forwarded_; }

  /// Checkpoint hooks (src/ckpt/nodes_ckpt.cpp): per-wave arena registers,
  /// pending queue and forwarded counter.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  enum TimerKind : std::uint32_t { kFire = 1 };

  static constexpr std::size_t kMaxSlots = 5;
  static constexpr std::size_t kPendingCap = 16;

  struct PendingMsg {
    NetNodeId from;
    LocalTime h_arrival;
    Sigma sigma;
  };

  int slot_of(NetNodeId from) const;
  void process(NetNodeId from, LocalTime h, Sigma sigma, SimTime now);
  void fire(SimTime now, LocalTime fire_local);
  void reset();
  Sigma estimate_sigma() const;

  // Arena accessors for the per-wave registers.
  std::uint8_t& armed() { return soa_->armed[i_]; }
  std::uint32_t& seen_count() { return soa_->seen_count[i_]; }
  TimerHandle& fire_timer() { return soa_->fire_timer[i_]; }
  std::uint8_t& seen(std::size_t slot) { return soa_->slot_seen[slot_base_ + slot]; }
  std::uint8_t seen(std::size_t slot) const { return soa_->slot_seen[slot_base_ + slot]; }
  Sigma& slot_sigma(std::size_t slot) { return soa_->slot_sigma[slot_base_ + slot]; }
  Sigma slot_sigma(std::size_t slot) const { return soa_->slot_sigma[slot_base_ + slot]; }

  Simulator& sim_;
  Network& net_;
  NetNodeId self_;
  HardwareClock clock_;
  std::vector<NetNodeId> preds_;
  Params params_;
  Recorder* recorder_;

  std::unique_ptr<TrixSoa> owned_soa_;  // fallback only
  TrixSoa* soa_;
  std::uint32_t i_;
  std::uint32_t slot_base_;

  std::deque<PendingMsg> pending_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace gtrix
