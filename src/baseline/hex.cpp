#include "baseline/hex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace gtrix {

namespace {

struct HexNodeState {
  std::map<std::int64_t, std::uint32_t> copies;  // wave -> copies received
  std::int64_t fired_watermark = 0;              // waves <= this already fired
  bool crashed = false;
};

struct HexSim final : TimerTarget {
  /// Payload conventions: kReceive a=column, b=layer, i=wave;
  /// kSourceEmit a=column, i=wave.
  enum TimerKind : std::uint32_t { kReceive = 1, kSourceEmit = 2 };

  const HexConfig& cfg;
  Simulator sim;
  Rng rng;
  std::vector<HexNodeState> state;                       // index c + l * columns
  std::vector<std::vector<std::vector<double>>> times;   // [c][l][k], NaN = none
  std::uint64_t fired = 0;

  explicit HexSim(const HexConfig& c)
      : cfg(c), rng(c.seed ^ 0x48455821ULL) {
    state.resize(static_cast<std::size_t>(cfg.columns) * cfg.layers);
    times.assign(cfg.columns,
                 std::vector<std::vector<double>>(
                     cfg.layers, std::vector<double>(
                                     static_cast<std::size_t>(cfg.pulses) + 1,
                                     std::numeric_limits<double>::quiet_NaN())));
  }

  std::size_t index(std::uint32_t c, std::uint32_t l) const {
    return static_cast<std::size_t>(l) * cfg.columns + c;
  }

  double edge_delay() { return rng.uniform(cfg.d - cfg.u, cfg.d); }

  /// Next-layer targets of (c, l): (c, l+1), (c+1, l+1), with mirrored
  /// feeds at both boundaries so every node has two preceding-layer
  /// in-neighbours (the HEX boundary treatment).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> up_neighbors(std::uint32_t c,
                                                                    std::uint32_t l) const {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    if (l + 1 >= cfg.layers) return out;
    out.emplace_back(c, l + 1);
    if (c + 1 < cfg.columns) {
      out.emplace_back(c + 1, l + 1);
    } else if (c > 0) {
      out.emplace_back(c - 1, l + 1);  // right boundary mirror
    }
    if (c == 1) out.emplace_back(0, l + 1);  // left boundary mirror
    return out;
  }

  /// Out-neighbours of (c, l): next layer plus same-layer (c-1, l), (c+1, l).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out_neighbors(std::uint32_t c,
                                                                     std::uint32_t l) const {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out = up_neighbors(c, l);
    if (c > 0) out.emplace_back(c - 1, l);
    if (c + 1 < cfg.columns) out.emplace_back(c + 1, l);
    return out;
  }

  void deliver(std::uint32_t c, std::uint32_t l, std::int64_t wave, SimTime t) {
    sim.at(t, this, kReceive, EventPayload{.a = c, .b = l, .i = wave});
  }

  void on_timer(const Event& event) override {
    const EventPayload& p = event.payload;
    if (event.kind == kReceive) {
      receive(p.a, p.b, p.i, event.time);
      return;
    }
    // kSourceEmit: a layer-0 emitter fires wave k and feeds the next layer.
    ++fired;
    times[p.a][0][static_cast<std::size_t>(p.i)] = event.time;
    for (const auto& [nc, nl] : up_neighbors(p.a, 0)) {
      deliver(nc, nl, p.i, event.time + edge_delay());
    }
  }

  void receive(std::uint32_t c, std::uint32_t l, std::int64_t wave, SimTime now) {
    HexNodeState& node = state[index(c, l)];
    if (node.crashed || wave <= node.fired_watermark) return;
    const std::uint32_t copies = ++node.copies[wave];
    if (copies >= 2) {
      node.copies.erase(wave);
      node.fired_watermark = std::max(node.fired_watermark, wave);
      fire(c, l, wave, now);
    }
  }

  void fire(std::uint32_t c, std::uint32_t l, std::int64_t wave, SimTime now) {
    ++fired;
    if (wave >= 1 && wave <= cfg.pulses) {
      times[c][l][static_cast<std::size_t>(wave)] = now;
    }
    for (const auto& [nc, nl] : out_neighbors(c, l)) {
      if (nl == l && nc != c && state[index(nc, nl)].crashed) continue;
      deliver(nc, nl, wave, now + edge_delay());
    }
  }

  void run() {
    // Mark crashes.
    for (const auto& [c, l] : cfg.crashes) {
      GTRIX_CHECK(c < cfg.columns && l < cfg.layers);
      state[index(c, l)].crashed = true;
    }
    // Layer 0: emitters with static per-column offsets.
    std::vector<double> offsets(cfg.columns);
    for (auto& o : offsets) o = rng.uniform(0.0, cfg.input_jitter);
    for (std::uint32_t c = 0; c < cfg.columns; ++c) {
      if (state[index(c, 0)].crashed) continue;
      for (std::int64_t k = 1; k <= cfg.pulses; ++k) {
        const SimTime t = static_cast<double>(k) * cfg.period + offsets[c];
        sim.at(t, this, kSourceEmit, EventPayload{.a = c, .i = k});
      }
    }
    sim.run_all();
  }
};

}  // namespace

HexResult run_hex(const HexConfig& config) {
  HexSim hex(config);
  hex.run();

  // A crash dents the wavefront by ~d; the dent's cliff spreads outward one
  // column per layer (the "+d per fault" pathology of HEX), so the only
  // region guaranteed unaffected is the layers before the first crash.
  std::uint32_t first_crash_layer = config.layers;
  for (const auto& [c, l] : config.crashes) {
    (void)c;
    first_crash_layer = std::min(first_crash_layer, l);
  }
  auto crashed = [&](std::uint32_t c, std::uint32_t l) {
    return hex.state[hex.index(c, l)].crashed;
  };

  HexResult result;
  result.pulses_fired = hex.fired;
  result.intra_by_layer.assign(config.layers, 0.0);
  const std::int64_t k_lo = std::min<std::int64_t>(3, config.pulses);
  const std::int64_t k_hi = std::max<std::int64_t>(k_lo, config.pulses - 2);
  for (std::uint32_t l = 0; l < config.layers; ++l) {
    double worst = 0.0;
    double worst_away = 0.0;
    for (std::uint32_t c = 0; c + 1 < config.columns; ++c) {
      if (crashed(c, l) || crashed(c + 1, l)) continue;
      for (std::int64_t k = k_lo; k <= k_hi; ++k) {
        const double ta = hex.times[c][l][static_cast<std::size_t>(k)];
        const double tb = hex.times[c + 1][l][static_cast<std::size_t>(k)];
        if (std::isnan(ta) || std::isnan(tb)) continue;
        const double skew = std::abs(ta - tb);
        worst = std::max(worst, skew);
        if (l < first_crash_layer) worst_away = std::max(worst_away, skew);
      }
    }
    result.intra_by_layer[l] = worst;
    result.max_intra = std::max(result.max_intra, worst);
    result.max_intra_away_from_faults = std::max(result.max_intra_away_from_faults, worst_away);
  }
  return result;
}

}  // namespace gtrix
