#include "baseline/lw_grid.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace gtrix {

LynchWelchGridNode::LynchWelchGridNode(Simulator& sim, Network& net, NetNodeId self,
                                       HardwareClock clock, std::vector<NetNodeId> preds,
                                       Params params, std::uint32_t trim, Recorder* recorder,
                                       LwSoa* soa)
    : sim_(sim),
      net_(net),
      self_(self),
      clock_(std::move(clock)),
      preds_(std::move(preds)),
      params_(params),
      trim_(trim),
      recorder_(recorder) {
  GTRIX_CHECK_MSG(preds_.size() >= 2, "LW grid node needs at least 2 predecessors");
  // Clamp so the trimmed window keeps at least its two extremes.
  const auto max_trim = static_cast<std::uint32_t>((preds_.size() - 1) / 2);
  trim_ = std::min(trim_, max_trim);
  if (soa == nullptr) {
    owned_soa_ = std::make_unique<LwSoa>();
    soa = owned_soa_.get();
  }
  soa_ = soa;
  i_ = soa_->add_node(static_cast<std::uint32_t>(preds_.size()));
  slot_base_ = soa_->slot_base[i_];
}

int LynchWelchGridNode::slot_of(NetNodeId from) const {
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (preds_[i] == from) return static_cast<int>(i);
  }
  return -1;
}

void LynchWelchGridNode::on_pulse(NetNodeId from, EdgeId /*edge*/, const Pulse& pulse,
                                  SimTime now) {
  const int slot = slot_of(from);
  if (slot < 0) return;
  const LocalTime h = clock_.to_local(now);
  if (seen(static_cast<std::size_t>(slot))) {
    // A second pulse from the same predecessor belongs to the next wave.
    // Dropping one would leave a wave permanently incomplete (the node only
    // fires on a FULL reception set), so overflow is a hard error rather
    // than the silent deadlock a pop_front would cause.
    GTRIX_CHECK_MSG(pending_.size() < kPendingCap,
                    "LW grid node pending-queue overflow: predecessors ran more than "
                    "kPendingCap pulses ahead");
    pending_.push_back(PendingMsg{from, h, pulse.stamp});
    return;
  }
  process(from, h, pulse.stamp);
}

void LynchWelchGridNode::process(NetNodeId from, LocalTime h, Sigma sigma) {
  const auto slot = static_cast<std::size_t>(slot_of(from));
  seen(slot) = 1;
  slot_arrival(slot) = h;
  slot_sigma(slot) = sigma;
  ++seen_count();
  if (seen_count() < preds_.size()) return;

  // Full reception set: trimmed midpoint of the arrival times. Sorting in
  // the arena's shared scratch buffer keeps the per-wave path
  // allocation-free (one World runs single-threaded).
  std::vector<LocalTime>& scratch = soa_->fire_scratch;
  scratch.assign(soa_->slot_arrival.begin() + slot_base_,
                 soa_->slot_arrival.begin() + slot_base_ + preds_.size());
  std::sort(scratch.begin(), scratch.end());
  const LocalTime lo = scratch[trim_];
  const LocalTime hi = scratch[scratch.size() - 1 - trim_];
  const LocalTime target = (lo + hi) / 2.0 + params_.lambda - params_.d;
  fire_timer() = sim_.at(clock_.to_real(std::max(target, clock_.to_local(sim_.now()))), this,
                         kFire, EventPayload{});
}

void LynchWelchGridNode::on_timer(const Event& event) {
  fire_timer().reset();
  fire(event.time);
}

void LynchWelchGridNode::fire(SimTime now) {
  const Sigma sigma = estimate_sigma();
  if (recorder_ != nullptr) recorder_->record_pulse(self_, sigma, now);
  ++forwarded_;
  net_.broadcast(self_, Pulse{sigma});
  reset();
  // Deliver each predecessor's earliest queued pulse into the new wave,
  // LEAVING later duplicates queued: a predecessor two waves ahead must not
  // lose its second queued pulse (per-predecessor order within the deque is
  // arrival order, so a front-to-back scan takes the earliest first).
  for (auto it = pending_.begin(); it != pending_.end() && seen_count() < preds_.size();) {
    if (seen(static_cast<std::size_t>(slot_of(it->from)))) {
      ++it;
      continue;
    }
    const PendingMsg msg = *it;
    it = pending_.erase(it);
    process(msg.from, msg.h_arrival, msg.sigma);
  }
}

void LynchWelchGridNode::reset() {
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    seen(i) = 0;
    slot_sigma(i) = 0;
  }
  seen_count() = 0;
  sim_.cancel(fire_timer());
}

Sigma LynchWelchGridNode::estimate_sigma() const {
  // Majority stamp over the full reception set, falling back to the own
  // copy's stamp (slot 0).
  const std::size_t n = preds_.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t same = 0;
    for (std::size_t j = 0; j < n; ++j) {
      same += slot_sigma(j) == slot_sigma(i) ? 1U : 0U;
    }
    if (same * 2 > n) return slot_sigma(i);
  }
  return slot_sigma(0);
}

}  // namespace gtrix
