// Baseline: Lynch-Welch-style trimmed-midpoint forwarding [WL88] adapted to
// the TRIX grid (paper Table 1, row "LW", transplanted from the complete
// graph onto the layered topology).
//
// Each node collects the reception times of ALL its predecessors' pulses,
// discards the `trim` earliest and `trim` latest, and fires Lambda - d
// local time after the midpoint of the remaining extremes. This is the
// classic approximate-agreement correction; unlike Gradient TRIX it has no
// gradient property and unlike naive TRIX it needs every predecessor to
// pulse (a silent predecessor stalls it), so the config layer rejects fault
// plans for it outright.
//
// The closed-form complete-graph simulation lives in baseline/lynch_welch.*;
// this node exists so the same algorithm family is addressable through the
// AlgorithmProvider registry on any topology.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "clock/hardware_clock.hpp"
#include "core/node_state.hpp"
#include "core/params.hpp"
#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace gtrix {

class LynchWelchGridNode final : public PulseSink, public TimerTarget {
 public:
  /// `preds` lists the predecessors' network ids, own copy first (exactly
  /// Grid::predecessors). `trim` receptions are discarded on each side; it
  /// is clamped so at least two receptions survive. Hot per-wave state
  /// lives in `soa` (the World arena's lw lanes); null falls back to a
  /// private single-entry arena.
  LynchWelchGridNode(Simulator& sim, Network& net, NetNodeId self, HardwareClock clock,
                     std::vector<NetNodeId> preds, Params params, std::uint32_t trim,
                     Recorder* recorder, LwSoa* soa = nullptr);

  void on_pulse(NetNodeId from, EdgeId edge, const Pulse& pulse, SimTime now) override;
  void on_timer(const Event& event) override;

  std::uint64_t pulses_forwarded() const noexcept { return forwarded_; }
  std::uint32_t effective_trim() const noexcept { return trim_; }

  /// Checkpoint hooks (src/ckpt/nodes_ckpt.cpp): per-wave arena registers,
  /// pending queue and forwarded counter.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  enum TimerKind : std::uint32_t { kFire = 1 };

  static constexpr std::size_t kPendingCap = 32;

  struct PendingMsg {
    NetNodeId from;
    LocalTime h_arrival;
    Sigma sigma;
  };

  int slot_of(NetNodeId from) const;
  void process(NetNodeId from, LocalTime h, Sigma sigma);
  void fire(SimTime now);
  void reset();
  Sigma estimate_sigma() const;

  // Arena accessors for the per-wave registers.
  std::uint32_t& seen_count() { return soa_->seen_count[i_]; }
  std::uint32_t seen_count() const { return soa_->seen_count[i_]; }
  TimerHandle& fire_timer() { return soa_->fire_timer[i_]; }
  std::uint8_t& seen(std::size_t slot) { return soa_->slot_seen[slot_base_ + slot]; }
  std::uint8_t seen(std::size_t slot) const { return soa_->slot_seen[slot_base_ + slot]; }
  LocalTime& slot_arrival(std::size_t slot) { return soa_->slot_arrival[slot_base_ + slot]; }
  Sigma& slot_sigma(std::size_t slot) { return soa_->slot_sigma[slot_base_ + slot]; }
  Sigma slot_sigma(std::size_t slot) const { return soa_->slot_sigma[slot_base_ + slot]; }

  Simulator& sim_;
  Network& net_;
  NetNodeId self_;
  HardwareClock clock_;
  std::vector<NetNodeId> preds_;
  Params params_;
  std::uint32_t trim_;
  Recorder* recorder_;

  std::unique_ptr<LwSoa> owned_soa_;  // fallback only
  LwSoa* soa_;
  std::uint32_t i_;
  std::uint32_t slot_base_;

  std::deque<PendingMsg> pending_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace gtrix
