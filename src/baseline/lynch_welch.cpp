#include "baseline/lynch_welch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace gtrix {

namespace {

/// Round-synchronous implementation: because every correct node's pulse
/// lands within a bounded window of the round start, the round abstraction
/// is exact and the simulation can proceed round by round (the standard
/// analysis frame for [WL88]).
struct LwNode {
  double hw_rate = 1.0;
  double clock_offset = 0.0;  ///< logical round-start offset (real time units)
  bool byzantine = false;
};

}  // namespace

LynchWelchResult run_lynch_welch(const LynchWelchConfig& config) {
  GTRIX_CHECK_MSG(config.n >= 4, "need at least 4 nodes");
  GTRIX_CHECK_MSG(3 * config.f < config.n, "requires f < n/3");
  GTRIX_CHECK_MSG(config.byzantine <= config.f, "actual faults must be <= f");

  Rng rng(config.seed ^ 0x4C57ULL);
  std::vector<LwNode> nodes(config.n);
  for (auto& node : nodes) {
    node.hw_rate = rng.uniform(1.0, config.theta);
    node.clock_offset = rng.uniform(0.0, config.initial_spread);
  }
  for (std::uint32_t b = 0; b < config.byzantine; ++b) nodes[b].byzantine = true;

  LynchWelchResult result;
  double round_base = 0.0;  // real time of nominal round start

  for (std::uint32_t round = 0; round < config.rounds; ++round) {
    // Correct node i pulses at round_base + clock_offset_i (its drift is
    // folded into the offset update below).
    std::vector<double> pulse_time(config.n);
    double correct_min = std::numeric_limits<double>::infinity();
    double correct_max = -std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < config.n; ++i) {
      if (nodes[i].byzantine) {
        // Byzantine: anywhere in a window around the correct cluster.
        pulse_time[i] = round_base + rng.uniform(-config.initial_spread,
                                                 2.0 * config.initial_spread);
      } else {
        pulse_time[i] = round_base + nodes[i].clock_offset;
        correct_min = std::min(correct_min, pulse_time[i]);
        correct_max = std::max(correct_max, pulse_time[i]);
      }
    }
    result.skew_by_round.push_back(correct_max - correct_min);

    // Each correct node i receives node j's pulse at pulse_time[j] + delay,
    // sorts receptions, discards f lowest/highest, adjusts by the midpoint.
    std::vector<LwNode> next = nodes;
    for (std::uint32_t i = 0; i < config.n; ++i) {
      if (nodes[i].byzantine) continue;
      std::vector<double> receptions;
      receptions.reserve(config.n);
      for (std::uint32_t j = 0; j < config.n; ++j) {
        receptions.push_back(pulse_time[j] + rng.uniform(config.d - config.u, config.d));
      }
      std::sort(receptions.begin(), receptions.end());
      const double lo = receptions[config.f];
      const double hi = receptions[receptions.size() - 1 - config.f];
      const double midpoint = (lo + hi) / 2.0;
      // Expected reception of a perfectly synchronized pulse: own pulse
      // time plus the nominal delay d - u/2.
      const double expected = pulse_time[i] + config.d - config.u / 2.0;
      const double adjustment = midpoint - expected;
      // Apply adjustment; accumulate one round of hardware drift relative
      // to nominal (rate 1) progress.
      const double drift = (nodes[i].hw_rate - 1.0) * config.round_length;
      next[i].clock_offset = nodes[i].clock_offset + adjustment + drift;
    }
    nodes = std::move(next);
    round_base += config.round_length;
  }

  if (!result.skew_by_round.empty()) {
    result.final_skew = result.skew_by_round.back();
    const std::size_t half = result.skew_by_round.size() / 2;
    for (std::size_t r = half; r < result.skew_by_round.size(); ++r) {
      result.max_skew_after_convergence =
          std::max(result.max_skew_after_convergence, result.skew_by_round[r]);
    }
  }
  return result;
}

}  // namespace gtrix
