#include "scenario/spec.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "graph/base_graph.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace gtrix {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& message) {
  throw JsonError(path + ": " + message);
}

// --- enum name tables -------------------------------------------------------

template <typename E>
struct Name {
  E value;
  std::string_view name;
};

template <typename E, std::size_t N>
std::string_view name_of(const Name<E> (&table)[N], E value) {
  for (const auto& entry : table) {
    if (entry.value == value) return entry.name;
  }
  return "?";
}

template <typename E, std::size_t N>
E value_of(const Name<E> (&table)[N], std::string_view name, const char* what) {
  for (const auto& entry : table) {
    if (entry.name == name) return entry.value;
  }
  std::string valid;
  for (const auto& entry : table) {
    if (!valid.empty()) valid += ", ";
    valid += entry.name;
  }
  throw JsonError("unknown " + std::string(what) + " '" + std::string(name) +
                  "' (valid: " + valid + ")");
}

// The four component dimensions are parsed schema-driven against the
// registries; only Layer0Mode (not a registry dimension) keeps a table here.
constexpr Name<Layer0Mode> kLayer0Names[] = {
    {Layer0Mode::kIdealJitter, "ideal-jitter"},
    {Layer0Mode::kLinePropagation, "line-propagation"},
};

// --- path-qualified typed readers -------------------------------------------

template <typename Fn>
auto at_path(const std::string& path, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

double read_double(const Json& j, const std::string& path) {
  return at_path(path, [&] { return j.as_double(); });
}

std::int64_t read_int(const Json& j, const std::string& path) {
  return at_path(path, [&] { return j.as_int(); });
}

std::uint64_t read_u64(const Json& j, const std::string& path) {
  return at_path(path, [&] { return j.as_u64(); });
}

std::uint32_t read_u32(const Json& j, const std::string& path) {
  const std::uint64_t v = read_u64(j, path);
  if (v > 0xFFFFFFFFull) fail(path, "value " + std::to_string(v) + " exceeds uint32");
  return static_cast<std::uint32_t>(v);
}

bool read_bool(const Json& j, const std::string& path) {
  return at_path(path, [&] { return j.as_bool(); });
}

const std::string& read_string(const Json& j, const std::string& path) {
  return at_path(path, [&]() -> const std::string& { return j.as_string(); });
}

// --- generator specs --------------------------------------------------------

struct ParamsDerive {
  double u = 10.0;
  double theta = 1.0005;
  double safety = 1.2;
};

struct Layer0Pattern {
  double amplitude = 0.0;  ///< alternating +/- amplitude/2 by column parity
};

struct RandomFaultGen {
  double probability = 0.0;
  bool exclude_layer0 = true;
  bool enforce_one_local = true;
  std::uint32_t max_attempts = 64;
  std::vector<FaultKind> kinds = {FaultKind::kCrash};
  double offset = 150.0;  ///< static-offset magnitude
  double alpha = 100.0;   ///< split/jitter amplitude
  double period = 0.0;    ///< fixed-period period (0 -> Lambda)
  std::int64_t after = 0; ///< mute-after threshold
};

struct ClusteredFaultGen {
  std::int64_t count = 0;
  std::int64_t column = -1;       ///< -1 (or "center") -> columns / 2
  std::int64_t start_layer = -1;  ///< -1 (or "third") -> max(1, layers / 3)
  std::uint32_t stride = 1;
  FaultKind kind = FaultKind::kCrash;
  double offset = 0.0;
  double alpha = 0.0;
  double period = 0.0;
  std::int64_t after = 0;
};

struct ConfigDraft {
  ExperimentConfig config;
  bool layers_track_columns = false;
  bool split_center = false;
  bool saw_cycle_reach = false;   ///< explicit 'cycle_reach' key given
  bool saw_delay_split = false;   ///< explicit 'delay_split_column' key given
  bool saw_spec_reach = false;    ///< 'reach' set via object form / dotted axis
  bool saw_spec_split = false;    ///< 'split_column' set via object form / dotted axis
  /// Dimensions that received a dotted component-parameter key; a later
  /// whole-component key would silently discard those values, so it is
  /// rejected instead (order the whole key first, e.g. axis declaration
  /// order in a sweep).
  bool dotted_topology = false;
  bool dotted_clock = false;
  bool dotted_delay = false;
  bool dotted_algorithm = false;
  bool dotted_recording = false;
  bool params_explicit = false;  ///< an explicit d/u/theta/lambda was given
  std::optional<ParamsDerive> derive;
  std::optional<Layer0Pattern> layer0_pattern;
  std::optional<RandomFaultGen> random_faults;
  std::optional<ClusteredFaultGen> clustered_faults;
  CorruptPlan corrupt;
};

/// Builds a canonical spec for a generated fault: only the field the kind
/// actually reads is kept, so resolved configs and emitted JSONL never show
/// parameters that had no effect.
FaultSpec make_fault_spec(FaultKind kind, double offset, double alpha, double period,
                          std::int64_t after) {
  switch (kind) {
    case FaultKind::kCrash: return FaultSpec::crash();
    case FaultKind::kMuteAfter: return FaultSpec::mute_after(after);
    case FaultKind::kStaticOffset: return FaultSpec::static_offset(offset);
    case FaultKind::kSplit: return FaultSpec::split(alpha);
    case FaultKind::kJitter: return FaultSpec::jitter(alpha);
    case FaultKind::kFixedPeriod: return FaultSpec::fixed_period(period);
  }
  throw JsonError("invalid fault kind");
}

PlacedFault fault_from_json(const Json& j, const std::string& path) {
  PlacedFault fault;
  bool saw_kind = false;
  for (const auto& [key, value] : at_path(path, [&]() -> const Json::Object& {
         return j.as_object();
       })) {
    const std::string sub = path + "." + key;
    if (key == "base") {
      fault.base = read_u32(value, sub);
    } else if (key == "layer") {
      fault.layer = read_u32(value, sub);
    } else if (key == "kind") {
      fault.spec.kind = at_path(sub, [&] {
        return fault_kind_from_string(read_string(value, sub));
      });
      saw_kind = true;
    } else if (key == "offset") {
      fault.spec.offset = read_double(value, sub);
    } else if (key == "alpha") {
      fault.spec.alpha = read_double(value, sub);
    } else if (key == "period") {
      fault.spec.period = read_double(value, sub);
    } else if (key == "after") {
      fault.spec.after = read_int(value, sub);
    } else {
      fail(sub, "unknown key");
    }
  }
  if (!saw_kind) fail(path, "missing key 'kind'");
  return fault;
}

void apply_params_key(ConfigDraft& draft, const std::string& key, const Json& value,
                      const std::string& path) {
  // Derived and explicit parameters are mutually exclusive; mixing them
  // would make the result depend on key order, so reject it outright.
  if (key == "derive") {
    if (draft.params_explicit) {
      fail(path, "cannot mix 'derive' with explicit params values");
    }
    ParamsDerive derive;
    for (const auto& [k, v] : at_path(path, [&]() -> const Json::Object& {
           return value.as_object();
         })) {
      const std::string sub = path + "." + k;
      if (k == "u") {
        derive.u = read_double(v, sub);
      } else if (k == "theta") {
        derive.theta = read_double(v, sub);
      } else if (k == "safety") {
        derive.safety = read_double(v, sub);
      } else {
        fail(sub, "unknown key");
      }
    }
    draft.derive = derive;
    return;
  }
  if (draft.derive) {
    fail(path, "cannot mix explicit params values with 'derive'");
  }
  draft.params_explicit = true;
  if (key == "d") {
    draft.config.params.d = read_double(value, path);
  } else if (key == "u") {
    draft.config.params.u = read_double(value, path);
  } else if (key == "theta") {
    draft.config.params.theta = read_double(value, path);
  } else if (key == "lambda") {
    draft.config.params.lambda = read_double(value, path);
  } else {
    fail(path, "unknown key");
  }
}

void apply_random_faults_key(RandomFaultGen& gen, const std::string& key, const Json& value,
                             const std::string& path) {
  if (key == "probability") {
    gen.probability = read_double(value, path);
    if (gen.probability < 0.0 || gen.probability > 1.0) {
      fail(path, "probability must be in [0, 1]");
    }
  } else if (key == "exclude_layer0") {
    gen.exclude_layer0 = read_bool(value, path);
  } else if (key == "enforce_one_local") {
    gen.enforce_one_local = read_bool(value, path);
  } else if (key == "max_attempts") {
    gen.max_attempts = read_u32(value, path);
  } else if (key == "kinds") {
    const auto& items = at_path(path, [&]() -> const Json::Array& {
      return value.as_array();
    });
    if (items.empty()) fail(path, "kinds must not be empty");
    gen.kinds.clear();
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string sub = path + "[" + std::to_string(i) + "]";
      gen.kinds.push_back(at_path(sub, [&] {
        return fault_kind_from_string(read_string(items[i], sub));
      }));
    }
  } else if (key == "offset") {
    gen.offset = read_double(value, path);
  } else if (key == "alpha") {
    gen.alpha = read_double(value, path);
  } else if (key == "period") {
    gen.period = read_double(value, path);
  } else if (key == "after") {
    gen.after = read_int(value, path);
  } else {
    fail(path, "unknown key");
  }
}

void apply_clustered_key(ClusteredFaultGen& gen, const std::string& key, const Json& value,
                         const std::string& path) {
  if (key == "count") {
    gen.count = read_int(value, path);
    if (gen.count < 0) fail(path, "count must be >= 0");
  } else if (key == "column") {
    if (value.is_string()) {
      if (read_string(value, path) != "center") {
        fail(path, "expected a non-negative int or \"center\"");
      }
      gen.column = -1;
    } else {
      gen.column = static_cast<std::int64_t>(read_u32(value, path));
    }
  } else if (key == "start_layer") {
    if (value.is_string()) {
      if (read_string(value, path) != "third") {
        fail(path, "expected a non-negative int or \"third\"");
      }
      gen.start_layer = -1;
    } else {
      gen.start_layer = static_cast<std::int64_t>(read_u32(value, path));
    }
  } else if (key == "stride") {
    gen.stride = read_u32(value, path);
    if (gen.stride == 0) fail(path, "stride must be >= 1");
  } else if (key == "kind") {
    gen.kind = at_path(path, [&] {
      return fault_kind_from_string(read_string(value, path));
    });
  } else if (key == "offset") {
    gen.offset = read_double(value, path);
  } else if (key == "alpha") {
    gen.alpha = read_double(value, path);
  } else if (key == "period") {
    gen.period = read_double(value, path);
  } else if (key == "after") {
    gen.after = read_int(value, path);
  } else {
    fail(path, "unknown key");
  }
}

void apply_corrupt_key(CorruptPlan& plan, const std::string& key, const Json& value,
                       const std::string& path) {
  plan.enabled = true;
  if (key == "wave") {
    plan.wave = read_double(value, path);
    if (plan.wave < 0.0) fail(path, "wave must be >= 0");
  } else if (key == "fraction") {
    plan.fraction = read_double(value, path);
    if (plan.fraction < 0.0 || plan.fraction > 1.0) {
      fail(path, "fraction must be in [0, 1]");
    }
  } else {
    fail(path, "unknown key");
  }
}

// Materializes a component spec from the legacy enum fields so a dotted
// sweep axis ("base_graph.rows") can set parameters on whatever the base
// config selected, component- or enum-spelled.
void ensure_topology_spec(ExperimentConfig& c) {
  if (c.topology_spec.empty()) {
    c.topology_spec =
        topology_registry().canonicalize(topology_spec_from_legacy(c.base_kind, c.cycle_reach));
  }
}
void ensure_clock_spec(ExperimentConfig& c) {
  if (c.clock_spec.empty()) {
    c.clock_spec = clock_model_registry().canonicalize(clock_spec_from_legacy(c.clock_model));
  }
}
void ensure_delay_spec(ExperimentConfig& c) {
  if (c.delay_spec.empty()) {
    c.delay_spec = delay_registry().canonicalize(
        delay_spec_from_legacy(c.delay_kind, c.delay_split_column));
  }
}
void ensure_algorithm_spec(ExperimentConfig& c) {
  if (c.algorithm_spec.empty()) {
    c.algorithm_spec = algorithm_registry().canonicalize(algorithm_spec_from_legacy(c.algorithm));
  }
}
void ensure_recording_spec(ExperimentConfig& c) {
  if (c.recording_spec.empty()) c.recording_spec = recording_spec_default();
}

/// Applies one config field (or a dotted sweep-axis path) to the draft.
void apply_config_key(ConfigDraft& draft, const std::string& key, const Json& value,
                      const std::string& path) {
  // Dotted paths route into the composite sub-objects.
  if (const auto dot = key.find('.'); dot != std::string::npos) {
    const std::string head = key.substr(0, dot);
    const std::string rest = key.substr(dot + 1);
    if (head == "params") {
      if (rest.starts_with("derive.")) {
        // params.derive.* adjusts the derive request in place.
        if (draft.params_explicit) {
          fail(path, "cannot mix 'derive' with explicit params values");
        }
        if (!draft.derive) draft.derive = ParamsDerive{};
        const std::string leaf = rest.substr(7);
        if (leaf == "u") {
          draft.derive->u = read_double(value, path);
        } else if (leaf == "theta") {
          draft.derive->theta = read_double(value, path);
        } else if (leaf == "safety") {
          draft.derive->safety = read_double(value, path);
        } else {
          fail(path, "unknown key");
        }
        return;
      }
      apply_params_key(draft, rest, value, path);
    } else if (head == "layer0_pattern") {
      if (!draft.layer0_pattern) draft.layer0_pattern = Layer0Pattern{};
      if (rest == "amplitude") {
        draft.layer0_pattern->amplitude = read_double(value, path);
      } else {
        fail(path, "unknown key");
      }
    } else if (head == "random_faults") {
      if (!draft.random_faults) draft.random_faults = RandomFaultGen{};
      apply_random_faults_key(*draft.random_faults, rest, value, path);
    } else if (head == "clustered_faults") {
      if (!draft.clustered_faults) draft.clustered_faults = ClusteredFaultGen{};
      apply_clustered_key(*draft.clustered_faults, rest, value, path);
    } else if (head == "corrupt") {
      apply_corrupt_key(draft.corrupt, rest, value, path);
    } else if (head == "base_graph") {
      ensure_topology_spec(draft.config);
      at_path(path, [&] { topology_registry().set_param(draft.config.topology_spec, rest, value); });
      if (rest == "reach") draft.saw_spec_reach = true;
      draft.dotted_topology = true;
    } else if (head == "clock_model") {
      ensure_clock_spec(draft.config);
      at_path(path, [&] { clock_model_registry().set_param(draft.config.clock_spec, rest, value); });
      draft.dotted_clock = true;
    } else if (head == "delay_model") {
      ensure_delay_spec(draft.config);
      at_path(path, [&] { delay_registry().set_param(draft.config.delay_spec, rest, value); });
      if (rest == "split_column") draft.saw_spec_split = true;
      draft.dotted_delay = true;
    } else if (head == "algorithm") {
      ensure_algorithm_spec(draft.config);
      at_path(path, [&] { algorithm_registry().set_param(draft.config.algorithm_spec, rest, value); });
      draft.dotted_algorithm = true;
    } else if (head == "recording") {
      ensure_recording_spec(draft.config);
      at_path(path, [&] { recording_registry().set_param(draft.config.recording_spec, rest, value); });
      draft.dotted_recording = true;
    } else {
      fail(path, "unknown key '" + key + "'");
    }
    return;
  }

  ExperimentConfig& c = draft.config;
  // A whole-component key replaces the spec wholesale; if dotted parameter
  // keys for this dimension were applied first, their values would be
  // silently discarded -- reject and ask for the other order.
  const auto check_not_after_dotted = [&](bool dotted) {
    if (dotted) {
      fail(path, "'" + key + "' would overwrite parameters set via dotted '" + key +
                     ".<param>' keys; apply the whole-component key first (e.g. declare its "
                     "sweep axis before the parameter axes)");
    }
  };
  if (key == "base_graph") {
    check_not_after_dotted(draft.dotted_topology);
    const ComponentSpec spec = component_from_json(topology_registry(), value, path);
    BaseGraphKind kind{};
    std::uint32_t reach = 0;
    // Only the bare-string spelling maps onto the legacy enum, and it never
    // touches the parameter fields ('cycle_reach' keeps carrying reach, in
    // any key order). The object form is authoritative: the spec wins.
    if (value.is_string() && topology_spec_to_legacy(spec, kind, reach)) {
      c.base_kind = kind;
      c.topology_spec = ComponentSpec{};
    } else {
      c.topology_spec = spec;
      if (value.is_object() && value.contains("reach")) draft.saw_spec_reach = true;
    }
  } else if (key == "columns") {
    c.columns = read_u32(value, path);
    if (c.columns < 2) fail(path, "need at least 2 columns");
  } else if (key == "cycle_reach") {
    c.cycle_reach = read_u32(value, path);
    draft.saw_cycle_reach = true;
  } else if (key == "trim") {
    c.trim = read_u32(value, path);
  } else if (key == "layers") {
    if (value.is_string()) {
      if (read_string(value, path) != "columns") {
        fail(path, "expected an int or \"columns\"");
      }
      draft.layers_track_columns = true;
    } else {
      c.layers = read_u32(value, path);
      draft.layers_track_columns = false;
    }
  } else if (key == "params") {
    for (const auto& [k, v] : at_path(path, [&]() -> const Json::Object& {
           return value.as_object();
         })) {
      apply_params_key(draft, k, v, path + "." + k);
    }
  } else if (key == "algorithm") {
    check_not_after_dotted(draft.dotted_algorithm);
    const ComponentSpec spec = component_from_json(algorithm_registry(), value, path);
    if (value.is_string() && algorithm_spec_to_legacy(spec, c.algorithm)) {
      c.algorithm_spec = ComponentSpec{};
    } else {
      c.algorithm_spec = spec;
    }
  } else if (key == "layer0_mode") {
    c.layer0 = at_path(path, [&] {
      return value_of(kLayer0Names, read_string(value, path), "layer-0 mode");
    });
  } else if (key == "layer0_jitter") {
    c.layer0_jitter = read_double(value, path);
  } else if (key == "layer0_offsets") {
    const auto& items = at_path(path, [&]() -> const Json::Array& {
      return value.as_array();
    });
    c.layer0_offset_by_column.clear();
    for (std::size_t i = 0; i < items.size(); ++i) {
      c.layer0_offset_by_column.push_back(
          read_double(items[i], path + "[" + std::to_string(i) + "]"));
    }
  } else if (key == "layer0_pattern") {
    Layer0Pattern pattern;
    for (const auto& [k, v] : at_path(path, [&]() -> const Json::Object& {
           return value.as_object();
         })) {
      const std::string sub = path + "." + k;
      if (k == "amplitude") {
        pattern.amplitude = read_double(v, sub);
      } else {
        fail(sub, "unknown key");
      }
    }
    draft.layer0_pattern = pattern;
  } else if (key == "delay_model") {
    check_not_after_dotted(draft.dotted_delay);
    const ComponentSpec spec = component_from_json(delay_registry(), value, path);
    DelayModelKind kind{};
    std::uint32_t split = 0;
    // Same rule as base_graph: bare string -> enum only ('delay_split_column'
    // stays untouched); object form -> the spec wins.
    if (value.is_string() && delay_spec_to_legacy(spec, kind, split)) {
      c.delay_kind = kind;
      c.delay_spec = ComponentSpec{};
    } else {
      c.delay_spec = spec;
      if (value.is_object() && value.contains("split_column")) draft.saw_spec_split = true;
    }
  } else if (key == "delay_split_column") {
    if (value.is_string()) {
      if (read_string(value, path) != "center") {
        fail(path, "expected an int or \"center\"");
      }
      draft.split_center = true;
    } else {
      c.delay_split_column = read_u32(value, path);
      draft.split_center = false;
    }
    draft.saw_delay_split = true;
  } else if (key == "clock_model") {
    check_not_after_dotted(draft.dotted_clock);
    const ComponentSpec spec = component_from_json(clock_model_registry(), value, path);
    if (value.is_string() && clock_spec_to_legacy(spec, c.clock_model)) {
      c.clock_spec = ComponentSpec{};
    } else {
      c.clock_spec = spec;
    }
  } else if (key == "faults") {
    const auto& items = at_path(path, [&]() -> const Json::Array& {
      return value.as_array();
    });
    c.faults.clear();
    for (std::size_t i = 0; i < items.size(); ++i) {
      c.faults.push_back(fault_from_json(items[i], path + "[" + std::to_string(i) + "]"));
    }
  } else if (key == "random_faults") {
    RandomFaultGen gen;
    for (const auto& [k, v] : at_path(path, [&]() -> const Json::Object& {
           return value.as_object();
         })) {
      apply_random_faults_key(gen, k, v, path + "." + k);
    }
    draft.random_faults = gen;
  } else if (key == "clustered_faults") {
    ClusteredFaultGen gen;
    for (const auto& [k, v] : at_path(path, [&]() -> const Json::Object& {
           return value.as_object();
         })) {
      apply_clustered_key(gen, k, v, path + "." + k);
    }
    draft.clustered_faults = gen;
  } else if (key == "recording") {
    check_not_after_dotted(draft.dotted_recording);
    c.recording_spec = component_from_json(recording_registry(), value, path);
  } else if (key == "pulses") {
    c.pulses = read_int(value, path);
    if (c.pulses < 1) fail(path, "need at least one pulse");
  } else if (key == "self_stabilizing") {
    c.self_stabilizing = read_bool(value, path);
  } else if (key == "jump_condition") {
    c.jump_condition = read_bool(value, path);
  } else if (key == "seed") {
    c.seed = read_u64(value, path);
  } else if (key == "warmup") {
    c.warmup = read_int(value, path);
    if (c.warmup < 0) fail(path, "warmup must be >= 0");
  } else {
    fail(path, "unknown key '" + key + "'");
  }
}

ConfigDraft draft_from_json(const Json& j, const std::string& path) {
  ConfigDraft draft;
  for (const auto& [key, value] : at_path(path, [&]() -> const Json::Object& {
         return j.as_object();
       })) {
    apply_config_key(draft, key, value, path + "." + key);
  }
  return draft;
}

BaseGraph make_base_graph(const ExperimentConfig& config) {
  // Resolve only the topology dimension; the generators calling this do not
  // need the other three canonicalized.
  const ComponentSpec spec = config.topology_spec.empty()
                                 ? topology_spec_from_legacy(config.base_kind, config.cycle_reach)
                                 : config.topology_spec;
  TopologyContext ctx;
  ctx.columns = config.columns;
  return topology_registry().create(spec)->build(ctx);
}

/// Resolves all generators against the final cell shape. `context` prefixes
/// error messages ("$.config", "cell 'columns=8,seed=2'").
ExperimentConfig resolve_draft(ConfigDraft draft, const std::string& context) {
  ExperimentConfig& c = draft.config;
  if (draft.layers_track_columns) c.layers = c.columns;
  if (draft.split_center) c.delay_split_column = c.columns / 2;

  // An explicit legacy parameter key must reach the experiment even when
  // its dimension was selected with the object-form spec (e.g. base_graph
  // {"kind": "cycle"} plus a swept "cycle_reach" axis): route it into the
  // spec, or reject it when the selected kind cannot take it -- silently
  // ignoring a swept key would emit identical cells under distinct labels.
  if (draft.saw_cycle_reach) {
    const std::string kind = c.topology_spec.empty() ? std::string(to_string(c.base_kind))
                                                     : c.topology_spec.kind;
    if (kind != "cycle") {
      throw JsonError(context + ": 'cycle_reach' has no effect on base graph '" + kind + "'");
    }
    if (!c.topology_spec.empty()) {
      if (draft.saw_spec_reach) {
        throw JsonError(context + ": 'cycle_reach' conflicts with an explicit "
                        "'base_graph' reach parameter; use one spelling");
      }
      topology_registry().set_param(c.topology_spec, "reach",
                                    Json(static_cast<std::int64_t>(c.cycle_reach)));
    }
  }
  if (draft.saw_delay_split || draft.split_center) {
    const std::string kind = c.delay_spec.empty() ? std::string(to_string(c.delay_kind))
                                                  : c.delay_spec.kind;
    if (kind != "column-split") {
      throw JsonError(context + ": 'delay_split_column' has no effect on delay model '" +
                      kind + "'");
    }
    if (!c.delay_spec.empty()) {
      if (draft.saw_spec_split) {
        throw JsonError(context + ": 'delay_split_column' conflicts with an explicit "
                        "'delay_model' split_column parameter; use one spelling");
      }
      delay_registry().set_param(c.delay_spec, "split_column",
                                 Json(static_cast<std::int64_t>(c.delay_split_column)));
    }
  }

  if (draft.derive) {
    const BaseGraph base = make_base_graph(c);
    c.params = Params::derive_for(base.diameter(), draft.derive->u, draft.derive->theta,
                                  draft.derive->safety);
  }

  if (draft.layer0_pattern && draft.layer0_pattern->amplitude != 0.0) {
    const double half = draft.layer0_pattern->amplitude / 2.0;
    c.layer0_offset_by_column.resize(c.columns);
    for (std::uint32_t col = 0; col < c.columns; ++col) {
      c.layer0_offset_by_column[col] = (col % 2 == 0) ? half : -half;
    }
  }

  if (draft.clustered_faults && draft.clustered_faults->count > 0) {
    const ClusteredFaultGen& gen = *draft.clustered_faults;
    const Grid grid(make_base_graph(c), c.layers);
    const std::int64_t column = gen.column >= 0 ? gen.column : c.columns / 2;
    const std::int64_t start =
        gen.start_layer >= 0 ? gen.start_layer
                             : std::max<std::int64_t>(1, c.layers / 3);
    if (column >= static_cast<std::int64_t>(c.columns)) {
      throw JsonError(context + ": clustered_faults.column " + std::to_string(column) +
                      " out of range (columns " + std::to_string(c.columns) + ")");
    }
    const FaultSpec spec =
        make_fault_spec(gen.kind, gen.offset, gen.alpha, gen.period, gen.after);
    try {
      const auto placed =
          clustered_faults(grid, static_cast<std::uint32_t>(gen.count),
                           static_cast<std::uint32_t>(column),
                           static_cast<std::uint32_t>(start), gen.stride, spec);
      c.faults.insert(c.faults.end(), placed.begin(), placed.end());
    } catch (const std::exception& e) {
      throw JsonError(context + ": clustered fault placement failed: " + e.what());
    }
  }

  if (draft.random_faults && draft.random_faults->probability > 0.0) {
    const RandomFaultGen& gen = *draft.random_faults;
    const Grid grid(make_base_graph(c), c.layers);
    // Seed derivation matches the historical bench harnesses, so the
    // declarative thm13 scenario reproduces bench_thm13_random_faults.
    Rng rng(c.seed * 77 + 13);
    PlacementOptions options;
    options.probability = gen.probability;
    options.exclude_layer0 = gen.exclude_layer0;
    options.enforce_one_local = gen.enforce_one_local;
    options.max_attempts = gen.max_attempts;
    try {
      auto placed = sample_iid_faults(grid, options, FaultSpec::crash(), rng);
      for (std::size_t i = 0; i < placed.size(); ++i) {
        const FaultKind kind = gen.kinds[i % gen.kinds.size()];
        placed[i].spec =
            make_fault_spec(kind, gen.offset, gen.alpha, gen.period, gen.after);
      }
      c.faults.insert(c.faults.end(), placed.begin(), placed.end());
    } catch (const std::exception& e) {
      throw JsonError(context + ": random fault placement failed: " + e.what());
    }
  }

  // Component validation: canonicalize every dimension, instantiate the
  // providers, and build the topology once against the cell's shape, so
  // unknown kinds, out-of-range parameters and topology-vs-columns
  // mismatches all surface here with the cell's path context rather than
  // later inside a worker thread.
  const ResolvedComponents components = at_path(context, [&] { return resolve_components(c); });
  // Sweeps revisit a handful of topology shapes over and over; memoize the
  // successfully built ones (keyed shape -> base node count) so expansion
  // does not pay an all-pairs BFS per cell (the map stays tiny: one entry
  // per distinct shape ever seen).
  static thread_local std::map<std::string, std::uint32_t> valid_shapes;
  const std::string shape = component_to_json(topology_registry(), components.topology).dump() +
                            "@" + std::to_string(c.columns);
  auto shape_it = valid_shapes.find(shape);
  if (shape_it == valid_shapes.end()) {
    try {
      TopologyContext tctx;
      tctx.columns = c.columns;
      const BaseGraph built = topology_registry().create(components.topology)->build(tctx);
      shape_it = valid_shapes.emplace(shape, built.node_count()).first;
    } catch (const std::exception& e) {
      throw JsonError(context + ": invalid topology: " + e.what());
    }
  }
  // The grid id space is uint32 (one sentinel reserved); a layers x base
  // product past that must fail here with cell context, not wrap inside a
  // worker thread (Grid re-checks as the last line of defense).
  try {
    (void)checked_u32_mul(c.layers, shape_it->second,
                          "grid node count (" + std::to_string(c.layers) + " layers x " +
                              std::to_string(shape_it->second) + " base nodes)");
  } catch (const std::overflow_error& e) {
    throw JsonError(context + ": " + e.what());
  }
  at_path(context, [&] { clock_model_registry().create(components.clock); });
  at_path(context, [&] { delay_registry().create(components.delay); });
  at_path(context, [&] { (void)resolve_recording(components.recording); });
  const auto algorithm = at_path(context, [&] {
    return algorithm_registry().create(components.algorithm);
  });

  // Capability checks (previously silent no-ops inside World): a fault plan
  // or corruption schedule the experiment cannot honor is a config error.
  const AlgorithmCaps caps = algorithm->caps();
  for (std::size_t i = 0; i < c.faults.size(); ++i) {
    const PlacedFault& fault = c.faults[i];
    const auto fault_error = [&](const std::string& reason) {
      return JsonError(context + ": fault " + std::to_string(i) + " (kind '" +
                       std::string(to_string(fault.spec.kind)) + "' at base=" +
                       std::to_string(fault.base) + ", layer=" +
                       std::to_string(fault.layer) + "): " + reason);
    };
    // Layer-0 nodes are sources, not algorithm nodes: the layer-0 machinery
    // can realize a silent node (crash) and, in ideal mode, a static shift;
    // other kinds would be silent no-ops, so reject them outright.
    if (fault.layer == 0) {
      const bool realizable =
          fault.spec.kind == FaultKind::kCrash ||
          (c.layer0 == Layer0Mode::kIdealJitter &&
           fault.spec.kind == FaultKind::kStaticOffset);
      if (!realizable) {
        throw fault_error("layer-0 faults in layer0_mode '" +
                          std::string(to_string(c.layer0)) + "' support " +
                          (c.layer0 == Layer0Mode::kIdealJitter
                               ? "'crash' and 'static-offset' only"
                               : "'crash' only"));
      }
    }
    // A silent node at ANY layer (including layer 0) starves its
    // successors, so it needs tolerates_silent_preds; send-behaviour faults
    // above layer 0 need a node that accepts send overrides.
    const bool silent_kind = fault.spec.kind == FaultKind::kCrash ||
                             fault.spec.kind == FaultKind::kFixedPeriod;
    const bool supported = silent_kind ? caps.tolerates_silent_preds
                                       : (fault.layer == 0 || caps.send_fault_overrides);
    if (!supported) {
      throw fault_error("algorithm '" + components.algorithm.kind +
                        "' does not support it" +
                        (caps.tolerates_silent_preds
                             ? " (supported kinds: crash, fixed-period)"
                             : ""));
    }
  }
  if (draft.corrupt.enabled && !caps.state_corruption) {
    throw JsonError(context + ": corrupt plan requires an algorithm with state-corruption "
                    "support; '" + components.algorithm.kind + "' has none");
  }

  return std::move(draft.config);
}

std::string axis_value_label(const Json& value) {
  return value.is_string() ? value.as_string() : value.dump();
}

}  // namespace

// --- enum <-> string --------------------------------------------------------

std::string_view to_string(Layer0Mode v) { return name_of(kLayer0Names, v); }

Layer0Mode layer0_mode_from_string(std::string_view s) {
  return value_of(kLayer0Names, s, "layer-0 mode");
}

// --- serialization ----------------------------------------------------------

Json to_json(const PlacedFault& fault) {
  Json j = Json::object();
  j.set("base", fault.base);
  j.set("layer", fault.layer);
  j.set("kind", to_string(fault.spec.kind));
  if (fault.spec.offset != 0.0) j.set("offset", fault.spec.offset);
  if (fault.spec.alpha != 0.0) j.set("alpha", fault.spec.alpha);
  if (fault.spec.period != 0.0) j.set("period", fault.spec.period);
  if (fault.spec.after != 0) j.set("after", fault.spec.after);
  return j;
}

Json to_json(const ExperimentConfig& c) {
  // The four component dimensions serialize in resolved canonical form
  // (bare kind string, or {"kind": ...} with the non-default parameters),
  // whether the config was authored via specs or the legacy enums.
  const ResolvedComponents components = resolve_components(c);
  Json j = Json::object();
  j.set("base_graph", component_to_json(topology_registry(), components.topology));
  j.set("columns", c.columns);
  if (c.trim != 0) j.set("trim", c.trim);
  j.set("layers", c.layers);
  Json params = Json::object();
  params.set("d", c.params.d);
  params.set("u", c.params.u);
  params.set("theta", c.params.theta);
  params.set("lambda", c.params.lambda);
  j.set("params", std::move(params));
  j.set("algorithm", component_to_json(algorithm_registry(), components.algorithm));
  j.set("layer0_mode", to_string(c.layer0));
  j.set("layer0_jitter", c.layer0_jitter);
  if (!c.layer0_offset_by_column.empty()) {
    Json offsets = Json::array();
    for (const double v : c.layer0_offset_by_column) offsets.push_back(v);
    j.set("layer0_offsets", std::move(offsets));
  }
  j.set("delay_model", component_to_json(delay_registry(), components.delay));
  j.set("clock_model", component_to_json(clock_model_registry(), components.clock));
  // Full recording is the default and is omitted, keeping every historical
  // config byte-identical through a serialize/parse round trip.
  if (components.recording != recording_spec_default()) {
    j.set("recording", component_to_json(recording_registry(), components.recording));
  }
  if (!c.faults.empty()) {
    Json faults = Json::array();
    for (const PlacedFault& fault : c.faults) faults.push_back(to_json(fault));
    j.set("faults", std::move(faults));
  }
  j.set("pulses", c.pulses);
  j.set("self_stabilizing", c.self_stabilizing);
  j.set("jump_condition", c.jump_condition);
  j.set("seed", c.seed);
  j.set("warmup", c.warmup);
  return j;
}

ExperimentConfig config_from_json(const Json& j, const std::string& path) {
  return resolve_draft(draft_from_json(j, path), path);
}

// --- Scenario ---------------------------------------------------------------

Scenario Scenario::from_json(const Json& doc) {
  Scenario scenario;
  scenario.doc_ = doc;
  scenario.base_config_ = Json::object();
  const Json* sweep = nullptr;
  for (const auto& [key, value] : at_path("$", [&]() -> const Json::Object& {
         return doc.as_object();
       })) {
    if (key == "name") {
      scenario.name_ = read_string(value, "$.name");
    } else if (key == "description") {
      scenario.description_ = read_string(value, "$.description");
    } else if (key == "config") {
      scenario.base_config_ = value;
    } else if (key == "corrupt") {
      for (const auto& [k, v] : at_path("$.corrupt", [&]() -> const Json::Object& {
             return value.as_object();
           })) {
        apply_corrupt_key(scenario.corrupt_, k, v, "$.corrupt." + k);
      }
      scenario.corrupt_.enabled = true;
    } else if (key == "engine") {
      // Engine defaults (performance only, never behaviour): currently just
      // the shard count. See Scenario::engine_shards().
      for (const auto& [k, v] : at_path("$.engine", [&]() -> const Json::Object& {
             return value.as_object();
           })) {
        const std::string path = "$.engine." + k;
        if (k == "shards") {
          scenario.engine_shards_ = read_u32(v, path);
          if (scenario.engine_shards_ < 1 || scenario.engine_shards_ > 4096) {
            fail(path, "shards must be in [1, 4096]");
          }
        } else {
          fail(path, "unknown key");
        }
      }
    } else if (key == "sweep") {
      sweep = &value;
    } else {
      fail("$." + key, "unknown key");
    }
  }
  if (scenario.name_.empty()) fail("$", "missing or empty 'name'");

  // Validate the base config eagerly so authoring mistakes surface at load
  // time, not at expansion time.
  ConfigDraft base = draft_from_json(scenario.base_config_, "$.config");

  if (sweep != nullptr) {
    for (const auto& [key, value] : at_path("$.sweep", [&]() -> const Json::Object& {
           return sweep->as_object();
         })) {
      const std::string path = "$.sweep." + key;
      SweepAxis axis;
      axis.key = key;
      if (value.is_array()) {
        const auto& items = value.as_array();
        if (items.empty()) fail(path, "axis must not be empty");
        axis.values = items;
      } else if (value.is_object()) {
        std::int64_t from = 0, count = -1, step = 1;
        for (const auto& [k, v] : value.as_object()) {
          const std::string sub = path + "." + k;
          if (k == "from") {
            from = read_int(v, sub);
          } else if (k == "count") {
            count = read_int(v, sub);
          } else if (k == "step") {
            step = read_int(v, sub);
          } else {
            fail(sub, "unknown key");
          }
        }
        if (count < 1) fail(path, "range needs 'count' >= 1");
        if (step == 0 && count > 1) fail(path, "range 'step' must not be 0");
        for (std::int64_t i = 0; i < count; ++i) {
          axis.values.emplace_back(from + i * step);
        }
      } else {
        fail(path, std::string("expected array or {from, count} range, got ") +
                       value.type_name());
      }
      // Dry-apply every axis value so bad axes fail at load time too, and
      // reject duplicates: cell labels are the JSONL row identifier.
      std::set<std::string> labels;
      for (std::size_t i = 0; i < axis.values.size(); ++i) {
        ConfigDraft probe = base;
        apply_config_key(probe, key, axis.values[i],
                         path + "[" + std::to_string(i) + "]");
        if (!labels.insert(axis_value_label(axis.values[i])).second) {
          fail(path + "[" + std::to_string(i) + "]",
               "duplicate axis value '" + axis_value_label(axis.values[i]) + "'");
        }
      }
      scenario.axes_.push_back(std::move(axis));
    }
  }
  return scenario;
}

Scenario Scenario::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError(path + ": cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return from_json(Json::parse(buffer.str()));
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

std::size_t Scenario::cell_count() const noexcept {
  std::size_t count = 1;
  for (const SweepAxis& axis : axes_) count *= axis.values.size();
  return count;
}

std::vector<ScenarioCell> Scenario::cells() const {
  const ConfigDraft base = [&] {
    ConfigDraft draft = draft_from_json(base_config_, "$.config");
    if (corrupt_.enabled) draft.corrupt = corrupt_;
    return draft;
  }();

  std::vector<ScenarioCell> out;
  out.reserve(cell_count());
  std::vector<std::size_t> odometer(axes_.size(), 0);
  while (true) {
    ConfigDraft draft = base;
    std::string label;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const SweepAxis& axis = axes_[a];
      const Json& value = axis.values[odometer[a]];
      apply_config_key(draft, axis.key, value, "$.sweep." + axis.key);
      if (!label.empty()) label += ",";
      label += axis.key + "=" + axis_value_label(value);
    }
    if (label.empty()) label = "base";

    ScenarioCell cell;
    cell.label = label;
    cell.corrupt = draft.corrupt;
    cell.config = resolve_draft(std::move(draft), "cell '" + label + "'");
    out.push_back(std::move(cell));

    // Odometer increment, last axis fastest.
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++odometer[a] < axes_[a].values.size()) break;
      odometer[a] = 0;
      if (a == 0) return out;
    }
    if (axes_.empty()) return out;
  }
}

}  // namespace gtrix
