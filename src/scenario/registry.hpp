// Built-in scenarios reproducing the paper's headline experiments.
//
// Each built-in is authored as a JSON document and validated through the
// same Scenario::from_json path as user files, so a registry scenario and
// its exported scenarios/<name>.json file are guaranteed to behave
// identically. `gtrix_campaign --export=DIR` writes them out.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace gtrix {

struct BuiltinInfo {
  std::string_view name;
  std::string_view summary;
};

/// All built-in scenario names with one-line summaries, in a fixed order.
const std::vector<BuiltinInfo>& builtin_scenarios();

bool is_builtin_scenario(std::string_view name);

/// The scenario document for a built-in; throws JsonError listing the valid
/// names when `name` is unknown.
Json builtin_scenario_doc(std::string_view name);

/// Convenience: builtin_scenario_doc parsed into a Scenario.
Scenario builtin_scenario(std::string_view name);

}  // namespace gtrix
