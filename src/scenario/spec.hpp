// Declarative scenario specifications.
//
// A scenario is a JSON document describing one family of experiments:
//
//   {
//     "name": "thm13-random-faults",
//     "description": "Theorem 1.3: i.i.d. faults at p in o(n^-1/2)",
//     "config": { ... ExperimentConfig fields and generators ... },
//     "corrupt": {"wave": 10, "fraction": 1.0},          // optional (Thm 1.6)
//     "sweep": {                                          // optional axes
//       "columns": [16, 32, 64],
//       "seed": {"from": 1, "count": 100}
//     }
//   }
//
// The four component dimensions (base_graph, clock_model, delay_model,
// algorithm) accept either a bare kind string or the self-describing
// component object syntax, validated against the registered provider's
// parameter schema (see registry/*.hpp):
//
//   "base_graph": "cycle"                          // defaults
//   "base_graph": {"kind": "cycle", "reach": 2}    // explicit parameters
//   "clock_model": {"kind": "drift-walk", "step": 0.25}
//
// The trace-retention mode uses the same syntax under the "recording" key
// ("full" | "windowed" | "streaming"; see docs/scaling.md):
//
//   "recording": "streaming"
//   "recording": {"kind": "windowed", "window": 16}
//
// Sweep axes reach component parameters through dotted paths
// ("base_graph.rows", "clock_model.step", "recording.window"). Legacy
// spellings ("cycle_reach", "delay_split_column") keep working as adapters.
//
// "config" holds the base ExperimentConfig plus *generators* -- fields that
// cannot be resolved until the concrete cell is known (grid-dependent fault
// placements, derived parameter sets, column-relative positions):
//
//   "layers": "columns"                   layers track the columns axis
//   "params": {"derive": {...}}           Params::derive_for per cell
//   "layer0_pattern": {"amplitude": A}    alternating +/- A/2 layer-0 offsets
//   "random_faults": {...}                i.i.d. placement (Theorem 1.3)
//   "clustered_faults": {...}             stacked column faults (Theorem 1.2)
//
// "sweep" turns the document into a config matrix: each key is a dotted
// field path ("columns", "random_faults.probability"), each value either an
// explicit array or {"from", "count"[, "step"]} for integer ranges. The
// cartesian product expands in key order with the last axis fastest, so
// cell order -- and therefore result emission order -- is deterministic.
//
// Parsing is strict: unknown keys, wrong types and malformed values are
// rejected with path-qualified messages ("$.config.columns: expected int,
// got string").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/experiment.hpp"
#include "support/json.hpp"

namespace gtrix {

// --- enum <-> string names --------------------------------------------------
// The component-dimension names (Algorithm, ClockModelKind, DelayModelKind,
// BaseGraphKind) live next to their registry adapters in registry/*.hpp and
// FaultKind's in fault/fault.hpp; all are visible through this header.
// Layer0Mode is not a registry dimension and stays here.
std::string_view to_string(Layer0Mode v);
Layer0Mode layer0_mode_from_string(std::string_view s);

/// Serializes a fully resolved config. Generators never appear in the
/// output; fault plans are emitted as explicit placements. Default-valued
/// optional blocks (no faults, no layer-0 offsets) are omitted.
Json to_json(const ExperimentConfig& config);
Json to_json(const PlacedFault& fault);

/// Parses a config object; the inverse of to_json. Accepts generator keys
/// as well (they are resolved immediately against the parsed grid shape).
/// `path` prefixes error messages, e.g. "$.config".
ExperimentConfig config_from_json(const Json& j, const std::string& path = "$");

/// Mid-run corruption plan (Theorem 1.6 workloads): at simulated time
/// wave * lambda, scramble the state of `fraction` of all algorithm nodes,
/// then realign wave labels before measuring.
struct CorruptPlan {
  bool enabled = false;
  double wave = 10.0;
  double fraction = 1.0;

  bool operator==(const CorruptPlan&) const = default;
};

/// One fully resolved point of the scenario matrix.
struct ScenarioCell {
  std::string label;  ///< "columns=32,seed=5" (axis order); "base" if no axes
  ExperimentConfig config;
  CorruptPlan corrupt;
};

struct SweepAxis {
  std::string key;           ///< dotted config field path
  std::vector<Json> values;  ///< expanded, in sweep order
};

class Scenario {
 public:
  /// Validates the whole document (strict keys) and keeps it for re-export.
  static Scenario from_json(const Json& doc);
  /// Reads and parses a scenario file; errors are prefixed with the path.
  static Scenario from_file(const std::string& path);

  const std::string& name() const noexcept { return name_; }
  const std::string& description() const noexcept { return description_; }
  const Json& doc() const noexcept { return doc_; }
  const std::vector<SweepAxis>& axes() const noexcept { return axes_; }

  /// Default engine shard count per cell (optional top-level "engine":
  /// {"shards": N}; 1 when absent). A deliberate exception to the rule that
  /// engine choices stay out of scenario configs: shard counts are
  /// bit-identical by construction, so this is a performance default only
  /// -- it never appears inside "config", cell labels or the JSONL, and
  /// the gtrix_campaign --shards flag overrides it.
  std::uint32_t engine_shards() const noexcept { return engine_shards_; }

  /// Number of cells the sweep expands to (product of axis lengths).
  std::size_t cell_count() const noexcept;

  /// Expands the cartesian matrix into concrete configs. Deterministic:
  /// same document -> same cells in the same order.
  std::vector<ScenarioCell> cells() const;

 private:
  std::string name_;
  std::string description_;
  Json doc_;
  Json base_config_;  // "config" object (possibly empty object)
  CorruptPlan corrupt_;
  std::vector<SweepAxis> axes_;
  std::uint32_t engine_shards_ = 1;
};

}  // namespace gtrix
