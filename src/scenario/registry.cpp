#include "scenario/registry.hpp"

namespace gtrix {

namespace {

// Builders below construct the documents member by member; every document
// goes through Scenario::from_json before leaving this translation unit, so
// a malformed builder fails loudly in tests rather than at a user's desk.

Json sweep_range(std::int64_t from, std::int64_t count) {
  Json j = Json::object();
  j.set("from", from);
  j.set("count", count);
  return j;
}

template <typename T>
Json array_of(std::initializer_list<T> values) {
  Json j = Json::array();
  for (const T& v : values) j.push_back(Json(v));
  return j;
}

/// Small fault-free grids over a few seeds; the CI determinism smoke and
/// the fastest end-to-end exercise of the campaign pipeline.
Json quickstart_grid() {
  Json doc = Json::object();
  doc.set("name", "quickstart-grid");
  doc.set("description",
          "Small fault-free Gradient TRIX grids over a handful of seeds; "
          "fast end-to-end smoke for the campaign pipeline and the CI "
          "thread-determinism check.");
  Json config = Json::object();
  config.set("layers", "columns");
  config.set("pulses", 10);
  doc.set("config", std::move(config));
  Json sweep = Json::object();
  sweep.set("columns", array_of({6, 8}));
  sweep.set("seed", sweep_range(1, 4));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Table 1: Gradient TRIX vs naive TRIX on the same substrate, fault-free
/// and with one mid-grid crash, under the adversarial column-split delays.
Json table1_comparison() {
  Json doc = Json::object();
  doc.set("name", "table1-comparison");
  doc.set("description",
          "Table 1 core comparison: Gradient TRIX vs naive TRIX under "
          "adversarial column-split delays, fault-free and with one crash "
          "fault mid-grid. Gradient TRIX local skew stays ~kappa log D while "
          "naive TRIX grows linearly in D.");
  Json config = Json::object();
  config.set("layers", "columns");
  config.set("pulses", 16);
  config.set("delay_model", "column-split");
  config.set("delay_split_column", "center");
  Json crash = Json::object();
  crash.set("count", 0);
  crash.set("kind", "crash");
  crash.set("column", "center");
  crash.set("start_layer", "third");
  config.set("clustered_faults", std::move(crash));
  doc.set("config", std::move(config));
  Json sweep = Json::object();
  sweep.set("algorithm", array_of({"gradient-full", "trix-naive"}));
  sweep.set("columns", array_of({8, 16, 32}));
  sweep.set("clustered_faults.count", array_of({0, 1}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Theorem 1.1: fault-free local skew is O(kappa log D); parameters derived
/// per diameter so Eq. (2)/(3) hold at every size.
Json thm11_logd() {
  Json doc = Json::object();
  doc.set("name", "thm11-logd");
  doc.set("description",
          "Theorem 1.1: fault-free local skew vs diameter. Parameters are "
          "derived per cell (Lambda = 2d, safety 1.1); measured skew should "
          "track 4 kappa (2 + log2 D) sublinearly.");
  Json config = Json::object();
  config.set("layers", "columns");
  config.set("pulses", 20);
  Json params = Json::object();
  Json derive = Json::object();
  derive.set("u", 10.0);
  derive.set("theta", 1.0005);
  derive.set("safety", 1.1);
  params.set("derive", std::move(derive));
  config.set("params", std::move(params));
  doc.set("config", std::move(config));
  Json sweep = Json::object();
  sweep.set("columns", array_of({5, 9, 17, 33, 65}));  // D = 4, 8, 16, 32, 64
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Theorem 1.2: f faults stacked in one column at minimal spacing; skew may
/// grow by ~5x per added fault. Amplitudes in multiples of kappa (~21).
Json thm12_worstcase_faults() {
  Json doc = Json::object();
  doc.set("name", "thm12-worstcase-faults");
  doc.set("description",
          "Theorem 1.2: worst-case clustered faults. f split faults stacked "
          "in the center column on consecutive layers; sweeping f and the "
          "split amplitude (2/6/12 kappa, kappa ~ 21). Bound: "
          "4 kappa (2+log2 D) 5^f sum 5^-j.");
  Json config = Json::object();
  config.set("columns", 12);
  config.set("layers", 16);
  config.set("pulses", 18);
  Json faults = Json::object();
  faults.set("kind", "split");
  faults.set("column", "center");
  faults.set("start_layer", 2);
  faults.set("stride", 1);
  faults.set("alpha", 126.0);
  config.set("clustered_faults", std::move(faults));
  doc.set("config", std::move(config));
  Json sweep = Json::object();
  sweep.set("clustered_faults.count", array_of({0, 1, 2, 3, 4}));
  sweep.set("clustered_faults.alpha", array_of({42.0, 126.0, 252.0}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Theorem 1.3: i.i.d. faults with probability p in o(n^-1/2). On the
/// 16x16 grid (n = 256), p = scaled / 16 for scaled in {0 .. 1}.
Json thm13_random_faults() {
  Json doc = Json::object();
  doc.set("name", "thm13-random-faults");
  doc.set("description",
          "Theorem 1.3: uniformly random faults. Mixed crash/static-offset/"
          "split faults placed i.i.d. with probability p = s/sqrt(n) for "
          "s in {0, 1/8, 1/4, 1/2, 1}, eight seeds per p; local skew should "
          "stay O(kappa log D) with no 5^f blow-up.");
  Json config = Json::object();
  config.set("columns", 16);
  config.set("layers", 16);
  config.set("pulses", 18);
  Json gen = Json::object();
  gen.set("probability", 0.0);
  gen.set("kinds", array_of({"crash", "static-offset", "split"}));
  gen.set("offset", 150.0);
  gen.set("alpha", 100.0);
  config.set("random_faults", std::move(gen));
  doc.set("config", std::move(config));
  Json sweep = Json::object();
  // p = scaled / sqrt(256) = scaled / 16.
  sweep.set("random_faults.probability",
            array_of({0.0, 0.0078125, 0.015625, 0.03125, 0.0625}));
  sweep.set("seed", sweep_range(1000, 8));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Figure 5: the jump-condition ablation under an adversarial oscillatory
/// start. Amplitude 8 kappa ~ 168 with the default d=1000, u=10 parameters.
Json fig5_jump_ablation() {
  Json doc = Json::object();
  doc.set("name", "fig5-jump-ablation");
  doc.set("description",
          "Figure 5: jump condition on/off. Alternating +/-84 layer-0 "
          "offsets, own-copy edges at d and cross edges at d-u (every "
          "offset measurement overestimates by u), drift removed. With the "
          "jump condition the oscillation damps; without it a residual ~u "
          "oscillation persists.");
  Json config = Json::object();
  config.set("columns", 12);
  config.set("layers", 32);
  config.set("pulses", 18);
  config.set("delay_model", "own-slow-cross-fast");
  config.set("clock_model", "all-slow");
  config.set("layer0_jitter", 0.0);
  Json pattern = Json::object();
  pattern.set("amplitude", 168.0);
  config.set("layer0_pattern", std::move(pattern));
  doc.set("config", std::move(config));
  Json sweep = Json::object();
  sweep.set("jump_condition", array_of({true, false}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Theorem 1.6: full transient corruption mid-run; recovery takes O(#layers)
/// waves because correct state propagates one layer per wave.
Json thm16_stabilization() {
  Json doc = Json::object();
  doc.set("name", "thm16-stabilization");
  doc.set("description",
          "Theorem 1.6: self-stabilization. Every node's registers and "
          "timers are scrambled at wave 10; the pulse count leaves room for "
          "recovery at every layer count. Skew measured after realignment "
          "should return under the Theorem 1.1 bound within ~#layers waves.");
  Json config = Json::object();
  config.set("columns", 10);
  config.set("layers", 6);
  config.set("pulses", 48);
  config.set("self_stabilizing", true);
  doc.set("config", std::move(config));
  Json corrupt = Json::object();
  corrupt.set("wave", 10.0);
  corrupt.set("fraction", 1.0);
  doc.set("corrupt", std::move(corrupt));
  Json sweep = Json::object();
  sweep.set("layers", array_of({6, 10, 14, 18}));
  sweep.set("seed", sweep_range(100, 3));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Registry smoke: a 2D torus base graph under bounded-drift random-walk
/// clocks -- both addressed purely through the component registries (no
/// legacy enum value exists for either), proving the provider API end to
/// end. Small and fast; wired into the CI determinism check.
Json torus_smoke() {
  Json doc = Json::object();
  doc.set("name", "torus-smoke");
  doc.set("description",
          "Component-registry smoke: 2D torus base graph (3 rings of 6 "
          "columns, min degree 4) with bounded-drift random-walk clocks, "
          "both addressable only through the provider registries. Exercises "
          "the {\"kind\": ...} component syntax, dotted component-parameter "
          "sweep axes, and topology diversity beyond the paper's line.");
  Json config = Json::object();
  Json torus = Json::object();
  torus.set("kind", "torus");
  torus.set("rows", 3);
  config.set("base_graph", std::move(torus));
  config.set("columns", 6);
  config.set("layers", 8);
  config.set("pulses", 10);
  Json clock = Json::object();
  clock.set("kind", "drift-walk");
  clock.set("step", 0.5);
  config.set("clock_model", std::move(clock));
  doc.set("config", std::move(config));
  Json sweep = Json::object();
  sweep.set("clock_model.interval_waves", array_of({1.0, 4.0}));
  sweep.set("seed", sweep_range(1, 3));
  doc.set("sweep", std::move(sweep));
  return doc;
}

/// Mega-grid scale target: the paper's bounds are asymptotic in D, and the
/// full-trace recorder cannot hold a 512x512 run in RAM. Streaming
/// recording makes it routine: O(nodes) metrics memory, bit-identical skew
/// extrema (bench_scale measures peak RSS and events/sec for the committed
/// BENCH_scale-grid.json trajectory; the CI smoke asserts the RSS ceiling
/// on a reduced shape).
Json scale_grid() {
  Json doc = Json::object();
  doc.set("name", "scale-grid");
  doc.set("description",
          "Mega-grid scale run: the paper's line-replicated base at 512 "
          "columns x 512 layers (263k nodes) under streaming recording. "
          "Full-trace recording of this shape needs gigabytes for the "
          "iteration log alone; the streaming accumulators keep metrics "
          "memory O(nodes) with bit-identical skew extrema.");
  Json config = Json::object();
  config.set("columns", 512);
  config.set("layers", 512);
  config.set("pulses", 16);
  config.set("recording", "streaming");
  doc.set("config", std::move(config));
  return doc;
}

/// Torus counterpart: degree-4 base, no replicated endpoints, wraparound in
/// both dimensions -- the densest builtin shape (3 rings x 512 columns x
/// 512 layers = 786k nodes).
Json scale_torus() {
  Json doc = Json::object();
  doc.set("name", "scale-torus");
  doc.set("description",
          "Mega-grid torus: 3 rings of 512 columns per layer, 512 layers "
          "(786k nodes, in-degree 5) under streaming recording. Stresses "
          "the scheduler and the streaming accumulators at the highest "
          "node and edge counts of any builtin scenario.");
  Json config = Json::object();
  Json torus = Json::object();
  torus.set("kind", "torus");
  torus.set("rows", 3);
  config.set("base_graph", std::move(torus));
  config.set("columns", 512);
  config.set("layers", 512);
  config.set("pulses", 12);
  config.set("recording", "streaming");
  doc.set("config", std::move(config));
  return doc;
}

/// The paper's self-stabilization story (Thm 1.6) at mega-grid scale, with
/// the fault densities of Thms 1.2/1.3 riding along: an 8-ring torus of
/// 400 columns x 32 layers (102k nodes), full corruption at wave 8, and a
/// random-fault probability sweep around p = 1/(2 sqrt n). The torus rings
/// multiply nodes without widening the intra-layer extent: past ~800
/// columns a fully scrambled layer coarsens into wave-label domains whose
/// healing time grows with width and recovery misses the ~#layers-wave
/// budget, while 400 columns re-stabilize in ~17 waves at every density.
/// Streaming recording with a 44-wave corruption look-back keeps the whole
/// campaign inside the bench_scale RSS budget; realignment and the
/// recovery scan replay from the retained window
/// (BENCH_scale-stabilization.json).
Json scale_stabilization() {
  Json doc = Json::object();
  doc.set("name", "scale-stabilization");
  doc.set("description",
          "Mega-grid self-stabilization: 8-ring torus x 400 columns x 32 "
          "layers (102k nodes), every node scrambled at wave 8, recovery "
          "measured per Thm 1.6 under a Thm 1.3 fault-density sweep (p = 0, "
          "1/(4 sqrt n), 1/(2 sqrt n)). Streaming recording; the 44-wave "
          "corruption look-back covers realignment tails and the recovery "
          "scan, so metrics memory stays O(nodes) end to end.");
  Json config = Json::object();
  Json base = Json::object();
  base.set("kind", "torus");
  base.set("rows", 8);
  config.set("base_graph", std::move(base));
  config.set("columns", 400);
  config.set("layers", 32);
  config.set("pulses", 84);
  config.set("self_stabilizing", true);
  Json recording = Json::object();
  recording.set("kind", "streaming");
  recording.set("window", 44);
  config.set("recording", std::move(recording));
  Json gen = Json::object();
  gen.set("probability", 0.0);
  gen.set("kinds", array_of({"crash", "static-offset", "split"}));
  gen.set("offset", 150.0);
  gen.set("alpha", 100.0);
  config.set("random_faults", std::move(gen));
  doc.set("config", std::move(config));
  Json corrupt = Json::object();
  corrupt.set("wave", 8.0);
  corrupt.set("fraction", 1.0);
  doc.set("corrupt", std::move(corrupt));
  Json sweep = Json::object();
  // sqrt(n) = sqrt(102400) = 320: p = 0, 1/1280, 1/640.
  sweep.set("random_faults.probability", array_of({0.0, 0.00078125, 0.0015625}));
  doc.set("sweep", std::move(sweep));
  return doc;
}

struct Builtin {
  BuiltinInfo info;
  Json (*build)();
};

const Builtin kBuiltins[] = {
    {{"quickstart-grid", "small fault-free grids; campaign/CI smoke"}, quickstart_grid},
    {{"table1-comparison", "Table 1: Gradient TRIX vs naive TRIX, split delays"},
     table1_comparison},
    {{"thm11-logd", "Thm 1.1: fault-free skew vs diameter, derived params"}, thm11_logd},
    {{"thm12-worstcase-faults", "Thm 1.2: clustered faults, skew vs f and amplitude"},
     thm12_worstcase_faults},
    {{"thm13-random-faults", "Thm 1.3: i.i.d. faults, skew vs p over seeds"},
     thm13_random_faults},
    {{"fig5-jump-ablation", "Fig 5: jump condition on/off, oscillatory start"},
     fig5_jump_ablation},
    {{"thm16-stabilization", "Thm 1.6: full corruption at wave 10, recovery"},
     thm16_stabilization},
    {{"torus-smoke", "registry smoke: torus topology + drift-walk clocks"}, torus_smoke},
    {{"scale-grid", "512x512 mega-grid, streaming recording; bench_scale anchor"},
     scale_grid},
    {{"scale-torus", "3x512 torus x 512 layers (786k nodes), streaming recording"},
     scale_torus},
    {{"scale-stabilization",
      "Thm 1.6 at scale: 102k nodes, corruption + fault-density sweep, streaming"},
     scale_stabilization},
};

}  // namespace

const std::vector<BuiltinInfo>& builtin_scenarios() {
  static const std::vector<BuiltinInfo> infos = [] {
    std::vector<BuiltinInfo> out;
    for (const Builtin& b : kBuiltins) out.push_back(b.info);
    return out;
  }();
  return infos;
}

bool is_builtin_scenario(std::string_view name) {
  for (const Builtin& b : kBuiltins) {
    if (b.info.name == name) return true;
  }
  return false;
}

Json builtin_scenario_doc(std::string_view name) {
  for (const Builtin& b : kBuiltins) {
    if (b.info.name == name) return b.build();
  }
  std::string valid;
  for (const Builtin& b : kBuiltins) {
    if (!valid.empty()) valid += ", ";
    valid += b.info.name;
  }
  throw JsonError("unknown built-in scenario '" + std::string(name) +
                  "' (valid: " + valid + ")");
}

Scenario builtin_scenario(std::string_view name) {
  return Scenario::from_json(builtin_scenario_doc(name));
}

}  // namespace gtrix
