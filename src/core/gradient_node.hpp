// The Gradient TRIX pulse-forwarding node: the paper's core contribution.
//
// Implements, per configuration:
//  * Algorithm 1 (simplified; §3.1) -- waits for all three reception times,
//    valid only when all predecessors are correct and sending,
//  * Algorithm 3 (full; Appendix B) -- tolerates a silent or misbehaving
//    predecessor via the timeout condition
//        H_min < inf  and  H(t) >= min{ H_max + kappa/2 + theta kappa,
//                                       2 H_own - H_min + 2 kappa },
//  * Algorithm 4 (self-stabilizing; Appendix C) -- adds the watchdog that
//    clears half-filled state and guards on every waiting statement.
//
// In each iteration the node timestamps its predecessors' pulses with its
// hardware clock, computes the correction C_{v,l} (see core/correction.hpp)
// and broadcasts at local time H_own + Lambda - d - C_{v,l}.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "clock/hardware_clock.hpp"
#include "core/correction.hpp"
#include "core/node_state.hpp"
#include "core/params.hpp"
#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace gtrix {

struct GradientNodeConfig {
  Params params;

  /// Algorithm 1 instead of Algorithm 3. Requires fault-free predecessors.
  bool simplified = false;

  /// Algorithm 4 wait-statement guards (Appendix C).
  bool self_stabilizing = false;

  /// Appendix C watchdog: once the first neighbour pulse of an iteration is
  /// stored, the own-copy or last-neighbour pulse must follow within
  /// theta (2 L + u) local time or the stored state is stale and cleared.
  /// Has no effect after stabilization (Observation C.4) but is required to
  /// recover from arbitrary initial conditions -- including cold start of
  /// deep layers under Appendix-A line input, where early iterations would
  /// otherwise group pulses of different waves. On by default.
  bool startup_watchdog = true;

  /// Jump condition (Definition 4.5). Disabling reproduces Figure 5.
  bool jump_condition = true;

  /// Estimate \bar{L} of the steady-state local skew, used by the
  /// self-stabilization watchdog interval theta (2 \bar{L} + u). Callers
  /// typically pass params.thm11_bound(D).
  double skew_bound_hint = 0.0;

  /// Static shift applied to the broadcast time (local units). Zero for
  /// correct nodes; fault wrappers use it to model static delay faults.
  double broadcast_offset = 0.0;

  /// EXTENSION (paper "Bigger Picture" item 3): trimmed aggregation.
  /// H_min is the (trim+1)-th earliest neighbour reception and H_max the
  /// (deg - trim)-th, so `trim` outliers on each side cannot influence the
  /// correction at all. trim = 0 is the paper's algorithm. With trim = 1 on
  /// an in-degree-5 grid (cycle_wide reach 2), a node withstands a faulty
  /// own copy plus one arbitrary neighbour, or two neighbours pulling in
  /// opposite directions. Requires 2 * trim < neighbour count.
  std::uint32_t trim = 0;
};

class GradientTrixNode final : public PulseSink, public TimerTarget {
 public:
  /// `preds` lists the network ids of the predecessors, own copy first --
  /// exactly Grid::predecessors mapped to network ids. The clock is owned.
  /// Hot per-iteration state lives in `soa` (typically the World-owned
  /// NodeArena's gradient lanes, see core/node_state.hpp); when null the
  /// node allocates a private single-entry arena so standalone construction
  /// keeps working unchanged.
  GradientTrixNode(Simulator& sim, Network& net, NetNodeId self, HardwareClock clock,
                   std::vector<NetNodeId> preds, GradientNodeConfig config,
                   Recorder* recorder, GradientSoa* soa = nullptr);

  GradientTrixNode(const GradientTrixNode&) = delete;
  GradientTrixNode& operator=(const GradientTrixNode&) = delete;

  void on_pulse(NetNodeId from, EdgeId edge, const Pulse& pulse, SimTime now) override;

  /// Typed-event dispatch for the node's three timers (until / broadcast /
  /// watchdog). Each is tracked by a cancellable TimerHandle; firing or
  /// cancelling invalidates the handle, so no generation bookkeeping is
  /// needed at this level.
  void on_timer(const Event& event) override;

  /// Replaces the default broadcast with a custom emitter (fault wrappers).
  /// Arguments: the pulse the node would have broadcast, and the time.
  using SendOverride = std::function<void(const Pulse&, SimTime)>;
  void set_send_override(SendOverride fn) { send_override_ = std::move(fn); }

  /// Randomizes all mutable state (phase, reception times, flags, timers)
  /// to model a transient fault / arbitrary initial state (Theorem 1.6).
  void corrupt_state(Rng& rng);

  struct Counters {
    std::uint64_t iterations = 0;         ///< completed (broadcast) iterations
    std::uint64_t late_broadcasts = 0;    ///< broadcast target already passed
    std::uint64_t guard_aborts = 0;       ///< Alg 4 wait-guard trips (no broadcast)
    std::uint64_t watchdog_resets = 0;    ///< Alg 4 partial-state clears
    std::uint64_t duplicate_drops = 0;    ///< repeated pulse within an iteration
    std::uint64_t pending_overflow = 0;   ///< pending queue cap exceeded
    std::uint64_t timeout_branches = 0;   ///< Alg 3 first branch taken
    std::uint64_t late_absorbed = 0;      ///< current-wave pulses consumed mid-wait
  };
  const Counters& counters() const noexcept { return counters_; }

  const HardwareClock& clock() const noexcept { return clock_; }
  NetNodeId id() const noexcept { return self_; }

  /// Checkpoint hooks (src/ckpt/nodes_ckpt.cpp): the arena registers
  /// (phase, reception times, slot lanes, timer handles -- handles stay
  /// valid because the queue snapshot preserves slot generations), the
  /// pending-message queue, the staged iteration record and the counters.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  enum class Phase { kCollect, kWaitBroadcast };

  /// Timer kinds. kUntilTimer / kBroadcastTimer carry the local-time
  /// threshold in payload.f so the fire path compares the exact floating-
  /// point value that defined the deadline.
  enum TimerKind : std::uint32_t { kUntilTimer = 1, kBroadcastTimer = 2, kWatchdogTimer = 3 };

  static constexpr std::size_t kMaxSlots = IterationRecord::kMaxSlots;
  static constexpr std::size_t kPendingCap = 16;

  struct PendingMsg {
    NetNodeId from;
    LocalTime h_arrival;
    Sigma sigma;
  };

  int slot_of(NetNodeId from) const;
  void process_message(NetNodeId from, LocalTime h, Sigma sigma, SimTime now);
  void update_until(SimTime now, LocalTime now_local);
  void arm_until_timer(LocalTime threshold);
  void arm_watchdog();
  void exit_collect(SimTime now, LocalTime now_local);
  void finish_iteration_without_pulse(SimTime now);
  void schedule_broadcast(SimTime now, LocalTime target, IterationRecord record);
  void do_broadcast(SimTime now, LocalTime fire_local);
  void reset_iteration_state();
  void drain_pending(SimTime now);
  Sigma estimate_sigma() const;
  std::pair<LocalTime, LocalTime> thresholds() const;  ///< (thr1, thr2); inf if unset

  // Hot-state accessors into the SoA arena (Algorithm 3 registers). The
  // arena index and slot-lane base are resolved once at construction.
  Phase phase() const { return static_cast<Phase>(soa_->phase[i_]); }
  void set_phase(Phase p) { soa_->phase[i_] = static_cast<std::uint8_t>(p); }
  LocalTime& h_own() { return soa_->h_own[i_]; }
  LocalTime h_own() const { return soa_->h_own[i_]; }
  LocalTime& h_min() { return soa_->h_min[i_]; }
  LocalTime h_min() const { return soa_->h_min[i_]; }
  LocalTime& h_max() { return soa_->h_max[i_]; }
  LocalTime h_max() const { return soa_->h_max[i_]; }
  Sigma& last_sigma() { return soa_->last_sigma[i_]; }
  Sigma last_sigma() const { return soa_->last_sigma[i_]; }
  TimerHandle& until_timer() { return soa_->until_timer[i_]; }
  TimerHandle& broadcast_timer() { return soa_->broadcast_timer[i_]; }
  TimerHandle& watchdog_timer() { return soa_->watchdog_timer[i_]; }
  std::uint8_t& r(std::size_t slot) { return soa_->slot_r[slot_base_ + slot]; }
  std::uint8_t r(std::size_t slot) const { return soa_->slot_r[slot_base_ + slot]; }
  std::uint8_t& seen(std::size_t slot) { return soa_->slot_seen[slot_base_ + slot]; }
  std::uint8_t seen(std::size_t slot) const { return soa_->slot_seen[slot_base_ + slot]; }
  Sigma& slot_sigma(std::size_t slot) { return soa_->slot_sigma[slot_base_ + slot]; }
  Sigma slot_sigma(std::size_t slot) const { return soa_->slot_sigma[slot_base_ + slot]; }

  Simulator& sim_;
  Network& net_;
  NetNodeId self_;
  HardwareClock clock_;
  std::vector<NetNodeId> preds_;  // slot order; [0] is the own copy
  GradientNodeConfig config_;
  Recorder* recorder_;  // non-owning; may be null
  SendOverride send_override_;

  // SoA residency: World-owned arena lanes, or the private fallback arena
  // for standalone nodes. Timer handles live there too; they go stale
  // automatically when a timer fires, so a reset is always safe.
  std::unique_ptr<GradientSoa> owned_soa_;  // fallback only
  GradientSoa* soa_;
  std::uint32_t i_;          // arena index
  std::uint32_t slot_base_;  // first entry of this node's slot lanes

  // Cold per-node state: touched once per iteration (or less), kept out of
  // the hot lanes on purpose.
  std::deque<PendingMsg> pending_;
  IterationRecord staged_record_{};  // filled at exit_collect, recorded at fire
  Counters counters_;
};

}  // namespace gtrix
