#include "core/layer0.hpp"

#include <cmath>

#include "support/check.hpp"

namespace gtrix {

ClockSource::ClockSource(Simulator& sim, Network& net, NetNodeId self, Params params,
                         std::int64_t pulse_count, Recorder* recorder)
    : sim_(sim),
      net_(net),
      self_(self),
      params_(params),
      pulse_count_(pulse_count),
      recorder_(recorder) {}

void ClockSource::start() {
  for (std::int64_t k = 1; k <= pulse_count_; ++k) {
    const SimTime t = static_cast<double>(k - 1) * params_.lambda;
    const Sigma sigma = k - 1;
    sim_.at(t, [this, sigma](SimTime now) {
      if (recorder_ != nullptr) recorder_->record_pulse(self_, sigma, now);
      net_.broadcast(self_, Pulse{sigma});
    });
  }
}

Layer0LineNode::Layer0LineNode(Simulator& sim, Network& net, NetNodeId self,
                               HardwareClock clock, NetNodeId line_pred, Params params,
                               Recorder* recorder)
    : sim_(sim),
      net_(net),
      self_(self),
      clock_(std::move(clock)),
      line_pred_(line_pred),
      params_(params),
      recorder_(recorder) {}

void Layer0LineNode::on_pulse(NetNodeId from, EdgeId /*edge*/, const Pulse& pulse,
                              SimTime now) {
  if (from != line_pred_) return;
  // Algorithm 2: H := H(t). Receptions overwrite unconditionally, which is
  // what makes the scheme self-stabilizing (proof of Lemma A.1).
  stored_h_ = clock_.to_local(now);
  out_sigma_ = pulse.stamp + 1;  // each line hop advances the wave label
  const std::uint64_t gen = ++gen_;
  const LocalTime target = stored_h_ + params_.lambda - params_.d;
  sim_.at(clock_.to_real(target), [this, gen](SimTime t) {
    if (gen != gen_) return;  // superseded by a newer reception
    broadcast(t);
  });
}

void Layer0LineNode::broadcast(SimTime now) {
  if (recorder_ != nullptr) recorder_->record_pulse(self_, out_sigma_, now);
  ++forwarded_;
  net_.broadcast(self_, Pulse{out_sigma_});
}

void Layer0LineNode::corrupt_state(Rng& rng) {
  ++gen_;  // drop any armed broadcast
  const LocalTime now_local = clock_.to_local(sim_.now());
  stored_h_ = now_local + rng.uniform(-params_.lambda, params_.lambda);
  out_sigma_ = rng.uniform_int(-4, 4);
  if (rng.bernoulli(0.5)) {
    const std::uint64_t gen = ++gen_;
    const LocalTime target = now_local + rng.uniform(0.0, params_.lambda);
    sim_.at(clock_.to_real(target), [this, gen](SimTime t) {
      if (gen != gen_) return;
      broadcast(t);
    });
  }
}

IdealEmitter::IdealEmitter(Simulator& sim, Network& net, NetNodeId self, double offset,
                           Params params, std::int64_t pulse_count, Recorder* recorder)
    : sim_(sim),
      net_(net),
      self_(self),
      offset_(offset),
      params_(params),
      pulse_count_(pulse_count),
      recorder_(recorder) {
  GTRIX_CHECK_MSG(offset_ >= 0.0, "emitter offset must be non-negative");
}

void IdealEmitter::start() {
  for (std::int64_t k = 1; k <= pulse_count_; ++k) {
    const SimTime t = static_cast<double>(k) * params_.lambda + offset_;
    sim_.at(t, [this, k](SimTime now) {
      if (recorder_ != nullptr) recorder_->record_pulse(self_, k, now);
      net_.broadcast(self_, Pulse{k});
    });
  }
}

}  // namespace gtrix
