#include "core/layer0.hpp"

#include <cmath>

#include "support/check.hpp"

namespace gtrix {

ClockSource::ClockSource(Simulator& sim, Network& net, NetNodeId self, Params params,
                         std::int64_t pulse_count, Recorder* recorder)
    : sim_(sim),
      net_(net),
      self_(self),
      params_(params),
      pulse_count_(pulse_count),
      recorder_(recorder) {}

void ClockSource::start() {
  if (pulse_count_ < 1) return;
  sim_.at(0.0, this, kEmit, EventPayload{.i = 1});
}

void ClockSource::on_timer(const Event& event) {
  const std::int64_t k = event.payload.i;
  const Sigma sigma = k - 1;
  if (recorder_ != nullptr) recorder_->record_pulse(self_, sigma, event.time);
  net_.broadcast(self_, Pulse{sigma});
  if (k < pulse_count_) {
    // Pulse k+1 fires at k * Lambda; computed from the index (not
    // accumulated) so the chain reproduces the exact schedule.
    sim_.at(static_cast<double>(k) * params_.lambda, this, kEmit,
            EventPayload{.i = k + 1});
  }
}

Layer0LineNode::Layer0LineNode(Simulator& sim, Network& net, NetNodeId self,
                               HardwareClock clock, NetNodeId line_pred, Params params,
                               Recorder* recorder, Layer0Soa* soa)
    : sim_(sim),
      net_(net),
      self_(self),
      clock_(std::move(clock)),
      line_pred_(line_pred),
      params_(params),
      recorder_(recorder) {
  if (soa == nullptr) {
    owned_soa_ = std::make_unique<Layer0Soa>();
    soa = owned_soa_.get();
  }
  soa_ = soa;
  i_ = soa_->add_node();
}

void Layer0LineNode::on_pulse(NetNodeId from, EdgeId /*edge*/, const Pulse& pulse,
                              SimTime now) {
  if (from != line_pred_) return;
  // Algorithm 2: H := H(t). Receptions overwrite unconditionally, which is
  // what makes the scheme self-stabilizing (proof of Lemma A.1).
  stored_h() = clock_.to_local(now);
  out_sigma() = pulse.stamp + 1;  // each line hop advances the wave label
  arm_broadcast(stored_h() + params_.lambda - params_.d);
}

void Layer0LineNode::arm_broadcast(LocalTime target) {
  sim_.cancel(broadcast_timer());  // a pending broadcast is superseded
  broadcast_timer() = sim_.at(clock_.to_real(target), this, kBroadcast);
}

void Layer0LineNode::on_timer(const Event& event) {
  broadcast_timer().reset();
  broadcast(event.time);
}

void Layer0LineNode::broadcast(SimTime now) {
  if (recorder_ != nullptr) recorder_->record_pulse(self_, out_sigma(), now);
  ++forwarded_;
  net_.broadcast(self_, Pulse{out_sigma()});
}

void Layer0LineNode::corrupt_state(Rng& rng) {
  sim_.cancel(broadcast_timer());  // drop any armed broadcast
  const LocalTime now_local = clock_.to_local(sim_.now());
  stored_h() = now_local + rng.uniform(-params_.lambda, params_.lambda);
  out_sigma() = rng.uniform_int(-4, 4);
  if (rng.bernoulli(0.5)) {
    arm_broadcast(now_local + rng.uniform(0.0, params_.lambda));
  }
}

IdealEmitter::IdealEmitter(Simulator& sim, Network& net, NetNodeId self, double offset,
                           Params params, std::int64_t pulse_count, Recorder* recorder)
    : sim_(sim),
      net_(net),
      self_(self),
      offset_(offset),
      params_(params),
      pulse_count_(pulse_count),
      recorder_(recorder) {
  GTRIX_CHECK_MSG(offset_ >= 0.0, "emitter offset must be non-negative");
}

void IdealEmitter::start() {
  if (pulse_count_ < 1) return;
  sim_.at(params_.lambda + offset_, this, kEmit, EventPayload{.i = 1});
}

void IdealEmitter::on_timer(const Event& event) {
  const std::int64_t k = event.payload.i;
  if (recorder_ != nullptr) recorder_->record_pulse(self_, k, event.time);
  net_.broadcast(self_, Pulse{k});
  if (k < pulse_count_) {
    sim_.at(static_cast<double>(k + 1) * params_.lambda + offset_, this, kEmit,
            EventPayload{.i = k + 1});
  }
}

}  // namespace gtrix
