// The correction value C_{v,l} (paper §3, Algorithms 1 and 3).
//
// Given the local reception times H_own (pulse from the node's own copy on
// the previous layer), H_min (first neighbour copy) and H_max (last
// neighbour copy), the node computes
//
//   Delta = min_{s in N} max{ H_own - H_max + 4 s kappa,
//                             H_own - H_min - 4 s kappa } - kappa / 2
//
// and clamps it into [0, theta kappa] with the damped overrides that
// implement the slow/fast/jump conditions and median sticking:
//
//   Delta < 0          ->  C = min{ H_own - H_min + 3 kappa / 2, 0 }
//   Delta > theta kappa -> C = max{ H_own - H_max - 3 kappa / 2, theta kappa }
//
// The node then broadcasts at local time H_own + Lambda - d - C.
#pragma once

#include <cstdint>

#include "core/params.hpp"

namespace gtrix {

enum class CorrectionBranch : std::uint8_t {
  kWithin,         ///< Delta in [0, theta kappa]; C = Delta
  kNegativeJump,   ///< Delta < 0 (node's own copy was early; delay pulse)
  kPositiveJump,   ///< Delta > theta kappa (own copy was late; speed up)
};

struct Correction {
  double delta = 0.0;          ///< Delta before clamping
  double value = 0.0;          ///< C_{v,l}
  std::int64_t s_star = 0;     ///< minimizing s
  CorrectionBranch branch = CorrectionBranch::kWithin;
};

/// Computes C_{v,l}. Requires h_min <= h_max and finite inputs.
/// `jump_condition` enables the damped overrides (Definition 4.5); when
/// false the raw Delta is used unclamped, which reproduces the Figure 5
/// oscillation pathology.
Correction compute_correction(double h_own, double h_min, double h_max,
                              const Params& params, bool jump_condition = true);

/// The inner discrete minimization only:
/// min_{s in N} max{A + 4 s kappa, B - 4 s kappa} with A = h_own - h_max,
/// B = h_own - h_min. Exposed for unit tests against a brute-force scan.
double discrete_min_max(double a, double b, double kappa, std::int64_t* s_star = nullptr);

}  // namespace gtrix
