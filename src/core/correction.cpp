#include "core/correction.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace gtrix {

double discrete_min_max(double a, double b, double kappa, std::int64_t* s_star) {
  GTRIX_CHECK_MSG(kappa > 0.0, "kappa must be positive");
  GTRIX_CHECK_MSG(a <= b, "require a <= b (h_max >= h_min)");
  // f(s) = max(a + 4 s kappa, b - 4 s kappa) is convex piecewise-linear in s
  // with continuous minimum at s* = (b - a) / (8 kappa) >= 0; over the
  // integers the minimum is at floor(s*) or ceil(s*), clamped to s >= 0.
  const double continuous = (b - a) / (8.0 * kappa);
  const auto lo = static_cast<std::int64_t>(std::max(0.0, std::floor(continuous)));
  const std::int64_t hi = lo + 1;
  auto f = [&](std::int64_t s) {
    const double shift = 4.0 * static_cast<double>(s) * kappa;
    return std::max(a + shift, b - shift);
  };
  const double f_lo = f(lo);
  const double f_hi = f(hi);
  if (s_star != nullptr) *s_star = f_lo <= f_hi ? lo : hi;
  return std::min(f_lo, f_hi);
}

Correction compute_correction(double h_own, double h_min, double h_max,
                              const Params& params, bool jump_condition) {
  GTRIX_CHECK_MSG(std::isfinite(h_own) && std::isfinite(h_min) && std::isfinite(h_max),
                  "correction inputs must be finite");
  const double kappa = params.kappa();
  const double a = h_own - h_max;
  const double b = h_own - h_min;

  Correction result;
  result.delta = discrete_min_max(a, b, kappa, &result.s_star) - kappa / 2.0;

  if (!jump_condition) {
    // Figure 5 ablation: follow the raw estimate wherever it points. The
    // slow/fast conditions still hold, but overshoots are not damped.
    result.value = result.delta;
    result.branch = result.delta < 0.0 ? CorrectionBranch::kNegativeJump
                    : result.delta > params.theta * kappa
                        ? CorrectionBranch::kPositiveJump
                        : CorrectionBranch::kWithin;
    return result;
  }

  if (result.delta < 0.0) {
    result.branch = CorrectionBranch::kNegativeJump;
    result.value = std::min(b + 1.5 * kappa, 0.0);
  } else if (result.delta > params.theta * kappa) {
    result.branch = CorrectionBranch::kPositiveJump;
    result.value = std::max(a - 1.5 * kappa, params.theta * kappa);
  } else {
    result.branch = CorrectionBranch::kWithin;
    result.value = result.delta;
  }
  return result;
}

}  // namespace gtrix
