#include "core/params.hpp"

#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace gtrix {

double Params::thm11_bound(std::uint32_t diameter) const noexcept {
  return 4.0 * kappa() * (2.0 + std::log2(static_cast<double>(diameter)));
}

double Params::psi1_bound(std::uint32_t diameter) const noexcept {
  return 2.0 * kappa() * static_cast<double>(diameter);
}

double Params::global_skew_bound(std::uint32_t diameter) const noexcept {
  return 6.0 * kappa() * static_cast<double>(diameter);
}

double Params::thm12_bound(std::uint32_t diameter, std::uint32_t faults) const noexcept {
  // B_i = 4 kappa (2 + log2 D) 5^i sum_{j=0..i} 5^-j (proof of Theorem 1.2).
  double geo = 0.0;
  for (std::uint32_t j = 0; j <= faults; ++j) geo += std::pow(5.0, -static_cast<double>(j));
  return thm11_bound(diameter) * std::pow(5.0, static_cast<double>(faults)) * geo;
}

std::string Params::validate(std::uint32_t diameter, double safety) const {
  std::ostringstream why;
  if (!(u >= 0.0) || !(u < d)) {
    why << "require 0 <= u < d (u=" << u << ", d=" << d << ")";
    return why.str();
  }
  if (!(theta > 1.0)) {
    why << "require theta > 1 (theta=" << theta << ")";
    return why.str();
  }
  if (!(lambda > d)) {
    why << "require Lambda > d (Lambda=" << lambda << ", d=" << d << ")";
    return why.str();
  }
  const double bound = thm11_bound(diameter);
  const double need_lambda = safety * theta * (bound + u) + d;  // Eq. (2)
  if (lambda < need_lambda) {
    why << "Eq(2) violated: Lambda=" << lambda << " < " << need_lambda
        << " = C*theta*(L+u)+d with C=" << safety << ", L=" << bound;
    return why.str();
  }
  const double need_d = safety * (theta * (bound + u) + kappa());  // Eq. (3)
  if (d < need_d) {
    why << "Eq(3) violated: d=" << d << " < " << need_d
        << " = C*(theta*(L+u)+kappa) with C=" << safety << ", L=" << bound;
    return why.str();
  }
  return {};
}

Params Params::with(double d, double u, double theta) {
  Params p;
  p.d = d;
  p.u = u;
  p.theta = theta;
  p.lambda = 2.0 * d;
  return p;
}

Params Params::derive_for(std::uint32_t diameter, double u, double theta, double safety) {
  GTRIX_CHECK_MSG(theta > 1.0, "theta must exceed 1");
  double d = 20.0 * (u > 0.0 ? u : 1.0);
  for (int iteration = 0; iteration < 64; ++iteration) {
    Params p = Params::with(d, u, theta);
    const double bound = p.thm11_bound(diameter);
    const double need_d =
        std::max(safety * (theta * (bound + u) + p.kappa()),  // Eq. (3)
                 safety * theta * (bound + u));               // Eq. (2) with Lambda=2d
    if (d >= need_d) return p;
    d = need_d * 1.05;  // small overshoot to converge quickly
  }
  Params p = Params::with(d, u, theta);
  GTRIX_CHECK_MSG(p.valid_for(diameter, safety), "parameter derivation failed to converge");
  return p;
}

std::string Params::describe() const {
  std::ostringstream out;
  out << "d=" << d << " u=" << u << " theta=" << theta << " Lambda=" << lambda
      << " kappa=" << kappa();
  return out.str();
}

}  // namespace gtrix
