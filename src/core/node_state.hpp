// Struct-of-arrays storage for per-node hot simulation state.
//
// The event hot path touches a handful of registers per node per event: the
// iteration phase, the three reception times H_own / H_min / H_max, the
// per-predecessor seen flags and wave labels, and the armed timer handles.
// When each node object owns that state inline, consecutive events -- which
// visit *different* nodes in time order -- chase pointers into heap-scattered
// objects where the hot scalars share cache lines with cold configuration
// (Params, predecessor lists, counters, the recorder pointer).
//
// NodeArena instead packs each register into one dense lane (one vector per
// field, indexed by an arena slot the node claims at construction), so a
// wave of events sweeping the grid walks a few contiguous arrays. World
// owns one arena per experiment; a node constructed without an arena (unit
// tests, ad-hoc harnesses) transparently falls back to a private
// single-entry arena, so the SoA layout is invisible at the call sites.
//
// Per-predecessor lanes are bump-allocated: a node with k predecessors
// claims k consecutive entries of the slot lanes and remembers its base
// offset. Cold, variable-size state (pending-message queues, staged
// iteration records, counters) stays on the node objects by design -- see
// docs/performance.md for the split rationale.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/recorder.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace gtrix {

/// Lanes for GradientTrixNode (Algorithms 1/3/4 registers).
class GradientSoa {
 public:
  /// Claims one node entry with `slots` per-predecessor lane entries;
  /// returns the node's arena index. State starts as a fresh iteration.
  std::uint32_t add_node(std::uint32_t slots) {
    const auto index = static_cast<std::uint32_t>(phase.size());
    phase.push_back(0);
    h_own.push_back(kLocalInfinity);
    h_min.push_back(kLocalInfinity);
    h_max.push_back(kLocalInfinity);
    last_sigma.push_back(0);
    until_timer.emplace_back();
    broadcast_timer.emplace_back();
    watchdog_timer.emplace_back();
    slot_base.push_back(static_cast<std::uint32_t>(slot_r.size()));
    slot_r.insert(slot_r.end(), slots, 0);
    slot_seen.insert(slot_seen.end(), slots, 0);
    slot_sigma.insert(slot_sigma.end(), slots, 0);
    return index;
  }

  // Scalar lanes, indexed by arena index.
  std::vector<std::uint8_t> phase;  ///< GradientTrixNode::Phase
  std::vector<LocalTime> h_own;
  std::vector<LocalTime> h_min;
  std::vector<LocalTime> h_max;
  std::vector<Sigma> last_sigma;
  std::vector<TimerHandle> until_timer;
  std::vector<TimerHandle> broadcast_timer;
  std::vector<TimerHandle> watchdog_timer;

  // Per-predecessor lanes, indexed by slot_base[node] + slot.
  std::vector<std::uint32_t> slot_base;
  std::vector<std::uint8_t> slot_r;     ///< neighbour-received flags
  std::vector<std::uint8_t> slot_seen;  ///< any reception this iteration
  std::vector<Sigma> slot_sigma;        ///< wave label each slot carried
};

/// Lanes for Layer0LineNode (Algorithm 2's single register + timer).
class Layer0Soa {
 public:
  std::uint32_t add_node() {
    const auto index = static_cast<std::uint32_t>(stored_h.size());
    stored_h.push_back(kLocalInfinity);
    out_sigma.push_back(0);
    broadcast_timer.emplace_back();
    return index;
  }

  std::vector<LocalTime> stored_h;
  std::vector<Sigma> out_sigma;
  std::vector<TimerHandle> broadcast_timer;
};

/// Lanes for the naive-TRIX baseline node.
class TrixSoa {
 public:
  std::uint32_t add_node(std::uint32_t slots) {
    const auto index = static_cast<std::uint32_t>(armed.size());
    armed.push_back(0);
    seen_count.push_back(0);
    fire_timer.emplace_back();
    slot_base.push_back(static_cast<std::uint32_t>(slot_seen.size()));
    slot_seen.insert(slot_seen.end(), slots, 0);
    slot_sigma.insert(slot_sigma.end(), slots, 0);
    return index;
  }

  std::vector<std::uint8_t> armed;
  std::vector<std::uint32_t> seen_count;
  std::vector<TimerHandle> fire_timer;

  std::vector<std::uint32_t> slot_base;
  std::vector<std::uint8_t> slot_seen;
  std::vector<Sigma> slot_sigma;
};

/// Lanes for the Lynch-Welch grid baseline node.
class LwSoa {
 public:
  std::uint32_t add_node(std::uint32_t slots) {
    const auto index = static_cast<std::uint32_t>(seen_count.size());
    seen_count.push_back(0);
    fire_timer.emplace_back();
    slot_base.push_back(static_cast<std::uint32_t>(slot_seen.size()));
    slot_seen.insert(slot_seen.end(), slots, 0);
    slot_arrival.insert(slot_arrival.end(), slots, 0.0);
    slot_sigma.insert(slot_sigma.end(), slots, 0);
    return index;
  }

  std::vector<std::uint32_t> seen_count;
  std::vector<TimerHandle> fire_timer;

  std::vector<std::uint32_t> slot_base;
  std::vector<std::uint8_t> slot_seen;
  std::vector<LocalTime> slot_arrival;
  std::vector<Sigma> slot_sigma;

  /// Shared trimmed-midpoint sort scratch (simulations are single-threaded
  /// within one World, so one buffer serves every node).
  std::vector<LocalTime> fire_scratch;
};

/// One arena per experiment, owned by World and shared by every node the
/// providers construct (NodeContext::arena).
struct NodeArena {
  GradientSoa gradient;
  Layer0Soa layer0;
  TrixSoa trix;
  LwSoa lw;
};

}  // namespace gtrix
