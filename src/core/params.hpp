// Algorithm parameters (paper §3, Equations (1)-(3)).
//
//   kappa  := 2 (u + (1 - 1/theta)(Lambda - d))                     (1)
//   Lambda >= C theta (sup_l L_l + u) + d                           (2)
//   d      >= C (theta (sup_l L_l + u) + kappa)                     (3)
//
// sup_l L_l is not known a priori; the analysis bounds it by
// 4 kappa (2 + log2 D) in the fault-free case (Theorem 1.1), so validation
// instantiates (2)/(3) with that bound and an explicit safety factor C.
#pragma once

#include <cstdint>
#include <string>

namespace gtrix {

struct Params {
  double d = 1000.0;      ///< maximum end-to-end message delay
  double u = 10.0;        ///< delay uncertainty (delays in [d-u, d])
  double theta = 1.0005;  ///< maximum hardware clock rate (min rate is 1)
  double lambda = 2000.0; ///< nominal layer-to-layer period Lambda

  /// kappa per Eq. (1). Inline: the node hot path reads it per reception.
  double kappa() const noexcept {
    return 2.0 * (u + (1.0 - 1.0 / theta) * (lambda - d));
  }

  /// Theorem 1.1 fault-free local skew bound: 4 kappa (2 + log2 D).
  double thm11_bound(std::uint32_t diameter) const noexcept;

  /// Corollary 4.23 bound on Psi^1: 2 kappa D.
  double psi1_bound(std::uint32_t diameter) const noexcept;

  /// Corollary 4.24 global skew bound: 6 kappa D.
  double global_skew_bound(std::uint32_t diameter) const noexcept;

  /// Theorem 1.2 bound for f worst-case faults:
  /// 4 kappa (2 + log2 D) 5^f sum_{j<=f} 5^-j.
  double thm12_bound(std::uint32_t diameter, std::uint32_t faults) const noexcept;

  /// Checks Eq. (2) and (3) against the Theorem 1.1 bound for diameter D
  /// with safety factor C. Returns an empty string when valid, otherwise a
  /// human-readable description of the violated constraint.
  std::string validate(std::uint32_t diameter, double safety = 1.0) const;
  bool valid_for(std::uint32_t diameter, double safety = 1.0) const {
    return validate(diameter, safety).empty();
  }

  /// Constructs parameters with Lambda = 2d.
  static Params with(double d, double u, double theta);

  /// Derives a parameter set valid for diameter D at the given uncertainty
  /// and drift: iterates d until Eq. (2)/(3) hold with the requested safety
  /// factor (Lambda = 2d throughout).
  static Params derive_for(std::uint32_t diameter, double u, double theta,
                           double safety = 1.2);

  std::string describe() const;

  bool operator==(const Params&) const = default;
};

}  // namespace gtrix
