// Layer-0 pulse generation (paper Appendix A).
//
// Two interchangeable realizations:
//  * ClockSource + Layer0LineNode: the paper's Algorithm 2. A perfect-period
//    source (which by definition provides "true" time, §2) feeds a line of
//    forwarding nodes; each node re-broadcasts Lambda - d local time after a
//    reception, overwriting its single stored timestamp on every reception,
//    which makes the scheme self-stabilizing (Lemma A.1).
//  * IdealEmitter: directly generates layer-0 pulses at k Lambda + offset_v,
//    matching the analysis precondition L_0 <= kappa/2 without the
//    position-staggering of the line scheme. Used by the theorem benches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "clock/hardware_clock.hpp"
#include "core/node_state.hpp"
#include "core/params.hpp"
#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace gtrix {

/// The clock reference driving layer 0. Generates pulse k at (k-1) Lambda
/// with wave stamp k-1; the stamp convention makes every line hop add one
/// (see DESIGN.md on sigma indexing). Pulses are chained one typed event at
/// a time (payload.i = k), so only one event is ever pending per source.
class ClockSource final : public TimerTarget {
 public:
  ClockSource(Simulator& sim, Network& net, NetNodeId self, Params params,
              std::int64_t pulse_count, Recorder* recorder);

  /// Schedules the first pulse; call once before running the simulation.
  void start();

  void on_timer(const Event& event) override;

  NetNodeId id() const noexcept { return self_; }

 private:
  enum TimerKind : std::uint32_t { kEmit = 1 };

  Simulator& sim_;
  Network& net_;
  NetNodeId self_;
  Params params_;
  std::int64_t pulse_count_;
  Recorder* recorder_;
};

/// Algorithm 2: layer-0 line forwarding node. Hot state (the stored
/// timestamp, outgoing wave label and armed broadcast timer) lives in the
/// arena's layer-0 lanes; `soa = nullptr` falls back to a private
/// single-entry arena for standalone construction.
class Layer0LineNode final : public PulseSink, public TimerTarget {
 public:
  Layer0LineNode(Simulator& sim, Network& net, NetNodeId self, HardwareClock clock,
                 NetNodeId line_pred, Params params, Recorder* recorder,
                 Layer0Soa* soa = nullptr);

  void on_pulse(NetNodeId from, EdgeId edge, const Pulse& pulse, SimTime now) override;

  void on_timer(const Event& event) override;

  /// Scrambles the stored timestamp / pending broadcast (Theorem 1.6 tests).
  void corrupt_state(Rng& rng);

  std::uint64_t pulses_forwarded() const noexcept { return forwarded_; }

  /// Checkpoint hooks (src/ckpt/nodes_ckpt.cpp): Algorithm 2's register,
  /// wave label, armed timer and the forwarded counter. ClockSource and
  /// IdealEmitter carry no mutable state (their pulse chain lives in the
  /// event queue as payload), so only the line node has hooks.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  enum TimerKind : std::uint32_t { kBroadcast = 1 };

  void broadcast(SimTime now);
  void arm_broadcast(LocalTime target);

  // Arena accessors (Algorithm 2's H register, wave label, armed timer).
  LocalTime& stored_h() { return soa_->stored_h[i_]; }
  Sigma& out_sigma() { return soa_->out_sigma[i_]; }
  TimerHandle& broadcast_timer() { return soa_->broadcast_timer[i_]; }

  Simulator& sim_;
  Network& net_;
  NetNodeId self_;
  HardwareClock clock_;
  NetNodeId line_pred_;
  Params params_;
  Recorder* recorder_;

  std::unique_ptr<Layer0Soa> owned_soa_;  // fallback only
  Layer0Soa* soa_;
  std::uint32_t i_;
  std::uint64_t forwarded_ = 0;
};

/// Ideal layer-0 node: pulses at k Lambda + offset with stamp k.
class IdealEmitter final : public TimerTarget {
 public:
  IdealEmitter(Simulator& sim, Network& net, NetNodeId self, double offset,
               Params params, std::int64_t pulse_count, Recorder* recorder);

  void start();

  void on_timer(const Event& event) override;

  NetNodeId id() const noexcept { return self_; }

 private:
  enum TimerKind : std::uint32_t { kEmit = 1 };

  Simulator& sim_;
  Network& net_;
  NetNodeId self_;
  double offset_;
  Params params_;
  std::int64_t pulse_count_;
  Recorder* recorder_;
};

}  // namespace gtrix
