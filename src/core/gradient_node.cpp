#include "core/gradient_node.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace gtrix {

namespace {
constexpr double kGuardSlack = 1e-9;  // float-noise tolerance in guard checks
}

GradientTrixNode::GradientTrixNode(Simulator& sim, Network& net, NetNodeId self,
                                   HardwareClock clock, std::vector<NetNodeId> preds,
                                   GradientNodeConfig config, Recorder* recorder,
                                   GradientSoa* soa)
    : sim_(sim),
      net_(net),
      self_(self),
      clock_(std::move(clock)),
      preds_(std::move(preds)),
      config_(config),
      recorder_(recorder) {
  GTRIX_CHECK_MSG(preds_.size() >= 2, "node needs its own copy plus >= 1 neighbour");
  GTRIX_CHECK_MSG(preds_.size() <= kMaxSlots, "too many predecessors");
  if (soa == nullptr) {
    owned_soa_ = std::make_unique<GradientSoa>();
    soa = owned_soa_.get();
  }
  soa_ = soa;
  i_ = soa_->add_node(static_cast<std::uint32_t>(preds_.size()));
  slot_base_ = soa_->slot_base[i_];
}

int GradientTrixNode::slot_of(NetNodeId from) const {
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (preds_[i] == from) return static_cast<int>(i);
  }
  return -1;
}

void GradientTrixNode::on_pulse(NetNodeId from, EdgeId /*edge*/, const Pulse& pulse,
                                SimTime now) {
  const int slot = slot_of(from);
  if (slot < 0) return;  // not one of our predecessors
  const LocalTime h = clock_.to_local(now);
  if (phase() != Phase::kCollect) {
    // The pulse decision for this iteration is already made. A message from
    // a slot not yet seen still belongs to the *current* wave (Lemma B.1:
    // e.g. the own-copy pulse arriving after the timeout branch committed,
    // or the last neighbour arriving after the until-loop expired): consume
    // it so it cannot leak into the next iteration. Repeats belong to the
    // next wave and are queued.
    const auto uslot = static_cast<std::size_t>(slot);
    if (!seen(uslot)) {
      seen(uslot) = 1;
      if (slot > 0) r(uslot) = 1;
      slot_sigma(uslot) = pulse.stamp;
      ++counters_.late_absorbed;
      return;
    }
    if (pending_.size() >= kPendingCap) {
      pending_.pop_front();
      ++counters_.pending_overflow;
    }
    pending_.push_back(PendingMsg{from, h, pulse.stamp});
    return;
  }
  process_message(from, h, pulse.stamp, now);
}

void GradientTrixNode::process_message(NetNodeId from, LocalTime h, Sigma sigma,
                                       SimTime now) {
  const int slot = slot_of(from);
  GTRIX_CHECK(slot >= 0);
  const auto uslot = static_cast<std::size_t>(slot);
  bool changed = false;
  if (slot == 0) {
    // Pulse from the node's own copy (v, l-1).
    if (!std::isfinite(h_own())) {
      h_own() = h;
      seen(0) = 1;
      slot_sigma(0) = sigma;
      changed = true;
    } else {
      ++counters_.duplicate_drops;
    }
  } else {
    // Pulse from a neighbour copy (w, l-1). With trimming, H_min is the
    // (trim+1)-th earliest and H_max the (deg - trim)-th reception; the
    // paper's rule is trim = 0 (first and last).
    if (!r(uslot)) {
      std::size_t seen_before = 0;
      for (std::size_t i = 1; i < preds_.size(); ++i) seen_before += r(i) ? 1U : 0U;
      const std::size_t degree = preds_.size() - 1;
      const std::size_t trim = config_.trim;
      GTRIX_CHECK_MSG(2 * trim < degree, "trim too large for degree");
      if (seen_before == trim) {
        h_min() = h;
        if (config_.self_stabilizing || config_.startup_watchdog) arm_watchdog();
      }
      r(uslot) = 1;
      seen(uslot) = 1;
      slot_sigma(uslot) = sigma;
      if (seen_before + 1 == degree - trim) h_max() = h;
      changed = true;
    } else {
      ++counters_.duplicate_drops;
    }
  }
  if (changed) update_until(now, clock_.to_local(now));
}

std::pair<LocalTime, LocalTime> GradientTrixNode::thresholds() const {
  // thr1 (H_max + kappa/2 + theta kappa) is the timeout for a *missing*
  // own-copy pulse: once every neighbour has been heard, any correct own
  // copy would arrive within this margin (see Lemma B.1's case analysis;
  // if the until-loop could expire via thr1 with H_own known, Algorithm 3
  // would not be equivalent to Algorithm 1, contradicting Lemma B.2).
  // thr2 (2 H_own - H_min + 2 kappa) is the symmetric wait for the last
  // neighbour once the own copy is known.
  const double kappa = config_.params.kappa();
  const LocalTime thr1 = (!std::isfinite(h_own()) && std::isfinite(h_max()))
                             ? h_max() + kappa / 2.0 + config_.params.theta * kappa
                             : kLocalInfinity;
  const LocalTime thr2 = (std::isfinite(h_own()) && std::isfinite(h_min()))
                             ? 2.0 * h_own() - h_min() + 2.0 * kappa
                             : kLocalInfinity;
  return {thr1, thr2};
}

void GradientTrixNode::update_until(SimTime now, LocalTime now_local) {
  if (config_.simplified) {
    // Algorithm 1: wait until H_own, H_min, H_max are all known.
    if (std::isfinite(h_own()) && std::isfinite(h_min()) && std::isfinite(h_max())) {
      exit_collect(now, now_local);
    }
    return;
  }
  if (!std::isfinite(h_min())) return;  // until requires H_min < inf
  const auto [thr1, thr2] = thresholds();
  const LocalTime thr = std::min(thr1, thr2);
  if (!std::isfinite(thr)) return;  // keep collecting, no deadline yet
  if (now_local >= thr) {
    exit_collect(now, now_local);
    return;
  }
  arm_until_timer(thr);
}

void GradientTrixNode::arm_until_timer(LocalTime threshold) {
  // Always cancel + reschedule, even at an unchanged threshold: eliding the
  // re-arm would keep the original event's older sequence number, which can
  // reorder float-exact same-instant ties relative to an engine that
  // re-armed -- a ~3% saving is not worth weakening the bit-identity
  // guarantee between engine configurations.
  sim_.cancel(until_timer());
  const SimTime fire_at = std::max(clock_.to_real(threshold), sim_.now());
  // The exact local threshold rides along in the payload so the fire path
  // compares the same floating-point value that defined the deadline.
  until_timer() = sim_.at(fire_at, this, kUntilTimer, EventPayload{.f = threshold});
}

void GradientTrixNode::arm_watchdog() {
  // Algorithm 4's Wait() helper: once the first neighbour pulse is stored,
  // all remaining correct pulses must follow within theta (2 L + u) local
  // time; if neither the own-copy nor the last neighbour pulse shows up, the
  // stored partial state stems from a spurious message and is cleared.
  sim_.cancel(watchdog_timer());
  const double interval =
      config_.params.theta * (2.0 * config_.skew_bound_hint + config_.params.u);
  const LocalTime fire_local = clock_.to_local(sim_.now()) + interval;
  watchdog_timer() = sim_.at(clock_.to_real(fire_local), this, kWatchdogTimer);
}

void GradientTrixNode::on_timer(const Event& event) {
  switch (event.kind) {
    case kUntilTimer:
      until_timer().reset();  // fired; the handle is stale
      if (phase() != Phase::kCollect) return;
      exit_collect(event.time, event.payload.f);
      return;
    case kBroadcastTimer:
      broadcast_timer().reset();
      if (phase() != Phase::kWaitBroadcast) return;
      do_broadcast(event.time, event.payload.f);
      return;
    case kWatchdogTimer:
      watchdog_timer().reset();
      if (phase() != Phase::kCollect) return;
      if (std::isfinite(h_min()) && !std::isfinite(h_own()) && !std::isfinite(h_max())) {
        h_min() = kLocalInfinity;
        for (std::size_t i = 1; i < preds_.size(); ++i) {
          r(i) = 0;
          seen(i) = 0;
          slot_sigma(i) = 0;
        }
        ++counters_.watchdog_resets;
        sim_.cancel(until_timer());  // any armed until-timer is now meaningless
      }
      return;
  }
}

void GradientTrixNode::exit_collect(SimTime now, LocalTime now_local) {
  sim_.cancel(until_timer());
  sim_.cancel(watchdog_timer());

  const Params& p = config_.params;
  const double kappa = p.kappa();

  IterationRecord rec;
  rec.sigma = estimate_sigma();
  rec.h_own = h_own();
  rec.h_min = h_min();
  rec.h_max = h_max();
  rec.own_missing = !std::isfinite(h_own());
  rec.max_missing = !std::isfinite(h_max());
  rec.slot_count = static_cast<std::uint8_t>(preds_.size());
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    rec.slot_sigma[i] = slot_sigma(i);
    rec.slot_seen[i] = seen(i) != 0;
  }

  const bool branch1 = !config_.simplified && !std::isfinite(h_own());

  if (branch1) {
    // Algorithm 3 first branch: the own-copy pulse never showed up before
    // H_max + kappa/2 + theta kappa local time; pulse from the last
    // neighbour reception instead: H_max + 3 kappa/2 + Lambda - d.
    rec.timeout_branch = true;
    ++counters_.timeout_branches;
    if (config_.self_stabilizing && h_max() > now_local + kGuardSlack) {
      ++counters_.guard_aborts;  // corrupted state: reception in the future
      finish_iteration_without_pulse(now);
      return;
    }
    const LocalTime target = h_max() + 1.5 * kappa + p.lambda - p.d;
    rec.correction = 0.0;  // no own reference; no correction defined
    schedule_broadcast(now, target + config_.broadcast_offset, rec);
    return;
  }

  // Second branch: H_own and H_min are known (the until condition exited via
  // 2 H_own - H_min + 2 kappa). H_max may still be missing: the node has
  // waited long enough that any correct last-neighbour pulse would have
  // arrived, so the H_own - H_max term is treated as -infinity ("infinity
  // cancels out", §3) and the computation collapses to the Delta < 0 branch
  // with C = min{H_own - H_min + 3 kappa/2, 0} -- exactly the value
  // Algorithm 1 computes in that regime (Lemma B.2, second case).
  GTRIX_CHECK_MSG(std::isfinite(h_own()) && std::isfinite(h_min()),
                  "branch 2 requires own and first-neighbour receptions");
  Correction c;
  if (!std::isfinite(h_max())) {
    c.branch = CorrectionBranch::kNegativeJump;
    c.delta = -std::numeric_limits<double>::infinity();
    c.value = std::min(h_own() - h_min() + 1.5 * kappa, 0.0);
  } else {
    // h_max < h_min can only result from corrupted state (receptions are
    // processed in arrival order); clamp so the computation stays defined.
    const double h_max_eff = std::max(h_max(), h_min());
    c = compute_correction(h_own(), h_min(), h_max_eff, p, config_.jump_condition);
  }
  rec.correction = c.value;
  const LocalTime target = h_own() + p.lambda - p.d - c.value;

  if (config_.self_stabilizing) {
    const bool future_own = h_own() > now_local + kGuardSlack;
    const bool future_min = c.value < 0.0 && h_min() > now_local + kGuardSlack;
    const bool absurd_wait = target > now_local + (p.lambda - p.d) + kGuardSlack;
    if (future_own || future_min || absurd_wait) {
      ++counters_.guard_aborts;
      finish_iteration_without_pulse(now);
      return;
    }
  }
  schedule_broadcast(now, target + config_.broadcast_offset, rec);
}

void GradientTrixNode::finish_iteration_without_pulse(SimTime now) {
  reset_iteration_state();
  set_phase(Phase::kCollect);
  drain_pending(now);
}

void GradientTrixNode::schedule_broadcast(SimTime now, LocalTime target,
                                          IterationRecord record) {
  staged_record_ = record;
  set_phase(Phase::kWaitBroadcast);
  sim_.cancel(broadcast_timer());  // supersede any stale armed broadcast
  const LocalTime now_local = clock_.to_local(now);
  if (target <= now_local) {
    // "wait until H(t) = X" with X already reached: act immediately. This
    // occurs during initialization and stabilization; steady-state
    // iterations always schedule into the future (Lemma B.1).
    ++counters_.late_broadcasts;
    staged_record_.late = true;
    do_broadcast(now, now_local);
    return;
  }
  broadcast_timer() =
      sim_.at(clock_.to_real(target), this, kBroadcastTimer, EventPayload{.f = target});
}

void GradientTrixNode::do_broadcast(SimTime now, LocalTime fire_local) {
  sim_.cancel(broadcast_timer());  // no-op when called from the timer itself
  staged_record_.pulse_time = now;
  staged_record_.pulse_local = fire_local;
  last_sigma() = staged_record_.sigma;
  const Pulse pulse{staged_record_.sigma};
  if (recorder_ != nullptr) {
    recorder_->record_pulse(self_, staged_record_.sigma, now);
    recorder_->record_iteration(self_, staged_record_);
  }
  ++counters_.iterations;
  if (send_override_) {
    send_override_(pulse, now);
  } else {
    net_.broadcast(self_, pulse);
  }
  reset_iteration_state();
  set_phase(Phase::kCollect);
  drain_pending(now);
}

void GradientTrixNode::reset_iteration_state() {
  h_own() = kLocalInfinity;
  h_min() = kLocalInfinity;
  h_max() = kLocalInfinity;
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    r(i) = 0;
    seen(i) = 0;
    slot_sigma(i) = 0;
  }
  sim_.cancel(until_timer());
  sim_.cancel(watchdog_timer());
}

void GradientTrixNode::drain_pending(SimTime now) {
  while (!pending_.empty() && phase() == Phase::kCollect) {
    const PendingMsg msg = pending_.front();
    pending_.pop_front();
    process_message(msg.from, msg.h_arrival, msg.sigma, now);
  }
}

Sigma GradientTrixNode::estimate_sigma() const {
  // Fault-tolerant wave recovery: take any value reported by two or more
  // predecessors (at most one predecessor is faulty). Without a majority
  // (e.g. a Byzantine own copy with a drifting label plus a single correct
  // neighbour), prefer continuity with the node's own wave sequence --
  // waves advance by exactly one per iteration in correct operation -- and
  // only then fall back to the own copy's value.
  std::array<Sigma, kMaxSlots> vals{};
  std::size_t n = 0;
  for (std::size_t i = 0; i < preds_.size(); ++i) {
    if (seen(i)) vals[n++] = slot_sigma(i);
  }
  if (n == 0) return last_sigma() + 1;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t same = 0;
    for (std::size_t j = 0; j < n; ++j) same += vals[j] == vals[i] ? 1U : 0U;
    if (same >= 2) return vals[i];
  }
  if (counters_.iterations > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (vals[i] == last_sigma() + 1) return vals[i];
    }
  }
  if (seen(0)) return slot_sigma(0);
  return vals[0];
}

void GradientTrixNode::corrupt_state(Rng& rng) {
  // Arbitrary transient fault (Theorem 1.6): scramble every register and
  // control-flow bit. Pending messages and armed timers are dropped /
  // invalidated; freshly scheduled garbage may include a bogus broadcast.
  reset_iteration_state();
  pending_.clear();
  const LocalTime now_local = clock_.to_local(sim_.now());
  const double lambda = config_.params.lambda;
  const Sigma bogus_sigma = rng.uniform_int(-4, 4);

  if (rng.bernoulli(0.5)) {
    set_phase(Phase::kCollect);
    // Random subset of receptions with random timestamps (possibly in the
    // "future" -- exactly the inconsistency Algorithm 4's guards detect).
    if (rng.bernoulli(0.7)) {
      h_own() = now_local + rng.uniform(-2.0 * lambda, lambda);
      seen(0) = 1;
      slot_sigma(0) = bogus_sigma;
    }
    if (rng.bernoulli(0.7)) {
      h_min() = now_local + rng.uniform(-2.0 * lambda, lambda);
      for (std::size_t i = 1; i < preds_.size(); ++i) {
        if (rng.bernoulli(0.5)) {
          r(i) = 1;
          seen(i) = 1;
          slot_sigma(i) = bogus_sigma + rng.uniform_int(-1, 1);
        }
      }
      bool all = true;
      for (std::size_t i = 1; i < preds_.size(); ++i) all = all && r(i);
      if (all) h_max() = h_min() + rng.uniform(0.0, lambda);
    }
  } else {
    // Mid-wait with a garbage target.
    IterationRecord rec;
    rec.sigma = bogus_sigma;
    rec.correction = rng.uniform(-lambda / 4.0, lambda / 4.0);
    rec.h_own = now_local;
    rec.h_min = now_local;
    rec.h_max = now_local;
    const LocalTime target = now_local + rng.uniform(0.0, 2.0 * lambda);
    // Do not count this garbage emission as a normal late broadcast.
    schedule_broadcast(sim_.now(), target, rec);
  }
}

}  // namespace gtrix
