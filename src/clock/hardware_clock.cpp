#include "clock/hardware_clock.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace gtrix {

HardwareClock::HardwareClock(double rate, LocalTime offset) {
  GTRIX_CHECK_MSG(rate > 0.0, "clock rate must be positive");
  segments_.push_back(Segment{0.0, offset, rate});
}

HardwareClock::HardwareClock(std::vector<std::pair<SimTime, double>> breakpoints,
                             LocalTime offset) {
  GTRIX_CHECK_MSG(!breakpoints.empty(), "empty rate schedule");
  GTRIX_CHECK_MSG(breakpoints.front().first == 0.0, "schedule must start at t=0");
  LocalTime h = offset;
  for (std::size_t i = 0; i < breakpoints.size(); ++i) {
    const auto [t0, rate] = breakpoints[i];
    GTRIX_CHECK_MSG(rate > 0.0, "clock rate must be positive");
    if (i > 0) {
      GTRIX_CHECK_MSG(t0 > breakpoints[i - 1].first, "breakpoints must increase");
      h += breakpoints[i - 1].second * (t0 - breakpoints[i - 1].first);
    }
    segments_.push_back(Segment{t0, h, rate});
  }
}

LocalTime HardwareClock::to_local_schedule(SimTime t) const {
  // Find the last segment with t0 <= t.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                             [](SimTime v, const Segment& s) { return v < s.t0; });
  const Segment& seg = *std::prev(it);
  return seg.h0 + seg.rate * (t - seg.t0);
}

SimTime HardwareClock::to_real_schedule(LocalTime h) const {
  // Find the last segment with h0 <= h. h0 is increasing because rates are
  // positive and breakpoints increase.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), h,
                             [](LocalTime v, const Segment& s) { return v < s.h0; });
  const Segment& seg = *std::prev(it);
  return seg.t0 + (h - seg.h0) / seg.rate;
}

double HardwareClock::rate_at(SimTime t) const {
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                             [](SimTime v, const Segment& s) { return v < s.t0; });
  return std::prev(it)->rate;
}

double HardwareClock::min_rate() const {
  double r = segments_.front().rate;
  for (const auto& s : segments_) r = std::min(r, s.rate);
  return r;
}

double HardwareClock::max_rate() const {
  double r = segments_.front().rate;
  for (const auto& s : segments_) r = std::max(r, s.rate);
  return r;
}

}  // namespace gtrix
