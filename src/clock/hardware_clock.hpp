// Hardware clocks H_v : real time -> local time with bounded drift.
//
// The model (paper §2, "Local Clocks and Computations") requires
//   t' - t <= H(t') - H(t) <= theta * (t' - t)   for all t < t',
// i.e. instantaneous rate within [1, theta]. The algorithm only measures
// durations and schedules "wait until H(t) = X" events, so clocks must be
// invertible: to_real(to_local(t)) == t.
//
// Two implementations:
//  * static rate (the paper's default assumption: speeds change negligibly),
//  * piecewise-linear rate schedule (used for the Corollary 1.5 experiments
//    on slowly varying clock speeds).
#pragma once

#include <vector>

#include "sim/time.hpp"
#include "support/check.hpp"

namespace gtrix {

class HardwareClock {
 public:
  /// Constant-rate clock: H(t) = offset + rate * t. rate must be >= some
  /// positive value; the paper requires rate in [1, theta].
  HardwareClock(double rate, LocalTime offset);

  /// Piecewise-linear clock. `breakpoints` holds (real time, rate) pairs
  /// sorted by time; the i-th rate applies from breakpoints[i] until
  /// breakpoints[i+1] (the last applies forever). The first breakpoint must
  /// be at real time 0. `offset` is H(0).
  HardwareClock(std::vector<std::pair<SimTime, double>> breakpoints, LocalTime offset);

  /// Local reading at real time t (t >= 0). The single-segment (static
  /// rate) case is inlined: these conversions run several times per event
  /// on the hot path. Identical arithmetic to the schedule walk.
  LocalTime to_local(SimTime t) const {
    GTRIX_CHECK_MSG(t >= 0.0, "negative real time");
    if (segments_.size() == 1) [[likely]] {
      const Segment& seg = segments_.front();
      return seg.h0 + seg.rate * (t - seg.t0);
    }
    return to_local_schedule(t);
  }

  /// Real time at which the local reading reaches h (h >= H(0)).
  SimTime to_real(LocalTime h) const {
    GTRIX_CHECK_MSG(h >= segments_.front().h0, "local time precedes clock origin");
    if (segments_.size() == 1) [[likely]] {
      const Segment& seg = segments_.front();
      return seg.t0 + (h - seg.h0) / seg.rate;
    }
    return to_real_schedule(h);
  }

  /// Instantaneous rate at real time t.
  double rate_at(SimTime t) const;

  /// Minimum / maximum instantaneous rate over the whole schedule.
  double min_rate() const;
  double max_rate() const;

 private:
  struct Segment {
    SimTime t0;      // segment start, real time
    LocalTime h0;    // H(t0)
    double rate;     // slope on [t0, next.t0)
  };

  LocalTime to_local_schedule(SimTime t) const;
  SimTime to_real_schedule(LocalTime h) const;

  std::vector<Segment> segments_;  // sorted by t0; first has t0 == 0
};

}  // namespace gtrix
