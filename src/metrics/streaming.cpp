#include "metrics/streaming.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/check.hpp"

namespace gtrix {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

StreamingSkew::StreamingSkew(const Grid& grid, std::vector<bool> faulty, Config config)
    : grid_(grid),
      faulty_(std::move(faulty)),
      warmup_(config.warmup),
      deviation_sketch_(0.01) {
  GTRIX_CHECK_MSG(config.ring_waves >= 2, "streaming wave ring must hold >= 2 waves");
  GTRIX_CHECK_MSG(faulty_.size() == grid_.node_count(),
                  "fault map size must match the grid");
  ring_ = std::bit_ceil(static_cast<std::size_t>(config.ring_waves));
  ring_mask_ = ring_ - 1;

  const std::size_t n = grid_.node_count();
  held_sigma_.assign(n, kNoSigma);
  held_time_.assign(n, 0.0);
  recorded_.assign(n, 0);
  held_steady_.assign(n, false);
  ring_sigma_.assign(n * ring_, kNoSigma);
  ring_time_.assign(n * ring_, 0.0);

  const std::uint32_t layers = grid_.layers();
  intra_by_layer_.assign(layers, 0.0);
  inter_by_layer_.assign(layers > 0 ? layers - 1 : 0, 0.0);
  spread_by_layer_.assign(layers, 0.0);
  layer_ring_.assign(static_cast<std::size_t>(layers) * ring_, WaveExtrema{});
}

void StreamingSkew::on_pulse(RecNodeId node, Sigma sigma, SimTime t) {
  if (node >= grid_.node_count()) return;  // line-mode clock source
  if (faulty_[node]) return;               // faulty endpoints never form pairs
  if (anchor_set_ && t >= anchor_time_) {
    // Corrupt cell: everything from the injection instant on is suspect;
    // the accumulators stay the clean pre-corruption epoch.
    ++suppressed_;
    return;
  }
  const std::int64_t arrival = ++recorded_[node];
  if (held_sigma_[node] != kNoSigma) {
    if (sigma < held_sigma_[node]) {
      ++out_of_order_;
      return;
    }
    if (sigma == held_sigma_[node]) {
      // Re-recorded wave: the later value wins, mirroring the full log's
      // in-place overwrite. Counted so tests can assert it never happens in
      // the scenarios whose results must be bit-identical.
      ++out_of_order_;
      held_time_[node] = t;
      return;
    }
    // A strictly later wave arrived: the held pulse is no longer the node's
    // last recorded one, so it passes the node_tail=1 filter and commits.
    if (held_steady_[node]) commit(node, held_sigma_[node], held_time_[node]);
  }
  held_sigma_[node] = sigma;
  held_time_[node] = t;
  held_steady_[node] = arrival > warmup_;
}

double StreamingSkew::lookup(RecNodeId g, Sigma sigma) {
  const std::size_t slot = static_cast<std::size_t>(g) * ring_ +
                           (static_cast<std::size_t>(sigma) & ring_mask_);
  const Sigma have = ring_sigma_[slot];
  if (have == sigma) return ring_time_[slot];
  if (have != kNoSigma && have > sigma) {
    // The partner committed this wave but its slot was already reused: the
    // ring is too small for this scenario's wave stagger. A miss with an
    // OLDER (or no) resident sigma is the normal earlier-endpoint case --
    // the partner just has not committed yet and will score the pair when
    // it does -- so only the overwritten case is an anomaly worth counting.
    ++window_overflows_;
  }
  return kNaN;
}

void StreamingSkew::score(double deviation) {
  deviation_summary_.add(deviation);
  deviation_sketch_.add(deviation);
}

void StreamingSkew::commit(RecNodeId g, Sigma sigma, SimTime t) {
  const std::size_t wave_slot = static_cast<std::size_t>(sigma) & ring_mask_;
  ring_sigma_[static_cast<std::size_t>(g) * ring_ + wave_slot] = sigma;
  ring_time_[static_cast<std::size_t>(g) * ring_ + wave_slot] = t;

  const std::uint32_t bn = grid_.base().node_count();
  const std::uint32_t layer = g / bn;
  const BaseNodeId v = g % bn;

  // Layer spread (global skew): running min/max per (layer, wave). Partial
  // spreads are always <= the wave's final spread, so the running max over
  // commits equals the post-hoc max over complete waves.
  WaveExtrema& we = layer_ring_[static_cast<std::size_t>(layer) * ring_ + wave_slot];
  bool spread_ok = true;
  if (we.sigma == sigma) {
    we.min = std::min(we.min, t);
    we.max = std::max(we.max, t);
  } else if (we.sigma == kNoSigma || we.sigma < sigma) {
    we.sigma = sigma;
    we.min = t;
    we.max = t;
  } else {
    ++window_overflows_;  // straggler for a wave whose slot moved on
    spread_ok = false;
  }
  if (spread_ok) {
    spread_by_layer_[layer] = std::max(spread_by_layer_[layer], we.max - we.min);
  }

  // Intra-layer pairs: one score per base edge per wave, triggered by the
  // later endpoint's commit (the earlier one is found in the ring).
  for (const BaseNodeId w : grid_.base().neighbors(v)) {
    const RecNodeId gn = layer * bn + w;
    if (faulty_[gn]) continue;
    const double tn = lookup(gn, sigma);
    if (std::isnan(tn)) continue;
    const double dev = std::abs(t - tn);
    intra_by_layer_[layer] = std::max(intra_by_layer_[layer], dev);
    ++pairs_checked_;
    score(dev);
  }

  // Inter-layer pairs |t^{sigma+1}_{v,l} - t^sigma_{w,l+1}|, again scored by
  // whichever endpoint commits later: as the lower node (pair my wave s with
  // successors' s-1) and as the upper node (pair predecessors' s+1 with my s).
  if (layer + 1 < grid_.layers()) {
    for (const GridNodeId gw : grid_.successors(g)) {
      if (faulty_[gw]) continue;
      const double tw = lookup(gw, sigma - 1);
      if (std::isnan(tw)) continue;
      const double dev = std::abs(t - tw);
      inter_by_layer_[layer] = std::max(inter_by_layer_[layer], dev);
      ++pairs_checked_;
      score(dev);
    }
  }
  if (layer >= 1) {
    for (const GridNodeId gv : grid_.predecessors(g)) {
      if (faulty_[gv]) continue;
      const double tv = lookup(gv, sigma + 1);
      if (std::isnan(tv)) continue;
      const double dev = std::abs(tv - t);
      inter_by_layer_[layer - 1] = std::max(inter_by_layer_[layer - 1], dev);
      ++pairs_checked_;
      score(dev);
    }
  }
}

SkewReport StreamingSkew::report(Sigma lo, Sigma hi) const {
  SkewReport r;
  r.sigma_lo = lo;
  r.sigma_hi = hi;
  r.intra_by_layer = intra_by_layer_;
  r.inter_by_layer = inter_by_layer_;
  r.spread_by_layer = spread_by_layer_;
  for (const double x : intra_by_layer_) r.max_intra = std::max(r.max_intra, x);
  for (const double x : inter_by_layer_) r.max_inter = std::max(r.max_inter, x);
  for (const double x : spread_by_layer_) r.global_skew = std::max(r.global_skew, x);
  r.local_skew = std::max(r.max_intra, r.max_inter);
  r.pairs_checked = pairs_checked_;
  // Not comparable with full recording's pairs_skipped (which counts every
  // faulty/missing pair per wave of the sweep window): here it counts only
  // genuine data loss, i.e. ring overflows -- zero on every builtin.
  r.pairs_skipped = window_overflows_;
  r.deviations.count = deviation_summary_.count();
  if (!deviation_summary_.empty()) {
    r.deviations.mean = deviation_summary_.mean();
    r.deviations.p50 = deviation_sketch_.quantile(0.50);
    r.deviations.p90 = deviation_sketch_.quantile(0.90);
    r.deviations.p99 = deviation_sketch_.quantile(0.99);
  }
  r.deviations.exact = false;
  return r;
}

std::uint64_t StreamingSkew::memory_bytes() const noexcept {
  return deviation_sketch_.memory_bytes() +
         ring_sigma_.size() * sizeof(Sigma) + ring_time_.size() * sizeof(SimTime) +
         layer_ring_.size() * sizeof(WaveExtrema) + held_sigma_.size() * sizeof(Sigma) +
         held_time_.size() * sizeof(SimTime) + recorded_.size() * sizeof(std::int64_t) +
         (held_steady_.size() + faulty_.size()) / 8 +
         (intra_by_layer_.size() + inter_by_layer_.size() + spread_by_layer_.size()) *
             sizeof(double);
}

}  // namespace gtrix
