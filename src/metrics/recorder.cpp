#include "metrics/recorder.hpp"

#include <cmath>

#include "support/check.hpp"

namespace gtrix {

void Recorder::register_node(RecNodeId node, NodeMeta meta) {
  if (node >= metas_.size()) {
    metas_.resize(node + 1);
    logs_.resize(node + 1);
  }
  metas_[node] = meta;
}

void Recorder::record_pulse(RecNodeId node, Sigma sigma, SimTime t) {
  GTRIX_CHECK_MSG(node < logs_.size(), "pulse from unregistered node");
  NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) {
    log.first_sigma = sigma;
  }
  if (sigma < log.first_sigma) {
    // Prepend capacity (rare: only when a node's sigma estimate jitters
    // backwards during stabilization).
    const auto shift = static_cast<std::size_t>(log.first_sigma - sigma);
    log.times.insert(log.times.begin(), shift, std::numeric_limits<double>::quiet_NaN());
    log.first_sigma = sigma;
  }
  const auto idx = static_cast<std::size_t>(sigma - log.first_sigma);
  if (idx >= log.times.size()) {
    log.times.resize(idx + 1, std::numeric_limits<double>::quiet_NaN());
  }
  log.times[idx] = t;
  ++pulses_recorded_;
  if (min_sigma_ == kInvalidSigma || sigma < min_sigma_) min_sigma_ = sigma;
  if (max_sigma_ == kInvalidSigma || sigma > max_sigma_) max_sigma_ = sigma;
}

void Recorder::record_iteration(RecNodeId node, const IterationRecord& record) {
  GTRIX_CHECK_MSG(node < logs_.size(), "iteration from unregistered node");
  logs_[node].iterations.push_back(record);
}

std::optional<SimTime> Recorder::pulse_time(RecNodeId node, Sigma sigma) const {
  if (node >= logs_.size()) return std::nullopt;
  const NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma || sigma < log.first_sigma) return std::nullopt;
  const auto idx = static_cast<std::size_t>(sigma - log.first_sigma);
  if (idx >= log.times.size()) return std::nullopt;
  const double t = log.times[idx];
  if (std::isnan(t)) return std::nullopt;
  return t;
}

const std::vector<IterationRecord>& Recorder::iterations(RecNodeId node) const {
  return logs_.at(node).iterations;
}

Sigma Recorder::steady_from(RecNodeId node, Sigma warmup_pulses) const {
  if (node >= logs_.size()) return kInvalidSigma;
  const NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) return kInvalidSigma;
  Sigma skipped = 0;
  for (std::size_t i = 0; i < log.times.size(); ++i) {
    if (std::isnan(log.times[i])) continue;
    if (skipped == warmup_pulses) return log.first_sigma + static_cast<Sigma>(i);
    ++skipped;
  }
  return kInvalidSigma;
}

void Recorder::shift_node_sigma(RecNodeId node, Sigma delta) {
  if (node >= logs_.size() || delta == 0) return;
  NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) return;
  log.first_sigma += delta;
  for (IterationRecord& it : log.iterations) it.sigma += delta;
  if (min_sigma_ != kInvalidSigma) {
    // Conservative widening of the global range.
    min_sigma_ = std::min(min_sigma_, log.first_sigma);
    max_sigma_ = std::max(max_sigma_, log.first_sigma +
                                          static_cast<Sigma>(log.times.size()) - 1);
  }
}

Sigma Recorder::last_recorded(RecNodeId node) const {
  if (node >= logs_.size()) return kInvalidSigma;
  const NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) return kInvalidSigma;
  for (std::size_t i = log.times.size(); i-- > 0;) {
    if (!std::isnan(log.times[i])) return log.first_sigma + static_cast<Sigma>(i);
  }
  return kInvalidSigma;
}

}  // namespace gtrix
