#include "metrics/recorder.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/streaming.hpp"
#include "support/check.hpp"

namespace gtrix {

std::string_view to_string(RecordingMode mode) {
  switch (mode) {
    case RecordingMode::kFull: return "full";
    case RecordingMode::kWindowed: return "windowed";
    case RecordingMode::kStreaming: return "streaming";
  }
  return "?";
}

void Recorder::configure(const RecordingOptions& options) {
  GTRIX_CHECK_MSG(pulses_recorded_ == 0,
                  "recording mode must be configured before the first pulse");
  GTRIX_CHECK_MSG(options.window >= 2, "recording window must be >= 2 waves");
  options_ = options;
}

void Recorder::register_node(RecNodeId node, NodeMeta meta) {
  // node + 1 must not wrap: the table is indexed by the id, so the largest
  // registrable id is 2^32 - 2 (the World layer additionally checks the
  // layers x base-nodes product with the shape in the message).
  GTRIX_CHECK_MSG(node < std::numeric_limits<std::uint32_t>::max(),
                  "recorder node id overflows the uint32 id space");
  if (node >= metas_.size()) {
    metas_.resize(node + 1);
    logs_.resize(node + 1);
  }
  metas_[node] = meta;
}

void Recorder::set_corruption_anchor(Sigma wave) {
  GTRIX_CHECK_MSG(pulses_recorded_ == 0,
                  "the corruption anchor must be set before the first pulse");
  if (options_.mode == RecordingMode::kFull) return;  // whole trace retained anyway
  anchor_ = wave;
  box_lo_ = wave - options_.window;
  box_hi_ = wave + options_.window;
}

void Recorder::note_early(NodeLog& log, Sigma sigma) {
  // Sorted set of the node's smallest distinct recorded waves, capped at
  // kEarlyCap: a complete answer for steady_from(warmup) at any warmup the
  // harness uses, kept O(1) per node while the rolling window forgets the
  // run's beginning.
  auto it = std::lower_bound(log.early.begin(), log.early.end(), sigma);
  if (it != log.early.end() && *it == sigma) return;
  if (log.early.size() < kEarlyCap) {
    log.early.insert(it, sigma);
  } else if (sigma < log.early.back()) {
    log.early.pop_back();
    log.early.insert(it, sigma);
  }
}

void Recorder::note_lost(Sigma& lo, Sigma& hi, Sigma sigma) {
  if (lo == kInvalidSigma) {
    lo = hi = sigma;
  } else {
    lo = std::min(lo, sigma);
    hi = std::max(hi, sigma);
  }
}

void Recorder::pin_pulse(NodeLog& log, Sigma sigma, SimTime t) {
  if (log.pin_first == kInvalidSigma) {
    log.pin_first = box_lo_;
    log.pin_times.assign(static_cast<std::size_t>(box_hi_ - box_lo_ + 1),
                         std::numeric_limits<double>::quiet_NaN());
  }
  log.pin_times[static_cast<std::size_t>(sigma - log.pin_first)] = t;
  ++pinned_pulses_;
}

void Recorder::record_pulse(RecNodeId node, Sigma sigma, SimTime t) {
  GTRIX_CHECK_MSG(node < logs_.size(), "pulse from unregistered node");
  if (stream_ != nullptr) stream_->on_pulse(node, sigma, t);
  if (options_.mode == RecordingMode::kStreaming && anchor_ == kInvalidSigma) {
    // No per-wave storage: the streaming accumulators above are the whole
    // metrics path. Global counters still track the run's envelope. (With a
    // corruption anchor, streaming mode takes the windowed times path below
    // instead: realignment and the post-recovery skew window need the
    // retained waves.)
    ++pulses_recorded_;
    if (min_sigma_ == kInvalidSigma || sigma < min_sigma_) min_sigma_ = sigma;
    if (max_sigma_ == kInvalidSigma || sigma > max_sigma_) max_sigma_ = sigma;
    return;
  }
  NodeLog& log = logs_[node];
  if (options_.mode != RecordingMode::kFull) note_early(log, sigma);
  if (log.first_sigma == kInvalidSigma) {
    log.first_sigma = sigma;
  }
  if (sigma < log.first_sigma) {
    // Prepend capacity (rare: only when a node's sigma estimate jitters
    // backwards during stabilization).
    const auto shift = static_cast<std::size_t>(log.first_sigma - sigma);
    log.times.insert(log.times.begin(), shift, std::numeric_limits<double>::quiet_NaN());
    log.first_sigma = sigma;
  }
  const auto idx = static_cast<std::size_t>(sigma - log.first_sigma);
  if (idx >= log.times.size()) {
    log.times.resize(idx + 1, std::numeric_limits<double>::quiet_NaN());
  }
  log.times[idx] = t;
  ++pulses_recorded_;
  if (min_sigma_ == kInvalidSigma || sigma < min_sigma_) min_sigma_ = sigma;
  if (max_sigma_ == kInvalidSigma || sigma > max_sigma_) max_sigma_ = sigma;
  if (options_.mode != RecordingMode::kFull) evict_window(log);
}

void Recorder::evict_window(NodeLog& log) {
  // Keep the last `window` wave slots per node. Eviction is from the front
  // (one slot per recorded pulse in steady state, so the erase is O(window)
  // on a dense 8-byte array -- windowed mode trades this small constant for
  // the bounded footprint). With a corruption anchor, slots leaving the
  // rolling window land in the pinned box if their wave is inside it;
  // everything else evicted is recorded as LOST per node, so later queries
  // can refuse (covers() == false) instead of silently diverging from full
  // recording.
  const auto window = static_cast<std::size_t>(options_.window);
  if (log.times.size() > window) {
    const auto drop = log.times.size() - window;
    for (std::size_t i = 0; i < drop; ++i) {
      const double t = log.times[i];
      if (std::isnan(t)) continue;  // never recorded: full mode has no value either
      const Sigma s = log.first_sigma + static_cast<Sigma>(i);
      if (anchor_ != kInvalidSigma && s >= box_lo_ && s <= box_hi_) {
        pin_pulse(log, s, t);
      } else {
        note_lost(log.lost_lo, log.lost_hi, s);
      }
    }
    log.times.erase(log.times.begin(), log.times.begin() + static_cast<std::ptrdiff_t>(drop));
    log.first_sigma += static_cast<Sigma>(drop);
  }
  std::size_t drop_iters = 0;
  while (drop_iters < log.iterations.size() &&
         log.iterations[drop_iters].sigma < log.first_sigma) {
    ++drop_iters;
  }
  if (drop_iters > 0) {
    for (std::size_t i = 0; i < drop_iters; ++i) {
      const IterationRecord& it = log.iterations[i];
      const std::uint64_t abs = log.iterations_dropped + i;
      if (anchor_ != kInvalidSigma && it.sigma >= box_lo_ && it.sigma <= box_hi_) {
        log.pin_iterations.push_back(it);
        log.pin_iter_abs.push_back(abs);
      } else if (abs < kLostIterTrackCap) {
        log.lost_iters.push_back(LostIter{abs, it.sigma});
      } else {
        note_lost(log.iter_lost_lo, log.iter_lost_hi, it.sigma);
      }
    }
    log.iterations.erase(log.iterations.begin(),
                         log.iterations.begin() + static_cast<std::ptrdiff_t>(drop_iters));
    log.iterations_dropped += drop_iters;
  }
}

void Recorder::record_iteration(RecNodeId node, const IterationRecord& record) {
  GTRIX_CHECK_MSG(node < logs_.size(), "iteration from unregistered node");
  if (options_.mode == RecordingMode::kStreaming) return;
  logs_[node].iterations.push_back(record);
}

std::uint64_t Recorder::iterations_dropped(RecNodeId node) const {
  return logs_.at(node).iterations_dropped;
}

std::optional<SimTime> Recorder::pulse_time(RecNodeId node, Sigma sigma) const {
  if (node >= logs_.size()) return std::nullopt;
  const NodeLog& log = logs_[node];
  if (log.first_sigma != kInvalidSigma && sigma >= log.first_sigma) {
    const auto idx = static_cast<std::size_t>(sigma - log.first_sigma);
    if (idx < log.times.size() && !std::isnan(log.times[idx])) return log.times[idx];
  }
  // Pinned corruption box: slots the rolling window evicted but the anchor
  // retained. The rolling value wins when both exist (it is the newer write,
  // mirroring full recording's in-place overwrite).
  if (log.pin_first != kInvalidSigma && sigma >= log.pin_first) {
    const auto idx = static_cast<std::size_t>(sigma - log.pin_first);
    if (idx < log.pin_times.size() && !std::isnan(log.pin_times[idx])) {
      return log.pin_times[idx];
    }
  }
  return std::nullopt;
}

const std::vector<IterationRecord>& Recorder::iterations(RecNodeId node) const {
  return logs_.at(node).iterations;
}

Sigma Recorder::steady_from(RecNodeId node, Sigma warmup_pulses) const {
  if (node >= logs_.size()) return kInvalidSigma;
  const NodeLog& log = logs_[node];
  if (options_.mode != RecordingMode::kFull) {
    // The rolling window forgets the run's beginning, so the answer comes
    // from the capped early-wave set, which is complete for any warmup the
    // harness uses (GTRIX_CHECK below, never a wrong wave).
    GTRIX_CHECK_MSG(warmup_pulses >= 0, "warmup must be non-negative");
    if (static_cast<std::size_t>(warmup_pulses) < log.early.size()) {
      return log.early[static_cast<std::size_t>(warmup_pulses)];
    }
    GTRIX_CHECK_MSG(log.early.size() < kEarlyCap,
                    "steady_from warmup exceeds the recorder's early-wave capacity "
                    "in a memory-bounded recording mode");
    return kInvalidSigma;
  }
  if (log.first_sigma == kInvalidSigma) return kInvalidSigma;
  Sigma skipped = 0;
  for (std::size_t i = 0; i < log.times.size(); ++i) {
    if (std::isnan(log.times[i])) continue;
    if (skipped == warmup_pulses) return log.first_sigma + static_cast<Sigma>(i);
    ++skipped;
  }
  return kInvalidSigma;
}

void Recorder::shift_node_sigma(RecNodeId node, Sigma delta) {
  if (node >= logs_.size() || delta == 0) return;
  NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) return;
  log.first_sigma += delta;
  for (IterationRecord& it : log.iterations) it.sigma += delta;
  for (IterationRecord& it : log.pin_iterations) it.sigma += delta;
  if (log.pin_first != kInvalidSigma) log.pin_first += delta;
  if (log.lost_lo != kInvalidSigma) {
    log.lost_lo += delta;
    log.lost_hi += delta;
  }
  if (log.iter_lost_lo != kInvalidSigma) {
    log.iter_lost_lo += delta;
    log.iter_lost_hi += delta;
  }
  for (LostIter& li : log.lost_iters) li.sigma += delta;
  for (Sigma& s : log.early) s += delta;
  if (min_sigma_ != kInvalidSigma) {
    // Conservative widening of the global range.
    min_sigma_ = std::min(min_sigma_, log.first_sigma);
    if (log.pin_first != kInvalidSigma) min_sigma_ = std::min(min_sigma_, log.pin_first);
    max_sigma_ = std::max(max_sigma_, log.first_sigma +
                                          static_cast<Sigma>(log.times.size()) - 1);
  }
}

Sigma Recorder::last_recorded(RecNodeId node) const {
  if (node >= logs_.size()) return kInvalidSigma;
  const NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) return kInvalidSigma;
  for (std::size_t i = log.times.size(); i-- > 0;) {
    if (!std::isnan(log.times[i])) return log.first_sigma + static_cast<Sigma>(i);
  }
  // Rolling window empty of data (possible only right after a backward
  // prepend evicted everything): fall back to the pinned box.
  for (std::size_t i = log.pin_times.size(); i-- > 0;) {
    if (!std::isnan(log.pin_times[i])) return log.pin_first + static_cast<Sigma>(i);
  }
  return kInvalidSigma;
}

bool Recorder::covers(RecNodeId node, Sigma lo, Sigma hi) const {
  if (node >= logs_.size()) return true;
  const NodeLog& log = logs_[node];
  if (log.lost_lo == kInvalidSigma) return true;
  return hi < log.lost_lo || lo > log.lost_hi;
}

std::pair<Sigma, Sigma> Recorder::lost_range(RecNodeId node) const {
  const NodeLog& log = logs_.at(node);
  return {log.lost_lo, log.lost_hi};
}

std::uint64_t Recorder::iterations_lost_below(RecNodeId node, std::uint64_t abs_limit) const {
  GTRIX_CHECK_MSG(abs_limit <= kLostIterTrackCap,
                  "warmup exceeds the recorder's lost-iteration tracking capacity");
  const NodeLog& log = logs_.at(node);
  std::uint64_t n = 0;
  for (const LostIter& li : log.lost_iters) {
    if (li.abs < abs_limit) ++n;
  }
  return n;
}

bool Recorder::iterations_covered(RecNodeId node, Sigma lo, Sigma hi,
                                  std::uint64_t warmup) const {
  GTRIX_CHECK_MSG(warmup <= kLostIterTrackCap,
                  "warmup exceeds the recorder's lost-iteration tracking capacity");
  const NodeLog& log = logs_.at(node);
  for (const LostIter& li : log.lost_iters) {
    // A lost record full recording would have CHECKED (past warmup, inside
    // the requested window) makes the window unanswerable.
    if (li.abs >= warmup && li.sigma >= lo && li.sigma <= hi) return false;
  }
  if (log.iter_lost_lo != kInvalidSigma &&
      !(hi < log.iter_lost_lo || lo > log.iter_lost_hi)) {
    return false;  // untracked lost records are always past warmup (abs >= cap)
  }
  return true;
}

}  // namespace gtrix
