#include "metrics/recorder.hpp"

#include <cmath>

#include "metrics/streaming.hpp"
#include "support/check.hpp"

namespace gtrix {

std::string_view to_string(RecordingMode mode) {
  switch (mode) {
    case RecordingMode::kFull: return "full";
    case RecordingMode::kWindowed: return "windowed";
    case RecordingMode::kStreaming: return "streaming";
  }
  return "?";
}

void Recorder::configure(const RecordingOptions& options) {
  GTRIX_CHECK_MSG(pulses_recorded_ == 0,
                  "recording mode must be configured before the first pulse");
  GTRIX_CHECK_MSG(options.window >= 2, "recording window must be >= 2 waves");
  options_ = options;
}

void Recorder::register_node(RecNodeId node, NodeMeta meta) {
  // node + 1 must not wrap: the table is indexed by the id, so the largest
  // registrable id is 2^32 - 2 (the World layer additionally checks the
  // layers x base-nodes product with the shape in the message).
  GTRIX_CHECK_MSG(node < std::numeric_limits<std::uint32_t>::max(),
                  "recorder node id overflows the uint32 id space");
  if (node >= metas_.size()) {
    metas_.resize(node + 1);
    logs_.resize(node + 1);
  }
  metas_[node] = meta;
}

void Recorder::record_pulse(RecNodeId node, Sigma sigma, SimTime t) {
  GTRIX_CHECK_MSG(node < logs_.size(), "pulse from unregistered node");
  if (stream_ != nullptr) stream_->on_pulse(node, sigma, t);
  if (options_.mode == RecordingMode::kStreaming) {
    // No per-wave storage: the streaming accumulators above are the whole
    // metrics path. Global counters still track the run's envelope.
    ++pulses_recorded_;
    if (min_sigma_ == kInvalidSigma || sigma < min_sigma_) min_sigma_ = sigma;
    if (max_sigma_ == kInvalidSigma || sigma > max_sigma_) max_sigma_ = sigma;
    return;
  }
  NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) {
    log.first_sigma = sigma;
  }
  if (sigma < log.first_sigma) {
    // Prepend capacity (rare: only when a node's sigma estimate jitters
    // backwards during stabilization).
    const auto shift = static_cast<std::size_t>(log.first_sigma - sigma);
    log.times.insert(log.times.begin(), shift, std::numeric_limits<double>::quiet_NaN());
    log.first_sigma = sigma;
  }
  const auto idx = static_cast<std::size_t>(sigma - log.first_sigma);
  if (idx >= log.times.size()) {
    log.times.resize(idx + 1, std::numeric_limits<double>::quiet_NaN());
  }
  log.times[idx] = t;
  ++pulses_recorded_;
  if (min_sigma_ == kInvalidSigma || sigma < min_sigma_) min_sigma_ = sigma;
  if (max_sigma_ == kInvalidSigma || sigma > max_sigma_) max_sigma_ = sigma;
  if (options_.mode == RecordingMode::kWindowed) evict_window(log);
}

void Recorder::evict_window(NodeLog& log) {
  // Keep the last `window` wave slots per node. Eviction is from the front
  // (one slot per recorded pulse in steady state, so the erase is O(window)
  // on a dense 8-byte array -- windowed mode trades this small constant for
  // the bounded footprint).
  const auto window = static_cast<std::size_t>(options_.window);
  if (log.times.size() > window) {
    const auto drop = log.times.size() - window;
    log.times.erase(log.times.begin(), log.times.begin() + static_cast<std::ptrdiff_t>(drop));
    log.first_sigma += static_cast<Sigma>(drop);
  }
  std::size_t drop_iters = 0;
  while (drop_iters < log.iterations.size() &&
         log.iterations[drop_iters].sigma < log.first_sigma) {
    ++drop_iters;
  }
  if (drop_iters > 0) {
    log.iterations.erase(log.iterations.begin(),
                         log.iterations.begin() + static_cast<std::ptrdiff_t>(drop_iters));
    log.iterations_dropped += drop_iters;
  }
}

void Recorder::record_iteration(RecNodeId node, const IterationRecord& record) {
  GTRIX_CHECK_MSG(node < logs_.size(), "iteration from unregistered node");
  if (options_.mode == RecordingMode::kStreaming) return;
  logs_[node].iterations.push_back(record);
}

std::uint64_t Recorder::iterations_dropped(RecNodeId node) const {
  return logs_.at(node).iterations_dropped;
}

std::optional<SimTime> Recorder::pulse_time(RecNodeId node, Sigma sigma) const {
  if (node >= logs_.size()) return std::nullopt;
  const NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma || sigma < log.first_sigma) return std::nullopt;
  const auto idx = static_cast<std::size_t>(sigma - log.first_sigma);
  if (idx >= log.times.size()) return std::nullopt;
  const double t = log.times[idx];
  if (std::isnan(t)) return std::nullopt;
  return t;
}

const std::vector<IterationRecord>& Recorder::iterations(RecNodeId node) const {
  return logs_.at(node).iterations;
}

Sigma Recorder::steady_from(RecNodeId node, Sigma warmup_pulses) const {
  if (node >= logs_.size()) return kInvalidSigma;
  const NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) return kInvalidSigma;
  Sigma skipped = 0;
  for (std::size_t i = 0; i < log.times.size(); ++i) {
    if (std::isnan(log.times[i])) continue;
    if (skipped == warmup_pulses) return log.first_sigma + static_cast<Sigma>(i);
    ++skipped;
  }
  return kInvalidSigma;
}

void Recorder::shift_node_sigma(RecNodeId node, Sigma delta) {
  if (node >= logs_.size() || delta == 0) return;
  NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) return;
  log.first_sigma += delta;
  for (IterationRecord& it : log.iterations) it.sigma += delta;
  if (min_sigma_ != kInvalidSigma) {
    // Conservative widening of the global range.
    min_sigma_ = std::min(min_sigma_, log.first_sigma);
    max_sigma_ = std::max(max_sigma_, log.first_sigma +
                                          static_cast<Sigma>(log.times.size()) - 1);
  }
}

Sigma Recorder::last_recorded(RecNodeId node) const {
  if (node >= logs_.size()) return kInvalidSigma;
  const NodeLog& log = logs_[node];
  if (log.first_sigma == kInvalidSigma) return kInvalidSigma;
  for (std::size_t i = log.times.size(); i-- > 0;) {
    if (!std::isnan(log.times[i])) return log.first_sigma + static_cast<Sigma>(i);
  }
  return kInvalidSigma;
}

}  // namespace gtrix
