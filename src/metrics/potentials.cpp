#include "metrics/potentials.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gtrix {

namespace {

/// Shared max over ordered pairs of t_v - t_w - weight * d(v, w).
double pair_potential(const GridTrace& trace, std::uint32_t layer, Sigma sigma,
                      double weight) {
  const Grid& grid = *trace.grid;
  const BaseGraph& base = grid.base();

  // Gather pulse times once.
  std::vector<double> t(base.node_count(), std::numeric_limits<double>::quiet_NaN());
  std::size_t have = 0;
  for (BaseNodeId v = 0; v < base.node_count(); ++v) {
    const GridNodeId g = grid.id(v, layer);
    if (trace.is_faulty(g)) continue;
    const auto tv = trace.steady_pulse(g, sigma);
    if (tv) {
      t[v] = *tv;
      ++have;
    }
  }
  if (have < 2) return std::numeric_limits<double>::quiet_NaN();

  double best = -std::numeric_limits<double>::infinity();
  for (BaseNodeId v = 0; v < base.node_count(); ++v) {
    if (std::isnan(t[v])) continue;
    for (BaseNodeId w = 0; w < base.node_count(); ++w) {
      if (v == w || std::isnan(t[w])) continue;
      const double value = t[v] - t[w] - weight * base.distance(v, w);
      best = std::max(best, value);
    }
  }
  return best;
}

}  // namespace

double psi_s(const GridTrace& trace, const Params& params, std::uint32_t layer,
             Sigma sigma, std::uint32_t s) {
  return pair_potential(trace, layer, sigma, 4.0 * s * params.kappa());
}

double xi_s(const GridTrace& trace, const Params& params, std::uint32_t layer,
            Sigma sigma, std::uint32_t s) {
  return pair_potential(trace, layer, sigma, (4.0 * s - 2.0) * params.kappa());
}

std::vector<double> psi_profile(const GridTrace& trace, const Params& params,
                                std::uint32_t s, Sigma lo, Sigma hi) {
  std::vector<double> out(trace.grid->layers(), std::numeric_limits<double>::quiet_NaN());
  for (std::uint32_t layer = 0; layer < trace.grid->layers(); ++layer) {
    double worst = std::numeric_limits<double>::quiet_NaN();
    for (Sigma sigma = lo; sigma <= hi; ++sigma) {
      const double p = psi_s(trace, params, layer, sigma, s);
      if (std::isnan(p)) continue;
      if (std::isnan(worst) || p > worst) worst = p;
    }
    out[layer] = worst;
  }
  return out;
}

}  // namespace gtrix
