// Online skew accumulation for memory-bounded recording modes.
//
// Full-trace recording stores every pulse time and computes skew post-hoc
// (metrics/skew.cpp). At mega-grid scale (512x512 and beyond) that log no
// longer fits in RAM, so the streaming and windowed recording modes feed
// each pulse straight into this accumulator instead and never materialize
// the trace. The accumulator reproduces compute_skew's results exactly for
// everything that is an extremum or a count:
//
//  * Per-node steady filtering is replicated online: a node's first
//    `warmup` recorded pulses are skipped (compute_skew's steady_from), and
//    committing a pulse is deferred by one further pulse of the same node,
//    which excludes exactly the node's last recorded wave (the node_tail=1
//    filter). Pulses therefore enter the accumulators precisely when they
//    would have passed GridTrace::steady_pulse.
//  * A pair (intra edge at one wave, or inter-layer successor pair at
//    adjacent waves) is scored when the LATER of its two endpoints commits
//    and the earlier one is still present in the wave ring -- each pair
//    exactly once, and |t_a - t_b| is computed from the same two doubles
//    the post-hoc path would read, so per-layer maxima, the global extrema
//    and pairs_checked are BIT-identical to full recording
//    (tests/test_streaming_metrics.cpp proves this on every builtin
//    scenario).
//  * Layer spread (global skew) uses a running per-(layer, wave) min/max;
//    the partial spreads observed along the way are always <= the final
//    one, so the running max converges to the post-hoc value exactly.
//
// Memory is O(nodes x ring + layers x ring): each node keeps a small ring
// of its most recent committed waves (default 8) for the neighbour
// lookups. The ring only needs to cover how far two ADJACENT nodes' wave
// counters can drift apart, which is bounded by the local skew (<< one
// wave) -- not the run length and not the cross-grid spread. If a lookup
// ever misses because its wave was already overwritten, window_overflows()
// counts it (the differential suite asserts zero on every builtin; a
// line-propagation layer 0 with a very deep column span is the one known
// way to need a larger ring -- see docs/scaling.md).
//
// Deviation quantiles (p50/p90/p99 of all checked pair deviations) come
// from a log-binned sketch (1% relative error for any distribution shape)
// versus exact order statistics in full mode; the count and mean of the
// deviation distribution remain exact.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/grid.hpp"
#include "metrics/skew.hpp"
#include "support/stats.hpp"

namespace gtrix {

class StreamingSkew {
 public:
  struct Config {
    Sigma warmup = 3;           ///< per-node pulses skipped at the start
    std::int64_t ring_waves = 8;  ///< per-node wave-ring capacity (rounded to power of 2)
  };

  /// `faulty[g]` marks grid node g as part of the fault set F; its pulses
  /// are ignored, exactly as compute_skew skips pairs with a faulty
  /// endpoint. The grid must outlive the accumulator.
  StreamingSkew(const Grid& grid, std::vector<bool> faulty, Config config);

  /// Feed one recorded pulse. Ids beyond the grid (the line-mode clock
  /// source) are ignored. Pulses of one node must arrive in nondecreasing
  /// sigma order (they do: a node's pulses are recorded at their emission
  /// times); violations are counted, not scored.
  void on_pulse(RecNodeId node, Sigma sigma, SimTime t);

  /// Assembles the SkewReport. `lo`/`hi` label the report's measurement
  /// window (the recorder's global sigma envelope); the accumulated values
  /// already cover exactly the steady pulses inside it.
  SkewReport report(Sigma lo, Sigma hi) const;

  /// Corruption anchor: pulses at or after `t_corrupt` (the injection
  /// instant) are suppressed instead of accumulated, freezing the
  /// accumulators on the clean pre-corruption epoch. Corrupted registers
  /// emit arbitrary wave labels that would otherwise poison the rings and
  /// trip the out-of-order/overflow diagnostics; the post-recovery skew of a
  /// corrupt cell is instead measured exactly from the recorder's retained
  /// waves (World::skew_window after realignment -- docs/scaling.md,
  /// "Realignment at scale"). Suppression keys on the pulse TIME, which is
  /// label-corruption-proof and identical across engines and shard counts.
  void set_corruption_anchor(SimTime t_corrupt) {
    anchor_set_ = true;
    anchor_time_ = t_corrupt;
  }
  /// Pulses suppressed by the corruption anchor.
  std::uint64_t suppressed() const noexcept { return suppressed_; }

  /// Lookups that missed because the partner's wave slot had already been
  /// overwritten -- nonzero means the ring is too small for this scenario's
  /// wave stagger and extrema may under-report. Asserted zero in tests.
  std::uint64_t window_overflows() const noexcept { return window_overflows_; }
  /// Pulses dropped for arriving with a non-increasing sigma.
  std::uint64_t out_of_order() const noexcept { return out_of_order_; }
  /// Approximate accumulator footprint, for bench_scale reporting.
  std::uint64_t memory_bytes() const noexcept;

  /// Checkpoint hooks (src/ckpt/state_ckpt.cpp): every accumulator lane,
  /// ring slot, per-layer extremum, counter and the deviation summary /
  /// sketch. Grid, fault set and ring geometry are construction state and
  /// only size-validated on restore.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  struct WaveExtrema {
    Sigma sigma = kNoSigma;
    double min = 0.0;
    double max = 0.0;
  };

  static constexpr Sigma kNoSigma = std::numeric_limits<Sigma>::min();

  void commit(RecNodeId g, Sigma sigma, SimTime t);
  /// Committed time of `g` at `sigma` if still in the ring; NaN otherwise
  /// (overwritten slots bump window_overflows_).
  double lookup(RecNodeId g, Sigma sigma);
  void score(double deviation);

  const Grid& grid_;
  std::vector<bool> faulty_;
  Sigma warmup_;
  std::size_t ring_;       ///< power-of-two capacity
  std::size_t ring_mask_;

  // Per-node state, structure-of-arrays. held_* is the one-pulse commit
  // delay realizing the node_tail=1 filter; recorded_ counts arrivals for
  // the warmup filter.
  std::vector<Sigma> held_sigma_;
  std::vector<SimTime> held_time_;
  std::vector<std::int64_t> recorded_;
  std::vector<bool> held_steady_;

  // Wave rings: node-major [node * ring_ + (sigma & ring_mask_)].
  std::vector<Sigma> ring_sigma_;
  std::vector<SimTime> ring_time_;

  // Per-layer accumulators.
  std::vector<double> intra_by_layer_;
  std::vector<double> inter_by_layer_;
  std::vector<double> spread_by_layer_;
  std::vector<WaveExtrema> layer_ring_;  ///< layer-major [layer * ring_ + slot]

  std::uint64_t pairs_checked_ = 0;
  std::uint64_t window_overflows_ = 0;
  std::uint64_t out_of_order_ = 0;
  bool anchor_set_ = false;
  SimTime anchor_time_ = 0.0;
  std::uint64_t suppressed_ = 0;

  Summary deviation_summary_;
  /// Log-binned sketch: every reported percentile is within 1% of a true
  /// order statistic, regardless of the deviation distribution's shape
  /// (P-squared markers were evaluated and rejected -- multimodal
  /// deviation mixtures wedge them; see docs/scaling.md).
  LogQuantileSketch deviation_sketch_;
};

}  // namespace gtrix
