// Execution trace recording.
//
// Pulses are recorded per node against a wave index sigma (the paper's pulse
// index after the layer/position-dependent index shift, see DESIGN.md §2).
// Iteration records additionally capture the correction C_{v,l} and the
// local reception times that produced it, so the slow/fast/jump conditions
// (Definitions 4.3-4.5) and the basic lemma inequalities can be verified
// post-hoc by metrics/conditions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace gtrix {

using RecNodeId = std::uint32_t;
using Sigma = std::int64_t;

class StreamingSkew;
class CkptWriter;
class CkptCursor;

/// How much of the execution trace the Recorder retains (docs/scaling.md).
///
///  * kFull      -- every pulse time and IterationRecord, forever. O(nodes x
///                  waves) memory; required for post-hoc conditions checks
///                  over the whole run and for label realignment (corrupt
///                  scenarios). The historical behaviour and the default.
///  * kWindowed  -- pulse times and IterationRecords of the last `window`
///                  waves per node only; older entries are evicted as the
///                  node progresses. O(nodes x window) memory. Conditions
///                  can be checked over the retained window; skew comes from
///                  the streaming accumulators.
///  * kStreaming -- no per-wave storage at all: every pulse is fed straight
///                  into the attached StreamingSkew accumulators. O(nodes)
///                  memory. Skew extrema/means are bit-identical to full
///                  recording; quantiles come from a log-binned sketch
///                  with a guaranteed 1% relative error bound.
enum class RecordingMode : std::uint8_t { kFull, kWindowed, kStreaming };

std::string_view to_string(RecordingMode mode);

struct RecordingOptions {
  RecordingMode mode = RecordingMode::kFull;
  /// Waves retained per node (windowed) and the streaming accumulators'
  /// wave-ring capacity (windowed + streaming). Rounded up to a power of
  /// two internally. Ignored in full mode.
  std::int64_t window = 8;

  bool operator==(const RecordingOptions&) const = default;
};

struct IterationRecord {
  Sigma sigma = 0;
  double correction = 0.0;       ///< C_{v,l}
  double h_own = 0.0;            ///< local reception times as used
  double h_min = 0.0;
  double h_max = 0.0;
  bool own_missing = false;      ///< own-copy pulse never arrived in time
  bool max_missing = false;      ///< last neighbour pulse never arrived (h_max substituted)
  bool timeout_branch = false;   ///< Algorithm 3 first branch (H_max + k/2 + theta k)
  bool late = false;             ///< broadcast target had already passed (init/stabilization)
  SimTime pulse_time = 0.0;      ///< real broadcast time
  LocalTime pulse_local = 0.0;

  /// Which predecessor slots delivered a pulse this iteration and the wave
  /// index each carried (slot 0 = own copy). Used to verify Lemma B.1.
  static constexpr std::size_t kMaxSlots = 5;
  std::uint8_t slot_count = 0;
  std::array<Sigma, kMaxSlots> slot_sigma{};
  std::array<bool, kMaxSlots> slot_seen{};
};

struct NodeMeta {
  std::uint32_t layer = 0;
  std::uint32_t base = 0;        ///< base-graph node id (for grid nodes)
  std::uint32_t column = 0;
  bool faulty = false;
  bool is_source = false;
};

class Recorder {
 public:
  Recorder() = default;
  virtual ~Recorder() = default;

  /// Selects the recording mode; must be called before any node records
  /// (the trace would otherwise be part-full, part-windowed). Attaching a
  /// StreamingSkew sink forwards every pulse to it regardless of mode.
  void configure(const RecordingOptions& options);
  const RecordingOptions& options() const noexcept { return options_; }
  RecordingMode mode() const noexcept { return options_.mode; }
  void set_stream(StreamingSkew* stream) noexcept { stream_ = stream; }

  /// Pre-sizes the node tables (avoids repeated growth when a World
  /// registers its whole grid up front).
  void reserve(std::uint32_t nodes) {
    metas_.reserve(nodes);
    logs_.reserve(nodes);
  }

  void register_node(RecNodeId node, NodeMeta meta);
  const NodeMeta& meta(RecNodeId node) const { return metas_.at(node); }
  std::uint32_t node_count() const noexcept { return static_cast<std::uint32_t>(metas_.size()); }

  // Virtual so the sharded engine can hand nodes a per-shard buffering
  // proxy (metrics/shard_recorder.hpp) under the same interface; everything
  // else on Recorder is only called from serial harness code.
  virtual void record_pulse(RecNodeId node, Sigma sigma, SimTime t);
  virtual void record_iteration(RecNodeId node, const IterationRecord& record);

  /// Corruption-anchored retention (windowed + streaming): pins every pulse
  /// slot and iteration record whose wave falls inside
  /// [wave - window, wave + window] instead of evicting it, and switches
  /// streaming mode onto the per-wave times path so the retained box plus the
  /// rolling last-`window` waves support post-run label realignment and
  /// post-recovery skew windows without the full trace (docs/scaling.md,
  /// "Realignment at scale"). Must be called before the first pulse; a no-op
  /// in full mode (the whole trace is retained anyway).
  void set_corruption_anchor(Sigma wave);
  bool corruption_anchored() const noexcept { return anchor_ != kInvalidSigma; }
  Sigma corruption_anchor() const noexcept { return anchor_; }

  /// True when no pulse slot of `node` in [lo, hi] was evicted un-pinned --
  /// i.e. every read in that range returns exactly what full recording
  /// would. Callers that need the guarantee (realignment, windowed skew,
  /// conditions) check this FIRST and fail with a mode-qualified error
  /// rather than returning silently-wrong numbers.
  bool covers(RecNodeId node, Sigma lo, Sigma hi) const;
  /// The node's lost-pulse wave range (both kInvalidSigma if nothing lost);
  /// for error messages.
  std::pair<Sigma, Sigma> lost_range(RecNodeId node) const;

  /// Visits every *retained* iteration record of `node` in absolute-index
  /// order: pinned records (evicted from the rolling window into the
  /// corruption box) first, then the rolling tail. f(record, absolute_index)
  /// where absolute_index counts from the node's first record ever, so the
  /// conditions checker's warmup filter keys on the same index in every
  /// recording mode.
  template <typename F>
  void for_each_iteration(RecNodeId node, F&& f) const {
    const NodeLog& log = logs_.at(node);
    for (std::size_t i = 0; i < log.pin_iterations.size(); ++i) {
      f(log.pin_iterations[i], log.pin_iter_abs[i]);
    }
    for (std::size_t i = 0; i < log.iterations.size(); ++i) {
      f(log.iterations[i], log.iterations_dropped + i);
    }
  }

  /// Number of iteration records of `node` lost (evicted un-pinned) whose
  /// absolute index is < `abs_limit`. Full recording skip-counts every
  /// record below the warmup index, so a windowed conditions check adds this
  /// correction to report the identical iterations_skipped.
  std::uint64_t iterations_lost_below(RecNodeId node, std::uint64_t abs_limit) const;

  /// True when no iteration record of `node` that full recording WOULD have
  /// checked (absolute index >= warmup, wave in [lo, hi]) was lost.
  bool iterations_covered(RecNodeId node, Sigma lo, Sigma hi, std::uint64_t warmup) const;

  /// Pulses moved into corruption boxes across all nodes (telemetry).
  std::uint64_t pinned_pulse_count() const noexcept { return pinned_pulses_; }

  /// Capacity limits of the bounded bookkeeping above; queries beyond them
  /// are GTRIX_CHECK failures, not wrong answers.
  static constexpr std::size_t kEarlyCap = 16;        ///< steady_from warmup
  static constexpr std::uint64_t kLostIterTrackCap = 32;  ///< warmup skip correction

  /// Pulse time of `node` at wave `sigma`, if recorded.
  std::optional<SimTime> pulse_time(RecNodeId node, Sigma sigma) const;

  /// Wave of the (warmup_pulses + 1)-th recorded pulse of `node`
  /// (kInvalidSigma if the node recorded fewer pulses). Used to skip each
  /// node's startup transient, which spans different waves per node.
  Sigma steady_from(RecNodeId node, Sigma warmup_pulses) const;

  /// Wave of the last recorded pulse (kInvalidSigma if none).
  Sigma last_recorded(RecNodeId node) const;

  /// Shifts every wave label of `node` by `delta` (pulses and iteration
  /// records). Used by post-run label realignment after transient faults:
  /// the algorithm's behaviour is label-free, but majority bookkeeping can
  /// leave a recovered region with a consistent off-by-k label.
  void shift_node_sigma(RecNodeId node, Sigma delta);

  /// All *retained* iteration records of a node, in recording order. In
  /// windowed mode this is the tail of the full sequence;
  /// iterations_dropped() gives how many earlier records were evicted, so
  /// `iterations_dropped(n) + i` is record i's absolute index (the warmup
  /// filters in metrics/conditions key on the absolute index).
  const std::vector<IterationRecord>& iterations(RecNodeId node) const;
  std::uint64_t iterations_dropped(RecNodeId node) const;

  /// Smallest / largest sigma recorded for any node (kInvalidSigma if none).
  Sigma min_sigma() const noexcept { return min_sigma_; }
  Sigma max_sigma() const noexcept { return max_sigma_; }

  std::uint64_t pulse_count() const noexcept { return pulses_recorded_; }

  static constexpr Sigma kInvalidSigma = std::numeric_limits<Sigma>::min();

  /// Checkpoint hooks (src/ckpt/state_ckpt.cpp): sigma extrema, the pulse
  /// counter and every retained node log (pulse times as raw IEEE-754 bits
  /// so NaN "missing" markers survive). Options and node metas are rebuilt
  /// by the restored World's construction and only size-validated here.
  void checkpoint_save(CkptWriter& w) const;
  void checkpoint_restore(CkptCursor& r);

 private:
  struct LostIter {
    std::uint64_t abs = 0;  ///< absolute record index
    Sigma sigma = 0;
  };

  struct NodeLog {
    Sigma first_sigma = kInvalidSigma;
    std::vector<SimTime> times;  ///< indexed sigma - first_sigma; NaN = missing
    std::vector<IterationRecord> iterations;
    std::uint64_t iterations_dropped = 0;  ///< windowed-mode front evictions

    // Corruption-anchored retention state (empty in full mode and in
    // un-anchored streaming mode):
    std::vector<Sigma> early;  ///< smallest distinct recorded waves (<= kEarlyCap)
    Sigma pin_first = kInvalidSigma;   ///< box lower bound once pin_times allocated
    std::vector<SimTime> pin_times;    ///< pinned box slots, indexed sigma - pin_first
    std::vector<IterationRecord> pin_iterations;  ///< ascending absolute index
    std::vector<std::uint64_t> pin_iter_abs;      ///< parallel absolute indices
    Sigma lost_lo = kInvalidSigma;     ///< evicted un-pinned pulse wave range
    Sigma lost_hi = kInvalidSigma;
    std::vector<LostIter> lost_iters;  ///< lost records with abs < kLostIterTrackCap
    Sigma iter_lost_lo = kInvalidSigma;  ///< lost records with abs >= the cap
    Sigma iter_lost_hi = kInvalidSigma;
  };

  void evict_window(NodeLog& log);
  void pin_pulse(NodeLog& log, Sigma sigma, SimTime t);
  void note_early(NodeLog& log, Sigma sigma);
  static void note_lost(Sigma& lo, Sigma& hi, Sigma sigma);

  RecordingOptions options_;
  StreamingSkew* stream_ = nullptr;
  std::vector<NodeMeta> metas_;
  std::vector<NodeLog> logs_;
  Sigma min_sigma_ = kInvalidSigma;
  Sigma max_sigma_ = kInvalidSigma;
  std::uint64_t pulses_recorded_ = 0;
  Sigma anchor_ = kInvalidSigma;  ///< corruption wave; kInvalidSigma = none
  Sigma box_lo_ = 0, box_hi_ = 0;  ///< pin box [anchor - window, anchor + window]
  std::uint64_t pinned_pulses_ = 0;
};

}  // namespace gtrix
