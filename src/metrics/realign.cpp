#include "metrics/realign.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace gtrix {

namespace {

/// Median of (t - sigma * lambda) over the node's last `tail` pulses;
/// NaN with fewer than 3 pulses.
///
/// Memory-bounded recording: a wave the walk needs that was evicted
/// UN-pinned (outside both the rolling window and the corruption box) is a
/// hard error -- the walk would otherwise silently collect a different pulse
/// set than full recording and realign to a different offset. A wave that
/// was simply never recorded reads as missing in every mode and is skipped
/// identically.
double tail_intercept(const Recorder& rec, RecNodeId node, double lambda,
                      std::size_t tail) {
  const Sigma last = rec.last_recorded(node);
  if (last == Recorder::kInvalidSigma) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> intercepts;
  for (Sigma s = last; intercepts.size() < tail; --s) {
    const auto t = rec.pulse_time(node, s);
    if (t) {
      intercepts.push_back(*t - static_cast<double>(s) * lambda);
    } else if (!rec.covers(node, s, s)) {
      const auto [llo, lhi] = rec.lost_range(node);
      throw std::runtime_error(
          "realign: node " + std::to_string(node) + " wave " + std::to_string(s) +
          " was evicted outside the corruption box (recording mode " +
          std::string(to_string(rec.mode())) + ", window " +
          std::to_string(rec.options().window) + ", lost waves [" +
          std::to_string(llo) + ", " + std::to_string(lhi) +
          "]): raise recording.window so the look-back covers the recovery tail");
    }
    if (s == rec.steady_from(node, 0)) break;  // reached the first pulse
  }
  if (intercepts.size() < 3) return std::numeric_limits<double>::quiet_NaN();
  return median(intercepts);
}

}  // namespace

RealignStats realign_wave_labels(Recorder& recorder, const GridTrace& trace,
                                 double lambda, std::size_t tail_pulses) {
  GTRIX_CHECK(trace.grid != nullptr);
  const Grid& grid = *trace.grid;
  RealignStats stats;

  // Anchor: median intercept of layer-0 nodes (their labels are reliable:
  // emitters are not corruptible and line nodes re-sync from the source).
  std::vector<double> layer0;
  for (BaseNodeId v = 0; v < grid.base().node_count(); ++v) {
    const GridNodeId g = grid.id(v, 0);
    if (trace.is_faulty(g)) continue;
    const double i = tail_intercept(recorder, trace.rec_id(g), lambda, tail_pulses);
    if (!std::isnan(i)) layer0.push_back(i);
  }
  if (layer0.size() < 1) return stats;  // nothing to anchor against
  const double anchor = median(layer0);

  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    const std::uint32_t layer = grid.layer_of(g);
    if (layer == 0) continue;
    const double intercept = tail_intercept(recorder, trace.rec_id(g), lambda, tail_pulses);
    if (std::isnan(intercept)) continue;
    const double expected = anchor + static_cast<double>(layer) * lambda;
    const auto delta = static_cast<Sigma>(std::llround((intercept - expected) / lambda));
    if (delta != 0) {
      // Raising every label by delta lowers the intercept by delta * Lambda.
      recorder.shift_node_sigma(trace.rec_id(g), delta);
      ++stats.nodes_shifted;
      stats.max_abs_shift = std::max<std::int64_t>(stats.max_abs_shift, std::llabs(delta));
    }
  }
  return stats;
}

}  // namespace gtrix
