// Per-shard trace buffering for the sharded engine.
//
// Nodes record pulses and iterations through the Recorder interface, but the
// real Recorder is single-threaded mutable state (global sigma extrema, the
// streaming accumulators' floating-point sums). In a sharded run each node
// therefore records into its shard's ShardRecorder -- a plain append-only
// buffer, touched only by that shard's worker thread -- and the window
// barrier's serial completion merges all buffers into the true Recorder in
// (time, node) order via merge_shard_records().
//
// Why that order reproduces the serial engine byte-for-byte: every node
// lives in exactly one shard, so a stable sort by (time, node) preserves
// each node's own generation order, and two different nodes never record at
// the same timestamp in practice (pulse times carry per-node layer-0 jitter
// and clock-rate noise). The differential tests in tests/test_sharded.cpp
// are the referee for that claim on every builtin scenario.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "metrics/recorder.hpp"
#include "sim/simulator.hpp"

namespace gtrix {

class ShardRecorder final : public Recorder {
 public:
  /// `sim` is the owning shard's simulator; entries are stamped with its
  /// now() at record time, which is the event time being executed.
  explicit ShardRecorder(const Simulator* sim) : sim_(sim) {}

  struct Entry {
    SimTime when = 0.0;  ///< shard-local now() at record time: the merge key
    RecNodeId node = 0;
    bool is_pulse = false;
    // Pulse payload (is_pulse).
    Sigma sigma = 0;
    SimTime t = 0.0;
    // Iteration payload (!is_pulse).
    IterationRecord iteration;
  };

  void record_pulse(RecNodeId node, Sigma sigma, SimTime t) override {
    buffer_.push_back(Entry{sim_->now(), node, true, sigma, t, {}});
  }

  void record_iteration(RecNodeId node, const IterationRecord& record) override {
    buffer_.push_back(Entry{sim_->now(), node, false, 0, 0.0, record});
  }

  std::vector<Entry>& buffer() noexcept { return buffer_; }

  /// Puts the buffer into (when, node) order, stably (each node's own
  /// generation order survives). Called by the OWNING WORKER at the end of
  /// its window so the sort cost runs in parallel across shards; the serial
  /// barrier completion then only has to merge already-sorted runs. Events
  /// execute in time order, so the buffer is globally sorted by `when`
  /// already; only maximal equal-`when` segments (batched deliveries) can
  /// be out of node order, and those are short, so this is one linear scan
  /// plus tiny per-segment sorts.
  void sort_window() {
    auto node_less = [](const Entry& a, const Entry& b) { return a.node < b.node; };
    auto it = buffer_.begin();
    while (it != buffer_.end()) {
      auto end = it + 1;
      while (end != buffer_.end() && end->when == it->when) ++end;
      if (!std::is_sorted(it, end, node_less)) std::stable_sort(it, end, node_less);
      it = end;
    }
  }

 private:
  const Simulator* sim_;
  std::vector<Entry> buffer_;
};

/// Replays every shard buffer into `sink` in global (time, node) order and
/// clears the buffers. Serial: the shard driver calls this from the window
/// barrier's completion step. Requires each buffer to already be in
/// (when, node) order (sort_window()); the merge itself is a copy-free
/// k-way pick so the serial section stays as thin as possible.
void merge_shard_records(Recorder& sink, std::span<ShardRecorder* const> shards);

}  // namespace gtrix
