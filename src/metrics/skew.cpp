#include "metrics/skew.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace gtrix {

namespace {

/// Memoizes each node's steady window [from, to]: steady_from() and
/// last_recorded() scan the node's whole pulse log, so computing them once
/// per node (instead of once per (node, sigma) query) drops compute_skew
/// from O(pairs x waves x pulses) to O(pairs x waves).
class SteadyWindows {
 public:
  explicit SteadyWindows(const GridTrace& trace)
      : trace_(trace), cached_(trace.cached_metrics) {
    if (!cached_) return;  // pre-refactor path: scan per query instead
    const std::uint32_t n = trace.grid->node_count();
    from_.resize(n);
    to_.resize(n);
    for (GridNodeId g = 0; g < n; ++g) {
      const RecNodeId id = trace.rec_id(g);
      from_[g] = trace.recorder->steady_from(id, trace.node_warmup);
      const Sigma last = trace.recorder->last_recorded(id);
      to_[g] = last == Recorder::kInvalidSigma ? Recorder::kInvalidSigma
                                               : last - trace.node_tail;
    }
  }

  /// Same value as GridTrace::steady_pulse, from the cached window.
  std::optional<SimTime> pulse(GridNodeId g, Sigma s) const {
    if (!cached_) return trace_.steady_pulse(g, s);
    if (from_[g] == Recorder::kInvalidSigma || s < from_[g]) return std::nullopt;
    if (to_[g] == Recorder::kInvalidSigma || s > to_[g]) return std::nullopt;
    return trace_.recorder->pulse_time(trace_.rec_id(g), s);
  }

 private:
  const GridTrace& trace_;
  bool cached_;
  std::vector<Sigma> from_;
  std::vector<Sigma> to_;
};

}  // namespace

std::optional<SimTime> GridTrace::steady_pulse(GridNodeId g, Sigma s) const {
  const RecNodeId id = rec_id(g);
  const Sigma from = recorder->steady_from(id, node_warmup);
  if (from == Recorder::kInvalidSigma || s < from) return std::nullopt;
  const Sigma last = recorder->last_recorded(id);
  if (last == Recorder::kInvalidSigma || s > last - node_tail) return std::nullopt;
  return recorder->pulse_time(id, s);
}

SkewReport compute_skew(const GridTrace& trace, Sigma lo, Sigma hi) {
  GTRIX_CHECK(trace.grid != nullptr && trace.recorder != nullptr);
  const Grid& grid = *trace.grid;
  const BaseGraph& base = grid.base();
  const auto edges = base.edges();

  const SteadyWindows windows(trace);

  SkewReport report;
  report.sigma_lo = lo;
  report.sigma_hi = hi;
  report.intra_by_layer.assign(grid.layers(), 0.0);
  report.inter_by_layer.assign(grid.layers() > 0 ? grid.layers() - 1 : 0, 0.0);
  report.spread_by_layer.assign(grid.layers(), 0.0);
  // Every checked pair deviation, for the exact quantile summary (streaming
  // mode estimates the same distribution in O(1) memory instead).
  std::vector<double> deviations;

  for (std::uint32_t layer = 0; layer < grid.layers(); ++layer) {
    double intra = 0.0;
    double spread = 0.0;
    for (Sigma s = lo; s <= hi; ++s) {
      // Intra-layer: adjacent pairs, same sigma.
      for (const auto& [a, b] : edges) {
        const GridNodeId ga = grid.id(a, layer);
        const GridNodeId gb = grid.id(b, layer);
        if (trace.is_faulty(ga) || trace.is_faulty(gb)) {
          ++report.pairs_skipped;
          continue;
        }
        const auto ta = windows.pulse(ga, s);
        const auto tb = windows.pulse(gb, s);
        if (!ta || !tb) {
          ++report.pairs_skipped;
          continue;
        }
        ++report.pairs_checked;
        const double dev = std::abs(*ta - *tb);
        intra = std::max(intra, dev);
        deviations.push_back(dev);
      }
      // Layer spread (global skew component).
      double tmin = std::numeric_limits<double>::infinity();
      double tmax = -std::numeric_limits<double>::infinity();
      for (BaseNodeId v = 0; v < base.node_count(); ++v) {
        const GridNodeId g = grid.id(v, layer);
        if (trace.is_faulty(g)) continue;
        const auto t = windows.pulse(g, s);
        if (!t) continue;
        tmin = std::min(tmin, *t);
        tmax = std::max(tmax, *t);
      }
      if (tmax >= tmin) spread = std::max(spread, tmax - tmin);
    }
    report.intra_by_layer[layer] = intra;
    report.spread_by_layer[layer] = spread;
    report.max_intra = std::max(report.max_intra, intra);
    report.global_skew = std::max(report.global_skew, spread);
  }

  // Inter-layer: |t^{sigma+1}_{v,l} - t^sigma_{w,l+1}| along grid edges.
  for (std::uint32_t layer = 0; layer + 1 < grid.layers(); ++layer) {
    double inter = 0.0;
    for (BaseNodeId v = 0; v < base.node_count(); ++v) {
      const GridNodeId gv = grid.id(v, layer);
      if (trace.is_faulty(gv)) continue;
      for (GridNodeId gw : grid.successors(gv)) {
        if (trace.is_faulty(gw)) continue;
        for (Sigma s = lo; s <= hi; ++s) {
          const auto tv = windows.pulse(gv, s + 1);
          const auto tw = windows.pulse(gw, s);
          if (!tv || !tw) {
            ++report.pairs_skipped;
            continue;
          }
          ++report.pairs_checked;
          const double dev = std::abs(*tv - *tw);
          inter = std::max(inter, dev);
          deviations.push_back(dev);
        }
      }
    }
    report.inter_by_layer[layer] = inter;
    report.max_inter = std::max(report.max_inter, inter);
  }

  report.local_skew = std::max(report.max_intra, report.max_inter);

  report.deviations.count = deviations.size();
  report.deviations.exact = true;
  if (!deviations.empty()) {
    // Exact type-7 quantiles via rank selection: three nth_element passes
    // instead of a full sort (the sample vector is O(pairs_checked), so a
    // sort's log factor is real time on big full-trace runs; streaming
    // mode avoids the materialization entirely -- docs/scaling.md).
    const auto exact_quantile = [&](double q) {
      const double pos = q * static_cast<double>(deviations.size() - 1);
      const auto lo = static_cast<std::size_t>(pos);
      const double frac = pos - static_cast<double>(lo);
      auto lo_it = deviations.begin() + static_cast<std::ptrdiff_t>(lo);
      std::nth_element(deviations.begin(), lo_it, deviations.end());
      const double lo_value = *lo_it;
      if (frac == 0.0 || lo + 1 >= deviations.size()) return lo_value;
      // The (lo+1)-th order statistic is the minimum of the partition
      // right of lo_it after nth_element.
      const double hi_value = *std::min_element(lo_it + 1, deviations.end());
      return lo_value * (1.0 - frac) + hi_value * frac;
    };
    double sum = 0.0;
    for (const double dev : deviations) sum += dev;
    report.deviations.mean = sum / static_cast<double>(deviations.size());
    report.deviations.p50 = exact_quantile(0.50);
    report.deviations.p90 = exact_quantile(0.90);
    report.deviations.p99 = exact_quantile(0.99);
  }
  return report;
}

std::vector<double> intra_skew_by_sigma(const GridTrace& trace, std::uint32_t layer,
                                        Sigma lo, Sigma hi) {
  const Grid& grid = *trace.grid;
  const SteadyWindows windows(trace);
  const auto edges = grid.base().edges();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (Sigma s = lo; s <= hi; ++s) {
    double worst = std::numeric_limits<double>::quiet_NaN();
    for (const auto& [a, b] : edges) {
      const GridNodeId ga = grid.id(a, layer);
      const GridNodeId gb = grid.id(b, layer);
      if (trace.is_faulty(ga) || trace.is_faulty(gb)) continue;
      const auto ta = windows.pulse(ga, s);
      const auto tb = windows.pulse(gb, s);
      if (!ta || !tb) continue;
      const double skew = std::abs(*ta - *tb);
      if (std::isnan(worst) || skew > worst) worst = skew;
    }
    out.push_back(worst);
  }
  return out;
}

std::vector<double> local_skew_by_sigma(const GridTrace& trace, Sigma lo, Sigma hi) {
  const Grid& grid = *trace.grid;
  const SteadyWindows windows(trace);
  const auto edges = grid.base().edges();
  std::vector<double> out(static_cast<std::size_t>(hi >= lo ? hi - lo + 1 : 0),
                          std::numeric_limits<double>::quiet_NaN());
  const auto fold = [&](Sigma s, double dev) {
    double& worst = out[static_cast<std::size_t>(s - lo)];
    if (std::isnan(worst) || dev > worst) worst = dev;
  };
  for (Sigma s = lo; s <= hi; ++s) {
    // Intra-layer pairs at wave s, every layer.
    for (std::uint32_t layer = 0; layer < grid.layers(); ++layer) {
      for (const auto& [a, b] : edges) {
        const GridNodeId ga = grid.id(a, layer);
        const GridNodeId gb = grid.id(b, layer);
        if (trace.is_faulty(ga) || trace.is_faulty(gb)) continue;
        const auto ta = windows.pulse(ga, s);
        const auto tb = windows.pulse(gb, s);
        if (!ta || !tb) continue;
        fold(s, std::abs(*ta - *tb));
      }
    }
    // Inter-layer pairs |t^{s+1}_{v,l} - t^s_{w,l+1}|, attributed to wave s.
    for (std::uint32_t layer = 0; layer + 1 < grid.layers(); ++layer) {
      for (BaseNodeId v = 0; v < grid.base().node_count(); ++v) {
        const GridNodeId gv = grid.id(v, layer);
        if (trace.is_faulty(gv)) continue;
        const auto tv = windows.pulse(gv, s + 1);
        if (!tv) continue;
        for (GridNodeId gw : grid.successors(gv)) {
          if (trace.is_faulty(gw)) continue;
          const auto tw = windows.pulse(gw, s);
          if (!tw) continue;
          fold(s, std::abs(*tv - *tw));
        }
      }
    }
  }
  return out;
}

std::pair<Sigma, Sigma> default_window(const Recorder& recorder, Sigma warmup) {
  (void)warmup;  // per-node steady filtering handles transients; the global
                 // window just bounds the sigma sweep.
  if (recorder.min_sigma() == Recorder::kInvalidSigma) return {0, -1};
  return {recorder.min_sigma(), recorder.max_sigma()};
}

}  // namespace gtrix
