#include "metrics/conditions.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "support/check.hpp"

namespace gtrix {

namespace {

constexpr double kEps = 1e-6;         // float-noise tolerance, time units
constexpr std::size_t kMaxSamples = 12;

void note(ConditionReport& report, const std::string& what) {
  if (report.samples.size() < kMaxSamples) report.samples.push_back(what);
}

}  // namespace

std::string ConditionReport::summary() const {
  std::ostringstream out;
  out << "SC " << sc_violations << "/" << sc_checked << "  FC " << fc_violations << "/"
      << fc_checked << "  JC " << jc_violations << "/" << jc_checked << "  D2 "
      << lemma_d2_violations << "/" << lemma_d2_checked << "  D3 " << lemma_d3_violations
      << "/" << lemma_d3_checked << "  median " << median_violations << "/"
      << median_checked << "  skipped " << iterations_skipped;
  return out.str();
}

ConditionReport check_conditions(const GridTrace& trace, const Params& params,
                                 std::uint32_t s_max, Sigma lo, Sigma hi) {
  GTRIX_CHECK(trace.grid != nullptr && trace.recorder != nullptr);
  const Grid& grid = *trace.grid;
  const Recorder& rec = *trace.recorder;
  const double kappa = params.kappa();
  const double theta = params.theta;

  ConditionReport report;

  // Memory-bounded recording: verify up front that the retained data (rolling
  // window + corruption box) answers this window exactly as full recording
  // would. Pulse slots are read at it.sigma in [lo, hi] for every
  // predecessor, and iteration records past the warmup index inside [lo, hi]
  // must all still exist -- anything lost is a hard error, never a silently
  // smaller checked count.
  const bool bounded = rec.mode() != RecordingMode::kFull;
  const auto warmup_abs =
      trace.node_warmup > 0 ? static_cast<std::uint64_t>(trace.node_warmup) : 0u;
  if (bounded) {
    for (GridNodeId g = 0; g < grid.node_count(); ++g) {
      if (trace.is_faulty(g)) continue;
      const RecNodeId r = trace.rec_id(g);
      if (!rec.covers(r, lo, hi)) {
        const auto [llo, lhi] = rec.lost_range(r);
        throw std::runtime_error(
            "conditions: node " + grid.label(g) + " lost pulse waves [" +
            std::to_string(llo) + ", " + std::to_string(lhi) +
            "] overlapping the requested window [" + std::to_string(lo) + ", " +
            std::to_string(hi) + "] (recording mode " +
            std::string(to_string(rec.mode())) + ", window " +
            std::to_string(rec.options().window) +
            "): raise recording.window or narrow the window");
      }
      if (grid.layer_of(g) != 0 && !rec.iterations_covered(r, lo, hi, warmup_abs)) {
        throw std::runtime_error(
            "conditions: node " + grid.label(g) +
            " lost iteration records inside the requested window [" +
            std::to_string(lo) + ", " + std::to_string(hi) + "] (recording mode " +
            std::string(to_string(rec.mode())) + ", window " +
            std::to_string(rec.options().window) +
            "): raise recording.window or narrow the window");
      }
    }
  }

  for (GridNodeId gv = 0; gv < grid.node_count(); ++gv) {
    const std::uint32_t layer = grid.layer_of(gv);
    if (layer == 0) continue;
    if (trace.is_faulty(gv)) continue;
    const auto preds = grid.predecessors(gv);

    // Full recording skip-counts every record below the warmup index; lost
    // pre-warmup records (evicted un-pinned) are added back here so the
    // skipped count is identical across recording modes.
    if (bounded) {
      report.iterations_skipped +=
          rec.iterations_lost_below(trace.rec_id(gv), warmup_abs);
    }
    // Pinned records (corruption box) first, then the rolling tail --
    // absolute-index order, with the warmup filter keyed on the absolute
    // index so it is identical across recording modes.
    rec.for_each_iteration(trace.rec_id(gv), [&](const IterationRecord& it,
                                                 std::uint64_t abs_idx) {
      // Skip the node's startup transient (per-node, like the skew metrics).
      if (static_cast<Sigma>(abs_idx) < trace.node_warmup) {
        ++report.iterations_skipped;
        return;
      }
      if (it.sigma < lo || it.sigma > hi) return;
      if (it.late) {
        ++report.iterations_skipped;
        return;
      }
      const double t_v = it.pulse_time;
      const double c = it.correction;

      // Gather predecessor pulse times at this wave.
      std::uint32_t faulty_preds = 0;
      std::optional<double> t_own;
      double nb_min = std::numeric_limits<double>::infinity();
      double nb_max = -std::numeric_limits<double>::infinity();
      double all_min = std::numeric_limits<double>::infinity();
      double all_max = -std::numeric_limits<double>::infinity();
      bool missing = false;
      for (std::size_t i = 0; i < preds.size(); ++i) {
        const GridNodeId gp = preds[i];
        if (trace.is_faulty(gp)) {
          ++faulty_preds;
          continue;
        }
        const auto t = rec.pulse_time(trace.rec_id(gp), it.sigma);
        if (!t) {
          missing = true;
          break;
        }
        all_min = std::min(all_min, *t);
        all_max = std::max(all_max, *t);
        if (i == 0) {
          t_own = *t;
        } else {
          nb_min = std::min(nb_min, *t);
          nb_max = std::max(nb_max, *t);
        }
      }
      if (missing || faulty_preds >= 2) {
        ++report.iterations_skipped;
        return;
      }

      if (faulty_preds == 1) {
        // Corollary 4.29: t_min + Lambda - 2 kappa <= t_v <= t_max + Lambda + 2 kappa
        // with min/max over correct predecessors.
        ++report.median_checked;
        const double lo_bound = all_min + params.lambda - 2.0 * kappa;
        const double hi_bound = all_max + params.lambda + 2.0 * kappa;
        if (t_v < lo_bound - kEps || t_v > hi_bound + kEps) {
          ++report.median_violations;
          std::ostringstream msg;
          msg << "median: node " << grid.label(gv) << " sigma " << it.sigma << " t="
              << t_v << " outside [" << lo_bound << ", " << hi_bound << "]";
          note(report, msg.str());
        }
        return;
      }

      // All predecessors correct from here on.
      GTRIX_CHECK(t_own.has_value());
      if (it.own_missing) {
        ++report.iterations_skipped;  // should not happen without faults
        return;
      }

      // Lemma D.2: C <= Lambda - d.
      ++report.lemma_d2_checked;
      if (c > params.lambda - params.d + kEps) {
        ++report.lemma_d2_violations;
        std::ostringstream msg;
        msg << "D2: node " << grid.label(gv) << " sigma " << it.sigma << " C=" << c;
        note(report, msg.str());
      }

      // Lemma D.3: d - u + (Lambda - d - C)/theta <= t_v - t_own <= Lambda - C.
      ++report.lemma_d3_checked;
      const double gap = t_v - *t_own;
      const double d3_lo = params.d - params.u + (params.lambda - params.d - c) / theta;
      const double d3_hi = params.lambda - c;
      if (gap < d3_lo - kEps || gap > d3_hi + kEps) {
        ++report.lemma_d3_violations;
        std::ostringstream msg;
        msg << "D3: node " << grid.label(gv) << " sigma " << it.sigma << " gap=" << gap
            << " outside [" << d3_lo << ", " << d3_hi << "] C=" << c;
        note(report, msg.str());
      }

      // Slow condition SC(s) = SC-1(s) or SC-2(s) or SC-3 for all s.
      for (std::uint32_t s = 0; s <= s_max; ++s) {
        ++report.sc_checked;
        const bool sc1 = c / theta <= *t_own - nb_max + 4.0 * s * kappa + kEps;
        const bool sc2 = c / theta <= *t_own - nb_min - 4.0 * s * kappa + kEps;
        const bool sc3 = c <= kEps;
        if (!(sc1 || sc2 || sc3)) {
          ++report.sc_violations;
          std::ostringstream msg;
          msg << "SC(" << s << "): node " << grid.label(gv) << " sigma " << it.sigma
              << " C=" << c << " t_own=" << *t_own << " nb=[" << nb_min << "," << nb_max
              << "]";
          note(report, msg.str());
        }
      }

      // Fast condition FC(s) for s >= 1.
      for (std::uint32_t s = 1; s <= s_max; ++s) {
        ++report.fc_checked;
        const bool fc1 = c >= *t_own - nb_max + (4.0 * s - 2.0) * kappa + kappa - kEps;
        const bool fc2 = c >= *t_own - nb_min - (4.0 * s - 2.0) * kappa + kappa - kEps;
        const bool fc3 = c >= kappa - kEps;
        if (!(fc1 || fc2 || fc3)) {
          ++report.fc_violations;
          std::ostringstream msg;
          msg << "FC(" << s << "): node " << grid.label(gv) << " sigma " << it.sigma
              << " C=" << c << " t_own=" << *t_own << " nb=[" << nb_min << "," << nb_max
              << "]";
          note(report, msg.str());
        }
      }

      // Jump condition JC = JC-1 or JC-2 or JC-3.
      {
        ++report.jc_checked;
        const double cq = c / theta;
        const bool jc1 = kappa < cq + kEps && cq <= *t_own - nb_max - kappa + kEps;
        const bool jc2 = c < kEps && c >= *t_own - nb_min + kappa - kEps;
        const bool jc3 = cq >= -kEps && cq <= kappa + kEps;
        if (!(jc1 || jc2 || jc3)) {
          ++report.jc_violations;
          std::ostringstream msg;
          msg << "JC: node " << grid.label(gv) << " sigma " << it.sigma << " C=" << c
              << " t_own=" << *t_own << " nb=[" << nb_min << "," << nb_max << "]";
          note(report, msg.str());
        }
      }
    });
  }
  return report;
}

}  // namespace gtrix
