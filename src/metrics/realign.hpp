// Post-run wave-label realignment.
//
// Wave labels (sigma) are metrics-only bookkeeping; the algorithm never
// reads them. After a system-wide transient fault the *pulses* re-converge
// (Theorem 1.6), but a recovered region can carry a consistently shifted
// label (its members outvote the boundary). This pass re-derives each
// node's label offset from its steady pulse times -- in steady state
// t^sigma = sigma * Lambda + intercept with intercept == layer * Lambda +
// phase, anchored at layer 0 (whose emitters are never corrupted) -- and
// shifts the node's log so labels are globally consistent again. This is
// the measurement-side counterpart of Appendix C's "re-establish a
// consistent interpretation of what the k-th pulse is".
#pragma once

#include <cstdint>

#include "metrics/skew.hpp"

namespace gtrix {

struct RealignStats {
  std::uint32_t nodes_shifted = 0;
  std::int64_t max_abs_shift = 0;
};

/// Realigns labels in `recorder` (via the trace's node mapping) using the
/// last up-to-`tail_pulses` pulses of each node. `lambda` is the nominal
/// period. Nodes with fewer than 3 recorded pulses are left untouched.
RealignStats realign_wave_labels(Recorder& recorder, const GridTrace& trace,
                                 double lambda, std::size_t tail_pulses = 8);

}  // namespace gtrix
