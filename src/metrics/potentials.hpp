// The analysis potentials of Definition 4.1:
//
//   psi^s_{v,w}(l) = t_{v,l} - t_{w,l} - 4 s kappa d(v,w),   Psi^s(l) = max_{v,w} psi
//   xi^s_{v,w}(l)  = t_{v,l} - t_{w,l} - (4s-2) kappa d(v,w), Xi^s(l) = max_{v,w} xi
//
// Observation 4.2 converts Psi^s bounds into local skew bounds:
// Psi^s(l) <= P  implies  L_l <= P + 4 s kappa.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "metrics/skew.hpp"

namespace gtrix {

/// Psi^s(l) for wave sigma; NaN if fewer than two correct pulses exist.
double psi_s(const GridTrace& trace, const Params& params, std::uint32_t layer,
             Sigma sigma, std::uint32_t s);

/// Xi^s(l) for wave sigma.
double xi_s(const GridTrace& trace, const Params& params, std::uint32_t layer,
            Sigma sigma, std::uint32_t s);

/// Max over sigma in [lo, hi] of Psi^s per layer.
std::vector<double> psi_profile(const GridTrace& trace, const Params& params,
                                std::uint32_t s, Sigma lo, Sigma hi);

}  // namespace gtrix
