// Post-hoc verification of the algorithm's invariants on a recorded
// execution:
//
//  * Slow condition SC(s)  (Definition 4.3, proven in Lemma D.4)
//  * Fast condition FC(s)  (Definition 4.4, Lemma D.5)
//  * Jump condition JC     (Definition 4.5, Lemma D.6)
//  * C_{v,l} <= Lambda - d (Lemma D.2)
//  * propagation bounds    (Lemma D.3)
//  * median sticking       (Corollary 4.29, for nodes with a faulty
//                           predecessor)
//
// These power the property-test suites: every recorded iteration of every
// correct node must satisfy them for the implementation to be faithful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "metrics/skew.hpp"

namespace gtrix {

struct ConditionReport {
  std::uint64_t sc_checked = 0, sc_violations = 0;
  std::uint64_t fc_checked = 0, fc_violations = 0;
  std::uint64_t jc_checked = 0, jc_violations = 0;
  std::uint64_t lemma_d2_checked = 0, lemma_d2_violations = 0;
  std::uint64_t lemma_d3_checked = 0, lemma_d3_violations = 0;
  std::uint64_t median_checked = 0, median_violations = 0;
  std::uint64_t iterations_skipped = 0;  ///< missing data / out of window

  std::vector<std::string> samples;  ///< first few violation descriptions

  std::uint64_t total_violations() const noexcept {
    return sc_violations + fc_violations + jc_violations + lemma_d2_violations +
           lemma_d3_violations + median_violations;
  }
  bool ok() const noexcept { return total_violations() == 0; }

  std::string summary() const;
};

/// Verifies all invariants over waves sigma in [lo, hi] for levels
/// s in [0, s_max] (FC from s = 1). Nodes flagged faulty in the recorder are
/// treated as the fault set F; iterations whose predecessor pulses are
/// partially missing are skipped and counted.
ConditionReport check_conditions(const GridTrace& trace, const Params& params,
                                 std::uint32_t s_max, Sigma lo, Sigma hi);

}  // namespace gtrix
