// Skew measures (paper §2, "Output and Skew").
//
// All comparisons are between same-sigma pulses (intra-layer) or sigma+1 at
// layer l versus sigma at layer l+1 (inter-layer), which is exactly the
// paper's L_l and L_{l,l+1} after the index shift discussed in DESIGN.md.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/grid.hpp"
#include "metrics/recorder.hpp"

namespace gtrix {

/// Joins the grid structure with the recorded trace. `node_ids[g]` is the
/// recorder id of grid node g (identity in the standard runner wiring).
struct GridTrace {
  const Grid* grid = nullptr;
  const Recorder* recorder = nullptr;
  std::vector<RecNodeId> node_ids;

  /// Per-node steady-state filter: a node's first `node_warmup` pulses and
  /// last `node_tail` pulses are excluded from measurements. Startup
  /// transients span different waves at different grid positions (notably
  /// under Appendix-A line input), so the filter is per node, not global.
  Sigma node_warmup = 3;
  Sigma node_tail = 1;
  /// Memoize per-node steady windows inside the metric computations; false
  /// reproduces the pre-refactor per-query log scans (EngineOptions).
  bool cached_metrics = true;

  RecNodeId rec_id(GridNodeId g) const { return node_ids.at(g); }
  bool is_faulty(GridNodeId g) const { return recorder->meta(rec_id(g)).faulty; }

  /// Pulse time of grid node g at wave s, but only within the node's steady
  /// window; nullopt otherwise.
  std::optional<SimTime> steady_pulse(GridNodeId g, Sigma s) const;
};

/// Distribution summary of the per-pair deviations |t_a - t_b| behind the
/// extrema above. Full-trace recording computes the quantiles exactly from
/// the complete sample set (`exact` = true); streaming recording estimates
/// them with a log-binned sketch in O(1) memory (`exact` = false, 1%
/// relative error bound -- docs/scaling.md). Counts and the mean are exact
/// in both modes.
struct DeviationStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  bool exact = true;
};

struct SkewReport {
  std::vector<double> intra_by_layer;  ///< max_sigma L_l(sigma) per layer
  std::vector<double> inter_by_layer;  ///< max_sigma L_{l,l+1}(sigma)
  std::vector<double> spread_by_layer; ///< max-min pulse time within layer (global skew)
  double max_intra = 0.0;              ///< sup_l L_l
  double max_inter = 0.0;              ///< sup_l L_{l,l+1}
  double local_skew = 0.0;             ///< L = max(max_intra, max_inter)
  double global_skew = 0.0;            ///< max layer spread
  Sigma sigma_lo = 0;
  Sigma sigma_hi = 0;
  std::uint64_t pairs_checked = 0;
  std::uint64_t pairs_skipped = 0;     ///< missing pulse or faulty endpoint
  DeviationStats deviations;           ///< distribution of the checked pair deviations
};

/// Computes all skew measures over waves sigma in [lo, hi].
SkewReport compute_skew(const GridTrace& trace, Sigma lo, Sigma hi);

/// Intra-layer skew of one layer per wave (series over sigma); NaN where no
/// adjacent correct pair had both pulses recorded.
std::vector<double> intra_skew_by_sigma(const GridTrace& trace, std::uint32_t layer,
                                        Sigma lo, Sigma hi);

/// Worst local deviation per wave across ALL layers: intra-layer pairs at
/// wave s plus inter-layer pairs (s+1 at layer l vs s at layer l+1,
/// attributed to s). NaN where no correct pair had both pulses recorded.
/// This is the recovery-time scan of a corrupt cell: the first wave from
/// which the series stays under the Theorem 1.1 bound is the measured
/// recovery wave (src/runner/campaign.cpp).
std::vector<double> local_skew_by_sigma(const GridTrace& trace, Sigma lo, Sigma hi);

/// Default measurement window for a run: skips `warmup` waves at the start
/// and 2 at the end (the last waves are perturbed by the source stopping).
std::pair<Sigma, Sigma> default_window(const Recorder& recorder, Sigma warmup);

}  // namespace gtrix
