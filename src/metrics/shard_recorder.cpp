#include "metrics/shard_recorder.hpp"

#include <cstddef>

namespace gtrix {

void merge_shard_records(Recorder& sink, std::span<ShardRecorder* const> shards) {
  // Copy-free k-way merge over buffers the workers already sorted in
  // parallel (ShardRecorder::sort_window). Ties on (when, node) cannot span
  // buffers -- a node lives in exactly one shard -- so picking the smallest
  // head, lowest shard first, is a stable total order.
  static thread_local std::vector<std::size_t> heads;
  heads.assign(shards.size(), 0);
  while (true) {
    const ShardRecorder::Entry* best = nullptr;
    std::size_t best_shard = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const std::vector<ShardRecorder::Entry>& buffer = shards[s]->buffer();
      if (heads[s] >= buffer.size()) continue;
      const ShardRecorder::Entry& head = buffer[heads[s]];
      if (best == nullptr || head.when < best->when ||
          (head.when == best->when && head.node < best->node)) {
        best = &head;
        best_shard = s;
      }
    }
    if (best == nullptr) break;
    ++heads[best_shard];
    if (best->is_pulse) {
      sink.record_pulse(best->node, best->sigma, best->t);
    } else {
      sink.record_iteration(best->node, best->iteration);
    }
  }
  for (ShardRecorder* shard : shards) shard->buffer().clear();
}

}  // namespace gtrix
