// The layered synchronization graph G (paper §2, "Network Graph", Fig. 3).
//
// For each layer l in [0, layers) there is a copy of every base-graph node;
// node (v, l) has an edge to (w, l+1) whenever {v, w} in E or v == w. The
// edge to the copy of itself carries the node's "own" local time forward
// (H_own in the algorithm); edges to neighbour copies carry the offset
// estimates (H_min / H_max).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/base_graph.hpp"

namespace gtrix {

using GridNodeId = std::uint32_t;

class Grid {
 public:
  Grid(BaseGraph base, std::uint32_t layers);

  const BaseGraph& base() const noexcept { return base_; }
  std::uint32_t layers() const noexcept { return layers_; }
  std::uint32_t node_count() const noexcept { return layers_ * base_.node_count(); }

  GridNodeId id(BaseNodeId v, std::uint32_t layer) const;
  BaseNodeId base_of(GridNodeId id) const { return id % base_.node_count(); }
  std::uint32_t layer_of(GridNodeId id) const { return id / base_.node_count(); }

  /// In-neighbours of (v, l), l >= 1. The first entry is always the node's
  /// own copy (v, l-1); the rest are neighbour copies in base-id order.
  std::span<const GridNodeId> predecessors(GridNodeId id) const;

  /// Out-neighbours on the next layer (empty for the last layer). The first
  /// entry is the node's own copy (v, l+1).
  std::span<const GridNodeId> successors(GridNodeId id) const;

  /// Number of in-neighbours excluding the own copy (= deg_H(v)).
  std::uint32_t neighbor_pred_count(GridNodeId id) const {
    return static_cast<std::uint32_t>(predecessors(id).size()) - 1;
  }

  std::string label(GridNodeId id) const;

  /// Total number of inter-layer directed edges.
  std::uint64_t edge_count() const noexcept;

 private:
  BaseGraph base_;
  std::uint32_t layers_;
  // Predecessor/successor lists are identical for every layer >= 1 (resp.
  // < layers-1) up to an offset of base_.node_count(); store per-base-node
  // template lists of base ids, own copy first.
  std::vector<std::vector<BaseNodeId>> in_template_;
  // Materialized lists per grid node (small grids; keeps call sites simple).
  std::vector<std::vector<GridNodeId>> preds_;
  std::vector<std::vector<GridNodeId>> succs_;
};

}  // namespace gtrix
