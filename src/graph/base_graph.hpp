// Base graphs H = (V, E) from which the synchronization grid is built
// (paper §2, Fig. 2). The algorithm requires minimum degree 2.
//
// The default is the paper's choice: a line whose two end nodes are
// replicated and connected ("line with replicated and connected endpoints",
// Fig. 2 and footnote 3), giving minimum degree 2 while staying physically
// routable on a square chip. A cycle (the theoretically cleanest choice) and
// a bare path (minimum degree 1; useful for layer-0-style tests only) are
// also provided.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gtrix {

using BaseNodeId = std::uint32_t;

/// Legacy closed enumeration of base-graph shapes, kept as a thin adapter
/// for ExperimentConfig source compatibility. New topologies (e.g. the
/// torus) exist only as registered TopologyProvider kinds and have no enum
/// value -- see registry/topology.hpp.
enum class BaseGraphKind {
  kLineReplicated,  ///< paper default (Fig. 2)
  kCycle,
  kPath,  ///< min degree 1; not valid for the full algorithm
};

class BaseGraph {
 public:
  /// Line over `columns >= 2` columns with replicated, connected endpoints.
  /// Column 0 and column columns-1 each hold two replica nodes; interior
  /// columns hold one node. Diameter = columns - 1.
  static BaseGraph line_replicated(std::uint32_t columns);

  /// Cycle on `n >= 3` nodes. Diameter = floor(n / 2).
  static BaseGraph cycle(std::uint32_t n);

  /// Cycle where node i is adjacent to all nodes within hop distance
  /// `reach` (degree 2*reach). The grid built on it has in-degree
  /// 2*reach + 1 -- the topology the paper's "Bigger Picture" item (3)
  /// proposes for tolerating f = reach local faults with minimal degree.
  /// Requires n > 2 * reach.
  static BaseGraph cycle_wide(std::uint32_t n, std::uint32_t reach);

  /// Path on `n >= 2` nodes (minimum degree 1).
  static BaseGraph path(std::uint32_t n);

  /// 2D torus: `rows` rings of `cols` nodes, wrapping in both dimensions.
  /// Node (r, c) sits in column c; min degree 4, diameter
  /// floor(rows/2) + floor(cols/2). Requires rows >= 3 and cols >= 3 so the
  /// wraparound creates no parallel edges.
  static BaseGraph torus(std::uint32_t rows, std::uint32_t cols);

  std::uint32_t node_count() const noexcept { return static_cast<std::uint32_t>(adjacency_.size()); }
  std::uint32_t edge_count() const;

  std::span<const BaseNodeId> neighbors(BaseNodeId v) const;
  bool has_edge(BaseNodeId a, BaseNodeId b) const;

  std::uint32_t degree(BaseNodeId v) const { return static_cast<std::uint32_t>(neighbors(v).size()); }
  std::uint32_t min_degree() const;
  std::uint32_t max_degree() const;

  /// Hop distance in H (precomputed all-pairs BFS).
  std::uint32_t distance(BaseNodeId a, BaseNodeId b) const;

  /// Graph diameter D.
  std::uint32_t diameter() const noexcept { return diameter_; }

  /// Geometric column of a node along the line / index around the cycle.
  /// Replicated endpoints share the column of the endpoint they copy. Used
  /// by the wavefront (sigma) metrics re-indexing and by layer-0 wiring.
  std::uint32_t column(BaseNodeId v) const { return columns_.at(v); }
  std::uint32_t column_count() const noexcept { return column_count_; }

  /// All nodes in a given column (1 or 2 nodes for the line; 1 for others).
  std::span<const BaseNodeId> nodes_in_column(std::uint32_t c) const;

  /// Human-readable node label, e.g. "v3" or "v0'" for a replica.
  std::string label(BaseNodeId v) const;

  /// All edges as (a, b) pairs with a < b.
  std::vector<std::pair<BaseNodeId, BaseNodeId>> edges() const;

 private:
  BaseGraph() = default;
  void finalize();  // sorts adjacency, computes distances/diameter

  std::vector<std::vector<BaseNodeId>> adjacency_;
  std::vector<std::uint32_t> columns_;
  std::vector<std::vector<BaseNodeId>> column_nodes_;
  std::uint32_t column_count_ = 0;
  std::vector<std::vector<std::uint32_t>> dist_;  // all-pairs hop distance
  std::uint32_t diameter_ = 0;
  std::vector<bool> is_replica_;
};

}  // namespace gtrix
