#include "graph/base_graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/check.hpp"

namespace gtrix {

namespace {
constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
}

BaseGraph BaseGraph::line_replicated(std::uint32_t columns) {
  GTRIX_CHECK_MSG(columns >= 2, "line needs at least 2 columns");
  BaseGraph g;
  g.column_count_ = columns;
  // Node layout: 0 and 1 are the two replicas in column 0; 2 .. columns-1
  // are the interior nodes of columns 1 .. columns-2; the last two ids are
  // the replicas in column columns-1.
  const std::uint32_t interior = columns - 2;
  const std::uint32_t n = 2 + interior + 2;
  g.adjacency_.resize(n);
  g.columns_.resize(n);
  g.is_replica_.assign(n, false);
  g.column_nodes_.resize(columns);

  const BaseNodeId left_a = 0, left_b = 1;
  const BaseNodeId right_a = n - 2, right_b = n - 1;
  auto interior_id = [&](std::uint32_t c) -> BaseNodeId { return 1 + c; };  // c in [1, columns-2]

  g.columns_[left_a] = 0;
  g.columns_[left_b] = 0;
  g.is_replica_[left_b] = true;
  g.column_nodes_[0] = {left_a, left_b};
  for (std::uint32_t c = 1; c + 1 < columns; ++c) {
    g.columns_[interior_id(c)] = c;
    g.column_nodes_[c] = {interior_id(c)};
  }
  g.columns_[right_a] = columns - 1;
  g.columns_[right_b] = columns - 1;
  g.is_replica_[right_b] = true;
  g.column_nodes_[columns - 1] = {right_a, right_b};

  auto connect = [&](BaseNodeId a, BaseNodeId b) {
    g.adjacency_[a].push_back(b);
    g.adjacency_[b].push_back(a);
  };
  connect(left_a, left_b);
  connect(right_a, right_b);
  if (columns == 2) {
    // Degenerate case: two replicated columns facing each other.
    connect(left_a, right_a);
    connect(left_a, right_b);
    connect(left_b, right_a);
    connect(left_b, right_b);
  } else {
    connect(left_a, interior_id(1));
    connect(left_b, interior_id(1));
    for (std::uint32_t c = 1; c + 2 < columns; ++c) connect(interior_id(c), interior_id(c + 1));
    connect(interior_id(columns - 2), right_a);
    connect(interior_id(columns - 2), right_b);
  }
  g.finalize();
  return g;
}

BaseGraph BaseGraph::cycle(std::uint32_t n) { return cycle_wide(n, 1); }

BaseGraph BaseGraph::cycle_wide(std::uint32_t n, std::uint32_t reach) {
  GTRIX_CHECK_MSG(reach >= 1, "reach must be at least 1");
  GTRIX_CHECK_MSG(n > 2 * reach, "cycle needs more than 2*reach nodes");
  BaseGraph g;
  g.column_count_ = n;
  g.adjacency_.resize(n);
  g.columns_.resize(n);
  g.is_replica_.assign(n, false);
  g.column_nodes_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    g.columns_[i] = i;
    g.column_nodes_[i] = {i};
    for (std::uint32_t hop = 1; hop <= reach; ++hop) {
      const BaseNodeId next = (i + hop) % n;
      g.adjacency_[i].push_back(next);
      g.adjacency_[next].push_back(i);
    }
  }
  g.finalize();
  return g;
}

BaseGraph BaseGraph::torus(std::uint32_t rows, std::uint32_t cols) {
  GTRIX_CHECK_MSG(rows >= 3, "torus needs at least 3 rows");
  GTRIX_CHECK_MSG(cols >= 3, "torus needs at least 3 columns");
  BaseGraph g;
  g.column_count_ = cols;
  const std::uint32_t n = rows * cols;
  g.adjacency_.resize(n);
  g.columns_.resize(n);
  g.is_replica_.assign(n, false);
  g.column_nodes_.resize(cols);
  auto id = [&](std::uint32_t r, std::uint32_t c) -> BaseNodeId { return r * cols + c; };
  auto connect = [&](BaseNodeId a, BaseNodeId b) {
    g.adjacency_[a].push_back(b);
    g.adjacency_[b].push_back(a);
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const BaseNodeId v = id(r, c);
      g.columns_[v] = c;
      g.column_nodes_[c].push_back(v);
      connect(v, id(r, (c + 1) % cols));
      connect(v, id((r + 1) % rows, c));
    }
  }
  g.finalize();
  return g;
}

BaseGraph BaseGraph::path(std::uint32_t n) {
  GTRIX_CHECK_MSG(n >= 2, "path needs at least 2 nodes");
  BaseGraph g;
  g.column_count_ = n;
  g.adjacency_.resize(n);
  g.columns_.resize(n);
  g.is_replica_.assign(n, false);
  g.column_nodes_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    g.columns_[i] = i;
    g.column_nodes_[i] = {i};
    if (i + 1 < n) {
      g.adjacency_[i].push_back(i + 1);
      g.adjacency_[i + 1].push_back(i);
    }
  }
  g.finalize();
  return g;
}

void BaseGraph::finalize() {
  for (auto& nbrs : adjacency_) std::sort(nbrs.begin(), nbrs.end());
  const std::uint32_t n = node_count();
  dist_.assign(n, std::vector<std::uint32_t>(n, kUnreached));
  diameter_ = 0;
  for (std::uint32_t src = 0; src < n; ++src) {
    auto& d = dist_[src];
    d[src] = 0;
    std::queue<BaseNodeId> frontier;
    frontier.push(src);
    while (!frontier.empty()) {
      const BaseNodeId v = frontier.front();
      frontier.pop();
      for (BaseNodeId w : adjacency_[v]) {
        if (d[w] == kUnreached) {
          d[w] = d[v] + 1;
          frontier.push(w);
        }
      }
    }
    for (std::uint32_t other = 0; other < n; ++other) {
      GTRIX_CHECK_MSG(d[other] != kUnreached, "base graph must be connected");
      diameter_ = std::max(diameter_, d[other]);
    }
  }
}

std::uint32_t BaseGraph::edge_count() const {
  std::uint32_t twice = 0;
  for (const auto& nbrs : adjacency_) twice += static_cast<std::uint32_t>(nbrs.size());
  return twice / 2;
}

std::span<const BaseNodeId> BaseGraph::neighbors(BaseNodeId v) const {
  return adjacency_.at(v);
}

bool BaseGraph::has_edge(BaseNodeId a, BaseNodeId b) const {
  const auto nbrs = neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::uint32_t BaseGraph::min_degree() const {
  std::uint32_t m = std::numeric_limits<std::uint32_t>::max();
  for (const auto& nbrs : adjacency_) m = std::min(m, static_cast<std::uint32_t>(nbrs.size()));
  return m;
}

std::uint32_t BaseGraph::max_degree() const {
  std::uint32_t m = 0;
  for (const auto& nbrs : adjacency_) m = std::max(m, static_cast<std::uint32_t>(nbrs.size()));
  return m;
}

std::uint32_t BaseGraph::distance(BaseNodeId a, BaseNodeId b) const {
  return dist_.at(a).at(b);
}

std::span<const BaseNodeId> BaseGraph::nodes_in_column(std::uint32_t c) const {
  return column_nodes_.at(c);
}

std::string BaseGraph::label(BaseNodeId v) const {
  std::string s = "v" + std::to_string(columns_.at(v));
  if (is_replica_.at(v)) s += "'";
  return s;
}

std::vector<std::pair<BaseNodeId, BaseNodeId>> BaseGraph::edges() const {
  std::vector<std::pair<BaseNodeId, BaseNodeId>> out;
  for (BaseNodeId a = 0; a < node_count(); ++a) {
    for (BaseNodeId b : adjacency_[a]) {
      if (a < b) out.emplace_back(a, b);
    }
  }
  return out;
}

}  // namespace gtrix
