#include "graph/grid.hpp"

#include "support/check.hpp"

namespace gtrix {

Grid::Grid(BaseGraph base, std::uint32_t layers) : base_(std::move(base)), layers_(layers) {
  GTRIX_CHECK_MSG(layers >= 1, "grid needs at least one layer");
  const std::uint32_t bn = base_.node_count();
  // The node-id space is uint32 with one sentinel reserved (the line-mode
  // clock source gets id node_count). Check the 64-bit product BEFORE any
  // per-node allocation, so an overflowing mega-grid shape fails with the
  // offending dimensions instead of truncating into a small wrong grid.
  (void)checked_u32_mul(layers, bn,
                        "grid node count (" + std::to_string(layers) + " layers x " +
                            std::to_string(bn) + " base nodes)");
  in_template_.resize(bn);
  for (BaseNodeId v = 0; v < bn; ++v) {
    auto& tmpl = in_template_[v];
    tmpl.push_back(v);  // own copy first
    for (BaseNodeId w : base_.neighbors(v)) tmpl.push_back(w);
  }
  preds_.resize(node_count());
  succs_.resize(node_count());
  for (std::uint32_t l = 0; l < layers_; ++l) {
    for (BaseNodeId v = 0; v < bn; ++v) {
      const GridNodeId me = id(v, l);
      if (l >= 1) {
        for (BaseNodeId w : in_template_[v]) preds_[me].push_back(id(w, l - 1));
      }
      if (l + 1 < layers_) {
        for (BaseNodeId w : in_template_[v]) succs_[me].push_back(id(w, l + 1));
      }
    }
  }
}

GridNodeId Grid::id(BaseNodeId v, std::uint32_t layer) const {
  GTRIX_CHECK(v < base_.node_count() && layer < layers_);
  return layer * base_.node_count() + v;
}

std::span<const GridNodeId> Grid::predecessors(GridNodeId id) const {
  return preds_.at(id);
}

std::span<const GridNodeId> Grid::successors(GridNodeId id) const {
  return succs_.at(id);
}

std::string Grid::label(GridNodeId id) const {
  return "(" + base_.label(base_of(id)) + ", " + std::to_string(layer_of(id)) + ")";
}

std::uint64_t Grid::edge_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : succs_) total += s.size();
  return total;
}

}  // namespace gtrix
