#include "registry/registry.hpp"

namespace gtrix {

const char* param_type_name(ParamType t) noexcept {
  switch (t) {
    case ParamType::kInt: return "int";
    case ParamType::kDouble: return "double";
    case ParamType::kBool: return "bool";
    case ParamType::kString: return "string";
  }
  return "?";
}

namespace registry_detail {

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

std::string param_names(const std::vector<ParamInfo>& schema) {
  if (schema.empty()) return "takes no parameters";
  std::string out = "valid parameters: ";
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema[i].name;
  }
  return out;
}

bool type_matches(ParamType type, const Json& value) {
  switch (type) {
    case ParamType::kInt: return value.is_int();
    case ParamType::kDouble: return value.is_number();
    case ParamType::kBool: return value.is_bool();
    case ParamType::kString: return value.is_string();
  }
  return false;
}

}  // namespace

const ParamInfo* find_param(const std::vector<ParamInfo>& schema, std::string_view name) {
  for (const ParamInfo& info : schema) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

Json checked_param(const ParamInfo& info, const Json& value, const std::string& dimension,
                   const std::string& kind) {
  if (!type_matches(info.type, value)) {
    throw JsonError("parameter '" + info.name + "' of " + dimension + " '" + kind +
                    "': expected " + param_type_name(info.type) + ", got " + value.type_name());
  }
  // Normalize numbers to the declared type so the canonical form -- and the
  // JSONL bytes derived from it -- do not depend on how a value was spelled.
  switch (info.type) {
    case ParamType::kInt: return Json(value.as_int());
    case ParamType::kDouble: return Json(value.as_double());
    case ParamType::kBool:
    case ParamType::kString: return value;
  }
  return value;
}

Json canonical_params(const std::vector<ParamInfo>& schema, const Json& given,
                      const std::string& dimension, const std::string& kind) {
  for (const auto& [key, value] : given.as_object()) {
    (void)value;
    if (find_param(schema, key) == nullptr) unknown_param(schema, dimension, kind, key);
  }
  Json out = Json::object();
  for (const ParamInfo& info : schema) {
    const Json* value = given.find(info.name);
    out.set(info.name,
            value == nullptr ? info.default_value : checked_param(info, *value, dimension, kind));
  }
  return out;
}

void unknown_kind(const std::string& dimension, std::string_view kind,
                  const std::vector<std::string>& valid) {
  throw JsonError("unknown " + dimension + " '" + std::string(kind) +
                  "' (valid: " + join(valid) + ")");
}

void duplicate_kind(const std::string& dimension, const std::string& kind) {
  throw JsonError("duplicate " + dimension + " registration '" + kind + "'");
}

void unknown_param(const std::vector<ParamInfo>& schema, const std::string& dimension,
                   const std::string& kind, std::string_view name) {
  throw JsonError("unknown parameter '" + std::string(name) + "' for " + dimension + " '" +
                  kind + "' (" + param_names(schema) + ")");
}

void check_schema(const std::vector<ParamInfo>& schema, const std::string& dimension,
                  const std::string& kind) {
  for (std::size_t i = 0; i < schema.size(); ++i) {
    for (std::size_t j = i + 1; j < schema.size(); ++j) {
      if (schema[i].name == schema[j].name) {
        throw JsonError("duplicate parameter '" + schema[i].name + "' in schema of " +
                        dimension + " '" + kind + "'");
      }
    }
    if (!type_matches(schema[i].type, schema[i].default_value)) {
      throw JsonError("default for parameter '" + schema[i].name + "' of " + dimension + " '" +
                      kind + "' does not match its declared type " +
                      param_type_name(schema[i].type));
    }
  }
}

}  // namespace registry_detail
}  // namespace gtrix
