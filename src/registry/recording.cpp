#include "registry/recording.hpp"

#include <memory>

namespace gtrix {

namespace {

class FixedRecording final : public RecordingProvider {
 public:
  explicit FixedRecording(RecordingOptions options) : options_(options) {}
  RecordingOptions options() const override { return options_; }

 private:
  RecordingOptions options_;
};

std::int64_t checked_window(const ComponentSpec& spec) {
  const std::int64_t window = spec.params.at("window").as_int();
  if (window < 2 || window > 4096) {
    throw JsonError("recording mode '" + spec.kind + "': window must be in [2, 4096], got " +
                    std::to_string(window));
  }
  return window;
}

void register_builtins(ComponentRegistry<RecordingProvider>& reg) {
  reg.add("full", "complete trace in RAM (post-hoc metrics, realignment); O(nodes x waves)",
          {}, [](const ComponentSpec&) {
            return std::make_shared<const FixedRecording>(RecordingOptions{});
          });
  reg.add("windowed",
          "last `window` waves of records per node; corrupt cells pin a +/-window "
          "box around the corruption wave for realignment",
          {{"window", ParamType::kInt, Json(16),
            "waves retained per node (also the streaming wave-ring capacity and "
            "the corruption look-back half-width)"}},
          [](const ComponentSpec& spec) {
            RecordingOptions options;
            options.mode = RecordingMode::kWindowed;
            options.window = checked_window(spec);
            return std::make_shared<const FixedRecording>(options);
          });
  reg.add("streaming",
          "no trace: online skew accumulators only; O(nodes) memory, sketch "
          "quantiles; corrupt cells retain a windowed look-back for realignment",
          {{"window", ParamType::kInt, Json(8),
            "streaming wave-ring capacity and corruption look-back half-width "
            "(size it to cover the recovery tail on corrupt cells)"}},
          [](const ComponentSpec& spec) {
            RecordingOptions options;
            options.mode = RecordingMode::kStreaming;
            options.window = checked_window(spec);
            return std::make_shared<const FixedRecording>(options);
          });
}

}  // namespace

ComponentRegistry<RecordingProvider>& recording_registry() {
  static ComponentRegistry<RecordingProvider>* registry = [] {
    auto* r = new ComponentRegistry<RecordingProvider>("recording mode");
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

ComponentSpec recording_spec_default() {
  return recording_registry().canonicalize(ComponentSpec::of("full"));
}

RecordingOptions resolve_recording(const ComponentSpec& spec) {
  if (spec.empty()) return RecordingOptions{};
  return recording_registry().create(spec)->options();
}

}  // namespace gtrix
