// DelayProvider: pluggable per-edge delay assignment in [d-u, d].
//
// Mirrors the historical DelayModelKind strategies as registered kinds;
// column-split's split column is a component parameter instead of a
// config-level field.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/delay_model.hpp"
#include "registry/registry.hpp"
#include "support/rng.hpp"

namespace gtrix {

/// One edge, described by its endpoints, plus the model bounds.
struct DelayContext {
  std::uint32_t from_column = 0;
  std::uint32_t to_column = 0;
  std::uint32_t from_layer = 0;
  std::uint32_t to_layer = 0;
  double d = 1000.0;  ///< maximum end-to-end delay
  double u = 10.0;    ///< delay uncertainty
};

class DelayProvider {
 public:
  virtual ~DelayProvider() = default;

  /// Delay for one edge; must lie in [d-u, d]. `rng` is consumed only by
  /// randomized providers (edge order is deterministic, so draws are too).
  virtual double sample(const DelayContext& ctx, Rng& rng) const = 0;
};

/// Global registry; built-ins register on first access.
ComponentRegistry<DelayProvider>& delay_registry();

// --- legacy enum adapters ---------------------------------------------------
ComponentSpec delay_spec_from_legacy(DelayModelKind kind, std::uint32_t split_column);
bool delay_spec_to_legacy(const ComponentSpec& canonical, DelayModelKind& kind,
                          std::uint32_t& split_column);

std::string_view to_string(DelayModelKind v);
DelayModelKind delay_model_from_string(std::string_view s);

}  // namespace gtrix
