// RecordingProvider: the fifth component dimension -- how much of the
// execution trace the experiment retains (metrics/recorder.hpp).
//
// Unlike the other four dimensions this selects measurement infrastructure,
// not system behaviour: every mode produces bit-identical skew extrema (the
// streaming differential suite proves it), so scenarios switch modes to
// trade trace detail for memory, never to change results. It still lives in
// the registry machinery so scenario JSON gets the same schema-driven
// "recording": "streaming" / {"kind": "windowed", "window": 16} syntax,
// dotted sweep axes ("recording.window"), and --list/--describe
// introspection as everything else.
#pragma once

#include <string_view>

#include "metrics/recorder.hpp"
#include "registry/registry.hpp"

namespace gtrix {

class RecordingProvider {
 public:
  virtual ~RecordingProvider() = default;
  virtual RecordingOptions options() const = 0;
};

/// Global registry; built-ins (full, windowed, streaming) register on first
/// access.
ComponentRegistry<RecordingProvider>& recording_registry();

/// Resolves a config's recording spec: an empty spec means full recording
/// (the historical behaviour and the serialization default).
RecordingOptions resolve_recording(const ComponentSpec& spec);

/// The canonical spec an empty selection resolves to ("full").
ComponentSpec recording_spec_default();

}  // namespace gtrix
