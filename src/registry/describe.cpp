#include "registry/describe.hpp"

#include "registry/algorithm.hpp"
#include "registry/clock_model.hpp"
#include "registry/delay.hpp"
#include "registry/recording.hpp"
#include "registry/topology.hpp"

namespace gtrix {

namespace {

template <typename Provider>
void collect(const ComponentRegistry<Provider>& registry, const std::string& config_key,
             std::vector<ComponentDesc>& out) {
  for (const auto& entry : registry.entries()) {
    out.push_back(ComponentDesc{config_key, registry.dimension(), entry.kind, entry.summary,
                                entry.params});
  }
}

}  // namespace

std::vector<ComponentDesc> all_component_descs() {
  std::vector<ComponentDesc> out;
  collect(topology_registry(), "base_graph", out);
  collect(clock_model_registry(), "clock_model", out);
  collect(delay_registry(), "delay_model", out);
  collect(algorithm_registry(), "algorithm", out);
  collect(recording_registry(), "recording", out);
  return out;
}

std::string render_param_schema(const std::vector<ParamInfo>& params) {
  std::string out;
  for (const ParamInfo& info : params) {
    if (!out.empty()) out += ", ";
    out += info.name;
    out += " (";
    out += param_type_name(info.type);
    out += ", default ";
    out += info.default_value.dump();
    out += ")";
  }
  return out;
}

}  // namespace gtrix
