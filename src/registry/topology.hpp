// TopologyProvider: pluggable base-graph construction.
//
// Built-ins: line-replicated (paper default, Fig. 2), cycle (with the
// "Bigger Picture" item-3 reach parameter), path, and torus (2D wraparound
// grid -- scenario diversity beyond the paper's line, min degree 4).
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/base_graph.hpp"
#include "registry/registry.hpp"

namespace gtrix {

/// Config-level inputs a topology may read. `columns` is the shared size
/// knob ("columns" in scenario JSON): the column count of the built graph,
/// which sweeps, layer-0 wiring and wavefront metrics all key off.
struct TopologyContext {
  std::uint32_t columns = 2;
};

class TopologyProvider {
 public:
  virtual ~TopologyProvider() = default;

  /// Builds the base graph. Must be deterministic in (params, ctx).
  virtual BaseGraph build(const TopologyContext& ctx) const = 0;
};

/// Global registry; built-ins register on first access.
ComponentRegistry<TopologyProvider>& topology_registry();

// --- legacy enum adapters ---------------------------------------------------
// BaseGraphKind (+ the ExperimentConfig cycle_reach field) remains as a thin
// source-compatibility layer; these map between it and component specs.

/// The spec a legacy enum value stands for (reach folded into the params).
ComponentSpec topology_spec_from_legacy(BaseGraphKind kind, std::uint32_t cycle_reach);

/// Fills the legacy fields when `canonical` names an enum-representable
/// kind; returns false otherwise (e.g. torus).
bool topology_spec_to_legacy(const ComponentSpec& canonical, BaseGraphKind& kind,
                             std::uint32_t& cycle_reach);

std::string_view to_string(BaseGraphKind v);
BaseGraphKind base_graph_from_string(std::string_view s);

}  // namespace gtrix
