#include "registry/delay.hpp"

namespace gtrix {

namespace {

class UniformRandomDelay final : public DelayProvider {
 public:
  double sample(const DelayContext& ctx, Rng& rng) const override {
    return rng.uniform(ctx.d - ctx.u, ctx.d);
  }
};

class AllMaxDelay final : public DelayProvider {
 public:
  double sample(const DelayContext& ctx, Rng&) const override { return ctx.d; }
};

class AllMinDelay final : public DelayProvider {
 public:
  double sample(const DelayContext& ctx, Rng&) const override { return ctx.d - ctx.u; }
};

class ColumnSplitDelay final : public DelayProvider {
 public:
  explicit ColumnSplitDelay(std::uint32_t split_column) : split_column_(split_column) {}
  double sample(const DelayContext& ctx, Rng&) const override {
    return ctx.from_column < split_column_ ? ctx.d - ctx.u : ctx.d;
  }

 private:
  std::uint32_t split_column_;
};

class AlternatingDelay final : public DelayProvider {
 public:
  double sample(const DelayContext& ctx, Rng&) const override {
    return (ctx.to_column % 2 == 0) ? ctx.d : ctx.d - ctx.u;
  }
};

class OwnSlowCrossFastDelay final : public DelayProvider {
 public:
  double sample(const DelayContext& ctx, Rng&) const override {
    return ctx.from_column == ctx.to_column ? ctx.d : ctx.d - ctx.u;
  }
};

void register_builtins(ComponentRegistry<DelayProvider>& reg) {
  reg.add("uniform-random", "i.i.d. uniform in [d-u, d] (default realistic model)", {},
          [](const ComponentSpec&) { return std::make_shared<const UniformRandomDelay>(); });
  reg.add("all-max", "every edge at d", {},
          [](const ComponentSpec&) { return std::make_shared<const AllMaxDelay>(); });
  reg.add("all-min", "every edge at d-u", {},
          [](const ComponentSpec&) { return std::make_shared<const AllMinDelay>(); });
  reg.add("column-split",
          "edges leaving columns < split_column get d-u, others d (Fig. 1 adversary)",
          {{"split_column", ParamType::kInt, Json(0),
            "first column whose outgoing edges run at the maximum delay"}},
          [](const ComponentSpec& spec) {
            const std::int64_t split = spec.params.at("split_column").as_int();
            if (split < 0) throw JsonError("column-split: split_column must be >= 0");
            return std::make_shared<const ColumnSplitDelay>(static_cast<std::uint32_t>(split));
          });
  reg.add("alternating", "d / d-u alternating by destination-column parity", {},
          [](const ComponentSpec&) { return std::make_shared<const AlternatingDelay>(); });
  reg.add("own-slow-cross-fast",
          "own-copy edges d, cross edges d-u: consistent overshoot (Figure 5 scenario)", {},
          [](const ComponentSpec&) { return std::make_shared<const OwnSlowCrossFastDelay>(); });
}

}  // namespace

ComponentRegistry<DelayProvider>& delay_registry() {
  static ComponentRegistry<DelayProvider>* registry = [] {
    auto* reg = new ComponentRegistry<DelayProvider>("delay model");
    register_builtins(*reg);
    return reg;
  }();
  return *registry;
}

ComponentSpec delay_spec_from_legacy(DelayModelKind kind, std::uint32_t split_column) {
  switch (kind) {
    case DelayModelKind::kUniformRandom: return ComponentSpec::of("uniform-random");
    case DelayModelKind::kAllMax: return ComponentSpec::of("all-max");
    case DelayModelKind::kAllMin: return ComponentSpec::of("all-min");
    case DelayModelKind::kColumnSplit: {
      ComponentSpec spec = ComponentSpec::of("column-split");
      spec.params.set("split_column", static_cast<std::int64_t>(split_column));
      return spec;
    }
    case DelayModelKind::kAlternating: return ComponentSpec::of("alternating");
    case DelayModelKind::kOwnSlowCrossFast: return ComponentSpec::of("own-slow-cross-fast");
  }
  return ComponentSpec::of("uniform-random");
}

bool delay_spec_to_legacy(const ComponentSpec& canonical, DelayModelKind& kind,
                          std::uint32_t& split_column) {
  if (canonical.kind == "uniform-random") kind = DelayModelKind::kUniformRandom;
  else if (canonical.kind == "all-max") kind = DelayModelKind::kAllMax;
  else if (canonical.kind == "all-min") kind = DelayModelKind::kAllMin;
  else if (canonical.kind == "column-split") {
    kind = DelayModelKind::kColumnSplit;
    split_column = static_cast<std::uint32_t>(canonical.params.at("split_column").as_int());
  } else if (canonical.kind == "alternating") kind = DelayModelKind::kAlternating;
  else if (canonical.kind == "own-slow-cross-fast") kind = DelayModelKind::kOwnSlowCrossFast;
  else return false;
  return true;
}

std::string_view to_string(DelayModelKind v) {
  switch (v) {
    case DelayModelKind::kUniformRandom: return "uniform-random";
    case DelayModelKind::kAllMax: return "all-max";
    case DelayModelKind::kAllMin: return "all-min";
    case DelayModelKind::kColumnSplit: return "column-split";
    case DelayModelKind::kAlternating: return "alternating";
    case DelayModelKind::kOwnSlowCrossFast: return "own-slow-cross-fast";
  }
  return "?";
}

DelayModelKind delay_model_from_string(std::string_view s) {
  DelayModelKind kind = DelayModelKind::kUniformRandom;
  std::uint32_t split = 0;
  const ComponentSpec spec = delay_registry().canonicalize(ComponentSpec::of(std::string(s)));
  if (!delay_spec_to_legacy(spec, kind, split)) {
    throw JsonError("delay model '" + std::string(s) + "' has no legacy enum value");
  }
  return kind;
}

}  // namespace gtrix
