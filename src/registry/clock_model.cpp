#include "registry/clock_model.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace gtrix {

namespace {

/// The four static models share one shape: pick a rate, then an initial
/// offset uniform in [0, Lambda). Draw order (rate first, offset second)
/// matches the historical World::make_clock, so legacy configs reproduce
/// bit-identical runs.
class StaticRateClock final : public ClockModelProvider {
 public:
  enum class Rate { kRandom, kFast, kSlow, kAlternating };
  explicit StaticRateClock(Rate rate) : rate_(rate) {}

  HardwareClock make(const ClockContext& ctx, Rng& rng) const override {
    const double theta = ctx.params.theta;
    double rate = 1.0;
    switch (rate_) {
      case Rate::kRandom: rate = rng.uniform(1.0, theta); break;
      case Rate::kFast: rate = theta; break;
      case Rate::kSlow: rate = 1.0; break;
      case Rate::kAlternating: rate = ctx.column % 2 == 0 ? 1.0 : theta; break;
    }
    const double offset = rng.uniform(0.0, ctx.params.lambda);
    return HardwareClock(rate, offset);
  }

 private:
  Rate rate_;
};

/// Bounded-drift random walk: the rate starts uniform in [1, theta] and
/// every `interval_waves * Lambda` of real time takes a uniform step of up
/// to `step * (theta - 1)`, clamped to [1, theta]. Models oscillators whose
/// speed wanders with temperature/voltage instead of staying fixed -- the
/// time-varying case the static models cannot express (cf. Corollary 1.5's
/// slowly-varying-rate assumption).
class DriftWalkClock final : public ClockModelProvider {
 public:
  DriftWalkClock(double interval_waves, double step)
      : interval_waves_(interval_waves), step_(step) {}

  HardwareClock make(const ClockContext& ctx, Rng& rng) const override {
    const double theta = ctx.params.theta;
    const double band = theta - 1.0;
    const double dt = interval_waves_ * ctx.params.lambda;
    double rate = rng.uniform(1.0, theta);
    std::vector<std::pair<SimTime, double>> schedule;
    schedule.emplace_back(0.0, rate);
    for (double t = dt; t < ctx.horizon; t += dt) {
      rate = std::clamp(rate + rng.uniform(-1.0, 1.0) * step_ * band, 1.0, theta);
      schedule.emplace_back(t, rate);
    }
    const double offset = rng.uniform(0.0, ctx.params.lambda);
    return HardwareClock(std::move(schedule), offset);
  }

 private:
  double interval_waves_;
  double step_;
};

void register_builtins(ComponentRegistry<ClockModelProvider>& reg) {
  reg.add("random-static", "per-node rate uniform in [1, theta] (paper default)", {},
          [](const ComponentSpec&) {
            return std::make_shared<const StaticRateClock>(StaticRateClock::Rate::kRandom);
          });
  reg.add("all-fast", "every clock at rate theta", {}, [](const ComponentSpec&) {
    return std::make_shared<const StaticRateClock>(StaticRateClock::Rate::kFast);
  });
  reg.add("all-slow", "every clock at rate 1", {}, [](const ComponentSpec&) {
    return std::make_shared<const StaticRateClock>(StaticRateClock::Rate::kSlow);
  });
  reg.add("alternating", "rate alternates 1 / theta by column (drift stress)", {},
          [](const ComponentSpec&) {
            return std::make_shared<const StaticRateClock>(StaticRateClock::Rate::kAlternating);
          });
  reg.add("drift-walk",
          "bounded random-walk rate in [1, theta]: time-varying drift the static models "
          "cannot express",
          {{"interval_waves", ParamType::kDouble, Json(1.0),
            "real time between rate steps, in units of Lambda"},
           {"step", ParamType::kDouble, Json(0.5),
            "max rate change per step as a fraction of the full [1, theta] band"}},
          [](const ComponentSpec& spec) {
            const double interval = spec.params.at("interval_waves").as_double();
            const double step = spec.params.at("step").as_double();
            // Lower bound keeps the per-clock schedule length sane: the
            // segment count is ~(pulses + layers) / interval_waves per node.
            if (interval < 0.01) {
              throw JsonError(
                  "drift-walk: interval_waves must be >= 0.01 (rate steps finer than "
                  "Lambda/100 explode the schedule)");
            }
            if (step < 0.0 || step > 1.0) {
              throw JsonError("drift-walk: step must be in [0, 1]");
            }
            return std::make_shared<const DriftWalkClock>(interval, step);
          });
}

}  // namespace

ComponentRegistry<ClockModelProvider>& clock_model_registry() {
  static ComponentRegistry<ClockModelProvider>* registry = [] {
    auto* reg = new ComponentRegistry<ClockModelProvider>("clock model");
    register_builtins(*reg);
    return reg;
  }();
  return *registry;
}

ComponentSpec clock_spec_from_legacy(ClockModelKind kind) {
  switch (kind) {
    case ClockModelKind::kRandomStatic: return ComponentSpec::of("random-static");
    case ClockModelKind::kAllFast: return ComponentSpec::of("all-fast");
    case ClockModelKind::kAllSlow: return ComponentSpec::of("all-slow");
    case ClockModelKind::kAlternating: return ComponentSpec::of("alternating");
  }
  return ComponentSpec::of("random-static");
}

bool clock_spec_to_legacy(const ComponentSpec& canonical, ClockModelKind& kind) {
  if (canonical.kind == "random-static") kind = ClockModelKind::kRandomStatic;
  else if (canonical.kind == "all-fast") kind = ClockModelKind::kAllFast;
  else if (canonical.kind == "all-slow") kind = ClockModelKind::kAllSlow;
  else if (canonical.kind == "alternating") kind = ClockModelKind::kAlternating;
  else return false;
  return true;
}

std::string_view to_string(ClockModelKind v) {
  switch (v) {
    case ClockModelKind::kRandomStatic: return "random-static";
    case ClockModelKind::kAllFast: return "all-fast";
    case ClockModelKind::kAllSlow: return "all-slow";
    case ClockModelKind::kAlternating: return "alternating";
  }
  return "?";
}

ClockModelKind clock_model_from_string(std::string_view s) {
  ClockModelKind kind = ClockModelKind::kRandomStatic;
  const ComponentSpec spec =
      clock_model_registry().canonicalize(ComponentSpec::of(std::string(s)));
  if (!clock_spec_to_legacy(spec, kind)) {
    throw JsonError("clock model '" + std::string(s) + "' has no legacy enum value");
  }
  return kind;
}

}  // namespace gtrix
