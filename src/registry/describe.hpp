// Uniform enumeration of all registered components across the five
// dimensions, for `gtrix_campaign --list` / `--describe` and for tests that
// assert the self-describing property.
#pragma once

#include <string>
#include <vector>

#include "registry/component.hpp"

namespace gtrix {

struct ComponentDesc {
  std::string config_key;  ///< scenario JSON key ("base_graph", "clock_model", ...)
  std::string dimension;   ///< human name ("base graph", "clock model", ...)
  std::string kind;
  std::string summary;
  std::vector<ParamInfo> params;
};

/// Every registered component, grouped by dimension in a fixed order
/// (topology, clock, delay, algorithm, recording), kinds in registration
/// order.
std::vector<ComponentDesc> all_component_descs();

/// Compact one-line rendering of a schema: "reach (int, default 1)" --
/// empty string for parameterless kinds.
std::string render_param_schema(const std::vector<ParamInfo>& params);

}  // namespace gtrix
