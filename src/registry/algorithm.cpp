#include "registry/algorithm.hpp"

#include <utility>

#include "baseline/lw_grid.hpp"
#include "baseline/trix_node.hpp"
#include "ckpt/codec.hpp"
#include "core/gradient_node.hpp"
#include "core/node_state.hpp"
#include "support/check.hpp"

namespace gtrix {

void NodeModel::set_send_override(SendOverride) {
  GTRIX_CHECK_MSG(false, "this algorithm does not support send-behaviour faults");
}

void NodeModel::corrupt_state(Rng&) {
  GTRIX_CHECK_MSG(false, "this algorithm does not support state corruption");
}

void NodeModel::checkpoint_save(CkptWriter&) const {
  throw CkptError("this algorithm does not support checkpointing");
}

void NodeModel::checkpoint_restore(CkptCursor&) {
  throw CkptError("this algorithm does not support checkpointing");
}

namespace {

class GradientNodeModel final : public NodeModel {
 public:
  GradientNodeModel(NodeContext ctx, bool simplified) {
    GradientNodeConfig config;
    config.params = ctx.params;
    config.simplified = simplified;
    config.self_stabilizing = ctx.self_stabilizing;
    config.jump_condition = ctx.jump_condition;
    config.trim = ctx.trim;
    config.skew_bound_hint = ctx.params.thm11_bound(ctx.diameter);
    config.broadcast_offset = ctx.broadcast_offset;
    node_ = std::make_unique<GradientTrixNode>(
        ctx.sim, ctx.net, ctx.self, std::move(ctx.clock), std::move(ctx.preds), config,
        ctx.recorder, ctx.arena != nullptr ? &ctx.arena->gradient : nullptr);
  }

  PulseSink& sink() override { return *node_; }
  void set_send_override(SendOverride fn) override { node_->set_send_override(std::move(fn)); }
  void corrupt_state(Rng& rng) override { node_->corrupt_state(rng); }

  void add_counters(ExperimentCounters& total) const override {
    const auto& c = node_->counters();
    total.iterations += c.iterations;
    total.late_broadcasts += c.late_broadcasts;
    total.guard_aborts += c.guard_aborts;
    total.watchdog_resets += c.watchdog_resets;
    total.timeout_branches += c.timeout_branches;
    total.duplicate_drops += c.duplicate_drops;
  }

  GradientTrixNode* gradient() noexcept override { return node_.get(); }

  TimerTarget* timer_target() noexcept override { return node_.get(); }
  void checkpoint_save(CkptWriter& w) const override { node_->checkpoint_save(w); }
  void checkpoint_restore(CkptCursor& r) override { node_->checkpoint_restore(r); }

 private:
  std::unique_ptr<GradientTrixNode> node_;
};

class GradientProvider final : public AlgorithmProvider {
 public:
  explicit GradientProvider(bool simplified) : simplified_(simplified) {}

  AlgorithmCaps caps() const override {
    return AlgorithmCaps{.send_fault_overrides = true,
                         .state_corruption = true,
                         .tolerates_silent_preds = true};
  }

  std::unique_ptr<NodeModel> make_node(NodeContext ctx) const override {
    return std::make_unique<GradientNodeModel>(std::move(ctx), simplified_);
  }

 private:
  bool simplified_;
};

class TrixNaiveNodeModel final : public NodeModel {
 public:
  explicit TrixNaiveNodeModel(NodeContext ctx)
      : node_(std::make_unique<TrixNaiveNode>(
            ctx.sim, ctx.net, ctx.self, std::move(ctx.clock), std::move(ctx.preds),
            ctx.params, ctx.recorder, ctx.arena != nullptr ? &ctx.arena->trix : nullptr)) {}

  PulseSink& sink() override { return *node_; }

  TimerTarget* timer_target() noexcept override { return node_.get(); }
  void checkpoint_save(CkptWriter& w) const override { node_->checkpoint_save(w); }
  void checkpoint_restore(CkptCursor& r) override { node_->checkpoint_restore(r); }

 private:
  std::unique_ptr<TrixNaiveNode> node_;
};

class TrixNaiveProvider final : public AlgorithmProvider {
 public:
  AlgorithmCaps caps() const override {
    // Waits only for the *second* pulse copy, so one silent predecessor per
    // node is survivable; send-behaviour faults and corruption are not.
    return AlgorithmCaps{.send_fault_overrides = false,
                         .state_corruption = false,
                         .tolerates_silent_preds = true};
  }

  std::unique_ptr<NodeModel> make_node(NodeContext ctx) const override {
    return std::make_unique<TrixNaiveNodeModel>(std::move(ctx));
  }
};

class LynchWelchNodeModel final : public NodeModel {
 public:
  explicit LynchWelchNodeModel(NodeContext ctx)
      : node_(std::make_unique<LynchWelchGridNode>(
            ctx.sim, ctx.net, ctx.self, std::move(ctx.clock), std::move(ctx.preds),
            ctx.params, ctx.trim, ctx.recorder,
            ctx.arena != nullptr ? &ctx.arena->lw : nullptr)) {}

  PulseSink& sink() override { return *node_; }

  TimerTarget* timer_target() noexcept override { return node_.get(); }
  void checkpoint_save(CkptWriter& w) const override { node_->checkpoint_save(w); }
  void checkpoint_restore(CkptCursor& r) override { node_->checkpoint_restore(r); }

 private:
  std::unique_ptr<LynchWelchGridNode> node_;
};

class LynchWelchProvider final : public AlgorithmProvider {
 public:
  AlgorithmCaps caps() const override {
    // Needs every predecessor's pulse before it corrects, so any silent
    // node upstream stalls it -- the config layer rejects fault plans.
    return AlgorithmCaps{};
  }

  std::unique_ptr<NodeModel> make_node(NodeContext ctx) const override {
    return std::make_unique<LynchWelchNodeModel>(std::move(ctx));
  }
};

void register_builtins(ComponentRegistry<AlgorithmProvider>& reg) {
  reg.add("gradient-full", "Algorithm 3 (optionally with Algorithm 4 guards)", {},
          [](const ComponentSpec&) { return std::make_shared<const GradientProvider>(false); });
  reg.add("gradient-simplified", "Algorithm 1 (fault-free settings only)", {},
          [](const ComponentSpec&) { return std::make_shared<const GradientProvider>(true); });
  reg.add("trix-naive", "baseline [LW20]: forward on the second pulse copy", {},
          [](const ComponentSpec&) { return std::make_shared<const TrixNaiveProvider>(); });
  // Like the gradient kinds, lynch-welch reads the config-level `trim`
  // field (clamped per node so the trimmed window keeps its extremes).
  reg.add("lynch-welch",
          "trimmed-midpoint approximate agreement [WL88] adapted to the grid", {},
          [](const ComponentSpec&) { return std::make_shared<const LynchWelchProvider>(); });
}

}  // namespace

ComponentRegistry<AlgorithmProvider>& algorithm_registry() {
  static ComponentRegistry<AlgorithmProvider>* registry = [] {
    auto* reg = new ComponentRegistry<AlgorithmProvider>("algorithm");
    register_builtins(*reg);
    return reg;
  }();
  return *registry;
}

ComponentSpec algorithm_spec_from_legacy(Algorithm kind) {
  switch (kind) {
    case Algorithm::kGradientFull: return ComponentSpec::of("gradient-full");
    case Algorithm::kGradientSimplified: return ComponentSpec::of("gradient-simplified");
    case Algorithm::kTrixNaive: return ComponentSpec::of("trix-naive");
  }
  return ComponentSpec::of("gradient-full");
}

bool algorithm_spec_to_legacy(const ComponentSpec& canonical, Algorithm& kind) {
  if (canonical.kind == "gradient-full") kind = Algorithm::kGradientFull;
  else if (canonical.kind == "gradient-simplified") kind = Algorithm::kGradientSimplified;
  else if (canonical.kind == "trix-naive") kind = Algorithm::kTrixNaive;
  else return false;
  return true;
}

std::string_view to_string(Algorithm v) {
  switch (v) {
    case Algorithm::kGradientFull: return "gradient-full";
    case Algorithm::kGradientSimplified: return "gradient-simplified";
    case Algorithm::kTrixNaive: return "trix-naive";
  }
  return "?";
}

Algorithm algorithm_from_string(std::string_view s) {
  Algorithm kind = Algorithm::kGradientFull;
  const ComponentSpec spec = algorithm_registry().canonicalize(ComponentSpec::of(std::string(s)));
  if (!algorithm_spec_to_legacy(spec, kind)) {
    throw JsonError("algorithm '" + std::string(s) + "' has no legacy enum value");
  }
  return kind;
}

}  // namespace gtrix
