#include "registry/topology.hpp"

namespace gtrix {

namespace {

class LineReplicatedTopology final : public TopologyProvider {
 public:
  BaseGraph build(const TopologyContext& ctx) const override {
    return BaseGraph::line_replicated(ctx.columns);
  }
};

class CycleTopology final : public TopologyProvider {
 public:
  explicit CycleTopology(std::uint32_t reach) : reach_(reach) {}
  BaseGraph build(const TopologyContext& ctx) const override {
    return BaseGraph::cycle_wide(ctx.columns, reach_);
  }

 private:
  std::uint32_t reach_;
};

class PathTopology final : public TopologyProvider {
 public:
  BaseGraph build(const TopologyContext& ctx) const override {
    return BaseGraph::path(ctx.columns);
  }
};

class TorusTopology final : public TopologyProvider {
 public:
  explicit TorusTopology(std::uint32_t rows) : rows_(rows) {}
  BaseGraph build(const TopologyContext& ctx) const override {
    return BaseGraph::torus(rows_, ctx.columns);
  }

 private:
  std::uint32_t rows_;
};

void register_builtins(ComponentRegistry<TopologyProvider>& reg) {
  reg.add("line-replicated",
          "line with replicated, connected endpoints (paper default, Fig. 2)", {},
          [](const ComponentSpec&) { return std::make_shared<const LineReplicatedTopology>(); });
  reg.add("cycle", "cycle over `columns` nodes; `reach` widens adjacency to 2*reach",
          {{"reach", ParamType::kInt, Json(1),
            "hop distance considered adjacent (degree 2*reach); reach f tolerates f local "
            "faults with the trimmed extension"}},
          [](const ComponentSpec& spec) {
            const std::int64_t reach = spec.params.at("reach").as_int();
            if (reach < 1) throw JsonError("cycle: reach must be >= 1");
            return std::make_shared<const CycleTopology>(static_cast<std::uint32_t>(reach));
          });
  reg.add("path", "bare path (min degree 1; layer-0-style tests only)", {},
          [](const ComponentSpec&) { return std::make_shared<const PathTopology>(); });
  reg.add("torus", "2D wraparound grid: `rows` rings of `columns` nodes (min degree 4)",
          {{"rows", ParamType::kInt, Json(3),
            "ring count in the second dimension; every column holds `rows` nodes"}},
          [](const ComponentSpec& spec) {
            const std::int64_t rows = spec.params.at("rows").as_int();
            if (rows < 3) throw JsonError("torus: rows must be >= 3 (wraparound)");
            return std::make_shared<const TorusTopology>(static_cast<std::uint32_t>(rows));
          });
}

}  // namespace

ComponentRegistry<TopologyProvider>& topology_registry() {
  static ComponentRegistry<TopologyProvider>* registry = [] {
    auto* reg = new ComponentRegistry<TopologyProvider>("base graph");
    register_builtins(*reg);
    return reg;
  }();
  return *registry;
}

ComponentSpec topology_spec_from_legacy(BaseGraphKind kind, std::uint32_t cycle_reach) {
  switch (kind) {
    case BaseGraphKind::kLineReplicated: return ComponentSpec::of("line-replicated");
    case BaseGraphKind::kCycle: {
      ComponentSpec spec = ComponentSpec::of("cycle");
      spec.params.set("reach", static_cast<std::int64_t>(cycle_reach));
      return spec;
    }
    case BaseGraphKind::kPath: return ComponentSpec::of("path");
  }
  return ComponentSpec::of("line-replicated");
}

bool topology_spec_to_legacy(const ComponentSpec& canonical, BaseGraphKind& kind,
                             std::uint32_t& cycle_reach) {
  if (canonical.kind == "line-replicated") {
    kind = BaseGraphKind::kLineReplicated;
    return true;
  }
  if (canonical.kind == "cycle") {
    kind = BaseGraphKind::kCycle;
    cycle_reach = static_cast<std::uint32_t>(canonical.params.at("reach").as_int());
    return true;
  }
  if (canonical.kind == "path") {
    kind = BaseGraphKind::kPath;
    return true;
  }
  return false;
}

std::string_view to_string(BaseGraphKind v) {
  switch (v) {
    case BaseGraphKind::kLineReplicated: return "line-replicated";
    case BaseGraphKind::kCycle: return "cycle";
    case BaseGraphKind::kPath: return "path";
  }
  return "?";
}

BaseGraphKind base_graph_from_string(std::string_view s) {
  BaseGraphKind kind = BaseGraphKind::kLineReplicated;
  std::uint32_t reach = 1;
  const ComponentSpec spec = topology_registry().canonicalize(ComponentSpec::of(std::string(s)));
  if (!topology_spec_to_legacy(spec, kind, reach)) {
    throw JsonError("base graph '" + std::string(s) + "' has no legacy enum value");
  }
  return kind;
}

}  // namespace gtrix
