// ClockModelProvider: pluggable per-node hardware-clock construction.
//
// Built-ins: random-static (paper default: per-node rate uniform in
// [1, theta]), all-fast, all-slow, alternating, and drift-walk (bounded
// random-walk rate schedule -- time-varying drift, which the static models
// cannot express; stresses the GCS gradient property under rate changes).
#pragma once

#include <cstdint>
#include <string_view>

#include "clock/hardware_clock.hpp"
#include "core/params.hpp"
#include "registry/registry.hpp"
#include "support/rng.hpp"

namespace gtrix {

/// Legacy closed enumeration of clock models, kept as a thin adapter for
/// ExperimentConfig source compatibility. New models (e.g. drift-walk)
/// exist only as registered ClockModelProvider kinds.
enum class ClockModelKind {
  kRandomStatic,  ///< per-node rate uniform in [1, theta]
  kAllFast,       ///< every clock at rate theta
  kAllSlow,       ///< every clock at rate 1
  kAlternating,   ///< rate alternates 1 / theta by column (drift stress)
};

/// Everything a clock model may read when building one node's clock.
struct ClockContext {
  std::uint32_t column = 0;
  std::uint32_t layer = 0;
  Params params;
  /// Real-time horizon the run will plausibly reach; rate schedules freeze
  /// at their last breakpoint beyond it.
  double horizon = 0.0;
};

class ClockModelProvider {
 public:
  virtual ~ClockModelProvider() = default;

  /// Builds one node's clock. Called once per node in deterministic grid
  /// order; implementations must draw from `rng` deterministically (the
  /// draw count may depend only on ctx and the provider's parameters).
  virtual HardwareClock make(const ClockContext& ctx, Rng& rng) const = 0;
};

/// Global registry; built-ins register on first access.
ComponentRegistry<ClockModelProvider>& clock_model_registry();

// --- legacy enum adapters ---------------------------------------------------
ComponentSpec clock_spec_from_legacy(ClockModelKind kind);
bool clock_spec_to_legacy(const ComponentSpec& canonical, ClockModelKind& kind);

std::string_view to_string(ClockModelKind v);
ClockModelKind clock_model_from_string(std::string_view s);

}  // namespace gtrix
