// Self-describing component registries: the experiment-assembly API.
//
// Each experiment dimension (topology, clock model, delay model, algorithm)
// owns one ComponentRegistry mapping kind names to a summary, a parameter
// schema and a factory. World resolves ComponentSpecs against these
// registries at build time; the scenario layer validates specs against the
// same schemas at parse time; the campaign CLI enumerates them for --list
// and --describe. Adding a component is therefore ONE registration call in
// ONE translation unit -- no World, spec.cpp or enum edits.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "registry/component.hpp"

namespace gtrix {

namespace registry_detail {

/// Validates `given` against `schema` and returns the canonical parameter
/// object: every declared key present, schema order, defaults filled,
/// numbers normalized to the declared type. Throws JsonError on unknown
/// keys and type mismatches.
Json canonical_params(const std::vector<ParamInfo>& schema, const Json& given,
                      const std::string& dimension, const std::string& kind);

/// Type-checks and normalizes one parameter value; throws JsonError.
Json checked_param(const ParamInfo& info, const Json& value, const std::string& dimension,
                   const std::string& kind);

const ParamInfo* find_param(const std::vector<ParamInfo>& schema, std::string_view name);

[[noreturn]] void unknown_kind(const std::string& dimension, std::string_view kind,
                               const std::vector<std::string>& valid);
[[noreturn]] void duplicate_kind(const std::string& dimension, const std::string& kind);
[[noreturn]] void unknown_param(const std::vector<ParamInfo>& schema, const std::string& dimension,
                                const std::string& kind, std::string_view name);
void check_schema(const std::vector<ParamInfo>& schema, const std::string& dimension,
                  const std::string& kind);

}  // namespace registry_detail

template <typename Provider>
class ComponentRegistry {
 public:
  /// Receives the canonical spec (all parameters present, type-checked).
  /// Factories should validate parameter *ranges* and throw JsonError, so
  /// bad values surface at parse/expansion time with path context.
  using Factory = std::function<std::shared_ptr<const Provider>(const ComponentSpec&)>;

  struct Entry {
    std::string kind;
    std::string summary;
    std::vector<ParamInfo> params;
    Factory factory;
  };

  explicit ComponentRegistry(std::string dimension) : dimension_(std::move(dimension)) {}

  /// Human-readable dimension name used in error messages ("base graph",
  /// "clock model", ...), matching the historical enum-parser wording.
  const std::string& dimension() const noexcept { return dimension_; }

  /// Registers a kind. Duplicate names are rejected (JsonError) so two
  /// translation units cannot silently shadow each other's components.
  void add(std::string kind, std::string summary, std::vector<ParamInfo> params,
           Factory factory) {
    for (const Entry& e : entries_) {
      if (e.kind == kind) registry_detail::duplicate_kind(dimension_, kind);
    }
    registry_detail::check_schema(params, dimension_, kind);
    entries_.push_back(
        Entry{std::move(kind), std::move(summary), std::move(params), std::move(factory)});
  }

  bool contains(std::string_view kind) const noexcept {
    for (const Entry& e : entries_) {
      if (e.kind == kind) return true;
    }
    return false;
  }

  /// Entry for a kind; throws JsonError listing the valid kinds when absent.
  const Entry& entry(std::string_view kind) const {
    for (const Entry& e : entries_) {
      if (e.kind == kind) return e;
    }
    registry_detail::unknown_kind(dimension_, kind, names());
  }

  /// Registered kind names, in registration order.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.kind);
    return out;
  }

  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Validates the spec and fills parameter defaults. Canonical specs are
  /// the equality domain: any two spellings of the same configuration
  /// canonicalize to identical specs.
  ComponentSpec canonicalize(const ComponentSpec& spec) const {
    const Entry& e = entry(spec.kind);
    ComponentSpec out;
    out.kind = spec.kind;
    out.params = registry_detail::canonical_params(e.params, spec.params, dimension_, e.kind);
    return out;
  }

  /// canonicalize + factory.
  std::shared_ptr<const Provider> create(const ComponentSpec& spec) const {
    const Entry& e = entry(spec.kind);
    return e.factory(canonicalize(spec));
  }

  /// Sets one parameter on a spec (the dotted sweep-axis path, e.g.
  /// "base_graph.rows") with immediate name and type validation.
  void set_param(ComponentSpec& spec, const std::string& name, const Json& value) const {
    const Entry& e = entry(spec.kind);
    const ParamInfo* info = registry_detail::find_param(e.params, name);
    if (info == nullptr) {
      registry_detail::unknown_param(e.params, dimension_, e.kind, name);
    }
    spec.params.set(name, registry_detail::checked_param(*info, value, dimension_, e.kind));
  }

 private:
  std::string dimension_;
  std::vector<Entry> entries_;
};

/// Parses the scenario-JSON component syntax: either a bare kind string or
/// the {"kind": ..., <params>} object form. The result is canonical.
/// Errors are prefixed with `path`.
template <typename Provider>
ComponentSpec component_from_json(const ComponentRegistry<Provider>& registry, const Json& value,
                                  const std::string& path) {
  try {
    ComponentSpec spec;
    if (value.is_string()) {
      spec.kind = value.as_string();
      return registry.canonicalize(spec);
    }
    bool saw_kind = false;
    for (const auto& [key, member] : value.as_object()) {
      if (key == "kind") {
        spec.kind = member.as_string();
        saw_kind = true;
      } else {
        spec.params.set(key, member);
      }
    }
    if (!saw_kind) throw JsonError("missing key 'kind'");
    return registry.canonicalize(spec);
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

/// Inverse of component_from_json: a bare kind string when every parameter
/// sits at its default, otherwise {"kind": ..., <non-default params>}.
/// `spec` must be canonical for the given registry.
template <typename Provider>
Json component_to_json(const ComponentRegistry<Provider>& registry, const ComponentSpec& spec) {
  const auto& entry = registry.entry(spec.kind);
  Json obj = Json::object();
  obj.set("kind", spec.kind);
  std::size_t non_default = 0;
  for (const ParamInfo& info : entry.params) {
    const Json* value = spec.params.find(info.name);
    if (value == nullptr || *value == info.default_value) continue;
    obj.set(info.name, *value);
    ++non_default;
  }
  if (non_default == 0) return Json(spec.kind);
  return obj;
}

}  // namespace gtrix
