// AlgorithmProvider: pluggable per-node algorithm construction behind one
// pulse-sink contract.
//
// A NodeModel wraps one algorithm-layer grid node (GradientTrixNode, the
// naive TRIX baseline, the Lynch-Welch-style trimmed-midpoint node, or any
// registered extension) and exposes the uniform surface World wires:
// the PulseSink, the fault hooks, state corruption and counters. Providers
// declare capabilities so the config layer can reject fault plans and
// corruption schedules an algorithm cannot honor -- a hard, path-qualified
// error instead of the silent no-op the enum-era World performed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "clock/hardware_clock.hpp"
#include "core/params.hpp"
#include "metrics/recorder.hpp"
#include "net/network.hpp"
#include "registry/registry.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace gtrix {

class GradientTrixNode;
struct NodeArena;
class CkptWriter;
class CkptCursor;

/// Legacy closed enumeration of algorithms, kept as a thin adapter for
/// ExperimentConfig source compatibility. New algorithms (e.g. the
/// Lynch-Welch grid adaptation) exist only as registered kinds.
enum class Algorithm {
  kGradientFull,        ///< Algorithm 3 (optionally with Algorithm 4 guards)
  kGradientSimplified,  ///< Algorithm 1 (fault-free settings only)
  kTrixNaive,           ///< baseline [LW20]
};

/// Aggregated algorithm counters (summed over all nodes by World).
struct ExperimentCounters {
  std::uint64_t iterations = 0;
  std::uint64_t late_broadcasts = 0;
  std::uint64_t guard_aborts = 0;
  std::uint64_t watchdog_resets = 0;
  std::uint64_t timeout_branches = 0;
  std::uint64_t duplicate_drops = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  /// Queue events spent on deliveries (see Network::delivery_events).
  /// events_executed - delivery_events + messages_delivered is the
  /// engine-independent logical event count bench_perf reports.
  std::uint64_t delivery_events = 0;
};

/// What an algorithm can be asked to do. The scenario layer checks these
/// when resolving a config; World re-checks as a hard backstop.
struct AlgorithmCaps {
  /// Send-behaviour faults (static-offset / split / jitter / mute-after)
  /// can be installed on this algorithm's nodes.
  bool send_fault_overrides = false;
  /// corrupt_fraction / Theorem 1.6 transient-fault workloads.
  bool state_corruption = false;
  /// Keeps making progress when a predecessor never pulses (crash or
  /// fixed-period faults anywhere in the grid).
  bool tolerates_silent_preds = false;
};

/// Replaces a node's default broadcast (fault wrappers). Same contract as
/// GradientTrixNode::SendOverride.
using SendOverride = std::function<void(const Pulse&, SimTime)>;

/// Everything needed to build one algorithm-layer node.
struct NodeContext {
  Simulator& sim;
  Network& net;
  NetNodeId self;
  HardwareClock clock;
  std::vector<NetNodeId> preds;  ///< own copy first (Grid::predecessors)
  Params params;
  std::uint32_t diameter = 0;        ///< base-graph diameter D
  std::uint32_t trim = 0;            ///< trimmed-aggregation extension
  bool self_stabilizing = false;
  bool jump_condition = true;
  double broadcast_offset = 0.0;     ///< static fault shift (0 when correct)
  Recorder* recorder = nullptr;
  /// Struct-of-arrays store for the node's hot state (core/node_state.hpp),
  /// owned by World. Null is valid: the node falls back to a private
  /// single-entry arena, so providers can ignore the field entirely.
  NodeArena* arena = nullptr;
};

/// One constructed algorithm node; owns the underlying object.
class NodeModel {
 public:
  virtual ~NodeModel() = default;

  virtual PulseSink& sink() = 0;

  /// Fault hooks. World only calls these when the provider's caps() allow
  /// it (the config layer rejects mismatches earlier with path context).
  virtual void set_send_override(SendOverride fn);
  virtual void corrupt_state(Rng& rng);

  virtual void add_counters(ExperimentCounters& /*total*/) const {}

  /// The wrapped GradientTrixNode, for harnesses that poke gradient
  /// internals (World::gradient_node); null for other algorithms.
  virtual GradientTrixNode* gradient() noexcept { return nullptr; }

  /// Checkpoint hooks (src/ckpt). timer_target() exposes the wrapped
  /// node's TimerTarget identity so pending events targeting it can
  /// round-trip through the checkpoint target map; the save/load pair
  /// serializes the node's mutable state. The defaults throw CkptError:
  /// an external provider without these overrides fails a checkpoint
  /// attempt loudly instead of silently snapshotting partial state.
  virtual TimerTarget* timer_target() noexcept { return nullptr; }
  virtual void checkpoint_save(CkptWriter& w) const;
  virtual void checkpoint_restore(CkptCursor& r);
};

class AlgorithmProvider {
 public:
  virtual ~AlgorithmProvider() = default;

  virtual AlgorithmCaps caps() const = 0;
  virtual std::unique_ptr<NodeModel> make_node(NodeContext ctx) const = 0;
};

/// Global registry; built-ins (gradient-full, gradient-simplified,
/// trix-naive, lynch-welch) register on first access.
ComponentRegistry<AlgorithmProvider>& algorithm_registry();

// --- legacy enum adapters ---------------------------------------------------
ComponentSpec algorithm_spec_from_legacy(Algorithm kind);
bool algorithm_spec_to_legacy(const ComponentSpec& canonical, Algorithm& kind);

std::string_view to_string(Algorithm v);
Algorithm algorithm_from_string(std::string_view s);

}  // namespace gtrix
