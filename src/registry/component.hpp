// String-keyed component references and parameter schemas shared by the
// topology / clock / delay / algorithm provider registries.
//
// A component is addressed from C++ or from scenario JSON as a `kind` name
// plus a flat object of typed parameters:
//
//   "base_graph": "torus"                          // all defaults
//   "base_graph": {"kind": "torus", "rows": 4}     // explicit parameter
//
// Every registered kind declares its parameters up front (name, type,
// default, description), so parsing is schema-driven: unknown keys and type
// mismatches are rejected with the same path-qualified errors as the rest
// of the scenario layer, and `gtrix_campaign --list` / `--describe` can
// enumerate what exists without touching C++.
#pragma once

#include <string>
#include <utility>

#include "support/json.hpp"

namespace gtrix {

/// Reference to a registered component. `params` is always a JSON object;
/// after canonicalization (ComponentRegistry::canonicalize) it holds every
/// declared parameter in schema order with defaults filled in, so two
/// spellings of the same configuration compare equal. An empty kind means
/// "unspecified" -- the legacy enum fields of ExperimentConfig decide.
struct ComponentSpec {
  std::string kind;
  Json params = Json::object();

  bool empty() const noexcept { return kind.empty(); }

  static ComponentSpec of(std::string kind) {
    ComponentSpec spec;
    spec.kind = std::move(kind);
    return spec;
  }

  bool operator==(const ComponentSpec&) const = default;
};

enum class ParamType { kInt, kDouble, kBool, kString };

const char* param_type_name(ParamType t) noexcept;

/// One declared parameter of a component kind. `default_value` must match
/// `type`; registration validates this so a bad schema fails loudly in
/// tests, not at a user's desk.
struct ParamInfo {
  std::string name;
  ParamType type = ParamType::kDouble;
  Json default_value;
  std::string description;
};

}  // namespace gtrix
