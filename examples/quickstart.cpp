// Quickstart: build a 16x16 Gradient TRIX grid, run 20 pulses, print the
// measured skews against the paper's bounds.
//
//   ./quickstart [--columns N] [--layers N] [--pulses N] [--seed S]
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"

int main(int argc, char** argv) {
  const gtrix::Flags flags(argc, argv);

  gtrix::ExperimentConfig config;
  config.columns = static_cast<std::uint32_t>(flags.get_int("columns", 16));
  config.layers = static_cast<std::uint32_t>(flags.get_int("layers", 16));
  config.pulses = flags.get_int("pulses", 20);
  config.seed = flags.get_u64("seed", 1);
  config.params = gtrix::Params::derive_for(config.columns - 1, 10.0, 1.0005, 1.1);

  std::printf("Gradient TRIX quickstart\n");
  std::printf("  grid: %u columns x %u layers, diameter D = %u\n", config.columns,
              config.layers, config.columns - 1);
  std::printf("  params: %s\n", config.params.describe().c_str());

  const gtrix::ExperimentResult result = gtrix::run_experiment(config);

  std::printf("\nresults over %lld pulses:\n", static_cast<long long>(config.pulses));
  std::printf("  local skew (intra-layer) : %8.2f   bound 4k(2+lgD) = %.2f\n",
              result.skew.max_intra, result.thm11_bound);
  std::printf("  local skew (inter-layer) : %8.2f\n", result.skew.max_inter);
  std::printf("  global skew              : %8.2f   bound 6 kappa D = %.2f\n",
              result.skew.global_skew, result.global_bound);
  std::printf("  events simulated         : %llu\n",
              static_cast<unsigned long long>(result.counters.events_executed));
  std::printf("  pulses forwarded         : %llu\n",
              static_cast<unsigned long long>(result.counters.iterations));
  const bool ok = result.skew.max_intra <= result.thm11_bound;
  std::printf("\n%s\n", ok ? "OK: measured skew within the Theorem 1.1 bound"
                           : "WARNING: skew exceeds the Theorem 1.1 bound");
  return ok ? 0 : 1;
}
