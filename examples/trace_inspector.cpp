// Trace inspector: runs a small grid and dumps per-node pulse logs and
// iteration records -- the tool to reach for when studying the algorithm's
// behaviour wave by wave.
//
//   ./trace_inspector [--columns 4] [--layers 3] [--pulses 6] [--line]
//                     [--node "(v1, 1)"]
#include <cstdio>
#include <string>

#include "runner/experiment.hpp"
#include "support/flags.hpp"

int main(int argc, char** argv) {
  using namespace gtrix;
  const Flags flags(argc, argv);
  ExperimentConfig config;
  config.columns = static_cast<std::uint32_t>(flags.get_int("columns", 4));
  config.layers = static_cast<std::uint32_t>(flags.get_int("layers", 3));
  config.pulses = flags.get_int("pulses", 6);
  config.seed = flags.get_u64("seed", 1);
  if (flags.get_bool("line", false)) config.layer0 = Layer0Mode::kLinePropagation;
  const std::string only_node = flags.get_string("node", "");

  World world(config);
  world.run_to_completion();
  const auto& grid = world.grid();
  const auto& rec = world.recorder();

  std::printf("trace: %u columns x %u layers, %lld pulses, %s input\n",
              config.columns, config.layers, static_cast<long long>(config.pulses),
              config.layer0 == Layer0Mode::kIdealJitter ? "ideal" : "line");
  std::printf("sigma range [%lld, %lld]\n\n", static_cast<long long>(rec.min_sigma()),
              static_cast<long long>(rec.max_sigma()));

  for (GridNodeId g = 0; g < grid.node_count(); ++g) {
    const std::string label = grid.label(g);
    if (!only_node.empty() && label != only_node) continue;
    std::printf("%-10s layer=%u col=%u%s\n", label.c_str(), grid.layer_of(g),
                grid.base().column(grid.base_of(g)),
                world.is_faulty(g) ? "  [FAULTY]" : "");
    std::printf("  pulses: ");
    for (Sigma s = rec.min_sigma(); s <= rec.max_sigma(); ++s) {
      const auto t = rec.pulse_time(g, s);
      if (t) std::printf("[%lld]=%.1f ", static_cast<long long>(s), *t);
    }
    std::printf("\n");
    if (grid.layer_of(g) == 0) continue;
    for (const auto& it : rec.iterations(g)) {
      std::printf("  it sigma=%lld C=%+8.2f own=%10.1f min=%10.1f max=%10.1f%s%s slots:",
                  static_cast<long long>(it.sigma), it.correction, it.h_own, it.h_min,
                  it.h_max, it.timeout_branch ? " TIMEOUT" : "", it.late ? " LATE" : "");
      for (std::uint8_t i = 0; i < it.slot_count; ++i) {
        std::printf(" %u:%s%lld", i, it.slot_seen[i] ? "" : "!",
                    static_cast<long long>(it.slot_sigma[i]));
      }
      std::printf("\n");
    }
  }
  return 0;
}
