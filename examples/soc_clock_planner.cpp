// SoC clock-distribution planning (the paper's motivating application, §2).
//
// Given a chip specification -- die size, wire delay per mm, uncertainty,
// oscillator stability -- this example sizes a Gradient TRIX grid, runs it
// with sampled fabrication faults, and reports the achievable clock period:
// the local skew L plus twice the local clock-tree depth Delta gives the
// worst-case skew between adjacent components (t_setup budget), per the
// triangle-inequality argument in §2.
//
//   ./soc_clock_planner [--die-mm 20] [--pitch-mm 1.25] [--fault-rate 0.002]
#include <cmath>
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace gtrix;
  const Flags flags(argc, argv);

  // Chip spec. Delay figures are in picoseconds (= our abstract time unit).
  const double die_mm = flags.get_double("die-mm", 20.0);
  const double pitch_mm = flags.get_double("pitch-mm", 1.25);   // grid pitch
  const double ps_per_mm = flags.get_double("ps-per-mm", 66.0); // RC wire delay
  const double uncertainty_pct = flags.get_double("uncertainty-pct", 2.0);
  const double theta = flags.get_double("theta", 1.0002);
  const double fault_rate = flags.get_double("fault-rate", 0.002);
  const double tree_depth_ps = flags.get_double("tree-skew-ps", 12.0);  // Delta
  const double logic_depth_ps = flags.get_double("logic-depth-ps", 250.0);
  const auto seed = flags.get_u64("seed", 42);

  const auto columns = static_cast<std::uint32_t>(std::lround(die_mm / pitch_mm));
  const double hop_ps = pitch_mm * ps_per_mm;           // nominal wire delay
  const double repeater_ps = 18.0;                      // gate + latch delay
  const double d = hop_ps + repeater_ps;                // max end-to-end
  const double u = d * uncertainty_pct / 100.0;

  ExperimentConfig config;
  config.columns = columns;
  config.layers = columns;  // square die
  config.params = Params::with(d, u, theta);
  config.pulses = 20;
  config.seed = seed;
  config.layer0 = Layer0Mode::kLinePropagation;  // realistic feed

  std::printf("SoC clock grid planner (Gradient TRIX)\n");
  std::printf("  die %.1f mm x %.1f mm, pitch %.2f mm -> %u x %u grid roots\n", die_mm,
              die_mm, pitch_mm, columns, columns);
  std::printf("  link delay d = %.1f ps (u = %.1f ps), oscillator drift theta = %g\n",
              d, u, theta);
  std::printf("  params: %s\n", config.params.describe().c_str());
  const std::string why = config.params.validate(columns - 1, 1.05);
  if (!why.empty()) {
    std::printf("  WARNING: parameters out of the analysis regime: %s\n", why.c_str());
  }

  // Sample permanent fabrication faults (static delay faults and dead
  // nodes), respecting the model's 1-locality with overwhelming
  // probability at this rate.
  const Grid grid(BaseGraph::line_replicated(columns), config.layers);
  Rng rng(seed);
  PlacementOptions options;
  options.probability = fault_rate;
  auto faults = sample_iid_faults(grid, options, FaultSpec::crash(), rng);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i % 2 == 1) {
      faults[i].spec = FaultSpec::static_offset(rng.uniform(-3.0, 3.0) * u);
    }
  }
  config.faults = faults;

  std::printf("\nsampled %zu permanent faults at rate %.4f (%.1f expected)\n",
              faults.size(), fault_rate, fault_rate * grid.node_count());

  const ExperimentResult result = run_experiment(config);

  const double local_skew = result.skew.local_skew;
  const double component_skew = local_skew + 2.0 * tree_depth_ps;
  // Timing budget: logic depth plus skew plus one link uncertainty margin.
  const double min_period = logic_depth_ps + component_skew + u;
  const double f_max_ghz = 1000.0 / min_period;

  Table table({"quantity", "value", "note"});
  table.row().add("intra-layer skew L_l").add(result.skew.max_intra, 1).add("ps, measured");
  table.row().add("inter-layer skew").add(result.skew.max_inter, 1).add("ps, measured");
  table.row().add("global skew").add(result.skew.global_skew, 1).add("ps, measured");
  table.row().add("Thm 1.1 bound").add(result.thm11_bound, 1).add("4k(2+lgD)");
  table.row().add("local tree skew Delta").add(tree_depth_ps, 1).add("ps, given");
  table.row().add("component skew L+2Delta").add(component_skew, 1).add("ps (triangle ineq., §2)");
  table.row().add("logic depth").add(logic_depth_ps, 1).add("ps, given");
  table.row().add("min clock period").add(min_period, 1).add("ps incl. margin");
  table.row().add("max frequency").add(f_max_ghz, 2).add("GHz");
  std::printf("\n%s", table.render().c_str());

  std::printf("\ngrid statistics: %u nodes, %llu messages, %llu events simulated\n",
              grid.node_count(),
              static_cast<unsigned long long>(result.counters.messages_sent),
              static_cast<unsigned long long>(result.counters.events_executed));
  return result.skew.max_intra <= result.thm11_bound ? 0 : 1;
}
