// Self-stabilization walkthrough (Theorem 1.6).
//
// Runs a grid to steady state, scrambles the state of every node (a
// system-wide transient fault: radiation event / voltage droop, §C), and
// prints the per-wave local skew before, during, and after the event,
// along with the recovery machinery's counters.
//
//   ./stabilization_explorer [--columns 10] [--layers 12] [--fraction 1.0]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace gtrix;
  const Flags flags(argc, argv);
  ExperimentConfig config;
  config.columns = static_cast<std::uint32_t>(flags.get_int("columns", 10));
  config.layers = static_cast<std::uint32_t>(flags.get_int("layers", 12));
  config.pulses = flags.get_int("pulses", 44);
  config.seed = flags.get_u64("seed", 7);
  config.self_stabilizing = true;
  const double fraction = flags.get_double("fraction", 1.0);
  const Sigma corrupt_wave = flags.get_int("corrupt-wave", 12);

  std::printf("self-stabilization explorer: %ux%u grid, corrupting %.0f%% of nodes "
              "at wave %lld\n",
              config.columns, config.layers, fraction * 100.0,
              static_cast<long long>(corrupt_wave));
  std::printf("  params: %s\n\n", config.params.describe().c_str());

  World world(config);
  Rng rng(config.seed ^ 0xBADC0DE);
  world.run_until(static_cast<double>(corrupt_wave) * config.params.lambda);
  const auto before = world.counters();
  world.corrupt_fraction(fraction, rng);
  world.run_to_completion();
  const RealignStats realign = world.realign_labels();
  const auto after = world.counters();

  const double bound = config.params.thm11_bound(world.grid().base().diameter());
  const auto trace = world.trace();
  const auto [lo, hi] = default_window(world.recorder(), config.warmup);

  Table table({"wave", "worst intra skew", "vs bound", "state"});
  Sigma recovered_at = -1;
  for (Sigma s = std::max<Sigma>(lo, corrupt_wave - 4); s <= hi; ++s) {
    double worst = 0.0;
    bool any = false;
    for (std::uint32_t layer = 0; layer < config.layers; ++layer) {
      for (const auto& [a, b] : world.grid().base().edges()) {
        const auto ta = trace.steady_pulse(world.grid().id(a, layer), s);
        const auto tb = trace.steady_pulse(world.grid().id(b, layer), s);
        if (!ta || !tb) continue;
        any = true;
        worst = std::max(worst, std::abs(*ta - *tb));
      }
    }
    const char* state = "steady";
    if (s >= corrupt_wave && worst > bound) state = "DISTURBED";
    if (s >= corrupt_wave && worst <= bound) {
      state = "recovered";
      if (recovered_at < 0) recovered_at = s;
    }
    if (s < corrupt_wave) state = "pre-fault";
    if (!any) state = "(no complete pairs)";
    table.row()
        .add(static_cast<std::int64_t>(s))
        .add(worst, 1)
        .add(worst / bound, 3)
        .add(state);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("recovery machinery:\n");
  std::printf("  watchdog resets : %llu\n",
              static_cast<unsigned long long>(after.watchdog_resets - before.watchdog_resets));
  std::printf("  guard aborts    : %llu\n",
              static_cast<unsigned long long>(after.guard_aborts - before.guard_aborts));
  std::printf("  late broadcasts : %llu\n",
              static_cast<unsigned long long>(after.late_broadcasts - before.late_broadcasts));
  std::printf("  label shifts    : %u nodes (max |shift| %lld)\n", realign.nodes_shifted,
              static_cast<long long>(realign.max_abs_shift));
  if (recovered_at >= 0) {
    std::printf("\nrecovered at wave %lld, %lld waves after the fault "
                "(Theorem 1.6 budget: O(#layers) = %u)\n",
                static_cast<long long>(recovered_at),
                static_cast<long long>(recovered_at - corrupt_wave), config.layers);
  } else {
    std::printf("\nWARNING: no recovery observed within the run\n");
  }
  return recovered_at >= 0 ? 0 : 1;
}
