// Monte-Carlo fault-injection campaign.
//
// Sweeps the node failure probability p and, for each p, runs many seeds
// with mixed fault flavours, reporting skew quantiles and the rate of
// 1-locality violations (the model's capacity limit p in o(n^-1/2)).
// Useful for answering "how hard can I push fault density before the
// guarantees erode?" for a concrete grid.
//
//   ./fault_injection_campaign [--columns 16] [--seeds 10] [--csv]
#include <cmath>
#include <cstdio>
#include <vector>

#include "runner/experiment.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace gtrix;
  const Flags flags(argc, argv);
  const auto columns = static_cast<std::uint32_t>(flags.get_int("columns", 16));
  const auto layers = static_cast<std::uint32_t>(flags.get_int("layers", columns));
  const int seeds = static_cast<int>(flags.get_int("seeds", 10));
  const bool csv = flags.get_bool("csv", false);

  const Grid grid(BaseGraph::line_replicated(columns), layers);
  const double n = static_cast<double>(grid.node_count());
  const Params params = Params::with(1000.0, 10.0, 1.0005);
  const double bound = params.thm11_bound(columns - 1);

  std::printf("fault-injection campaign: %ux%u grid (n=%u), %d seeds per point\n",
              columns, layers, grid.node_count(), seeds);
  std::printf("model capacity: p in o(n^-1/2) = o(%.4f)\n\n", 1.0 / std::sqrt(n));

  Table table({"p", "E[#faults]", "skew p50", "skew p95", "skew max", "max/bound",
               "1-local misses"});
  for (const double scale : {0.05, 0.1, 0.2, 0.4, 0.8, 1.6}) {
    const double p = scale / std::sqrt(n);
    std::vector<double> skews;
    Summary fault_count;
    int locality_misses = 0;
    for (int s = 0; s < seeds; ++s) {
      ExperimentConfig config;
      config.columns = columns;
      config.layers = layers;
      config.pulses = 18;
      config.seed = 9000 + static_cast<std::uint64_t>(s);
      Rng rng(config.seed * 31 + 7);
      PlacementOptions options;
      options.probability = p;
      options.enforce_one_local = false;  // count violations instead
      auto faults = sample_iid_faults(grid, options, FaultSpec::crash(), rng);
      if (!is_one_local(grid, faults)) {
        ++locality_misses;
        // Resample within the model (the paper conditions on 1-locality).
        // Past the capacity boundary this may be infeasible; skip the seed
        // then -- exactly the regime where the model's guarantees end.
        options.enforce_one_local = true;
        try {
          faults = sample_iid_faults(grid, options, FaultSpec::crash(), rng);
        } catch (const std::logic_error&) {
          options.enforce_one_local = false;
          continue;
        }
        options.enforce_one_local = false;
      }
      for (std::size_t i = 0; i < faults.size(); ++i) {
        switch (i % 4) {
          case 1: faults[i].spec = FaultSpec::static_offset(rng.uniform(-200.0, 200.0)); break;
          case 2: faults[i].spec = FaultSpec::split(120.0); break;
          case 3: faults[i].spec = FaultSpec::fixed_period(1900.0 + rng.uniform(0.0, 200.0)); break;
          default: break;
        }
      }
      config.faults = faults;
      const ExperimentResult result = run_experiment(config);
      skews.push_back(result.skew.max_intra);
      fault_count.add(static_cast<double>(faults.size()));
    }
    table.row()
        .add(p, 5)
        .add(fault_count.mean(), 1)
        .add(quantile(skews, 0.5), 1)
        .add(quantile(skews, 0.95), 1)
        .add(quantile(skews, 1.0), 1)
        .add(quantile(skews, 1.0) / bound, 3)
        .add(std::to_string(locality_misses) + "/" + std::to_string(seeds));
  }
  std::printf("%s", csv ? table.render_csv().c_str() : table.render().c_str());
  std::printf("\nreading: within the model capacity the max skew stays a small multiple\n"
              "of kappa; 1-locality misses (two faulty in-neighbours somewhere) rise\n"
              "as p approaches n^-1/2 -- exactly the regime boundary the paper draws.\n");
  return 0;
}
