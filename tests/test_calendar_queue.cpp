// Calendar-queue scheduler tests: the kCalendar engine's own semantics
// (churn, FIFO tie-breaks, handle generations -- mirroring the binary-heap
// suite in test_event_queue.cpp), its resize/rebuild behaviour, and a
// randomized differential check that kCalendar and kBinaryHeap execute
// identical event sequences under heavy schedule/cancel churn.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace gtrix {
namespace {

struct EventLog final : TimerTarget {
  std::vector<Event> events;

  void on_timer(const Event& event) override { events.push_back(event); }

  std::vector<std::int64_t> tags() const {
    std::vector<std::int64_t> out;
    for (const Event& e : events) out.push_back(e.payload.i);
    return out;
  }
};

TEST(CalendarQueue, DefaultEngineIsCalendar) {
  EventQueue q;
  EXPECT_EQ(q.scheduler_kind(), SchedulerKind::kCalendar);
}

TEST(CalendarQueue, RunsInTimeOrder) {
  EventQueue q(SchedulerKind::kCalendar);
  EventLog log;
  q.schedule(3.0, &log, 0, EventPayload{.i = 3});
  q.schedule(1.0, &log, 0, EventPayload{.i = 1});
  q.schedule(2.0, &log, 0, EventPayload{.i = 2});
  while (q.run_next()) {
  }
  EXPECT_EQ(log.tags(), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(CalendarQueue, TiesBreakInSchedulingOrder) {
  EventQueue q(SchedulerKind::kCalendar);
  EventLog log;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, &log, 0, EventPayload{.i = i});
  }
  while (q.run_next()) {
  }
  ASSERT_EQ(log.events.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log.events[static_cast<std::size_t>(i)].payload.i, i);
  }
}

TEST(CalendarQueue, SameTimestampFifoSurvivesCancellationChurn) {
  EventQueue q(SchedulerKind::kCalendar);
  EventLog log;
  std::vector<TimerHandle> doomed;
  for (int i = 0; i < 20; ++i) {
    const TimerHandle h = q.schedule(5.0, &log, 0, EventPayload{.i = i});
    if (i % 2 == 1) doomed.push_back(h);
  }
  for (TimerHandle h : doomed) EXPECT_TRUE(q.cancel(h));
  while (q.run_next()) {
  }
  std::vector<std::int64_t> expected;
  for (int i = 0; i < 20; i += 2) expected.push_back(i);
  EXPECT_EQ(log.tags(), expected);
}

TEST(CalendarQueue, HandleGenerationsSurviveSlotRecycling) {
  EventQueue q(SchedulerKind::kCalendar);
  EventLog log;
  const TimerHandle old_handle = q.schedule(1.0, &log, 0, EventPayload{.i = 1});
  q.run_next();
  const TimerHandle new_handle = q.schedule(2.0, &log, 0, EventPayload{.i = 2});
  EXPECT_EQ(new_handle.slot, old_handle.slot);  // recycled
  EXPECT_NE(new_handle.gen, old_handle.gen);
  EXPECT_FALSE(q.cancel(old_handle));
  EXPECT_TRUE(q.pending(new_handle));
  q.run_next();
  EXPECT_EQ(log.tags(), (std::vector<std::int64_t>{1, 2}));
}

TEST(CalendarQueue, SchedulingBehindTheCursorStillFiresInOrder) {
  // Popping advances the scan cursor; an event scheduled at an earlier
  // time afterwards must pull the cursor back instead of waiting for a
  // calendar-year wraparound.
  EventQueue q(SchedulerKind::kCalendar);
  EventLog log;
  q.schedule(100.0, &log, 0, EventPayload{.i = 100});
  q.schedule(5000.0, &log, 0, EventPayload{.i = 5000});
  EXPECT_TRUE(q.run_next());  // pops t=100, cursor now past t=100
  q.schedule(7.0, &log, 0, EventPayload{.i = 7});
  q.schedule(300.0, &log, 0, EventPayload{.i = 300});
  while (q.run_next()) {
  }
  EXPECT_EQ(log.tags(), (std::vector<std::int64_t>{100, 7, 300, 5000}));
}

TEST(CalendarQueue, SparseFarFutureEventsAreFound) {
  // Events many calendar years apart exercise the global-minimum fallback.
  EventQueue q(SchedulerKind::kCalendar);
  EventLog log;
  q.schedule(1.0, &log, 0, EventPayload{.i = 1});
  q.schedule(1e9, &log, 0, EventPayload{.i = 2});
  q.schedule(1e15, &log, 0, EventPayload{.i = 3});
  while (q.run_next()) {
  }
  EXPECT_EQ(log.tags(), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(CalendarQueue, SlotTableStaysFlatUnderScheduleCancelChurn) {
  EventQueue q(SchedulerKind::kCalendar);
  EventLog log;
  constexpr int kLive = 8;
  std::vector<TimerHandle> live;
  for (int i = 0; i < kLive; ++i) {
    live.push_back(q.schedule(1e9 + i, &log, 0));
  }
  const std::size_t baseline_capacity = q.slot_capacity();
  for (int round = 0; round < 10000; ++round) {
    EXPECT_TRUE(q.cancel(live[static_cast<std::size_t>(round % kLive)]));
    live[static_cast<std::size_t>(round % kLive)] = q.schedule(1e9 + round, &log, 0);
    EXPECT_EQ(q.pending_count(), static_cast<std::size_t>(kLive));
  }
  EXPECT_EQ(q.slot_capacity(), baseline_capacity);
  // The cancelled bulk must be purged, not accumulated: a rebuild pass
  // keeps the calendar O(pending), and the bucket count tracks the tiny
  // live population instead of the 10008 events ever scheduled.
  EXPECT_GT(q.calendar_rebuilds(), 0u);
  EXPECT_LE(q.calendar_buckets(), 64u);
  while (q.run_next()) {
  }
  EXPECT_EQ(q.scheduled_count(), static_cast<std::uint64_t>(kLive + 10000));
  EXPECT_EQ(q.executed_count(), static_cast<std::uint64_t>(kLive));  // rest were cancelled
}

TEST(CalendarQueue, ResizeGrowsAndShrinksWithThePendingPopulation) {
  EventQueue q(SchedulerKind::kCalendar);
  EventLog log;
  Rng rng(7);
  std::vector<TimerHandle> handles;
  for (int i = 0; i < 4096; ++i) {
    handles.push_back(q.schedule(rng.uniform(0.0, 1e6), &log, 0));
  }
  const std::size_t grown = q.calendar_buckets();
  EXPECT_GE(grown, 2048u);  // ~1 entry per bucket once grown
  while (q.run_next()) {
  }
  EXPECT_LT(q.calendar_buckets(), grown);  // shrank as the queue drained
}

/// Differential fuzz: a random interleaving of schedule / cancel / pop must
/// dispatch the identical event sequence on both engines.
TEST(CalendarQueue, MatchesBinaryHeapOnRandomChurn) {
  for (std::uint64_t seed : {1ULL, 42ULL, 1234ULL}) {
    EventQueue cal(SchedulerKind::kCalendar);
    EventQueue heap(SchedulerKind::kBinaryHeap);
    EventLog cal_log;
    EventLog heap_log;
    Rng cal_rng(seed);
    Rng heap_rng(seed);

    const auto drive = [](EventQueue& q, EventLog& log, Rng& rng) {
      std::vector<TimerHandle> handles;
      double now = 0.0;
      std::int64_t tag = 0;
      for (int op = 0; op < 20000; ++op) {
        const double dice = rng.uniform(0.0, 1.0);
        if (dice < 0.45) {
          // Mostly near-future events, some far future, frequent exact ties.
          double t = now + (rng.bernoulli(0.2) ? rng.uniform(0.0, 1e5)
                                               : rng.uniform(0.0, 50.0));
          if (rng.bernoulli(0.25)) t = std::floor(t);  // force time collisions
          handles.push_back(q.schedule(t, &log, 0, EventPayload{.i = tag++}));
        } else if (dice < 0.65 && !handles.empty()) {
          q.cancel(handles[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1))]);
        } else if (!q.empty()) {
          now = q.next_time();
          q.run_next();
        }
      }
      while (q.run_next()) {
      }
    };

    drive(cal, cal_log, cal_rng);
    drive(heap, heap_log, heap_rng);
    ASSERT_EQ(cal_log.events.size(), heap_log.events.size());
    for (std::size_t i = 0; i < cal_log.events.size(); ++i) {
      EXPECT_EQ(cal_log.events[i].time, heap_log.events[i].time) << "at " << i;
      EXPECT_EQ(cal_log.events[i].payload.i, heap_log.events[i].payload.i) << "at " << i;
    }
  }
}

/// Directed regression for the behind-cursor-after-purge interaction at the
/// scale-grid population regime: a lazy-cancel purge rebuild refits the
/// bucket width and re-anchors the scan cursor, and an insert landing
/// BEHIND the re-anchored cursor must (a) recompute its epoch under the new
/// width -- calendar_insert stamps entry.epoch after any rebuild, never
/// before -- and (b) pull the cursor back so it fires first. A stale cached
/// epoch would either bury the event in a wrong-year bucket (skipped by the
/// year scan) or fire it out of order; both would break the differential
/// identity below.
TEST(CalendarQueue, BehindCursorInsertAfterPurgeRebuildAt64k) {
  for (const std::uint64_t seed : {7ULL, 99ULL}) {
    EventQueue cal(SchedulerKind::kCalendar);
    EventQueue heap(SchedulerKind::kBinaryHeap);
    EventLog cal_log;
    EventLog heap_log;

    const auto drive = [seed](EventQueue& q, EventLog& log) {
      Rng rng(seed);
      std::int64_t tag = 0;
      // Phase 1: >= 64k pending events in a dense window (forces several
      // grow rebuilds; the fitted year spans [1000, 2000)).
      std::vector<TimerHandle> handles;
      handles.reserve(70000);
      for (int i = 0; i < 70000; ++i) {
        handles.push_back(q.schedule(1000.0 + rng.uniform(0.0, 1000.0), &log, 0,
                                     EventPayload{.i = tag++}));
      }
      // Phase 2: advance the cursor into the year.
      double now = 0.0;
      for (int i = 0; i < 2000; ++i) {
        now = q.next_time();
        q.run_next();
      }
      // Phase 3: cancel ~70% of what's pending -- crosses the dead > live
      // purge threshold repeatedly, so at least one lazy-cancel purge
      // rebuild refits width and cursor while the population is large.
      for (std::size_t i = 0; i < handles.size(); ++i) {
        if (rng.bernoulli(0.7)) q.cancel(handles[i]);
      }
      // Phase 4: immediately insert behind the cursor (before `now`), at
      // the cursor's own time (tie with pending events), and far ahead
      // (next year), interleaved with pops and further purge-triggering
      // cancels, then drain.
      std::vector<TimerHandle> extra;
      for (int round = 0; round < 200; ++round) {
        extra.push_back(q.schedule(now * rng.uniform(0.0, 0.99), &log, 0,
                                   EventPayload{.i = tag++}));
        extra.push_back(q.schedule(now, &log, 0, EventPayload{.i = tag++}));
        extra.push_back(
            q.schedule(now + rng.uniform(1000.0, 5000.0), &log, 0, EventPayload{.i = tag++}));
        if (round % 3 == 0 && !q.empty()) {
          now = q.next_time();
          q.run_next();
        }
        if (round % 5 == 0 && extra.size() >= 2) {
          q.cancel(extra[extra.size() - 2]);
        }
      }
      while (q.run_next()) {
      }
    };

    drive(cal, cal_log);
    drive(heap, heap_log);
    EXPECT_GT(cal.calendar_rebuilds(), 0u);
    ASSERT_EQ(cal_log.events.size(), heap_log.events.size());
    for (std::size_t i = 0; i < cal_log.events.size(); ++i) {
      ASSERT_EQ(cal_log.events[i].time, heap_log.events[i].time) << "at " << i;
      ASSERT_EQ(cal_log.events[i].payload.i, heap_log.events[i].payload.i) << "at " << i;
    }
  }
}

/// The randomized differential above at the mega-grid population: ramp to
/// >= 64k pending, then churn schedule / cancel-bulk / pop so purge and
/// fit-to-population rebuilds interleave with behind-cursor scheduling.
TEST(CalendarQueue, MatchesBinaryHeapUnderPurgeResizeChurnAt64k) {
  for (const std::uint64_t seed : {5ULL, 2024ULL}) {
    EventQueue cal(SchedulerKind::kCalendar);
    EventQueue heap(SchedulerKind::kBinaryHeap);
    EventLog cal_log;
    EventLog heap_log;

    const auto drive = [seed](EventQueue& q, EventLog& log) {
      Rng rng(seed);
      std::vector<TimerHandle> handles;
      double now = 0.0;
      std::int64_t tag = 0;
      // Ramp: 65k+ pending.
      for (int i = 0; i < 66000; ++i) {
        handles.push_back(
            q.schedule(rng.uniform(0.0, 3000.0), &log, 0, EventPayload{.i = tag++}));
      }
      for (int op = 0; op < 30000; ++op) {
        const double dice = rng.uniform(0.0, 1.0);
        if (dice < 0.35) {
          double t = now + (rng.bernoulli(0.1) ? rng.uniform(0.0, 1e5)
                                               : rng.uniform(0.0, 100.0));
          if (rng.bernoulli(0.3)) t = std::floor(t);
          handles.push_back(q.schedule(t, &log, 0, EventPayload{.i = tag++}));
        } else if (dice < 0.40 && !handles.empty()) {
          // Bulk cancel: 512 at a time drives dead_ across the purge
          // threshold mid-churn instead of one-at-a-time nibbling.
          for (int k = 0; k < 512; ++k) {
            q.cancel(handles[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1))]);
          }
        } else if (dice < 0.62 && !handles.empty()) {
          q.cancel(handles[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1))]);
        } else if (!q.empty()) {
          now = q.next_time();
          q.run_next();
        }
      }
      while (q.run_next()) {
      }
    };

    drive(cal, cal_log);
    drive(heap, heap_log);
    EXPECT_GT(cal.calendar_rebuilds(), 0u);
    ASSERT_EQ(cal_log.events.size(), heap_log.events.size());
    for (std::size_t i = 0; i < cal_log.events.size(); ++i) {
      ASSERT_EQ(cal_log.events[i].time, heap_log.events[i].time) << "at " << i;
      ASSERT_EQ(cal_log.events[i].payload.i, heap_log.events[i].payload.i) << "at " << i;
    }
  }
}

/// Windowed pops under purge/resize churn: the sharded driver pops each
/// shard's queue in [gmin, horizon) windows via run_next_strictly_before, so
/// the calendar engine must agree with the heap when window boundaries
/// interleave with behind-cursor inserts and purge rebuilds. In a
/// -DGTRIX_DEBUG_CHECKS build (the sanitizer CI jobs), every insert, pop and
/// rebuild in this churn additionally runs the epoch-freshness assertions in
/// event_queue.cpp -- entry.epoch must match epoch_of(entry.time) under the
/// CURRENT bucket width -- turning a silently-buried event into a hard
/// failure at the exact operation that staled it.
TEST(CalendarQueue, WindowedPopsMatchBinaryHeapUnderChurn) {
  for (const std::uint64_t seed : {11ULL, 4242ULL}) {
    EventQueue cal(SchedulerKind::kCalendar);
    EventQueue heap(SchedulerKind::kBinaryHeap);
    EventLog cal_log;
    EventLog heap_log;

    const auto drive = [seed](EventQueue& q, EventLog& log) {
      Rng rng(seed);
      std::vector<TimerHandle> handles;
      std::int64_t tag = 0;
      for (int i = 0; i < 66000; ++i) {
        handles.push_back(
            q.schedule(rng.uniform(0.0, 3000.0), &log, 0, EventPayload{.i = tag++}));
      }
      double horizon = 0.0;
      SimTime fired = 0.0;
      for (int window = 0; window < 400; ++window) {
        horizon += rng.uniform(1.0, 15.0);
        // Drain the window: events exactly AT the horizon must stay queued.
        while (q.run_next_strictly_before(horizon, fired)) {
          ASSERT_LT(fired, horizon);
        }
        // Cross-window churn: new events behind and ahead of the horizon
        // plus bulk cancels that trip purge rebuilds mid-sequence.
        for (int i = 0; i < 40; ++i) {
          handles.push_back(q.schedule(horizon + rng.uniform(0.0, 2000.0), &log, 0,
                                       EventPayload{.i = tag++}));
        }
        if (window % 7 == 0 && !handles.empty()) {
          for (int k = 0; k < 512; ++k) {
            q.cancel(handles[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1))]);
          }
        }
      }
      while (q.run_next()) {
      }
    };

    drive(cal, cal_log);
    drive(heap, heap_log);
    EXPECT_GT(cal.calendar_rebuilds(), 0u);
    ASSERT_EQ(cal_log.events.size(), heap_log.events.size());
    for (std::size_t i = 0; i < cal_log.events.size(); ++i) {
      ASSERT_EQ(cal_log.events[i].time, heap_log.events[i].time) << "at " << i;
      ASSERT_EQ(cal_log.events[i].payload.i, heap_log.events[i].payload.i) << "at " << i;
    }
  }
}

/// run_next_due respects the deadline and reports fire times (the single-
/// locate simulator loop depends on both).
TEST(CalendarQueue, RunNextDueStopsAtDeadline) {
  for (const SchedulerKind kind : {SchedulerKind::kCalendar, SchedulerKind::kBinaryHeap}) {
    EventQueue q(kind);
    EventLog log;
    q.schedule(1.0, &log, 0, EventPayload{.i = 1});
    q.schedule(2.0, &log, 0, EventPayload{.i = 2});
    q.schedule(3.0, &log, 0, EventPayload{.i = 3});
    SimTime fired = -1.0;
    EXPECT_TRUE(q.run_next_due(2.0, fired));
    EXPECT_DOUBLE_EQ(fired, 1.0);
    EXPECT_TRUE(q.run_next_due(2.0, fired));
    EXPECT_DOUBLE_EQ(fired, 2.0);
    EXPECT_FALSE(q.run_next_due(2.0, fired));  // t=3 is past the deadline
    EXPECT_EQ(q.pending_count(), 1u);
    EXPECT_TRUE(q.run_next_due(5.0, fired));
    EXPECT_DOUBLE_EQ(fired, 3.0);
  }
}

}  // namespace
}  // namespace gtrix
