// Telemetry subsystem tests (src/obs/, docs/observability.md): the
// engine-invariant counter block must be byte-identical across every
// (threads, shards) combination, telemetry must stay strictly
// observational (disabled -> empty stats, enabled -> identical results),
// the histogram layout is pinned, and every EngineOptions field must have
// an engine-gate description row so --list never silently lags the struct.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/progress.hpp"
#include "obs/rss.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runner/campaign.hpp"
#include "runner/experiment.hpp"
#include "scenario/registry.hpp"

namespace gtrix {
namespace {

TEST(ObsHistogram, BinEdgesArePinned) {
  // The layout is a stability contract (merging is bin-wise across runs and
  // releases): bin 0 = {0}, bin i = [2^(i-1), 2^i), last bin = overflow.
  ASSERT_EQ(ObsHistogram::kBins, 16u);
  EXPECT_EQ(ObsHistogram::bin_floor(0), 0u);
  EXPECT_EQ(ObsHistogram::bin_floor(1), 1u);
  EXPECT_EQ(ObsHistogram::bin_floor(2), 2u);
  EXPECT_EQ(ObsHistogram::bin_floor(3), 4u);
  EXPECT_EQ(ObsHistogram::bin_floor(15), 16384u);

  EXPECT_EQ(ObsHistogram::bin_of(0), 0u);
  EXPECT_EQ(ObsHistogram::bin_of(1), 1u);
  EXPECT_EQ(ObsHistogram::bin_of(2), 2u);
  EXPECT_EQ(ObsHistogram::bin_of(3), 2u);
  EXPECT_EQ(ObsHistogram::bin_of(4), 3u);
  EXPECT_EQ(ObsHistogram::bin_of(16383), 14u);
  EXPECT_EQ(ObsHistogram::bin_of(16384), 15u);
  // Everything past the last floor lands in the overflow tail.
  EXPECT_EQ(ObsHistogram::bin_of(1'000'000'000ull), 15u);

  // Every bin's floor maps back into its own bin (edge self-consistency).
  for (std::size_t i = 0; i < ObsHistogram::kBins; ++i) {
    EXPECT_EQ(ObsHistogram::bin_of(ObsHistogram::bin_floor(i)), i) << "bin " << i;
  }
}

TEST(ObsHistogram, MergeIsExactAndJsonEmitsFloors) {
  ObsHistogram a;
  ObsHistogram b;
  a.add(0);
  a.add(5);
  b.add(5);
  b.add(16384);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.count(3), 2u);  // two 5s, one from each side
  EXPECT_EQ(a.count(15), 1u);

  const Json j = a.to_json();
  ASSERT_EQ(j.at("bin_floors").as_array().size(), ObsHistogram::kBins);
  ASSERT_EQ(j.at("counts").as_array().size(), ObsHistogram::kBins);
  EXPECT_EQ(j.at("bin_floors").as_array()[3].as_int(), 4);
  EXPECT_EQ(j.at("counts").as_array()[3].as_int(), 2);
}

TEST(ObsCatalog, RowsAlignWithEnumAndNamesAreUnique) {
  const auto catalog = obs_counter_catalog();
  ASSERT_EQ(catalog.size(), kObsCounterCount);
  std::set<std::string> names;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(catalog[i].id), i);
    EXPECT_TRUE(names.insert(catalog[i].name).second)
        << "duplicate counter name " << catalog[i].name;
  }
  // The invariant block is a prefix of the catalog: JSONL field order is
  // catalog order, so a reordering would silently reshuffle output.
  bool seen_shaped = false;
  for (const ObsCounterInfo& info : catalog) {
    if (!info.engine_invariant) seen_shaped = true;
    EXPECT_FALSE(seen_shaped && info.engine_invariant)
        << "invariant counter " << info.name << " after an engine-shaped one";
  }
}

// Counts EngineOptions' aggregate fields at compile time: EngineOptions{N
// converters} is well-formed exactly while N <= field count, so the largest
// constructible N IS the field count. Adding a field without a gate-desc
// row fails the test below -- --list can never lag the struct.
struct AnyConv {
  template <class T>
  operator T() const;  // never defined: only used in unevaluated contexts
};

template <std::size_t N>
constexpr bool kEngineOptionsTakes = []<std::size_t... I>(std::index_sequence<I...>) {
  return requires { EngineOptions{((void)I, AnyConv{})...}; };
}(std::make_index_sequence<N>{});

template <std::size_t N = 0>
constexpr std::size_t engine_options_field_count() {
  if constexpr (kEngineOptionsTakes<N + 1>) {
    return engine_options_field_count<N + 1>();
  } else {
    return N;
  }
}

TEST(EngineGates, EveryEngineOptionsFieldHasADescRow) {
  const std::vector<EngineGateDesc> descs = engine_gate_descs();
  EXPECT_EQ(descs.size(), engine_options_field_count())
      << "EngineOptions gained/lost a field without updating "
         "engine_gate_descs() (gtrix_campaign --list)";
  std::set<std::string> names;
  for (const EngineGateDesc& d : descs) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_FALSE(d.summary.empty());
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate gate " << d.name;
  }
  EXPECT_TRUE(names.contains("telemetry"));
  EXPECT_TRUE(names.contains("shards"));
}

ExperimentConfig tiny_config() {
  return builtin_scenario("quickstart-grid").cells().front().config;
}

TEST(EngineStats, DisabledTelemetryYieldsEmptyStats) {
  // Off by default: no stats, no JSONL block -- the pre-telemetry output.
  const ExperimentResult result = run_experiment(tiny_config());
  EXPECT_FALSE(result.engine_stats.enabled);
  for (const ObsCounterInfo& info : obs_counter_catalog()) {
    EXPECT_EQ(result.engine_stats.get(info.id), 0u) << info.name;
  }
  EXPECT_TRUE(result.engine_stats.shards.empty());
  EXPECT_EQ(result.engine_stats.run_wall_seconds, 0.0);

  CampaignOptions options;
  options.threads = 1;
  const CampaignResult campaign =
      run_campaign(builtin_scenario("quickstart-grid"), options);
  EXPECT_EQ(campaign_jsonl(campaign).find("engine_stats"), std::string::npos);
  EXPECT_FALSE(campaign_summary(campaign).contains("engine_stats"));
}

TEST(EngineStats, InvariantBlockIsByteIdenticalAcrossEngines) {
  if (!kObsCompiled) GTEST_SKIP() << "built with GTRIX_OBS=OFF";
  const ExperimentConfig config = tiny_config();

  EngineOptions fast;
  fast.telemetry = true;
  EngineOptions reference = EngineOptions::reference();
  reference.telemetry = true;
  EngineOptions sharded2;
  sharded2.telemetry = true;
  sharded2.shards = 2;
  EngineOptions sharded4;
  sharded4.telemetry = true;
  sharded4.shards = 4;

  const std::string base =
      run_experiment(config, fast).engine_stats.invariant_json().dump();
  EXPECT_FALSE(base.empty());
  for (const EngineOptions& engine : {reference, sharded2, sharded4}) {
    const ExperimentResult result = run_experiment(config, engine);
    ASSERT_TRUE(result.engine_stats.enabled);
    EXPECT_EQ(result.engine_stats.invariant_json().dump(), base);
  }

  // Sanity on the block itself: it contains exactly the invariant counters.
  const Json block = Json::parse(base);
  for (const ObsCounterInfo& info : obs_counter_catalog()) {
    EXPECT_EQ(block.contains(info.name), info.engine_invariant) << info.name;
  }
  EXPECT_GT(block.at("logical_events").as_int(), 0);
  EXPECT_GT(block.at("pulses_recorded").as_int(), 0);
}

TEST(EngineStats, ShardedRunFillsWindowLanesAndEnvelopeCounters) {
  if (!kObsCompiled) GTEST_SKIP() << "built with GTRIX_OBS=OFF";
  EngineOptions engine;
  engine.telemetry = true;
  engine.shards = 2;
  World world(tiny_config(), engine);
  ASSERT_EQ(world.shard_count(), 2u);
  world.run_to_completion();
  const EngineStats stats = world.engine_stats();
  ASSERT_TRUE(stats.enabled);
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_GT(stats.get(ObsCounter::kShardWindows), 0u);
  EXPECT_EQ(stats.shards[0].windows + stats.shards[1].windows,
            stats.get(ObsCounter::kShardWindows));
  // One histogram sample per executed window.
  EXPECT_EQ(stats.window_events.total(), stats.get(ObsCounter::kShardWindows));
  // Quickstart's grid always crosses the shard boundary, so envelopes flow;
  // everything published gets drained once the run completes.
  EXPECT_GT(stats.get(ObsCounter::kEnvelopesPublished), 0u);
  EXPECT_EQ(stats.get(ObsCounter::kEnvelopesPublished),
            stats.get(ObsCounter::kEnvelopesDrained));
  EXPECT_EQ(stats.shards[0].envelopes_drained + stats.shards[1].envelopes_drained,
            stats.get(ObsCounter::kEnvelopesDrained));
  EXPECT_GT(stats.run_wall_seconds, 0.0);
}

TEST(EngineStats, MergeSumsCountersAndMaxesRss) {
  EngineStats a;
  a.enabled = true;
  a.set(ObsCounter::kLogicalEvents, 10);
  a.peak_rss_mb = 50.0;
  a.run_wall_seconds = 1.0;
  a.shards.resize(1);
  a.shards[0].windows = 3;
  EngineStats b;
  b.enabled = true;
  b.set(ObsCounter::kLogicalEvents, 5);
  b.peak_rss_mb = 80.0;
  b.run_wall_seconds = 0.5;
  b.shards.resize(2);
  b.shards[1].windows = 4;
  a.merge(b);
  EXPECT_EQ(a.get(ObsCounter::kLogicalEvents), 15u);
  EXPECT_EQ(a.peak_rss_mb, 80.0);  // high-water mark, not a sum
  EXPECT_EQ(a.run_wall_seconds, 1.5);
  ASSERT_EQ(a.shards.size(), 2u);
  EXPECT_EQ(a.shards[0].windows, 3u);
  EXPECT_EQ(a.shards[1].windows, 4u);

  // Merging a disabled (default) stats object is a no-op.
  EngineStats c;
  c.merge(EngineStats{});
  EXPECT_FALSE(c.enabled);
}

TEST(CampaignTelemetry, JsonlIsByteIdenticalAcrossThreadsAndShards) {
  if (!kObsCompiled) GTEST_SKIP() << "built with GTRIX_OBS=OFF";
  // The tentpole determinism contract: with telemetry ON, the per-cell
  // JSONL (including its engine_stats block) must not depend on the sweep
  // thread count or the shard count. Shard requests above the host budget
  // clamp -- which is exactly part of the contract being proven.
  for (const char* name : {"quickstart-grid", "torus-smoke"}) {
    const Scenario scenario = builtin_scenario(name);
    std::string base;
    for (const unsigned threads : {1u, 4u}) {
      for (const std::uint32_t shards : {1u, 2u, 4u}) {
        CampaignOptions options;
        options.threads = threads;
        options.shards = shards;
        options.telemetry = true;
        const std::string jsonl = campaign_jsonl(run_campaign(scenario, options));
        EXPECT_NE(jsonl.find("engine_stats"), std::string::npos);
        if (base.empty()) {
          base = jsonl;
        } else {
          EXPECT_EQ(jsonl, base) << name << " threads=" << threads
                                 << " shards=" << shards;
        }
      }
    }
  }
}

TEST(CampaignTelemetry, SummaryCarriesMergedEngineShapedBlock) {
  if (!kObsCompiled) GTEST_SKIP() << "built with GTRIX_OBS=OFF";
  CampaignOptions options;
  options.threads = 1;
  options.shards = 2;
  options.telemetry = true;
  const CampaignResult result =
      run_campaign(builtin_scenario("quickstart-grid"), options);
  const Json summary = campaign_summary(result);
  ASSERT_TRUE(summary.contains("engine_stats"));
  const Json& stats = summary.at("engine_stats");
  // Engine-shaped fields live here and only here.
  EXPECT_GT(stats.at("events_executed").as_int(), 0);
  EXPECT_GT(stats.at("shard_windows").as_int(), 0);
  EXPECT_GT(stats.at("peak_rss_mb").as_double(), 0.0);
  ASSERT_EQ(stats.at("shards").as_array().size(), 2u);
  // The JSONL block must NOT leak engine-shaped or wall-clock fields.
  const std::string jsonl = campaign_jsonl(result);
  EXPECT_EQ(jsonl.find("events_executed"), std::string::npos);
  EXPECT_EQ(jsonl.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(jsonl.find("peak_rss_mb"), std::string::npos);
}

TEST(Trace, ShardedRunEmitsNamedWindowAndBarrierSpans) {
  if (!kObsCompiled) GTEST_SKIP() << "built with GTRIX_OBS=OFF";
  EngineOptions engine;
  engine.telemetry = true;
  engine.shards = 2;
  World world(tiny_config(), engine);
  TraceCollector trace;
  world.set_trace(&trace, 7);
  world.run_to_completion();
  ASSERT_GT(trace.event_count(), 0u);

  const Json doc = trace.to_json();
  ASSERT_TRUE(doc.contains("traceEvents"));
  std::size_t windows = 0;
  std::size_t barriers = 0;
  std::size_t thread_names = 0;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    const std::string ph = e.at("ph").as_string();
    const std::string name = e.at("name").as_string();
    if (ph == "M") {
      if (name == "thread_name") ++thread_names;
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_EQ(e.at("pid").as_int(), 7);
    EXPECT_GE(e.at("ts").as_double(), 0.0);
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    if (name == "barrier") ++barriers;
    if (name == "window" || name == "window-final" || name == "drain") {
      ++windows;
      EXPECT_GE(e.at("args").at("events").as_int(), 0);
    }
  }
  EXPECT_GT(windows, 0u);
  EXPECT_GT(barriers, 0u);
  EXPECT_EQ(thread_names, 2u);  // one label per shard

  // Window spans account for every executed window, matching the stats.
  const EngineStats stats = world.engine_stats();
  EXPECT_EQ(windows, stats.get(ObsCounter::kShardWindows));
}

TEST(Trace, StableTidsPerThreadAndProcessNames) {
  TraceCollector trace;
  const std::uint32_t tid = trace.tid_for_current_thread();
  EXPECT_EQ(trace.tid_for_current_thread(), tid);  // idempotent
  trace.set_process_name(1, "campaign");
  trace.add_complete(1, tid, "cell", 0.0, 5.0, 42);
  const Json doc = trace.to_json();
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("args").at("name").as_string(), "campaign");
  EXPECT_EQ(events[1].at("name").as_string(), "cell");
  EXPECT_EQ(events[1].at("args").at("events").as_int(), 42);
}

TEST(Rss, PeakSamplerReportsPositiveOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(peak_rss_mb(), 0.0);
  // Peak is a high-water mark: never below the current footprint's order of
  // magnitude, and monotonically non-decreasing across calls.
  const double first = peak_rss_mb();
  EXPECT_GE(peak_rss_mb(), first);
#else
  EXPECT_EQ(peak_rss_mb(), 0.0);
#endif
}

TEST(Progress, MeterIsSafeToFeedAndStop) {
  // Liveness only -- output goes to stderr and is presentation-only by
  // contract. A long interval keeps the heartbeat silent during the test;
  // the destructor prints the final line and must join cleanly.
  ProgressMeter meter("test-progress", 4, 3600.0);
  meter.cell_done(100);
  meter.cell_done(250);
}

}  // namespace
}  // namespace gtrix
